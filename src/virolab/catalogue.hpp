// The virtual laboratory for computational biology (Section 4).
//
// Four parallel programs reconstruct 3-D virus structure from electron
// micrographs:
//
//   POD   "ab initio" orientation determination;
//   P3DR  3-D reconstruction;
//   POR   orientation refinement;
//   PSF   structure-factor correlation (resolution determination).
//
// Their input/output conditions C1–C8 follow Figure 13. Note: the paper's
// C2 reads `C.Type = "Orientation File"` while every consumer (C3, C5)
// checks `Classification`; we normalize C2 to Classification — otherwise the
// published workflow would never satisfy its own preconditions (documented
// in DESIGN.md).
#pragma once

#include "wfl/case_description.hpp"
#include "wfl/data.hpp"
#include "wfl/service.hpp"

namespace ig::virolab {

/// Data classifications used by the case study.
namespace cls {
inline constexpr const char* kPodParameter = "POD-Parameter";
inline constexpr const char* kP3drParameter = "P3DR-Parameter";
inline constexpr const char* kPorParameter = "POR-Parameter";
inline constexpr const char* kPsfParameter = "PSF-Parameter";
inline constexpr const char* k2dImage = "2D Image";
inline constexpr const char* kOrientationFile = "Orientation File";
inline constexpr const char* k3dModel = "3D Model";
inline constexpr const char* kResolutionFile = "Resolution File";
}  // namespace cls

/// The service set T of the case study: POD, P3DR, POR, PSF.
wfl::ServiceCatalogue make_catalogue();

/// The initial data set {D1..D7} of the Figure 13 case description:
/// parameter files D1–D6 plus the 1.5 GB 2-D image stack D7.
wfl::DataSet make_initial_data();

/// The CD-3DSD case description: initial data {D1..D7}, goal "a Resolution
/// File exists" (result set {D12}), constraint Cons1 driving the refinement
/// loop (continue while the resolution value is still above `target`).
wfl::CaseDescription make_case_description(double target_resolution = 8.0);

}  // namespace ig::virolab
