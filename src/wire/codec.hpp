// Binary ACL wire codec: length-prefixed frames with per-connection interning.
//
// The paper's services speak FIPA ACL over Jade; inside one process our
// AclMessage is a plain struct, but the federated multi-process tier needs
// it on a byte stream, and at production-chain volumes (McRunjob-style
// workloads) serialization is the hot path. XML pays to re-spell the
// protocol vocabulary in every message; this codec sends each vocabulary
// string — the performative, protocol, ontology, and param names — in full
// exactly once per connection and as a one- or two-byte varint id afterwards.
//
// Frame layout (everything little-endian, reusing store's codec and CRC):
//
//   [u32 payload length][u32 crc32c(payload)][payload]
//
// and inside the payload:
//
//   u8  version (kWireVersion)
//   interned performative        -- FIPA string form, e.g. "REQUEST"
//   str sender / receiver / conversation-id
//   interned protocol / ontology
//   str content
//   varint param count, then per param: interned name, str value
//
// where `str` is store::Writer's u32-length-prefixed bytes (arbitrary
// binary content round-trips exactly — no XML character-set caveats) and an
// *interned* field is either `varint id` (id >= 1, previously defined) or
// `varint 0, varint id, str literal` (definition). Definitions carry their
// id explicitly and are idempotent, so a duplicated frame replays cleanly;
// a reference to an id the decoder never learned (a dropped or reordered
// definition frame) is a decode error, never an out-of-bounds read.
//
// Decoding is zero-copy: a frame parses into a WireMessageView of
// string_views over the receive buffer (raw fields) and the decoder's
// intern table (vocabulary fields). The view is valid until the receive
// buffer is mutated or the decoder destroyed; `materialize()` copies it
// into an owning AclMessage. Decode never throws: malformed input yields
// `false` plus a reason, mirroring store's never-throwing Reader.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "agent/message.hpp"
#include "store/codec.hpp"

namespace ig::wire {

inline constexpr std::uint8_t kWireVersion = 1;
/// Frame header: u32 payload length + u32 crc32c of the payload.
inline constexpr std::size_t kFrameHeaderBytes = 8;
/// Upper bound a length prefix may claim; anything larger is rejected
/// before any allocation or read happens (fuzz: oversized prefixes).
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 24;  // 16 MiB

// -- varint ---------------------------------------------------------------------

/// LEB128 unsigned varint append (1 byte for values < 128 — the common case
/// for intern ids and param counts).
void put_varint(std::string& out, std::uint64_t value);

/// Reads a varint through store's never-throwing Reader. nullopt on
/// truncation or a value wider than 64 bits (the reader's ok() also flips
/// on truncation, but not on overlong encodings — check the return).
std::optional<std::uint64_t> read_varint(store::Reader& reader);

// -- encoder --------------------------------------------------------------------

struct EncoderStats {
  std::uint64_t frames = 0;         ///< frames encoded
  std::uint64_t frame_bytes = 0;    ///< bytes including frame headers
  std::uint64_t payload_bytes = 0;  ///< bytes excluding frame headers
  std::uint64_t intern_hits = 0;    ///< vocabulary fields sent as an id
  std::uint64_t intern_misses = 0;  ///< vocabulary fields sent in full (definitions)
};

/// Per-connection encoder. Stateful: the intern table is the connection's
/// shared vocabulary, so frames from one encoder must reach the matching
/// decoder in encode order (run it above an ordered byte stream, as
/// FramedChannel does). Not thread-safe.
class Encoder {
 public:
  /// Appends one complete frame (header + payload) for `message` to `out`.
  void encode(const agent::AclMessage& message, std::string& out);

  /// Convenience: one frame as its own string.
  std::string encode(const agent::AclMessage& message);

  const EncoderStats& stats() const noexcept { return stats_; }
  std::size_t intern_size() const noexcept { return table_.size(); }

 private:
  /// Transparent hashing: the hot path looks vocabulary strings up by
  /// string_view without materializing a std::string per field.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view text) const noexcept {
      return std::hash<std::string_view>{}(text);
    }
  };

  void intern_field(std::string_view value, std::string& payload);

  std::unordered_map<std::string, std::uint32_t, StringHash, std::equal_to<>> table_;
  std::uint32_t next_id_ = 1;
  EncoderStats stats_;
};

// -- decoder --------------------------------------------------------------------

/// A decoded frame borrowing its bytes: raw fields view the frame payload,
/// vocabulary fields view the decoder's intern table. Valid until the
/// receive buffer is mutated/freed or the decoder destroyed.
struct WireMessageView {
  agent::Performative performative = agent::Performative::Inform;
  std::string_view sender;
  std::string_view receiver;
  std::string_view conversation_id;
  std::string_view protocol;
  std::string_view ontology;
  std::string_view content;
  std::vector<std::pair<std::string_view, std::string_view>> params;

  /// Copies the view into an owning AclMessage.
  agent::AclMessage materialize() const;
};

/// Result of looking for a frame at the head of a receive buffer.
enum class FrameStatus {
  kFrame,     ///< a complete, checksum-valid frame was found
  kNeedMore,  ///< the buffer holds a partial frame; read more bytes
  kBad,       ///< corrupt (oversized length or checksum mismatch)
};

/// Inspects `buffer` for one frame. On kFrame, `payload` views the frame's
/// payload inside `buffer` and `frame_size` is the total bytes to consume.
/// On kBad, `error` (when non-null) says why. Never throws, never reads
/// outside `buffer`.
FrameStatus peek_frame(std::string_view buffer, std::string_view& payload,
                       std::size_t& frame_size, std::string* error = nullptr);

/// Per-connection decoder: the receive half of Encoder's intern table.
/// Not thread-safe.
class Decoder {
 public:
  /// Decodes one frame *payload* (header already validated by peek_frame)
  /// into `view`. False on malformed input with a reason in `error`; the
  /// intern table keeps any definitions consumed before the error, matching
  /// what a stream peer would have observed.
  bool decode_payload(std::string_view payload, WireMessageView& view,
                      std::string* error = nullptr);

  std::size_t intern_size() const noexcept { return table_.size(); }

 private:
  bool intern_field(store::Reader& reader, std::string_view& value, std::string* error);

  /// id-1 indexes the deque; deque so growth never moves the strings a
  /// live WireMessageView points into.
  std::deque<std::string> table_;
};

}  // namespace ig::wire
