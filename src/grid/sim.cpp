#include "grid/sim.hpp"

namespace ig::grid {

EventId Simulation::schedule(SimTime delay, std::function<void()> action) {
  return schedule_at(now_ + (delay > 0 ? delay : 0), std::move(action));
}

EventId Simulation::schedule_at(SimTime at, std::function<void()> action) {
  return enqueue(at, std::move(action), /*daemon=*/false);
}

EventId Simulation::schedule_daemon(SimTime delay, std::function<void()> action) {
  return enqueue(now_ + (delay > 0 ? delay : 0), std::move(action), /*daemon=*/true);
}

EventId Simulation::enqueue(SimTime at, std::function<void()> action, bool daemon) {
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  queue_.push(Event{at, next_sequence_++, id});
  actions_.emplace(id, Action{std::move(action), daemon});
  if (!daemon) ++real_pending_;
  return id;
}

bool Simulation::cancel(EventId id) {
  auto it = actions_.find(id);
  if (it == actions_.end()) return false;
  if (!it->second.daemon) --real_pending_;
  cancelled_.insert(id);
  actions_.erase(it);
  return true;
}

bool Simulation::step_one(bool daemons_alone) {
  // Without real work pending, daemons alone must not advance the clock:
  // the calendar counts as drained (unless the caller is time-bounded).
  if (!daemons_alone && real_pending_ == 0) return false;
  while (!queue_.empty()) {
    const Event event = queue_.top();
    queue_.pop();
    auto cancelled = cancelled_.find(event.id);
    if (cancelled != cancelled_.end()) {
      cancelled_.erase(cancelled);
      continue;
    }
    auto action = actions_.find(event.id);
    if (action == actions_.end()) continue;  // defensive; should not happen
    std::function<void()> callback = std::move(action->second.callback);
    if (!action->second.daemon) --real_pending_;
    actions_.erase(action);
    now_ = event.time;
    ++executed_;
    callback();
    return true;
  }
  return false;
}

bool Simulation::step() { return step_one(/*daemons_alone=*/false); }

std::size_t Simulation::run(std::size_t max_events) {
  std::size_t count = 0;
  while (count < max_events && step()) ++count;
  return count;
}

std::size_t Simulation::run_until(SimTime until) {
  std::size_t count = 0;
  while (!queue_.empty()) {
    // Peek through cancellations.
    while (!queue_.empty() && cancelled_.count(queue_.top().id) > 0) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().time > until) break;
    if (step_one(/*daemons_alone=*/true)) ++count;
  }
  if (now_ < until) now_ = until;
  return count;
}

}  // namespace ig::grid
