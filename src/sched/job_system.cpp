#include "sched/job_system.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <string>

#include "util/log.hpp"

namespace ig::sched {

namespace {

/// Identifies the calling thread as a worker of one JobSystem. A nested
/// system (a job that builds its own JobSystem) spawns fresh threads, so
/// one slot per thread is enough.
struct WorkerIdentity {
  const JobSystem* system = nullptr;
  std::size_t id = JobSystem::kAnyWorker;
};

thread_local WorkerIdentity tls_identity;

}  // namespace

JobSystem::JobSystem(std::size_t workers) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (std::size_t id = 0; id < workers; ++id) workers_.push_back(std::make_unique<Worker>());
  for (std::size_t id = 0; id < workers; ++id)
    workers_[id]->thread = std::thread([this, id] { worker_loop(id); });
}

JobSystem::~JobSystem() {
  stopping_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mutex);
    worker->cv.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

std::size_t JobSystem::hardware_threads() noexcept {
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1 : static_cast<std::size_t>(reported);
}

std::size_t JobSystem::current_worker() const noexcept {
  return tls_identity.system == this ? tls_identity.id : kAnyWorker;
}

void JobSystem::post(Job job, std::size_t affinity) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  pending_.fetch_add(1, std::memory_order_acq_rel);
  std::size_t target;
  if (affinity != kAnyWorker) {
    target = affinity % workers_.size();
  } else {
    const std::size_t self = current_worker();
    // A worker posting without a hint keeps the job local (it is the warmest
    // place); external threads round-robin across the deques.
    target = self != kAnyWorker
                 ? self
                 : next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  }
  push_to(target, std::move(job));
}

void JobSystem::push_to(std::size_t target, Job job) {
  const std::size_t n = workers_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t slot = (target + k) % n;
    Worker& worker = *workers_[slot];
    bool was_parked = false;
    std::size_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(worker.mutex);
      // During the destructor's drain a worker exits once its own deque is
      // empty; a job landing there afterwards would never run (stranding
      // pending_ above zero). The exited flag and the owner's final deque
      // check share this mutex, so a job either lands before the owner's
      // last look — and runs — or moves on to a still-live worker.
      if (worker.exited) continue;
      worker.deque.push_back(std::move(job));
      was_parked = worker.parked;
      depth = worker.deque.size();
      if (was_parked) worker.cv.notify_one();
    }
    // The target is busy and its backlog is growing: poke one parked
    // neighbour to come steal instead of letting it sleep through the load.
    if (!was_parked && depth > 1) wake_one_thief(slot);
    return;
  }
  // Every worker has already exited — only reachable when an external thread
  // posts while the destructor runs (a job posting from inside a worker
  // keeps that worker live). Run inline so the job is not dropped and
  // pending_ still reaches zero.
  run_job(*workers_[target % n], job);
}

void JobSystem::wake_one_thief(std::size_t except) {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (i == except) continue;
    Worker& worker = *workers_[i];
    std::lock_guard<std::mutex> lock(worker.mutex);
    if (worker.parked && !worker.poked) {
      worker.poked = true;
      worker.cv.notify_one();
      return;
    }
  }
}

bool JobSystem::try_pop_local(Worker& self, Job& job) {
  std::lock_guard<std::mutex> lock(self.mutex);
  if (self.deque.empty()) return false;
  job = std::move(self.deque.back());  // LIFO: newest first, still cache-warm
  self.deque.pop_back();
  return true;
}

bool JobSystem::try_steal(std::size_t thief, Job& job) {
  Worker& self = *workers_[thief];
  const std::size_t n = workers_.size();
  for (std::size_t k = 1; k < n; ++k) {
    Worker& victim = *workers_[(thief + k) % n];
    std::vector<Job> batch;
    {
      std::lock_guard<std::mutex> lock(victim.mutex);
      self.steal_attempts.fetch_add(1, std::memory_order_relaxed);
      if (victim.deque.empty()) {
        self.steal_failures.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // Steal-half from the FIFO end: the oldest jobs are the coldest on the
      // victim, and moving a batch repairs an imbalance in one probe.
      const std::size_t take = (victim.deque.size() + 1) / 2;
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(victim.deque.front()));
        victim.deque.pop_front();
      }
    }
    self.stolen.fetch_add(batch.size(), std::memory_order_relaxed);
    job = std::move(batch.front());
    if (batch.size() > 1) {
      {
        std::lock_guard<std::mutex> lock(self.mutex);
        for (std::size_t i = 1; i < batch.size(); ++i)
          self.deque.push_back(std::move(batch[i]));
      }
      // We now hold a backlog of our own; recruit another sleeper for it.
      wake_one_thief(thief);
    }
    return true;
  }
  return false;
}

void JobSystem::run_job(Worker& self, Job& job) {
  try {
    job();
  } catch (...) {
    // post() jobs are fire-and-forget; a future-bearing submit() never gets
    // here (packaged_task captures). Swallow, count, and keep the worker.
    swallowed_.fetch_add(1, std::memory_order_relaxed);
    IG_LOG_WARN("sched") << "job exception swallowed (use submit() to propagate)";
  }
  job = nullptr;  // release captures before signalling idle
  self.executed.fetch_add(1, std::memory_order_relaxed);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    idle_cv_.notify_all();
  }
}

void JobSystem::worker_loop(std::size_t id) {
  tls_identity = {this, id};
  Worker& self = *workers_[id];
  for (;;) {
    Job job;
    if (try_pop_local(self, job) || try_steal(id, job)) {
      run_job(self, job);
      continue;
    }
    std::unique_lock<std::mutex> lock(self.mutex);
    if (!self.deque.empty()) continue;  // arrived between the scan and the lock
    if (self.poked) {
      self.poked = false;  // a victim has work: rescan for it
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      // Own deque drained. Mark the exit under the same mutex push_to
      // locks, so late hinted posts from still-running jobs redirect to a
      // live worker instead of landing here unseen.
      self.exited = true;
      return;
    }
    self.parked = true;
    self.parks.fetch_add(1, std::memory_order_relaxed);
    self.cv.wait(lock, [&] {
      return !self.deque.empty() || self.poked ||
             stopping_.load(std::memory_order_acquire);
    });
    self.parked = false;
    self.poked = false;
    self.unparks.fetch_add(1, std::memory_order_relaxed);
  }
}

void JobSystem::parallel_for(std::size_t count,
                             const std::function<void(std::size_t, std::size_t)>& fn,
                             std::size_t min_chunk) {
  if (count == 0) return;
  if (min_chunk == 0) min_chunk = 1;

  struct LoopState {
    std::atomic<std::size_t> remaining{0};
    std::mutex done_mutex;
    std::condition_variable done;
    std::exception_ptr error;
    std::mutex error_mutex;
  };
  auto state = std::make_shared<LoopState>();

  // A few chunks per worker keeps stealing able to rebalance a tail without
  // paying per-index dispatch.
  const std::size_t n = workers_.size();
  const std::size_t target_chunks = std::max<std::size_t>(1, n * 4);
  const std::size_t chunk =
      std::max(min_chunk, (count + target_chunks - 1) / target_chunks);
  const std::size_t num_chunks = (count + chunk - 1) / chunk;
  state->remaining.store(num_chunks, std::memory_order_relaxed);

  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(begin + chunk, count);
    // Block distribution: adjacent chunks start on the same worker, so the
    // no-steal schedule touches contiguous indices per worker.
    const std::size_t home = num_chunks > 1 ? c * n / num_chunks : 0;
    post(
        [state, &fn, begin, end, this] {
          const std::size_t worker = current_worker();
          try {
            for (std::size_t index = begin; index < end; ++index) fn(index, worker);
          } catch (...) {
            std::lock_guard<std::mutex> lock(state->error_mutex);
            if (!state->error) state->error = std::current_exception();
          }
          if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(state->done_mutex);
            state->done.notify_all();
          }
        },
        home);
  }

  const std::size_t self_id = current_worker();
  if (self_id != kAnyWorker) {
    // Called from inside a job: help drain instead of blocking the worker
    // (blocking could deadlock a one-worker system).
    Worker& self = *workers_[self_id];
    while (state->remaining.load(std::memory_order_acquire) > 0) {
      Job job;
      if (try_pop_local(self, job) || try_steal(self_id, job)) {
        run_job(self, job);
        continue;
      }
      // Nothing left to help with: the final chunks are running on other
      // workers. Park on the loop's done condition instead of burning the
      // core; the short timeout re-opens the pop/steal scan in case new
      // work (another nested loop's chunks) lands meanwhile.
      std::unique_lock<std::mutex> lock(state->done_mutex);
      state->done.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return state->remaining.load(std::memory_order_acquire) == 0;
      });
    }
  } else {
    std::unique_lock<std::mutex> lock(state->done_mutex);
    state->done.wait(lock, [&] {
      return state->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  if (state->error) std::rethrow_exception(state->error);
}

void JobSystem::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock,
                [&] { return pending_.load(std::memory_order_acquire) == 0; });
}

JobStats JobSystem::stats() const {
  JobStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  for (const auto& worker : workers_) {
    stats.executed += worker->executed.load(std::memory_order_relaxed);
    stats.stolen += worker->stolen.load(std::memory_order_relaxed);
    stats.steal_attempts += worker->steal_attempts.load(std::memory_order_relaxed);
    stats.steal_failures += worker->steal_failures.load(std::memory_order_relaxed);
    stats.parks += worker->parks.load(std::memory_order_relaxed);
    stats.unparks += worker->unparks.load(std::memory_order_relaxed);
  }
  return stats;
}

std::vector<std::size_t> JobSystem::queue_depths() const {
  std::vector<std::size_t> depths;
  depths.reserve(workers_.size());
  for (const auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mutex);
    depths.push_back(worker->deque.size());
  }
  return depths;
}

void JobSystem::publish_metrics(obs::MetricsRegistry& registry,
                                const obs::Labels& labels) const {
  const JobStats stats = this->stats();
  registry.counter("sched_jobs_submitted_total", labels).set_to(stats.submitted);
  registry.counter("sched_jobs_executed_total", labels).set_to(stats.executed);
  registry.counter("sched_jobs_stolen_total", labels).set_to(stats.stolen);
  registry.counter("sched_steal_attempts_total", labels).set_to(stats.steal_attempts);
  registry.counter("sched_steal_failures_total", labels).set_to(stats.steal_failures);
  registry.counter("sched_parks_total", labels).set_to(stats.parks);
  registry.counter("sched_unparks_total", labels).set_to(stats.unparks);
  registry.gauge("sched_workers", labels).set(static_cast<double>(workers_.size()));
  const std::vector<std::size_t> depths = queue_depths();
  for (std::size_t i = 0; i < depths.size(); ++i) {
    obs::Labels worker_labels = labels;
    worker_labels.emplace_back("worker", std::to_string(i));
    registry.gauge("sched_queue_depth", worker_labels)
        .set(static_cast<double>(depths[i]));
  }
}

}  // namespace ig::sched
