#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ig::util {

void RunningStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double SampleSet::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double m2 = 0.0;
  for (double s : samples_) m2 += (s - m) * (s - m);
  return std::sqrt(m2 / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (q <= 0.0) return sorted.front();
  if (q >= 100.0) return sorted.back();
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(rank);
  const double fraction = rank - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) return sorted.back();
  return sorted[lower] + fraction * (sorted[lower + 1] - sorted[lower]);
}

}  // namespace ig::util
