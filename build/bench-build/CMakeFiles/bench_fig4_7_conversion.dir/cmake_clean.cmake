file(REMOVE_RECURSE
  "../bench/bench_fig4_7_conversion"
  "../bench/bench_fig4_7_conversion.pdb"
  "CMakeFiles/bench_fig4_7_conversion.dir/bench_fig4_7_conversion.cpp.o"
  "CMakeFiles/bench_fig4_7_conversion.dir/bench_fig4_7_conversion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_7_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
