#include "agent/platform.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace ig::agent {

Agent& AgentPlatform::register_agent(std::unique_ptr<Agent> agent) {
  if (agent == nullptr) throw std::invalid_argument("register_agent: null agent");
  if (has_agent(agent->name()))
    throw std::invalid_argument("duplicate agent name '" + agent->name() + "'");
  agent->platform_ = this;
  agents_.push_back(std::move(agent));
  Agent& reference = *agents_.back();
  reference.on_start();
  return reference;
}

bool AgentPlatform::deregister_agent(std::string_view name) {
  for (auto it = agents_.begin(); it != agents_.end(); ++it) {
    if ((*it)->name() == name) {
      agents_.erase(it);
      return true;
    }
  }
  return false;
}

Agent* AgentPlatform::find_agent(std::string_view name) noexcept {
  for (auto& agent : agents_) {
    if (agent->name() == name) return agent.get();
  }
  return nullptr;
}

bool AgentPlatform::has_agent(std::string_view name) const noexcept {
  for (const auto& agent : agents_) {
    if (agent->name() == name) return true;
  }
  return false;
}

std::vector<std::string> AgentPlatform::agent_names() const {
  std::vector<std::string> names;
  names.reserve(agents_.size());
  for (const auto& agent : agents_) names.push_back(agent->name());
  return names;
}

void AgentPlatform::send(AclMessage message) {
  ++messages_sent_;
  const grid::SimTime sent_at = sim_.now();
  const grid::SimTime latency =
      latency_fn_ ? latency_fn_(message.sender, message.receiver) : 0.001;
  sim_.schedule(latency, [this, message = std::move(message), sent_at]() mutable {
    deliver(std::move(message), sent_at);
  });
}

void AgentPlatform::set_trace_limit(std::size_t limit) {
  trace_limit_ = limit;
  if (trace_limit_ == 0) return;
  while (trace_.size() > trace_limit_) {
    trace_.pop_front();
    ++trace_dropped_;
  }
}

void AgentPlatform::deliver(AclMessage message, grid::SimTime sent_at) {
  Agent* receiver = find_agent(message.receiver);
  if (tracing_) {
    trace_.push_back({sent_at, sim_.now(), message, receiver != nullptr});
    if (trace_limit_ > 0 && trace_.size() > trace_limit_) {
      trace_.pop_front();
      ++trace_dropped_;
    }
  }
  if (receiver == nullptr) {
    // Bounce: notify the sender (if it still exists) of the failed delivery.
    Agent* sender = find_agent(message.sender);
    if (sender != nullptr && message.performative != Performative::Failure) {
      AclMessage bounce = message.make_reply(Performative::Failure);
      bounce.sender = message.receiver;  // nominal originator
      bounce.protocol = "platform-error";
      bounce.params["error"] = "agent '" + message.receiver + "' not found";
      bounce.params["original-protocol"] = message.protocol;
      sim_.schedule(0.0, [this, bounce = std::move(bounce), when = sim_.now()]() mutable {
        deliver(std::move(bounce), when);
      });
    }
    return;
  }
  ++messages_delivered_;
  try {
    receiver->handle_message(message);
  } catch (const std::exception& error) {
    note_handler_failure(message, error.what());
  } catch (...) {
    note_handler_failure(message, "unknown exception");
  }
}

void AgentPlatform::note_handler_failure(const AclMessage& message, const std::string& what) {
  handler_failures_[message.receiver] += 1;
  handler_failures_total_.fetch_add(1, std::memory_order_relaxed);
  if (tracing_ && !trace_.empty()) {
    // Our record is still at the back: pushes happen only in deliver() and
    // the ring drops from the front.
    trace_.back().handler_error = what;
  }
  // Failure/NotUnderstood never provoke a reply, or two broken agents would
  // bounce errors at each other forever.
  if (message.performative == Performative::Failure ||
      message.performative == Performative::NotUnderstood) {
    return;
  }
  if (find_agent(message.sender) == nullptr) return;
  AclMessage failure = message.make_reply(Performative::Failure);
  failure.params["reason"] = "handler error in '" + message.receiver + "': " + what;
  failure.params["error"] = failure.params["reason"];
  sim_.schedule(0.0, [this, failure = std::move(failure), when = sim_.now()]() mutable {
    deliver(std::move(failure), when);
  });
}

std::size_t AgentPlatform::handler_failures(std::string_view name) const {
  auto it = handler_failures_.find(std::string(name));
  return it != handler_failures_.end() ? it->second : 0;
}

std::string AgentPlatform::trace_to_string() const {
  std::string out;
  for (const auto& record : trace_) {
    out += "t=" + util::format_number(record.delivered_at, 4) + "  " +
           record.message.to_display_string();
    if (!record.delivered) out += "  (UNDELIVERABLE)";
    if (!record.handler_error.empty()) out += "  (HANDLER ERROR: " + record.handler_error + ")";
    out += '\n';
  }
  return out;
}

}  // namespace ig::agent
