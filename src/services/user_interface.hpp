// User-interface agent (the UI box of Figure 1).
//
// "The User Interface (UI) provides access to the environment." This agent
// packages the canonical end-user workflow — submit a case description,
// obtain a plan from the planning service (Figure 2), hand it to the
// coordination service for enactment, and surface the outcome — so that
// applications embed one agent instead of re-implementing the exchange.
//
// Callbacks fire on the simulation thread; keep them short.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "agent/agent.hpp"
#include "wfl/case_description.hpp"
#include "wfl/process.hpp"

namespace ig::svc {

/// Outcome of a completed (or failed) task submission.
struct TaskOutcome {
  bool success = false;
  std::string error;
  double makespan = 0.0;
  int activities_executed = 0;
  int dispatch_failures = 0;
  int replans = 0;
  double goal_satisfaction = 0.0;
  double total_cost = 0.0;
  wfl::DataSet final_data;
};

class UserInterfaceAgent : public agent::Agent {
 public:
  using PlanCallback = std::function<void(const wfl::ProcessDescription&)>;
  using OutcomeCallback = std::function<void(const TaskOutcome&)>;

  explicit UserInterfaceAgent(std::string name) : Agent(std::move(name)) {}

  /// Submits a case for automated planning + enactment. `seed` pins the
  /// planner's RNG for reproducible experiments (nullopt: service default).
  void submit_case(const wfl::CaseDescription& case_description,
                   std::optional<std::uint64_t> seed = std::nullopt);

  /// Enacts a user-supplied process description (no planning step).
  void submit_process(const wfl::ProcessDescription& process,
                      const wfl::CaseDescription& case_description);

  /// Observers (optional).
  void on_plan(PlanCallback callback) { plan_callback_ = std::move(callback); }
  void on_outcome(OutcomeCallback callback) { outcome_callback_ = std::move(callback); }

  /// Polling accessors for harnesses that drive the simulation directly.
  bool finished() const noexcept { return outcome_.has_value(); }
  const TaskOutcome& outcome() const { return *outcome_; }
  const std::optional<wfl::ProcessDescription>& plan() const noexcept { return plan_; }

  void handle_message(const agent::AclMessage& message) override;

 private:
  void start_enactment(const std::string& process_xml);

  std::string case_xml_;
  std::optional<wfl::ProcessDescription> plan_;
  std::optional<TaskOutcome> outcome_;
  PlanCallback plan_callback_;
  OutcomeCallback outcome_callback_;
};

}  // namespace ig::svc
