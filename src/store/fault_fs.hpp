// Deterministic disk-fault injection under the store (the FaultFs).
//
// The disk-side sibling of agent::ChaosPolicy: a FileOps wrapper that
// injects EIO, ENOSPC, short writes, fsync failures and a simulated power
// cut, with every random decision drawn from a stream derived with
// util::derive_stream from one seed and the operation's sequence number —
// so a faulty run is bitwise reproducible, the same Jepsen-style
// repeatable-nemesis discipline the chaos layer applies to messages.
//
// Three ways to schedule a fault:
//   * probabilistic rules (FaultRule), matched by path prefix and/or
//     operation kind, first match wins — soak-style testing;
//   * one-shot faults (OneShotFault) pinned to the Nth counted operation —
//     exhaustive sweeps ("ENOSPC at every append offset");
//   * power_cut_after = N: operations 1..N succeed, every later operation
//     fails with EIO and nothing further reaches the disk — the crash-point
//     matrix harness replays a workload with the cut at every N.
//
// mmap is emulated so the power cut is honest: FaultFs::mmap hands back an
// anonymous buffer pre-filled from the file, and only msync copies it to
// the real file (through the inner FileOps) — a plain memcpy append is
// never durable until a successful msync, exactly the guarantee a real
// power loss enforces probabilistically and this layer enforces always.
// Consequence: a FaultFs must outlive every Segment mapped through it.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "store/file_ops.hpp"

namespace ig::store {

/// Counted (and therefore faultable / power-cuttable) operation kinds.
/// close and munmap are pure resource releases and pass through uncounted.
enum class FileOp {
  kOpen,
  kPread,
  kPwrite,
  kFsync,
  kTruncate,
  kMmap,
  kMsync,
  kRename,
  kUnlink,
  kMkdir,
};

const char* to_string(FileOp op);

/// Which operations a rule applies to. An empty path matches every file; a
/// trailing '*' matches by prefix ("/data/wal-*" covers the segments). An
/// unset op matches all operation kinds.
struct FaultMatch {
  std::string path;
  std::optional<FileOp> op;

  bool matches(FileOp op, const std::string& path) const;
};

/// One fault rule. Probabilities are drawn independently in declaration
/// order; only the first matching rule applies to an operation.
struct FaultRule {
  FaultMatch match;
  double io_error = 0.0;     ///< P(fail with EIO)
  double no_space = 0.0;     ///< P(fail with ENOSPC)
  double short_write = 0.0;  ///< P(pwrite/msync persists a prefix, then fails)
  double fsync_error = 0.0;  ///< P(fsync / MS_SYNC msync fails with EIO)
};

enum class FaultAction { kIoError, kNoSpace, kShortWrite, kFsyncFailure };

/// Fires exactly once, on the `at_op`-th counted operation (1-based).
/// Actions that make no sense for the operation they land on degrade to a
/// plain EIO, so exhaustive at-every-op sweeps never silently skip a point.
struct OneShotFault {
  std::uint64_t at_op = 0;
  FaultAction action = FaultAction::kIoError;
};

struct FaultFsOptions {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;
  std::vector<OneShotFault> one_shots;
  /// 0 = never. Otherwise operations numbered > power_cut_after all fail
  /// with EIO and nothing further is written through to the inner FileOps.
  std::uint64_t power_cut_after = 0;
};

/// Injected-fault counters (one consistent snapshot).
struct FaultFsStats {
  std::uint64_t ops = 0;  ///< counted operations attempted
  std::uint64_t io_errors = 0;
  std::uint64_t no_space = 0;
  std::uint64_t short_writes = 0;
  std::uint64_t fsync_failures = 0;
  std::uint64_t power_cut_failures = 0;  ///< operations refused after the cut

  std::uint64_t total_injected() const noexcept {
    return io_errors + no_space + short_writes + fsync_failures + power_cut_failures;
  }
};

class FaultFs final : public FileOps {
 public:
  explicit FaultFs(FaultFsOptions options, FileOps& inner = posix_file_ops());
  ~FaultFs() override;

  int open(const std::string& path, int flags, int mode) override;
  int close(int fd) override;
  ssize_t pread(int fd, void* buf, std::size_t count, off_t offset) override;
  ssize_t pwrite(int fd, const void* buf, std::size_t count, off_t offset) override;
  int fsync(int fd) override;
  int ftruncate(int fd, off_t length) override;
  off_t size(int fd) override;
  void* mmap(int fd, std::size_t length) override;
  int msync(void* addr, std::size_t length, bool sync) override;
  int munmap(void* addr, std::size_t length) override;
  int rename(const std::string& from, const std::string& to) override;
  int unlink(const std::string& path) override;
  int mkdir(const std::string& path, int mode) override;

  /// Counted operations so far — run a workload once against a
  /// pass-through FaultFs to learn N, then sweep power_cut_after over 1..N.
  std::uint64_t ops() const noexcept { return ops_.load(std::memory_order_relaxed); }
  FaultFsStats stats() const;

 private:
  struct Mapping {
    int fd = -1;  ///< duped descriptor kept for write-back
    std::size_t length = 0;
    std::string path;
  };

  /// Counts the operation and decides its fate. Returns the injected
  /// action, or nullopt when the operation should pass through.
  std::optional<FaultAction> judge(FileOp op, const std::string& path,
                                   std::uint64_t* op_index);
  /// Applies a non-short-write action's errno and stats. Returns -1.
  int refuse(FaultAction action);
  bool write_back(const Mapping& mapping, const unsigned char* buffer, std::size_t length,
                  bool sync);

  FaultFsOptions options_;
  FileOps& inner_;
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<bool> power_cut_{false};

  mutable std::mutex mutex_;  ///< guards mappings_, fd paths and stats
  std::map<void*, Mapping> mappings_;
  std::map<int, std::string> fd_paths_;
  FaultFsStats stats_;
};

}  // namespace ig::store
