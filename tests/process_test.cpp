#include <gtest/gtest.h>

#include "wfl/process.hpp"
#include "wfl/xml_io.hpp"

namespace ig::wfl {
namespace {

ProcessDescription tiny() {
  ProcessDescription process("tiny");
  process.add_flow_control("A1", ActivityKind::Begin);
  process.add_end_user("A2", "POD", "POD");
  process.add_flow_control("A3", ActivityKind::End);
  process.add_transition("A1", "A2");
  process.add_transition("A2", "A3");
  return process;
}

TEST(Process, AddAndLookup) {
  const ProcessDescription process = tiny();
  EXPECT_EQ(process.activity_count(), 3u);
  EXPECT_EQ(process.transition_count(), 2u);
  ASSERT_NE(process.find_activity("A2"), nullptr);
  EXPECT_EQ(process.find_activity("A2")->service_name, "POD");
  EXPECT_EQ(process.find_activity("missing"), nullptr);
  ASSERT_NE(process.find_activity_by_name("POD"), nullptr);
  EXPECT_EQ(process.find_activity_by_name("POD")->id, "A2");
}

TEST(Process, GeneratedIds) {
  ProcessDescription process("gen");
  Activity a;
  a.name = "x";
  const std::string first = process.add_activity(std::move(a)).id;
  Activity b;
  b.name = "y";
  const std::string second = process.add_activity(std::move(b)).id;
  EXPECT_NE(first, second);
  process.add_transition(first, second);
  EXPECT_EQ(process.transitions().front().id, "TR1");
}

TEST(Process, DuplicateIdsThrow) {
  ProcessDescription process = tiny();
  Activity duplicate;
  duplicate.id = "A1";
  EXPECT_THROW(process.add_activity(std::move(duplicate)), ProcessError);
  EXPECT_THROW(process.add_transition("A1", "A2", Condition(), "TR1"), ProcessError);
}

TEST(Process, TransitionEndpointsMustExist) {
  ProcessDescription process = tiny();
  EXPECT_THROW(process.add_transition("A1", "nope"), ProcessError);
  EXPECT_THROW(process.add_transition("nope", "A2"), ProcessError);
}

TEST(Process, BeginEndAccessors) {
  const ProcessDescription process = tiny();
  EXPECT_EQ(process.begin_activity().id, "A1");
  EXPECT_EQ(process.end_activity().id, "A3");

  ProcessDescription no_begin("x");
  no_begin.add_flow_control("E", ActivityKind::End);
  EXPECT_THROW(no_begin.begin_activity(), ProcessError);

  ProcessDescription two_ends("y");
  two_ends.add_flow_control("E1", ActivityKind::End);
  two_ends.add_flow_control("E2", ActivityKind::End);
  EXPECT_THROW(two_ends.end_activity(), ProcessError);
}

TEST(Process, Adjacency) {
  ProcessDescription process("adj");
  process.add_flow_control("B", ActivityKind::Begin);
  process.add_flow_control("F", ActivityKind::Fork);
  process.add_end_user("X", "X", "svc");
  process.add_end_user("Y", "Y", "svc");
  process.add_flow_control("J", ActivityKind::Join);
  process.add_flow_control("E", ActivityKind::End);
  process.add_transition("B", "F");
  process.add_transition("F", "X");
  process.add_transition("F", "Y");
  process.add_transition("X", "J");
  process.add_transition("Y", "J");
  process.add_transition("J", "E");

  EXPECT_EQ(process.successors("F"), (std::vector<std::string>{"X", "Y"}));
  EXPECT_EQ(process.predecessors("J"), (std::vector<std::string>{"X", "Y"}));
  EXPECT_EQ(process.outgoing("F").size(), 2u);
  EXPECT_EQ(process.incoming("J").size(), 2u);
  EXPECT_TRUE(process.predecessors("B").empty());
  EXPECT_TRUE(process.successors("E").empty());
}

TEST(Process, ActivityKindCounts) {
  const ProcessDescription process = tiny();
  EXPECT_EQ(process.end_user_activity_count(), 1u);
  EXPECT_EQ(process.flow_control_activity_count(), 2u);
}

TEST(Process, FlowControlNamesUppercase) {
  ProcessDescription process("names");
  EXPECT_EQ(process.add_flow_control("f", ActivityKind::Fork).name, "FORK");
  EXPECT_EQ(process.add_flow_control("c", ActivityKind::Choice).name, "CHOICE");
  EXPECT_THROW(process.add_flow_control("u", ActivityKind::EndUser), ProcessError);
}

TEST(Process, KindNames) {
  EXPECT_EQ(to_string(ActivityKind::EndUser), "End-user");
  EXPECT_EQ(to_string(ActivityKind::Merge), "Merge");
  EXPECT_TRUE(is_flow_control(ActivityKind::Join));
  EXPECT_FALSE(is_flow_control(ActivityKind::EndUser));
}

TEST(Process, DisplayStringListsEverything) {
  const std::string display = tiny().to_display_string();
  EXPECT_NE(display.find("tiny"), std::string::npos);
  EXPECT_NE(display.find("POD"), std::string::npos);
  EXPECT_NE(display.find("BEGIN -> POD"), std::string::npos);
}

TEST(ProcessXml, RoundTrip) {
  ProcessDescription original("round");
  original.add_flow_control("A1", ActivityKind::Begin);
  auto& pod = original.add_end_user("A2", "POD", "POD");
  pod.input_data = {"D1", "D7"};
  pod.output_data = {"D8"};
  original.add_flow_control("A3", ActivityKind::Choice);
  original.add_flow_control("A4", ActivityKind::Merge);  // fan-in placeholder
  original.add_flow_control("A5", ActivityKind::End);
  original.add_transition("A1", "A2");
  original.add_transition("A2", "A3");
  original.add_transition("A3", "A4", Condition::parse("R.Value > 8"), "TRx");
  original.add_transition("A3", "A5");
  original.add_transition("A4", "A5");

  const ProcessDescription restored = process_from_xml_string(process_to_xml_string(original));
  EXPECT_EQ(restored.name(), "round");
  EXPECT_EQ(restored.activity_count(), original.activity_count());
  EXPECT_EQ(restored.transition_count(), original.transition_count());
  ASSERT_NE(restored.find_activity("A2"), nullptr);
  EXPECT_EQ(restored.find_activity("A2")->input_data, (std::vector<std::string>{"D1", "D7"}));
  ASSERT_NE(restored.find_transition("TRx"), nullptr);
  EXPECT_FALSE(restored.find_transition("TRx")->guard.is_trivially_true());
  EXPECT_EQ(restored.find_transition("TRx")->guard.to_string(), "R.Value > 8");
}

TEST(ProcessXml, RejectsWrongRoot) {
  EXPECT_THROW(process_from_xml_string("<case/>"), ProcessError);
}

TEST(ProcessXml, RejectsUnknownKind) {
  EXPECT_THROW(
      process_from_xml_string("<process><activity id=\"a\" kind=\"Weird\"/></process>"),
      ProcessError);
}

}  // namespace
}  // namespace ig::wfl
