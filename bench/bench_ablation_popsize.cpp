// Ablation A1 — population size versus solution quality.
//
// The paper fixes the population at 200 (Table 1) without justification.
// This sweep shows the trade-off: small populations miss valid plans within
// the 20-generation budget; beyond ~100-200 the success rate saturates while
// the evaluation cost keeps growing linearly.
#include <cstdio>
#include <string>

#include "gp_sweep.hpp"

using namespace ig;

int main() {
  const planner::PlanningProblem problem = bench::virolab_problem();
  const std::size_t sizes[] = {10, 25, 50, 100, 200, 400};
  constexpr int kRuns = 5;

  std::printf("A1: population size sweep (%d runs each, 20 generations)\n\n", kRuns);
  bench::print_sweep_header("population");
  double small_optimal = 0;
  double large_optimal = 0;
  for (const std::size_t size : sizes) {
    planner::GpConfig config;
    config.population_size = size;
    const bench::SweepPoint point = bench::run_sweep_point(problem, config, kRuns);
    bench::print_sweep_row(std::to_string(size).c_str(), point);
    if (size == 10) small_optimal = point.optimal_runs;
    if (size == 200) large_optimal = point.optimal_runs;
  }
  std::printf("\nexpected shape: success rate non-decreasing with population size;\n"
              "the paper's 200 reaches optimal validity and goal fitness in every run.\n");
  const bool ok = large_optimal >= small_optimal && large_optimal == kRuns;
  std::printf("shape holds: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
