// Synthetic compute kernels for the four reconstruction programs.
//
// The real POD/P3DR/POR/PSF are parallel electron-microscopy codes operating
// on GB-scale micrographs we do not have. These kernels preserve what the
// middleware observes: the I/O signatures (conditions C1–C8), data sizes,
// and the convergence behaviour that drives the Cons1 loop — every
// refinement pass improves the resolution multiplicatively until it crosses
// the target, so the CHOICE activity eventually takes the END branch.
#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"
#include "wfl/data.hpp"
#include "wfl/service.hpp"

namespace ig::virolab {

/// Convergence model of the synthetic reconstruction.
struct KernelParams {
  double initial_resolution = 18.0;  ///< Å after the first reconstruction
  double refinement_factor = 0.65;   ///< resolution multiplier per refinement pass
  double resolution_floor = 5.5;     ///< physical limit of the instrument
  double model_size_mb = 64.0;       ///< size of a produced 3-D model
  double orientation_size_mb = 2.0;  ///< size of an orientation file
  /// Real wall-clock latency per kernel execution, in seconds. 0 keeps
  /// kernels virtual-time-only. Throughput harnesses set this to emulate
  /// waiting on the actual reconstruction codes running on remote
  /// resources — the latency that shard-level concurrency overlaps.
  double execution_latency_seconds = 0.0;
};

/// Stateful executor: produces concrete output data for each service
/// invocation. The resolution improves with each completed refinement pass
/// (POR execution), so iterative enactment converges.
class SyntheticKernels {
 public:
  explicit SyntheticKernels(KernelParams params = {}) : params_(params) {}

  /// Executes `service` with the given bound inputs; returns the produced
  /// data items (named `outputs[i]` when `output_names` provides them,
  /// otherwise generated names). Unknown services produce nothing.
  std::vector<wfl::DataSpec> execute(const wfl::ServiceType& service,
                                     const wfl::Bindings& inputs,
                                     const std::vector<std::string>& output_names = {});

  /// Current model resolution in Å (what the next PSF will report).
  double current_resolution() const noexcept;

  std::size_t refinement_passes() const noexcept { return refinements_; }
  std::size_t executions() const noexcept { return executions_; }

  void reset() noexcept {
    refinements_ = 0;
    executions_ = 0;
  }

  const KernelParams& params() const noexcept { return params_; }

 private:
  KernelParams params_;
  std::size_t refinements_ = 0;
  std::size_t executions_ = 0;
};

/// Generates a synthetic set of 2-D virus projections (for the examples):
/// `count` image items with jittered sizes, classification "2D Image".
std::vector<wfl::DataSpec> make_micrographs(util::Rng& rng, int count,
                                            double mean_size_mb = 12.0);

}  // namespace ig::virolab
