// Conversion between plan trees and workflow expressions / process
// descriptions ("The similar methods can be used to convert a plan tree to a
// process description", Section 3.4.1).
//
// Plan-tree controller kinds map one-to-one onto flow-expression kinds:
// Sequential <-> Sequence, Concurrent <-> Concurrent (FORK/JOIN),
// Selective <-> Selective (CHOICE/MERGE), Iterative <-> Iterative
// (MERGE/CHOICE loop). Terminals become end-user activities; when a service
// appears several times, its activity instances are numbered (P3DR1..P3DR4
// in Figure 10).
#pragma once

#include "planner/plan_tree.hpp"
#include "wfl/flowexpr.hpp"
#include "wfl/process.hpp"
#include "wfl/structure.hpp"

namespace ig::planner {

/// Plan tree -> flow expression, numbering repeated service instances.
wfl::FlowExpr to_flow_expr(const PlanNode& plan);

/// Flow expression -> plan tree (activity instance names are dropped;
/// terminals keep the service name).
PlanNode from_flow_expr(const wfl::FlowExpr& expr);

/// Plan tree -> full process description (lowers through the flow
/// expression; always yields a Begin/End-delimited graph).
wfl::ProcessDescription to_process(const PlanNode& plan, std::string name);

/// Process description -> plan tree (lifts through the flow expression).
PlanNode from_process(const wfl::ProcessDescription& process);

}  // namespace ig::planner
