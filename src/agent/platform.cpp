#include "agent/platform.hpp"

#include <stdexcept>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace ig::agent {

Agent& AgentPlatform::register_agent(std::unique_ptr<Agent> agent) {
  if (agent == nullptr) throw std::invalid_argument("register_agent: null agent");
  if (has_agent(agent->name()))
    throw std::invalid_argument("duplicate agent name '" + agent->name() + "'");
  agent->platform_ = this;
  agents_.push_back(std::move(agent));
  Agent& reference = *agents_.back();
  reference.on_start();
  return reference;
}

bool AgentPlatform::deregister_agent(std::string_view name) {
  for (auto it = agents_.begin(); it != agents_.end(); ++it) {
    if ((*it)->name() == name) {
      agents_.erase(it);
      return true;
    }
  }
  return false;
}

Agent* AgentPlatform::find_agent(std::string_view name) noexcept {
  for (auto& agent : agents_) {
    if (agent->name() == name) return agent.get();
  }
  return nullptr;
}

bool AgentPlatform::has_agent(std::string_view name) const noexcept {
  for (const auto& agent : agents_) {
    if (agent->name() == name) return true;
  }
  return false;
}

std::vector<std::string> AgentPlatform::agent_names() const {
  std::vector<std::string> names;
  names.reserve(agents_.size());
  for (const auto& agent : agents_) names.push_back(agent->name());
  return names;
}

void AgentPlatform::send(AclMessage message) {
  const std::uint64_t sequence = messages_sent_.fetch_add(1, std::memory_order_relaxed);
  const grid::SimTime sent_at = sim_.now();
  grid::SimTime latency =
      latency_fn_ ? latency_fn_(message.sender, message.receiver) : 0.001;

  // A crashed or hung agent cannot emit anything; its sends vanish. Checked
  // whether the fault came from a ChaosPolicy or a direct crash_agent /
  // hang_agent call, matching deliver()'s unconditional health check.
  if (!health_.empty()) {
    const AgentHealth sender_health = agent_health(message.sender);
    if (sender_health != AgentHealth::Healthy) {
      chaos_dropped_.fetch_add(1, std::memory_order_relaxed);
      trace_chaos_loss(message, sent_at,
                       sender_health == AgentHealth::Crashed ? "dropped: sender crashed"
                                                             : "dropped: sender hung");
      return;
    }
  }

  // The transport hook carries the message through a real encode/decode
  // path before any chaos decision, so the chaos layer handles frames that
  // actually crossed the codec. A rejected message never reaches the wire:
  // it is counted, traced, and gone.
  if (transport_hook_) {
    std::string error;
    std::optional<AclMessage> decoded = transport_hook_(message, &error);
    if (!decoded.has_value()) {
      transport_rejects_.fetch_add(1, std::memory_order_relaxed);
      trace_chaos_loss(message, sent_at,
                       "wire: " + (error.empty() ? std::string("decode error") : error));
      return;
    }
    message = *std::move(decoded);
  }

  if (chaos_.has_value() && chaos_->enabled()) {
    if (const ChaosRule* rule = chaos_->first_match(message)) {
      // One stream per message, keyed by the platform-wide send sequence:
      // the nth send of a run always sees the same draws regardless of what
      // other rules or policies did before it.
      util::Rng rng(util::derive_stream(chaos_->seed, sequence));
      if (rule->drop > 0.0 && rng.next_bool(rule->drop)) {
        chaos_dropped_.fetch_add(1, std::memory_order_relaxed);
        trace_chaos_loss(message, sent_at, "dropped");
        return;
      }
      if (rule->delay > 0.0 && rng.next_bool(rule->delay)) {
        latency += rng.next_double(rule->delay_min, rule->delay_max);
        chaos_delayed_.fetch_add(1, std::memory_order_relaxed);
      }
      if (rule->reorder > 0.0 && rng.next_bool(rule->reorder)) {
        // Push this delivery behind sends issued a few transport hops later.
        latency += latency * rng.next_double(1.0, 3.0) + 0.002;
        chaos_reordered_.fetch_add(1, std::memory_order_relaxed);
      }
      if (rule->duplicate > 0.0 && rng.next_bool(rule->duplicate)) {
        chaos_duplicated_.fetch_add(1, std::memory_order_relaxed);
        AclMessage copy = message;
        const grid::SimTime copy_latency = latency + 0.0005 + rng.next_double(0.0, latency);
        sim_.schedule(copy_latency, [this, copy = std::move(copy), sent_at]() mutable {
          deliver(std::move(copy), sent_at);
        });
      }
    }
  }

  sim_.schedule(latency, [this, message = std::move(message), sent_at]() mutable {
    deliver(std::move(message), sent_at);
  });
}

void AgentPlatform::set_chaos(ChaosPolicy policy) {
  chaos_ = std::move(policy);
  deliveries_by_agent_.clear();
  chaos_dropped_.store(0, std::memory_order_relaxed);
  chaos_delayed_.store(0, std::memory_order_relaxed);
  chaos_duplicated_.store(0, std::memory_order_relaxed);
  chaos_reordered_.store(0, std::memory_order_relaxed);
  chaos_crashed_.store(0, std::memory_order_relaxed);
  chaos_hung_.store(0, std::memory_order_relaxed);
  chaos_swallowed_.store(0, std::memory_order_relaxed);
}

void AgentPlatform::clear_chaos() {
  chaos_.reset();
  deliveries_by_agent_.clear();
}

ChaosStats AgentPlatform::chaos_stats() const {
  ChaosStats stats;
  stats.dropped = chaos_dropped_.load(std::memory_order_relaxed);
  stats.delayed = chaos_delayed_.load(std::memory_order_relaxed);
  stats.duplicated = chaos_duplicated_.load(std::memory_order_relaxed);
  stats.reordered = chaos_reordered_.load(std::memory_order_relaxed);
  stats.crashed = chaos_crashed_.load(std::memory_order_relaxed);
  stats.hung = chaos_hung_.load(std::memory_order_relaxed);
  stats.swallowed = chaos_swallowed_.load(std::memory_order_relaxed);
  return stats;
}

void AgentPlatform::publish_metrics(obs::MetricsRegistry& registry,
                                    const obs::Labels& labels) const {
  registry.counter("platform_messages_sent_total", labels).set_to(messages_sent());
  registry.counter("platform_messages_delivered_total", labels).set_to(messages_delivered());
  registry.counter("platform_handler_failures_total", labels).set_to(handler_failures_total());
  registry.counter("platform_trace_dropped_total", labels).set_to(trace_dropped());
  registry.counter("platform_transport_rejects_total", labels).set_to(transport_rejects());
  chaos_stats().publish(registry, labels);
}

void AgentPlatform::crash_agent(const std::string& name) { health_[name] = AgentHealth::Crashed; }

void AgentPlatform::hang_agent(const std::string& name) { health_[name] = AgentHealth::Hung; }

void AgentPlatform::revive_agent(const std::string& name) { health_.erase(name); }

AgentHealth AgentPlatform::agent_health(std::string_view name) const {
  if (health_.empty()) return AgentHealth::Healthy;
  auto it = health_.find(std::string(name));
  return it != health_.end() ? it->second : AgentHealth::Healthy;
}

void AgentPlatform::apply_agent_faults(const std::string& receiver) {
  if (!chaos_.has_value() || chaos_->agent_faults.empty()) return;
  const std::size_t count = ++deliveries_by_agent_[receiver];
  for (const auto& fault : chaos_->agent_faults) {
    if (fault.agent != receiver || fault.after_deliveries != count) continue;
    if (fault.kind == AgentFault::Kind::Crash) {
      crash_agent(receiver);
      chaos_crashed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      hang_agent(receiver);
      chaos_hung_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void AgentPlatform::set_trace_limit(std::size_t limit) {
  trace_limit_.store(limit, std::memory_order_relaxed);
  if (limit == 0) return;
  while (trace_.size() > limit) {
    trace_.pop_front();
    trace_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void AgentPlatform::push_trace(TraceRecord record) {
  trace_.push_back(std::move(record));
  const std::size_t limit = trace_limit_.load(std::memory_order_relaxed);
  if (limit > 0 && trace_.size() > limit) {
    trace_.pop_front();
    trace_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void AgentPlatform::trace_chaos_loss(const AclMessage& message, grid::SimTime sent_at,
                                     const std::string& note) {
  if (!tracing_) return;
  TraceRecord record;
  record.sent_at = sent_at;
  record.delivered_at = sim_.now();
  record.message = message;
  record.delivered = false;
  record.chaos = note;
  push_trace(std::move(record));
}

void AgentPlatform::deliver(AclMessage message, grid::SimTime sent_at) {
  apply_agent_faults(message.receiver);

  const AgentHealth receiver_health = agent_health(message.receiver);
  if (receiver_health == AgentHealth::Hung) {
    // Black hole: no bounce, no handler, only timeouts can see this.
    chaos_swallowed_.fetch_add(1, std::memory_order_relaxed);
    trace_chaos_loss(message, sent_at, "swallowed: receiver hung");
    return;
  }

  Agent* receiver =
      receiver_health == AgentHealth::Crashed ? nullptr : find_agent(message.receiver);
  if (tracing_) {
    TraceRecord record;
    record.sent_at = sent_at;
    record.delivered_at = sim_.now();
    record.message = message;
    record.delivered = receiver != nullptr;
    if (receiver_health == AgentHealth::Crashed) record.chaos = "receiver crashed";
    push_trace(std::move(record));
  }
  if (receiver == nullptr) {
    // Bounce: notify the sender (if it still exists) of the failed delivery.
    Agent* sender = find_agent(message.sender);
    if (sender != nullptr && message.performative != Performative::Failure) {
      AclMessage bounce = message.make_reply(Performative::Failure);
      bounce.sender = message.receiver;  // nominal originator
      bounce.protocol = "platform-error";
      bounce.params["error"] = "agent '" + message.receiver + "' not found";
      bounce.params["original-protocol"] = message.protocol;
      if (receiver_health == AgentHealth::Crashed)
        bounce.params["error"] = "agent '" + message.receiver + "' crashed";
      sim_.schedule(0.0, [this, bounce = std::move(bounce), when = sim_.now()]() mutable {
        deliver(std::move(bounce), when);
      });
    }
    return;
  }
  messages_delivered_.fetch_add(1, std::memory_order_relaxed);
  try {
    receiver->handle_message(message);
  } catch (const std::exception& error) {
    note_handler_failure(message, error.what());
  } catch (...) {
    note_handler_failure(message, "unknown exception");
  }
}

void AgentPlatform::note_handler_failure(const AclMessage& message, const std::string& what) {
  handler_failures_[message.receiver] += 1;
  handler_failures_total_.fetch_add(1, std::memory_order_relaxed);
  if (tracing_ && !trace_.empty()) {
    // Our record is still at the back: pushes happen only in deliver() and
    // the ring drops from the front.
    trace_.back().handler_error = what;
  }
  // Failure/NotUnderstood never provoke a reply, or two broken agents would
  // bounce errors at each other forever.
  if (message.performative == Performative::Failure ||
      message.performative == Performative::NotUnderstood) {
    return;
  }
  if (find_agent(message.sender) == nullptr) return;
  AclMessage failure = message.make_reply(Performative::Failure);
  failure.params["reason"] = "handler error in '" + message.receiver + "': " + what;
  failure.params["error"] = failure.params["reason"];
  sim_.schedule(0.0, [this, failure = std::move(failure), when = sim_.now()]() mutable {
    deliver(std::move(failure), when);
  });
}

std::size_t AgentPlatform::handler_failures(std::string_view name) const {
  auto it = handler_failures_.find(std::string(name));
  return it != handler_failures_.end() ? it->second : 0;
}

std::string AgentPlatform::trace_to_string() const {
  std::string out;
  for (const auto& record : trace_) {
    out += "t=" + util::format_number(record.delivered_at, 4) + "  " +
           record.message.to_display_string();
    if (!record.delivered) out += "  (UNDELIVERABLE)";
    if (!record.handler_error.empty()) out += "  (HANDLER ERROR: " + record.handler_error + ")";
    if (!record.chaos.empty()) out += "  (CHAOS: " + record.chaos + ")";
    out += '\n';
  }
  return out;
}

}  // namespace ig::agent
