// Process descriptions: the activity/transition graph of Section 2.
//
// A process description is "a formal description of the complex problem the
// user wishes to solve" — a directed graph whose nodes are activities
// (end-user activities plus the six flow-control activities Begin, End,
// Choice, Fork, Join, Merge) and whose edges are transitions. The
// coordination service enacts it as an abstract ATN machine; the planning
// service generates it.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "wfl/condition.hpp"
#include "wfl/data.hpp"

namespace ig::wfl {

class ProcessError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The paper's activity taxonomy: one computational kind + six flow controls.
enum class ActivityKind { Begin, End, EndUser, Fork, Join, Choice, Merge };

std::string_view to_string(ActivityKind kind) noexcept;
bool is_flow_control(ActivityKind kind) noexcept;

/// One node of a process description (the Activity frame of Figure 12).
struct Activity {
  std::string id;          ///< unique within the process description (e.g. "A2")
  std::string name;        ///< display name (e.g. "POD", "P3DR1", "FORK")
  ActivityKind kind = ActivityKind::EndUser;
  std::string service_name;              ///< end-user activities: the service type invoked
  std::vector<std::string> input_data;   ///< names of data consumed
  std::vector<std::string> output_data;  ///< names of data produced
  std::string constraint;                ///< named constraint (e.g. "Cons1") or empty
};

/// One edge (the Transition frame of Figure 12). Transitions leaving a
/// Choice activity carry a guard; all other guards are trivially true.
struct Transition {
  std::string id;  ///< unique within the process description (e.g. "TR7")
  std::string source;
  std::string destination;
  Condition guard;  ///< default-constructed == always true
};

/// A process description: named activity/transition graph with lookups.
class ProcessDescription {
 public:
  explicit ProcessDescription(std::string name = "process") : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // -- construction ----------------------------------------------------------
  /// Adds an activity; throws ProcessError on duplicate id. If `id` is
  /// empty an id of the form "A<n>" is generated.
  Activity& add_activity(Activity activity);
  /// Convenience: adds an end-user activity invoking `service_name`.
  Activity& add_end_user(std::string id, std::string name, std::string service_name);
  /// Convenience: adds a flow-control activity named after its kind.
  Activity& add_flow_control(std::string id, ActivityKind kind);

  /// Adds a transition; endpoints must exist. Generated id "TR<n>" if empty.
  Transition& add_transition(std::string source, std::string destination,
                             Condition guard = Condition(), std::string id = {});

  // -- lookups ----------------------------------------------------------------
  const Activity* find_activity(std::string_view id) const noexcept;
  Activity* find_activity_mutable(std::string_view id) noexcept;
  /// Finds by display name (names are unique in the paper's examples).
  const Activity* find_activity_by_name(std::string_view name) const noexcept;
  const Transition* find_transition(std::string_view id) const noexcept;

  const std::vector<Activity>& activities() const noexcept { return activities_; }
  const std::vector<Transition>& transitions() const noexcept { return transitions_; }

  /// Requires exactly one Begin / End activity (throws otherwise).
  const Activity& begin_activity() const;
  const Activity& end_activity() const;

  /// Direct predecessor / successor activity ids (graph adjacency).
  std::vector<std::string> predecessors(std::string_view activity_id) const;
  std::vector<std::string> successors(std::string_view activity_id) const;
  /// Transitions leaving / entering an activity.
  std::vector<const Transition*> outgoing(std::string_view activity_id) const;
  std::vector<const Transition*> incoming(std::string_view activity_id) const;

  std::size_t activity_count() const noexcept { return activities_.size(); }
  std::size_t transition_count() const noexcept { return transitions_.size(); }
  std::size_t end_user_activity_count() const noexcept;
  std::size_t flow_control_activity_count() const noexcept;

  /// Multi-line listing in the style of Figure 10 (activities, then
  /// transitions with their endpoints).
  std::string to_display_string() const;

 private:
  std::string name_;
  std::vector<Activity> activities_;
  std::vector<Transition> transitions_;
  int next_activity_number_ = 1;
  int next_transition_number_ = 1;
};

}  // namespace ig::wfl
