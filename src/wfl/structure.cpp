#include "wfl/structure.hpp"

#include <map>
#include <set>

namespace ig::wfl {

// ---------------------------------------------------------------------------
// Lowering (FlowExpr -> graph)
// ---------------------------------------------------------------------------

namespace {

class Lowerer {
 public:
  Lowerer(ProcessDescription& process, const LowerOptions& options)
      : process_(process), options_(options) {}

  /// Lowers `expr`, attaching its entry transition from `entry_id` with
  /// `entry_guard`. Returns the exit activity id and the guard the *next*
  /// transition out of it must carry (non-trivial only after a loop exit).
  struct Exit {
    std::string id;
    Condition guard;
  };

  Exit lower(const FlowExpr& expr, const std::string& entry_id, Condition entry_guard) {
    switch (expr.kind) {
      case FlowExpr::Kind::Activity: return lower_activity(expr, entry_id, std::move(entry_guard));
      case FlowExpr::Kind::Sequence: return lower_sequence(expr, entry_id, std::move(entry_guard));
      case FlowExpr::Kind::Concurrent:
        return lower_concurrent(expr, entry_id, std::move(entry_guard));
      case FlowExpr::Kind::Selective:
        return lower_selective(expr, entry_id, std::move(entry_guard));
      case FlowExpr::Kind::Iterative:
        return lower_iterative(expr, entry_id, std::move(entry_guard));
    }
    throw ProcessError("lower: unknown flow expression kind");
  }

  std::string fresh_activity_id() {
    return options_.activity_id_prefix + std::to_string(next_activity_++);
  }

  std::string fresh_transition_id() {
    return options_.transition_id_prefix + std::to_string(next_transition_++);
  }

  void connect(const std::string& from, const std::string& to, Condition guard) {
    process_.add_transition(from, to, std::move(guard), fresh_transition_id());
  }

 private:
  Exit lower_activity(const FlowExpr& expr, const std::string& entry_id, Condition entry_guard) {
    Activity activity;
    activity.id = fresh_activity_id();
    activity.name = expr.name;
    activity.kind = ActivityKind::EndUser;
    activity.service_name = expr.service;
    const std::string id = process_.add_activity(std::move(activity)).id;
    connect(entry_id, id, std::move(entry_guard));
    return {id, Condition()};
  }

  Exit lower_sequence(const FlowExpr& expr, const std::string& entry_id, Condition entry_guard) {
    Exit current{entry_id, std::move(entry_guard)};
    for (const auto& element : expr.children)
      current = lower(element, current.id, std::move(current.guard));
    return current;
  }

  Exit lower_concurrent(const FlowExpr& expr, const std::string& entry_id, Condition entry_guard) {
    const std::string fork_id =
        process_.add_flow_control(fresh_activity_id(), ActivityKind::Fork).id;
    connect(entry_id, fork_id, std::move(entry_guard));
    std::vector<Exit> branch_exits;
    branch_exits.reserve(expr.children.size());
    for (const auto& branch : expr.children)
      branch_exits.push_back(lower(branch, fork_id, Condition()));
    const std::string join_id =
        process_.add_flow_control(fresh_activity_id(), ActivityKind::Join).id;
    for (auto& exit : branch_exits) connect(exit.id, join_id, std::move(exit.guard));
    return {join_id, Condition()};
  }

  Exit lower_selective(const FlowExpr& expr, const std::string& entry_id, Condition entry_guard) {
    const std::string choice_id =
        process_.add_flow_control(fresh_activity_id(), ActivityKind::Choice).id;
    connect(entry_id, choice_id, std::move(entry_guard));
    const std::string merge_id =
        process_.add_flow_control(fresh_activity_id(), ActivityKind::Merge).id;
    for (std::size_t i = 0; i < expr.children.size(); ++i) {
      const FlowExpr& branch = expr.children[i];
      if (branch.kind == FlowExpr::Kind::Sequence && branch.children.empty()) {
        // Empty conditional activity set: the guard leads straight to Merge.
        connect(choice_id, merge_id, expr.guards[i]);
        continue;
      }
      Exit exit = lower(branch, choice_id, expr.guards[i]);
      connect(exit.id, merge_id, std::move(exit.guard));
    }
    return {merge_id, Condition()};
  }

  Exit lower_iterative(const FlowExpr& expr, const std::string& entry_id, Condition entry_guard) {
    // Loop header: a Merge joining the entry edge and the back edge, exactly
    // as in Figures 7 and 10 (MERGE before the loop body, CHOICE after it).
    const std::string merge_id =
        process_.add_flow_control(fresh_activity_id(), ActivityKind::Merge).id;
    connect(entry_id, merge_id, std::move(entry_guard));
    Exit body_exit = lower(expr.children.front(), merge_id, Condition());
    const std::string choice_id =
        process_.add_flow_control(fresh_activity_id(), ActivityKind::Choice).id;
    connect(body_exit.id, choice_id, std::move(body_exit.guard));
    const Condition& continue_condition = expr.guards.front();
    connect(choice_id, merge_id, continue_condition);
    return {choice_id, Condition::negation(continue_condition)};
  }

  ProcessDescription& process_;
  const LowerOptions& options_;
  int next_activity_ = 1;
  int next_transition_ = 1;
};

}  // namespace

ProcessDescription lower_to_process(const FlowExpr& expr, std::string name,
                                    const LowerOptions& options) {
  ProcessDescription process(std::move(name));
  Lowerer lowerer(process, options);
  Activity begin;
  begin.id = lowerer.fresh_activity_id();
  begin.name = "BEGIN";
  begin.kind = ActivityKind::Begin;
  const std::string begin_id = process.add_activity(std::move(begin)).id;

  Lowerer::Exit exit = lowerer.lower(expr, begin_id, Condition());

  Activity end;
  end.id = lowerer.fresh_activity_id();
  end.name = "END";
  end.kind = ActivityKind::End;
  const std::string end_id = process.add_activity(std::move(end)).id;
  lowerer.connect(exit.id, end_id, std::move(exit.guard));
  return process;
}

// ---------------------------------------------------------------------------
// Lifting (graph -> FlowExpr)
// ---------------------------------------------------------------------------

namespace {

/// Computes the targets of retreating (back) edges via an iterative DFS from
/// the Begin activity. In well-structured graphs back edges are exactly the
/// Choice -> Merge loop edges, so a Merge is a loop header iff it is a back
/// edge target, and a Choice is a loop exit iff it is a back edge source.
struct BackEdges {
  std::set<std::string> targets;  ///< loop-header Merges
  std::set<std::string> sources;  ///< loop-exit Choices
};

BackEdges find_back_edges(const ProcessDescription& process) {
  BackEdges result;
  enum class Color { White, Gray, Black };
  std::map<std::string, Color> color;
  for (const auto& activity : process.activities()) color[activity.id] = Color::White;

  struct Frame {
    std::string id;
    std::vector<std::string> successors;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  const std::string start = process.begin_activity().id;
  stack.push_back({start, process.successors(start)});
  color[start] = Color::Gray;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next >= frame.successors.size()) {
      color[frame.id] = Color::Black;
      stack.pop_back();
      continue;
    }
    const std::string next = frame.successors[frame.next++];
    auto it = color.find(next);
    if (it == color.end()) throw ProcessError("lift: transition to unknown activity '" + next + "'");
    if (it->second == Color::Gray) {
      result.targets.insert(next);
      result.sources.insert(frame.id);
      continue;
    }
    if (it->second == Color::White) {
      it->second = Color::Gray;
      stack.push_back({next, process.successors(next)});
    }
  }
  return result;
}

class Lifter {
 public:
  explicit Lifter(const ProcessDescription& process)
      : process_(process), back_edges_(find_back_edges(process)) {}

  FlowExpr lift() {
    const Activity& begin = process_.begin_activity();
    const Activity& end = process_.end_activity();
    auto [expr, stopped_at] = walk(single_successor(begin.id));
    if (stopped_at != end.id)
      throw ProcessError("lift: control flow stopped at '" + stopped_at +
                         "' instead of the End activity");
    return expr;
  }

 private:
  const Activity& activity(const std::string& id) const {
    const Activity* found = process_.find_activity(id);
    if (found == nullptr) throw ProcessError("lift: unknown activity '" + id + "'");
    return *found;
  }

  std::string single_successor(const std::string& id) const {
    const auto successors = process_.successors(id);
    if (successors.size() != 1)
      throw ProcessError("lift: activity '" + id + "' must have exactly one successor, has " +
                         std::to_string(successors.size()));
    return successors.front();
  }

  struct WalkResult {
    FlowExpr expr;
    std::string stopped_at;  ///< End, a closing Join/Merge, or a loop-exit Choice
  };

  /// Walks forward from `id`, consuming end-user activities and whole
  /// structured regions, until it reaches a node owned by the enclosing
  /// region: the End activity, a Join (closes a fork branch), a non-header
  /// Merge (closes a choice branch), or a loop-exit Choice (closes a loop
  /// body). The stopping node is returned unconsumed.
  WalkResult walk(std::string id) {
    std::vector<FlowExpr> elements;
    for (;;) {
      const Activity& node = activity(id);
      switch (node.kind) {
        case ActivityKind::EndUser:
          elements.push_back(FlowExpr::activity(node.name, node.service_name));
          id = single_successor(id);
          continue;
        case ActivityKind::Fork: {
          elements.push_back(lift_concurrent(node, id));
          id = single_successor(region_closer_);
          continue;
        }
        case ActivityKind::Merge:
          if (back_edges_.targets.count(id) > 0) {
            elements.push_back(lift_iterative(id));
            id = loop_fallthrough_;
            continue;
          }
          return {FlowExpr::sequence(std::move(elements)), id};
        case ActivityKind::Choice:
          if (back_edges_.sources.count(id) > 0)
            return {FlowExpr::sequence(std::move(elements)), id};
          elements.push_back(lift_selective(node, id));
          id = single_successor(region_closer_);
          continue;
        case ActivityKind::Join:
        case ActivityKind::End:
          return {FlowExpr::sequence(std::move(elements)), id};
        case ActivityKind::Begin:
          throw ProcessError("lift: Begin activity inside the workflow body");
      }
    }
  }

  FlowExpr lift_concurrent(const Activity& fork, const std::string& fork_id) {
    std::vector<FlowExpr> branches;
    std::string join_id;
    for (const auto* transition : process_.outgoing(fork_id)) {
      auto [branch, stopped_at] = walk(transition->destination);
      if (activity(stopped_at).kind != ActivityKind::Join)
        throw ProcessError("lift: fork branch from '" + fork.name + "' does not end at a Join");
      if (join_id.empty()) join_id = stopped_at;
      else if (join_id != stopped_at)
        throw ProcessError("lift: fork branches reconverge on different Joins");
      branches.push_back(std::move(branch));
    }
    if (branches.empty()) throw ProcessError("lift: Fork with no branches");
    region_closer_ = join_id;
    return FlowExpr::concurrent(std::move(branches));
  }

  FlowExpr lift_selective(const Activity& choice, const std::string& choice_id) {
    std::vector<Condition> guards;
    std::vector<FlowExpr> branches;
    std::string merge_id;
    for (const auto* transition : process_.outgoing(choice_id)) {
      guards.push_back(transition->guard);
      auto [branch, stopped_at] = walk(transition->destination);
      if (activity(stopped_at).kind != ActivityKind::Merge)
        throw ProcessError("lift: choice branch from '" + choice.name +
                           "' does not end at a Merge");
      if (merge_id.empty()) merge_id = stopped_at;
      else if (merge_id != stopped_at)
        throw ProcessError("lift: selective branches reconverge on different Merges");
      branches.push_back(std::move(branch));
    }
    if (branches.empty()) throw ProcessError("lift: Choice with no branches");
    region_closer_ = merge_id;
    return FlowExpr::selective(std::move(guards), std::move(branches));
  }

  FlowExpr lift_iterative(const std::string& merge_id) {
    auto [body, stopped_at] = walk(single_successor(merge_id));
    const Activity& closer = activity(stopped_at);
    if (closer.kind != ActivityKind::Choice)
      throw ProcessError("lift: loop body starting at Merge '" + merge_id +
                         "' does not end at a Choice");
    Condition continue_condition;
    std::string fallthrough;
    bool found_back_edge = false;
    for (const auto* transition : process_.outgoing(stopped_at)) {
      if (transition->destination == merge_id) {
        continue_condition = transition->guard;
        found_back_edge = true;
      } else {
        fallthrough = transition->destination;
      }
    }
    if (!found_back_edge)
      throw ProcessError("lift: loop-exit Choice does not return to Merge '" + merge_id + "'");
    if (fallthrough.empty())
      throw ProcessError("lift: loop-exit Choice has no fall-through transition");
    loop_fallthrough_ = fallthrough;
    return FlowExpr::iterative(std::move(continue_condition), std::move(body));
  }

  const ProcessDescription& process_;
  BackEdges back_edges_;
  std::string region_closer_;
  std::string loop_fallthrough_;
};

}  // namespace

FlowExpr lift_from_process(const ProcessDescription& process) { return Lifter(process).lift(); }

}  // namespace ig::wfl
