#include "planner/workload.hpp"

#include <algorithm>

namespace ig::planner {

namespace {

std::string layer_classification(int layer) { return "Artefact-L" + std::to_string(layer); }

std::string distractor_classification(int chain, int stage) {
  return "Noise-" + std::to_string(chain) + "-" + std::to_string(stage);
}

/// Builds one service consuming `fan_in` distinct items of classification
/// `input_class` and producing one item of `output_class`.
wfl::ServiceType make_stage_service(const std::string& name, const std::string& input_class,
                                    int fan_in, const std::string& output_class) {
  wfl::ServiceType service(name);
  std::vector<std::string> formals;
  wfl::Condition precondition = wfl::Condition::always_true();
  for (int i = 0; i < fan_in; ++i) {
    const std::string formal(1, static_cast<char>('A' + i));
    formals.push_back(formal);
    precondition = wfl::Condition::conjunction(
        precondition, wfl::Condition::comparison(formal, "Classification",
                                                 wfl::CompareOp::Equal,
                                                 meta::Value(input_class)));
  }
  service.set_inputs(std::move(formals));
  service.set_input_condition(std::move(precondition));
  service.set_outputs({"Z"});
  service.set_output_condition(wfl::Condition::comparison(
      "Z", "Classification", wfl::CompareOp::Equal, meta::Value(output_class)));
  return service;
}

}  // namespace

PlanningProblem make_layered_problem(const WorkloadParams& params) {
  PlanningProblem problem;
  problem.name = "layered-d" + std::to_string(params.depth) + "-s" +
                 std::to_string(params.services_per_layer) + "-f" +
                 std::to_string(params.fan_in);
  util::Rng rng(params.seed);

  // Initial data: enough layer-0 artefacts for the widest fan-in, plus seeds
  // for every distractor chain.
  const int layer0_items = std::max(params.fan_in, 1) * 2;
  for (int i = 0; i < layer0_items; ++i) {
    problem.initial_state.put(wfl::DataSpec("seed-" + std::to_string(i))
                                  .with_classification(layer_classification(0)));
  }

  // Goal chain services. Layer 1 consumes layer 0 with the configured
  // fan-in; deeper layers consume one artefact each (fan-in applies to the
  // first layer so minimal plans stay predictable).
  for (int layer = 1; layer <= params.depth; ++layer) {
    const int fan_in = layer == 1 ? std::max(params.fan_in, 1) : 1;
    for (int provider = 0; provider < std::max(params.services_per_layer, 1); ++provider) {
      const std::string name =
          "Stage" + std::to_string(layer) + (provider > 0 ? ("v" + std::to_string(provider))
                                                          : std::string());
      problem.catalogue.add(make_stage_service(name, layer_classification(layer - 1), fan_in,
                                               layer_classification(layer)));
    }
  }

  // Distractor chains: executable but never contributing to the goal.
  for (int chain = 0; chain < params.distractor_chains; ++chain) {
    problem.initial_state.put(
        wfl::DataSpec("noise-seed-" + std::to_string(chain))
            .with_classification(distractor_classification(chain, 0)));
    for (int stage = 1; stage <= params.distractor_depth; ++stage) {
      problem.catalogue.add(make_stage_service(
          "Distract" + std::to_string(chain) + "s" + std::to_string(stage),
          distractor_classification(chain, stage - 1), 1,
          distractor_classification(chain, stage)));
    }
  }

  wfl::GoalSpec goal;
  goal.description = "final-layer artefact produced";
  goal.condition = wfl::Condition::comparison(
      "G", "Classification", wfl::CompareOp::Equal,
      meta::Value(layer_classification(params.depth)));
  problem.goals.push_back(std::move(goal));
  return problem;
}

std::size_t minimal_activity_count(const WorkloadParams& params) {
  // One provider invocation per layer; layer 1's fan-in is satisfied by the
  // initial data, so depth invocations suffice.
  return static_cast<std::size_t>(std::max(params.depth, 0));
}

}  // namespace ig::planner
