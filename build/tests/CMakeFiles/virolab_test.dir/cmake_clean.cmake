file(REMOVE_RECURSE
  "CMakeFiles/virolab_test.dir/virolab_test.cpp.o"
  "CMakeFiles/virolab_test.dir/virolab_test.cpp.o.d"
  "virolab_test"
  "virolab_test.pdb"
  "virolab_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virolab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
