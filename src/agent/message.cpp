#include "agent/message.hpp"

#include "util/strings.hpp"

namespace ig::agent {

std::string_view to_string(Performative performative) noexcept {
  switch (performative) {
    case Performative::Request: return "REQUEST";
    case Performative::Inform: return "INFORM";
    case Performative::Agree: return "AGREE";
    case Performative::Refuse: return "REFUSE";
    case Performative::Failure: return "FAILURE";
    case Performative::QueryRef: return "QUERY-REF";
    case Performative::QueryIf: return "QUERY-IF";
    case Performative::Propose: return "PROPOSE";
    case Performative::AcceptProposal: return "ACCEPT-PROPOSAL";
    case Performative::RejectProposal: return "REJECT-PROPOSAL";
    case Performative::Subscribe: return "SUBSCRIBE";
    case Performative::Cancel: return "CANCEL";
    case Performative::NotUnderstood: return "NOT-UNDERSTOOD";
  }
  return "?";
}

std::optional<Performative> performative_from_string(std::string_view text) noexcept {
  static constexpr Performative kAll[] = {
      Performative::Request,        Performative::Inform,         Performative::Agree,
      Performative::Refuse,         Performative::Failure,        Performative::QueryRef,
      Performative::QueryIf,        Performative::Propose,        Performative::AcceptProposal,
      Performative::RejectProposal, Performative::Subscribe,      Performative::Cancel,
      Performative::NotUnderstood,
  };
  for (const Performative performative : kAll) {
    if (to_string(performative) == text) return performative;
  }
  return std::nullopt;
}

std::string AclMessage::param(std::string_view key, std::string_view fallback) const {
  auto it = params.find(std::string(key));
  return it != params.end() ? it->second : std::string(fallback);
}

bool AclMessage::has_param(std::string_view key) const {
  return params.find(std::string(key)) != params.end();
}

std::optional<double> AclMessage::param_double(std::string_view key) const {
  auto it = params.find(std::string(key));
  if (it == params.end()) return std::nullopt;
  return util::parse_double(it->second);
}

std::optional<int> AclMessage::param_int(std::string_view key) const {
  auto it = params.find(std::string(key));
  if (it == params.end()) return std::nullopt;
  return util::parse_int(it->second);
}

std::optional<std::uint64_t> AclMessage::param_uint(std::string_view key) const {
  auto it = params.find(std::string(key));
  if (it == params.end()) return std::nullopt;
  return util::parse_uint(it->second);
}

std::optional<bool> AclMessage::param_bool(std::string_view key) const {
  auto it = params.find(std::string(key));
  if (it == params.end()) return std::nullopt;
  return util::parse_bool(it->second);
}

double AclMessage::param_double(std::string_view key, double fallback) const {
  return param_double(key).value_or(fallback);
}

int AclMessage::param_int(std::string_view key, int fallback) const {
  return param_int(key).value_or(fallback);
}

std::uint64_t AclMessage::param_uint(std::string_view key, std::uint64_t fallback) const {
  return param_uint(key).value_or(fallback);
}

bool AclMessage::param_bool(std::string_view key, bool fallback) const {
  return param_bool(key).value_or(fallback);
}

std::string AclMessage::describe_bad_param(std::string_view key,
                                           std::string_view expected_type) const {
  auto it = params.find(std::string(key));
  if (it == params.end()) {
    return "missing param '" + std::string(key) + "'";
  }
  return "param '" + std::string(key) + "': invalid " + std::string(expected_type) + " '" +
         it->second + "'";
}

AclMessage AclMessage::make_reply(Performative reply_performative) const {
  AclMessage reply;
  reply.performative = reply_performative;
  reply.sender = receiver;
  reply.receiver = sender;
  reply.conversation_id = conversation_id;
  reply.protocol = protocol;
  reply.ontology = ontology;
  return reply;
}

std::string AclMessage::to_display_string() const {
  std::string out(to_string(performative));
  out += ' ';
  out += sender;
  out += " -> ";
  out += receiver;
  if (!protocol.empty()) {
    out += " [";
    out += protocol;
    out += ']';
  }
  return out;
}

}  // namespace ig::agent
