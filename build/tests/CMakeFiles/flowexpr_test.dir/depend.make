# Empty dependencies file for flowexpr_test.
# This may be replaced when dependencies are built.
