#include "grid/network.hpp"

namespace ig::grid {

double TransformSpec::effective_size(double size_mb) const noexcept {
  double size = size_mb;
  if (compress) size *= compress_ratio;
  if (encrypt) size *= encrypt_overhead;
  return size;
}

double TransformSpec::processing_time(double size_mb) const noexcept {
  if (!any() || cpu_mb_s <= 0) return 0.0;
  int passes = 0;
  if (compress) passes += 2;   // compress at the source, decompress at the sink
  if (encrypt) passes += 2;    // encrypt + decrypt
  if (byte_swap) passes += 1;  // swap once on arrival
  return static_cast<double>(passes) * size_mb / cpu_mb_s;
}

std::pair<std::string, std::string> NetworkModel::key(std::string_view a, std::string_view b) {
  std::string first(a);
  std::string second(b);
  if (first > second) std::swap(first, second);
  return {std::move(first), std::move(second)};
}

void NetworkModel::set_link(std::string_view a, std::string_view b, LinkSpec link) {
  links_[key(a, b)] = link;
}

const LinkSpec& NetworkModel::link(std::string_view a, std::string_view b) const {
  if (a == b) return local_link_;
  auto it = links_.find(key(a, b));
  return it != links_.end() ? it->second : default_link_;
}

SimTime NetworkModel::transfer_time(std::string_view a, std::string_view b, double size_mb,
                                    double transform_factor) const {
  const LinkSpec& spec = link(a, b);
  const double inflated = size_mb * (transform_factor > 0 ? transform_factor : 1.0);
  const double on_wire = spec.transform.effective_size(inflated);
  const double transfer = spec.bandwidth_mb_s > 0 ? on_wire / spec.bandwidth_mb_s : 0.0;
  return spec.latency_s + transfer + spec.transform.processing_time(inflated);
}

SimTime NetworkModel::message_latency(std::string_view a, std::string_view b) const {
  return link(a, b).latency_s;
}

}  // namespace ig::grid
