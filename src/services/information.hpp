// Information service: the registry of service offerings.
//
// "Information services play an important role; all end-user services and
// other core services register their offerings with the information
// services." Core services may be replicated and "organized hierarchically,
// in a manner similar to the DNS": an information service constructed with a
// parent forwards local query misses up the hierarchy and relays the
// answer, so a domain-local registry transparently resolves global types.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "agent/agent.hpp"

namespace ig::svc {

class InformationService : public agent::Agent {
 public:
  /// `parent` (optional) names the next information service up the
  /// hierarchy; queries that miss locally are delegated to it.
  explicit InformationService(std::string name = "is", std::string parent = {})
      : Agent(std::move(name)), parent_(std::move(parent)) {}

  void handle_message(const agent::AclMessage& message) override;

  /// Direct (non-message) lookup for tests and harnesses (local only).
  std::vector<std::string> providers_of(const std::string& type) const;
  std::size_t registration_count() const noexcept;
  const std::string& parent() const noexcept { return parent_; }
  std::size_t delegated_queries() const noexcept { return delegated_; }

 private:
  void handle_register(const agent::AclMessage& message);
  void handle_deregister(const agent::AclMessage& message);
  void handle_query(const agent::AclMessage& message);
  void handle_parent_reply(const agent::AclMessage& message);

  /// type -> registered agent names (insertion order preserved).
  std::map<std::string, std::vector<std::string>> registry_;
  std::string parent_;
  std::uint64_t next_forward_ = 1;
  std::size_t delegated_ = 0;
  /// forward conversation id -> the original query awaiting the answer.
  std::map<std::string, agent::AclMessage> pending_;
};

}  // namespace ig::svc
