file(REMOVE_RECURSE
  "CMakeFiles/workflow_language_tour.dir/workflow_language_tour.cpp.o"
  "CMakeFiles/workflow_language_tour.dir/workflow_language_tour.cpp.o.d"
  "workflow_language_tour"
  "workflow_language_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_language_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
