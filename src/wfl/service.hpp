// End-user service types: the operators of the planning problem.
//
// "Every end-user activity corresponds to an end-user computing service that
// is available in the grid computing system. ... The preconditions of an
// activity specify the set of necessary data and their specifications for
// executing the activity. The postconditions ... specify the set of
// conditions on the data that must hold after the execution."
//
// A ServiceType mirrors the Service frame of Figure 13: formal input
// parameters (A, B, C, ...) constrained by an input condition, and formal
// outputs constrained by an output condition. Binding concrete data items to
// the formals yields an executable activity; the output condition's equality
// requirements are constructive — they tell the simulator which properties
// the produced data carries.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "wfl/condition.hpp"
#include "wfl/data.hpp"

namespace ig::wfl {

/// Description of one end-user computing service (Figure 13's service table).
class ServiceType {
 public:
  ServiceType() = default;
  explicit ServiceType(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::string& description() const noexcept { return description_; }
  void set_description(std::string text) { description_ = std::move(text); }

  /// Formal input parameter names, in order (e.g. {"A", "B"}).
  const std::vector<std::string>& inputs() const noexcept { return inputs_; }
  void set_inputs(std::vector<std::string> formals) {
    inputs_ = std::move(formals);
    rebuild_binder();
  }

  /// Precondition over the input formals (e.g. C1).
  const Condition& input_condition() const noexcept { return input_condition_; }
  void set_input_condition(Condition condition) {
    input_condition_ = std::move(condition);
    rebuild_binder();
  }

  /// Formal output parameter names, in order (e.g. {"C"}).
  const std::vector<std::string>& outputs() const noexcept { return outputs_; }
  void set_outputs(std::vector<std::string> formals) {
    outputs_ = std::move(formals);
    rebuild_outputs();
  }

  /// Postcondition over the output formals (e.g. C2).
  const Condition& output_condition() const noexcept { return output_condition_; }
  void set_output_condition(Condition condition) {
    output_condition_ = std::move(condition);
    rebuild_outputs();
  }

  /// Abstract cost charged by the provider (the Service frame's Cost slot).
  double cost() const noexcept { return cost_; }
  void set_cost(double cost) { cost_ = cost; }

  /// Computational work in abstract operations; execution time on a node is
  /// work / node speed. Lets the grid simulator model heterogeneity.
  double base_work() const noexcept { return base_work_; }
  void set_base_work(double work) { base_work_ = work; }

  // -- planning / simulation support -----------------------------------------

  /// Searches `state` for distinct data items that can be bound to the input
  /// formals so that the input condition holds. Returns the first such
  /// binding (formals are filled in order, items tried in state order) or
  /// nullopt when the precondition cannot be met.
  std::optional<Bindings> bind_inputs(const DataSet& state) const;

  /// Pointer-based variant for callers that keep their own item stores
  /// (the plan simulator's execution flows). Null items are skipped.
  std::optional<Bindings> bind_inputs(const std::vector<const DataSpec*>& items) const;

  /// True when the precondition can be met in `state`.
  bool executable_in(const DataSet& state) const { return bind_inputs(state).has_value(); }

  /// Constructs the output data implied by the output condition: one item
  /// per output formal, named `name_prefix + formal`, carrying every
  /// property the output condition pins with an equality. Non-equality
  /// postconditions (e.g. a refined resolution Value) must be filled by the
  /// concrete service implementation; the planner only needs the equalities.
  std::vector<DataSpec> produce_outputs(std::string_view name_prefix) const;

 private:
  /// Precomputed decomposition of the input condition: unary conjuncts per
  /// formal (candidate filters) and the residual multi-variable conjuncts.
  /// Keeps binding near-linear instead of exponential in the state size.
  void rebuild_binder();
  /// Precomputes the equality-pinned properties of each output formal so
  /// produce_outputs need not walk the condition tree per invocation.
  void rebuild_outputs();

  bool bind_recursive(const std::vector<std::vector<const DataSpec*>>& candidates,
                      std::size_t order_index, const std::vector<std::size_t>& order,
                      Bindings& bindings) const;

  std::string name_;
  std::string description_;
  std::vector<std::string> inputs_;
  Condition input_condition_;
  std::vector<std::string> outputs_;
  Condition output_condition_;
  double cost_ = 1.0;
  double base_work_ = 1.0;

  std::vector<Condition> unary_filters_;  ///< aligned with inputs_
  Condition residual_condition_;          ///< conjuncts touching >1 formal
  /// Per-output-formal properties implied by the postcondition.
  std::vector<std::vector<std::pair<std::string, meta::Value>>> output_properties_;
};

/// The complete set T of end-user services available to the grid.
class ServiceCatalogue {
 public:
  /// Adds a service; replaces any existing one with the same name.
  void add(ServiceType service);
  const ServiceType* find(std::string_view name) const noexcept;
  bool contains(std::string_view name) const noexcept { return find(name) != nullptr; }

  const std::vector<ServiceType>& services() const noexcept { return services_; }
  std::size_t size() const noexcept { return services_.size(); }
  bool empty() const noexcept { return services_.empty(); }

  std::vector<std::string> names() const;

 private:
  std::vector<ServiceType> services_;
};

}  // namespace ig::wfl
