#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace ig::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t id = 0; id < threads; ++id)
    workers_.emplace_back([this, id] { worker_loop(id); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::size_t ThreadPool::hardware_threads() noexcept {
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1 : static_cast<std::size_t>(reported);
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.emplace_back([task = std::move(task)](std::size_t) { task(); });
  }
  work_available_.notify_one();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (size() == 1) {
    // One worker gains nothing over running inline, and inline keeps the
    // caller's stack in stack traces.
    for (std::size_t index = 0; index < count; ++index) fn(index, 0);
    return;
  }

  struct LoopState {
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> live_tasks{0};
    std::mutex done_mutex;
    std::condition_variable done;
    std::exception_ptr error;
    std::mutex error_mutex;
  };
  auto state = std::make_shared<LoopState>();

  // Chunked cursor: grabbing one index at a time made the atomic the
  // bottleneck when items are cheap (fitness-memo hits resolve in well under
  // a microsecond), to the point that 4 threads ran *slower* than one. A few
  // chunks per worker amortizes the cursor while still balancing uneven
  // per-item cost across workers.
  const std::size_t chunk =
      std::max<std::size_t>(1, count / (size() * 8));

  const std::size_t task_count = std::min(size(), count);
  state->live_tasks.store(task_count, std::memory_order_relaxed);
  auto body = [state, &fn, count, chunk](std::size_t worker) {
    for (;;) {
      const std::size_t begin = state->cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) break;
      const std::size_t end = std::min(begin + chunk, count);
      try {
        for (std::size_t index = begin; index < end; ++index) fn(index, worker);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->error_mutex);
        if (!state->error) state->error = std::current_exception();
      }
    }
    if (state->live_tasks.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(state->done_mutex);
      state->done.notify_all();
    }
  };

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t t = 0; t < task_count; ++t) tasks_.emplace_back(body);
  }
  work_available_.notify_all();

  std::unique_lock<std::mutex> lock(state->done_mutex);
  state->done.wait(lock, [&] { return state->live_tasks.load(std::memory_order_acquire) == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

void ThreadPool::worker_loop(std::size_t worker_id) {
  for (;;) {
    std::function<void(std::size_t)> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [&] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task(worker_id);
  }
}

}  // namespace ig::util
