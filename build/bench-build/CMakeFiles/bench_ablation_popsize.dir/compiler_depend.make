# Empty compiler generated dependencies file for bench_ablation_popsize.
# This may be replaced when dependencies are built.
