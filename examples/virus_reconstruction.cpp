// The paper's Section 4 case study, end to end: a virtual laboratory for
// 3-D virus structure reconstruction.
//
//   $ ./virus_reconstruction [--trace]
//
// 1. boots the full intelligent-grid environment (Figure 1);
// 2. asks the planning service for a plan from the CD-3DSD case description
//    (Figure 2's exchange);
// 3. hands the plan to the coordination service, which enacts it across the
//    simulated grid's application containers — including the Cons1-driven
//    resolution-refinement loop of Figure 10;
// 4. prints the final data state and the execution report.
#include <cstdio>
#include <cstring>
#include <string>

#include "services/environment.hpp"
#include "services/protocol.hpp"
#include "virolab/catalogue.hpp"
#include "wfl/xml_io.hpp"

using namespace ig;
namespace names = svc::names;
namespace protocols = svc::protocols;

namespace {

class LabUser : public agent::Agent {
 public:
  LabUser(std::string name, wfl::CaseDescription cd)
      : Agent(std::move(name)), case_(std::move(cd)) {}

  void on_start() override {
    std::printf("[user] requesting a plan for case '%s' (goal: %s)\n",
                case_.name().c_str(), case_.goals().front().description.c_str());
    agent::AclMessage request;
    request.performative = agent::Performative::Request;
    request.receiver = names::kPlanning;
    request.protocol = protocols::kPlanRequest;
    request.params["seed"] = "2004";
    request.content = wfl::case_to_xml_string(case_);
    send(std::move(request));
  }

  void handle_message(const agent::AclMessage& message) override {
    if (message.protocol == protocols::kPlanRequest) {
      std::printf("[user] plan received: fitness=%s validity=%s goal=%s size=%s\n",
                  message.param("fitness").c_str(), message.param("validity-fitness").c_str(),
                  message.param("goal-fitness").c_str(), message.param("size").c_str());
      agent::AclMessage enact;
      enact.performative = agent::Performative::Request;
      enact.receiver = names::kCoordination;
      enact.protocol = protocols::kEnactCase;
      enact.content = message.content;
      enact.params["case-xml"] = wfl::case_to_xml_string(case_);
      send(std::move(enact));
      return;
    }
    if (message.protocol == protocols::kCaseCompleted) {
      done = true;
      std::printf("\n[user] case %s: success=%s makespan=%s activities=%s failures=%s replans=%s\n",
                  message.param("case").c_str(), message.param("success").c_str(),
                  message.param("makespan").c_str(),
                  message.param("activities-executed").c_str(),
                  message.param("dispatch-failures").c_str(), message.param("replans").c_str());
      const wfl::DataSet final_state = wfl::dataset_from_xml_string(message.content);
      std::printf("[user] final data state (%zu items):\n", final_state.size());
      for (const auto& item : final_state.items())
        std::printf("  %s\n", item.to_display_string().c_str());
    }
  }

  wfl::CaseDescription case_;
  bool done = false;
};

}  // namespace

int main(int argc, char** argv) {
  const bool trace = argc > 1 && std::strcmp(argv[1], "--trace") == 0;

  svc::EnvironmentOptions options;
  options.tracing = trace;
  options.seed = 2004;
  auto environment = svc::make_environment(options);

  std::printf("-- simulated grid --\n%s\n", environment->grid().to_display_string().c_str());

  auto& user = environment->platform().spawn<LabUser>("lab-user",
                                                      virolab::make_case_description());
  environment->run();

  if (trace) {
    std::printf("\n-- message trace --\n%s", environment->platform().trace_to_string().c_str());
  }
  std::printf("\n[kernels] refinement passes: %zu, final resolution: %.2f A\n",
              environment->kernels().refinement_passes(),
              environment->kernels().current_resolution());
  return user.done ? 0 : 1;
}
