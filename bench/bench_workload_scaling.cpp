// Ablation A12 — planner behaviour on synthetic problem families.
//
// Uses the layered workload generator to vary problem depth (the length of
// the causal chain the planner must discover) and distraction (executable
// but goal-irrelevant services). Deep chains are the hard case for
// fitness-guided search: intermediate artefacts earn validity credit but no
// goal credit until the whole chain assembles.
#include <cstdio>
#include <string>

#include "planner/gp.hpp"
#include "planner/workload.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

using namespace ig;

namespace {

struct Cell {
  int solved = 0;
  double mean_fitness = 0.0;
  double seconds = 0.0;
};

Cell run_cell(const planner::WorkloadParams& params, int runs) {
  Cell cell;
  const planner::PlanningProblem problem = planner::make_layered_problem(params);
  util::Stopwatch watch;
  util::SampleSet fitness;
  for (int run = 0; run < runs; ++run) {
    planner::GpConfig config;
    config.population_size = 150;
    config.generations = 20;
    config.seed = 9000 + static_cast<std::uint64_t>(run);
    const planner::GpResult result = planner::run_gp(problem, config);
    fitness.add(result.best_fitness.overall);
    if (result.best_fitness.goal >= 1.0) ++cell.solved;
  }
  cell.mean_fitness = fitness.mean();
  cell.seconds = watch.elapsed_seconds();
  return cell;
}

}  // namespace

int main() {
  constexpr int kRuns = 4;
  std::printf("A12: GP planner vs synthetic problem families (%d runs per cell)\n\n", kRuns);

  std::printf("-- depth sweep (2 providers/layer, no distractors) --\n");
  std::printf("%-8s %-10s %-10s %s\n", "depth", "solved", "fitness", "time(s)");
  int solved_d2 = 0;
  for (const int depth : {1, 2, 3, 4, 5}) {
    planner::WorkloadParams params;
    params.depth = depth;
    params.services_per_layer = 2;
    const Cell cell = run_cell(params, kRuns);
    std::printf("%-8d %d/%-8d %-10.4f %.1f\n", depth, cell.solved, kRuns,
                cell.mean_fitness, cell.seconds);
    if (depth == 2) solved_d2 = cell.solved;
  }

  std::printf("\n-- distraction sweep (depth 2, K distractor chains of depth 3) --\n");
  std::printf("%-8s %-10s %-10s %s\n", "chains", "solved", "fitness", "time(s)");
  for (const int chains : {0, 2, 4, 8}) {
    planner::WorkloadParams params;
    params.depth = 2;
    params.services_per_layer = 2;
    params.distractor_chains = chains;
    params.distractor_depth = 3;
    const Cell cell = run_cell(params, kRuns);
    std::printf("%-8d %d/%-8d %-10.4f %.1f\n", chains, cell.solved, kRuns,
                cell.mean_fitness, cell.seconds);
  }

  std::printf("\nexpected shape: shallow problems solved in every run; solve rate decays\n"
              "with depth (goal credit arrives only when the whole chain assembles) and\n"
              "with distraction (validity credit leaks to goal-irrelevant services).\n");
  const bool ok = solved_d2 == kRuns;
  std::printf("shape holds: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
