file(REMOVE_RECURSE
  "../bench/bench_matchmaking_scaling"
  "../bench/bench_matchmaking_scaling.pdb"
  "CMakeFiles/bench_matchmaking_scaling.dir/bench_matchmaking_scaling.cpp.o"
  "CMakeFiles/bench_matchmaking_scaling.dir/bench_matchmaking_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matchmaking_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
