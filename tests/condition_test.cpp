#include <gtest/gtest.h>

#include "wfl/condition.hpp"

namespace ig::wfl {
namespace {

DataSpec image() {
  DataSpec data("D7");
  data.with_classification("2D Image").with("Size", meta::Value(1536.0));
  return data;
}

DataSpec resolution(double value) {
  DataSpec data("D12");
  data.with_classification("Resolution File").with("Value", meta::Value(value));
  return data;
}

TEST(ConditionParse, SimpleEquality) {
  const Condition condition = Condition::parse("A.Classification = \"2D Image\"");
  const DataSpec item = image();
  Bindings bindings{{"A", &item}};
  EXPECT_TRUE(condition.evaluate(bindings));
}

TEST(ConditionParse, EqualityMismatch) {
  const Condition condition = Condition::parse("A.Classification = \"3D Model\"");
  const DataSpec item = image();
  Bindings bindings{{"A", &item}};
  EXPECT_FALSE(condition.evaluate(bindings));
}

TEST(ConditionParse, NumericComparisons) {
  const DataSpec item = resolution(10.0);
  Bindings bindings{{"R", &item}};
  EXPECT_TRUE(Condition::parse("R.Value > 8").evaluate(bindings));
  EXPECT_FALSE(Condition::parse("R.Value > 12").evaluate(bindings));
  EXPECT_TRUE(Condition::parse("R.Value >= 10").evaluate(bindings));
  EXPECT_TRUE(Condition::parse("R.Value <= 10").evaluate(bindings));
  EXPECT_TRUE(Condition::parse("R.Value < 11").evaluate(bindings));
  EXPECT_TRUE(Condition::parse("R.Value != 9").evaluate(bindings));
  EXPECT_FALSE(Condition::parse("R.Value != 10").evaluate(bindings));
}

TEST(ConditionParse, Conjunction) {
  // C1 from the paper.
  const Condition c1 = Condition::parse(
      "A.Classification = \"POD-Parameter\" and B.Classification = \"2D Image\"");
  DataSpec parameter("D1");
  parameter.with_classification("POD-Parameter");
  const DataSpec images = image();
  Bindings good{{"A", &parameter}, {"B", &images}};
  EXPECT_TRUE(c1.evaluate(good));
  Bindings swapped{{"A", &images}, {"B", &parameter}};
  EXPECT_FALSE(c1.evaluate(swapped));
}

TEST(ConditionParse, DisjunctionAndPrecedence) {
  // and binds tighter than or.
  const DataSpec item = resolution(10.0);
  Bindings bindings{{"R", &item}};
  EXPECT_TRUE(
      Condition::parse("R.Value > 20 or R.Value > 5 and R.Value < 15").evaluate(bindings));
  EXPECT_FALSE(
      Condition::parse("(R.Value > 20 or R.Value > 5) and R.Value < 8").evaluate(bindings));
}

TEST(ConditionParse, Negation) {
  const DataSpec item = resolution(10.0);
  Bindings bindings{{"R", &item}};
  EXPECT_FALSE(Condition::parse("not R.Value > 8").evaluate(bindings));
  EXPECT_TRUE(Condition::parse("not R.Value > 12").evaluate(bindings));
  EXPECT_TRUE(Condition::parse("not not R.Value > 8").evaluate(bindings));
}

TEST(ConditionParse, TrueFalseLiterals) {
  EXPECT_TRUE(Condition::parse("true").evaluate({}));
  EXPECT_FALSE(Condition::parse("false").evaluate({}));
  EXPECT_TRUE(Condition::parse("").is_trivially_true());
}

TEST(ConditionParse, SingleQuotedStrings) {
  const Condition condition = Condition::parse("A.Classification = '2D Image'");
  const DataSpec item = image();
  Bindings bindings{{"A", &item}};
  EXPECT_TRUE(condition.evaluate(bindings));
}

TEST(ConditionParse, BarewordValue) {
  DataSpec data("D");
  data.with("Format", meta::Value("Text"));
  Bindings bindings{{"D", &data}};
  EXPECT_TRUE(Condition::parse("D.Format = Text").evaluate(bindings));
}

TEST(ConditionParse, NotEqualAlternateSpelling) {
  const DataSpec item = resolution(10.0);
  Bindings bindings{{"R", &item}};
  EXPECT_TRUE(Condition::parse("R.Value <> 9").evaluate(bindings));
}

TEST(ConditionParse, Errors) {
  EXPECT_THROW(Condition::parse("A.Classification ="), ConditionParseError);
  EXPECT_THROW(Condition::parse("A.Classification"), ConditionParseError);
  EXPECT_THROW(Condition::parse("A = \"x\""), ConditionParseError);  // missing property
  EXPECT_THROW(Condition::parse("(A.B = 1"), ConditionParseError);
  EXPECT_THROW(Condition::parse("A.B = 1 extra"), ConditionParseError);
  EXPECT_THROW(Condition::parse("A.B = \"unterminated"), ConditionParseError);
}

TEST(ConditionEvaluate, UnboundVariableIsFalse) {
  EXPECT_FALSE(Condition::parse("X.Value > 0").evaluate({}));
}

TEST(ConditionEvaluate, MissingPropertyIsFalse) {
  const DataSpec item = image();  // no Value property
  Bindings bindings{{"A", &item}};
  EXPECT_FALSE(Condition::parse("A.Value > 0").evaluate(bindings));
  // But negation of a missing property holds.
  EXPECT_TRUE(Condition::parse("not A.Value > 0").evaluate(bindings));
}

TEST(ConditionEvaluate, NumericStringComparesNumerically) {
  DataSpec data("D");
  data.with("Value", meta::Value("12"));  // stored as string
  Bindings bindings{{"D", &data}};
  EXPECT_TRUE(Condition::parse("D.Value > 8").evaluate(bindings));
}

TEST(ConditionEvaluate, TypeMismatchOnlyNotEqual) {
  DataSpec data("D");
  data.with("Value", meta::Value(true));
  Bindings bindings{{"D", &data}};
  EXPECT_FALSE(Condition::parse("D.Value = 1").evaluate(bindings));
  EXPECT_TRUE(Condition::parse("D.Value != 1").evaluate(bindings));
}

TEST(ConditionToString, RoundTripsThroughParser) {
  const char* cases[] = {
      "A.Classification = \"2D Image\"",
      "A.X > 3 and B.Y < 4",
      "A.X = 1 or B.Y = 2 and C.Z = 3",
      "not (A.X = 1 or B.Y = 2)",
      "A.Value >= 8.5",
  };
  for (const char* text : cases) {
    const Condition original = Condition::parse(text);
    const Condition reparsed = Condition::parse(original.to_string());
    EXPECT_TRUE(original == reparsed) << text << " -> " << original.to_string();
  }
}

TEST(ConditionVariables, CollectedInOrderWithoutDuplicates) {
  const Condition condition =
      Condition::parse("B.X = 1 and A.Y = 2 or B.Z = 3 and C.W = 4");
  const auto variables = condition.variables();
  ASSERT_EQ(variables.size(), 3u);
  EXPECT_EQ(variables[0], "B");
  EXPECT_EQ(variables[1], "A");
  EXPECT_EQ(variables[2], "C");
}

TEST(ConditionEqualityRequirements, OnlyConjunctiveEqualities) {
  const Condition condition = Condition::parse(
      "C.Classification = \"3D Model\" and C.Format = \"MRC\" and C.Size > 10 "
      "or C.Owner = \"x\"");
  // The or-branch is not a requirement; Size > 10 is not an equality.
  const auto requirements = condition.equality_requirements("C");
  // Top node is Or, so nothing is a hard requirement.
  EXPECT_TRUE(requirements.empty());

  const Condition conjunctive =
      Condition::parse("C.Classification = \"3D Model\" and C.Size > 10");
  const auto reqs = conjunctive.equality_requirements("C");
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].first, "Classification");
  EXPECT_EQ(reqs[0].second.as_string(), "3D Model");
}

TEST(EvaluateAgainstState, NamedBinding) {
  DataSet state;
  state.put(resolution(10.0));
  EXPECT_TRUE(evaluate_against_state(
      Condition::parse("D12.Value > 8"), state));
  EXPECT_FALSE(evaluate_against_state(
      Condition::parse("D12.Value > 12"), state));
}

TEST(EvaluateAgainstState, ExistentialFreeVariable) {
  DataSet state;
  state.put(image());
  state.put(resolution(10.0));
  // R is not a data name; it binds existentially.
  EXPECT_TRUE(evaluate_against_state(
      Condition::parse("R.Classification = \"Resolution File\" and R.Value > 8"), state));
  EXPECT_FALSE(evaluate_against_state(
      Condition::parse("R.Classification = \"Resolution File\" and R.Value > 12"), state));
}

TEST(EvaluateAgainstState, NoWitnessIsFalse) {
  DataSet state;
  state.put(image());
  EXPECT_FALSE(evaluate_against_state(
      Condition::parse("R.Classification = \"Resolution File\""), state));
}

TEST(ConditionParse, ScientificNotationNumbers) {
  DataSpec data("D");
  data.with("Size", meta::Value(1536.0));
  Bindings bindings{{"D", &data}};
  EXPECT_TRUE(Condition::parse("D.Size > 1.5e3").evaluate(bindings));
  EXPECT_FALSE(Condition::parse("D.Size > 1.6e3").evaluate(bindings));
}

TEST(ConditionParse, SignedExponentNumbers) {
  DataSpec data("D");
  data.with("Size", meta::Value(0.001));
  Bindings bindings{{"D", &data}};
  EXPECT_TRUE(Condition::parse("D.Size > 1e-5").evaluate(bindings));
  EXPECT_FALSE(Condition::parse("D.Size > 2.5E+3").evaluate(bindings));
  EXPECT_TRUE(Condition::parse("D.Size > 9.9e-4").evaluate(bindings));
}

TEST(ConditionParse, LeadingDotNumber) {
  DataSpec data("D");
  data.with("Size", meta::Value(0.75));
  Bindings bindings{{"D", &data}};
  EXPECT_TRUE(Condition::parse("D.Size > .5").evaluate(bindings));
  EXPECT_FALSE(Condition::parse("D.Size > .8").evaluate(bindings));
}

TEST(ConditionParse, MalformedNumericLiteralsThrow) {
  EXPECT_THROW(Condition::parse("D.Size > -"), ConditionParseError);
  EXPECT_THROW(Condition::parse("D.Size > 1.2.3"), ConditionParseError);
  EXPECT_THROW(Condition::parse("D.Size > ."), ConditionParseError);
}

TEST(ConditionParse, ExponentWithoutDigitsIsNotConsumed) {
  // "2e" is not an exponent; the scanner must stop after the mantissa and
  // leave the identifier to the rest of the grammar (here: a parse error,
  // because "e" alone is not a valid clause).
  DataSpec data("D");
  data.with("Size", meta::Value(3.0));
  Bindings bindings{{"D", &data}};
  EXPECT_TRUE(Condition::parse("D.Size > 2 and D.Size < 4").evaluate(bindings));
  EXPECT_THROW(Condition::parse("D.Size > 2e"), ConditionParseError);
}

TEST(ConditionParse, WhitespaceInsensitive) {
  const Condition tight = Condition::parse("A.X=1 and B.Y=2");
  const Condition airy = Condition::parse("  A.X  =  1   and   B.Y = 2  ");
  EXPECT_TRUE(tight == airy);
}

TEST(ConditionConjuncts, SplitsTopLevelAndOnly) {
  const Condition condition = Condition::parse("A.X = 1 and (B.Y = 2 or C.Z = 3) and D.W = 4");
  const auto conjuncts = condition.conjuncts();
  ASSERT_EQ(conjuncts.size(), 3u);
  EXPECT_EQ(conjuncts[0].to_string(), "A.X = 1");
  EXPECT_EQ(conjuncts[1].to_string(), "B.Y = 2 or C.Z = 3");
  EXPECT_EQ(conjuncts[2].to_string(), "D.W = 4");
  // A non-conjunction yields itself.
  EXPECT_EQ(Condition::parse("A.X = 1").conjuncts().size(), 1u);
  EXPECT_TRUE(Condition().conjuncts().empty());
}

TEST(ConditionEvaluateSingle, MatchesFullEvaluation) {
  DataSpec item("d");
  item.with_classification("3D Model").with("Value", meta::Value(7.0));
  const Condition condition =
      Condition::parse("X.Classification = \"3D Model\" and X.Value < 8");
  Bindings bindings{{"X", &item}};
  EXPECT_EQ(condition.evaluate(bindings), condition.evaluate_single("X", item));
  // A comparison on a different variable is false either way.
  const Condition other = Condition::parse("Y.Value < 8");
  EXPECT_FALSE(other.evaluate_single("X", item));
}

TEST(ConditionBuilders, ConjunctionSimplifiesTrue) {
  const Condition c = Condition::parse("A.X = 1");
  EXPECT_TRUE(Condition::conjunction(Condition(), c) == c);
  EXPECT_TRUE(Condition::conjunction(c, Condition()) == c);
}

TEST(CompareOpNames, AllRender) {
  EXPECT_EQ(to_string(CompareOp::Less), "<");
  EXPECT_EQ(to_string(CompareOp::GreaterEqual), ">=");
  EXPECT_EQ(to_string(CompareOp::NotEqual), "!=");
}

}  // namespace
}  // namespace ig::wfl
