// Durable storage engine: a crash-recoverable key/value store plus a
// general-purpose event journal, both over one write-ahead log.
//
// Two kinds of state share the WAL:
//   * key/value mutations (put / erase) — the backing store of
//     `svc::PersistentStorageService`, replayed into the in-memory map at
//     open;
//   * journal *events* — opaque payloads tagged with a stream name (the
//     enactment engine journals case lifecycle events on stream "engine"),
//     handed back to the owning subsystem at open in LSN order.
//
// Periodic snapshots bound recovery time and enable compaction: a snapshot
// file captures the whole KV map plus one state blob per registered
// stream (the stream's own serialization of "everything my events up to
// this LSN amount to"); WAL segments entirely at or below the snapshot
// LSN are then deleted. Because the snapshot LSN is read *before* the
// state is collected, an event may be both inside a blob and replayed
// after it — stream consumers must keep their replay idempotent (the
// engine keys everything by case id, so re-applying is harmless).
//
// `data_dir` empty selects the in-memory mode: the same API over just the
// map, no files, no fsyncs — what every deterministic test and bench that
// predates this subsystem gets, byte for byte.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "store/wal.hpp"

namespace ig::store {

struct Options {
  std::string data_dir;                ///< empty = in-memory (no files at all)
  std::size_t segment_size = 1 << 20;  ///< standard WAL segment capacity
  SyncMode sync = SyncMode::kCommit;
  /// Commit-leader linger window forwarded to WalOptions::group_window_us
  /// (0 = sync immediately). The enactment engine enables a small window
  /// when several durable shards share this store.
  std::uint32_t group_window_us = 0;
  /// WAL records between automatic snapshots (checked by maybe_snapshot);
  /// 0 disables automatic snapshotting.
  std::size_t snapshot_interval = 4096;
  bool auto_compact = true;  ///< compact the WAL after every snapshot
  /// All file I/O (WAL segments *and* snapshot files) goes through this
  /// seam (nullptr = the real POSIX ops). Must outlive the engine; tests
  /// point it at a store::FaultFs.
  FileOps* file_ops = nullptr;
};

struct StoreStats {
  bool durable = false;
  std::uint64_t keys = 0;
  std::uint64_t segments = 0;  ///< live WAL segment files
  Lsn last_lsn = 0;
  Lsn snapshot_lsn = 0;  ///< LSN covered by the newest snapshot (0 = none)
  std::uint64_t snapshots_written = 0;
  std::uint64_t segments_compacted = 0;
  std::uint64_t replayed_records = 0;  ///< WAL records re-applied at open
  double recovery_ms = 0.0;            ///< wall time of open (snapshot + replay)
  WalStats wal;
};

class StorageEngine {
 public:
  /// stream name + event payload, in LSN order.
  using EventReplayFn = std::function<void(std::string_view, std::string_view)>;

  /// Opens (or creates) the store. When recovering, KV records are applied
  /// internally and every journal event is forwarded to `event_replay`
  /// before the constructor returns — single-threaded, so the consumer
  /// needs no locking while it rebuilds.
  explicit StorageEngine(Options options = {}, EventReplayFn event_replay = nullptr);
  ~StorageEngine();

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  bool durable() const noexcept { return wal_ != nullptr; }
  const Options& options() const noexcept { return options_; }

  // -- key/value (PersistentStorageService semantics) -------------------------
  /// Durable on return under SyncMode::kCommit/kAlways. In durable mode
  /// put/erase/append_event/commit throw store::Error when the disk fails:
  /// kNoSpace/kIo mean this write did not happen (the store is otherwise
  /// intact), kPoisoned means a durability barrier failed earlier and the
  /// WAL is fail-stop (see wal.hpp).
  void put(const std::string& key, std::string value);
  bool erase(const std::string& key);
  std::optional<std::string> get(const std::string& key) const;
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;
  std::size_t size() const;

  // -- event journal -----------------------------------------------------------
  /// Appends one event; NOT yet durable — call commit() (or batch several
  /// appends under one commit, the group-commit sweet spot). Returns the
  /// record's LSN (a plain counter in in-memory mode).
  Lsn append_event(std::string_view stream, std::string_view payload);

  /// Durability barrier over everything appended so far.
  void commit();

  // -- snapshots & compaction --------------------------------------------------
  /// Registers the provider whose blob represents `stream`'s state in
  /// future snapshots. Providers run on the snapshotting thread and must
  /// not call back into this engine.
  void set_state_provider(const std::string& stream, std::function<std::string()> provider);

  /// The blob the newest snapshot stored for `stream` (empty when none) —
  /// read once after construction, before replayed events are applied on
  /// top of it.
  std::string recovered_state(const std::string& stream) const;

  /// Writes a snapshot now (tmp file + fsync + atomic rename), then
  /// compacts when options.auto_compact. False in in-memory mode or on a
  /// filesystem error (the previous snapshot survives either way).
  bool snapshot();

  /// snapshot() iff snapshot_interval records accumulated since the last.
  bool maybe_snapshot();

  /// Deletes WAL segments and older snapshots fully covered by the newest
  /// snapshot. Returns segments removed.
  std::size_t compact();

  StoreStats stats() const;

  /// Pushes store_* counters/gauges into `registry` (wal_appends, fsyncs,
  /// group_commits, segments, segments_compacted, snapshots, recovery_ms,
  /// wal_records, keys).
  void publish_metrics(obs::MetricsRegistry& registry, const obs::Labels& labels = {}) const;

 private:
  void load_snapshot();  ///< newest intact snapshot -> map_ + recovered_
  void remove_stale_snapshot_tmps();  ///< crash-mid-snapshot leftovers
  bool write_snapshot_file(Lsn lsn,
                           const std::vector<std::pair<std::string, std::string>>& kv,
                           const std::vector<std::pair<std::string, std::string>>& blobs);

  Options options_;
  FileOps* fops_ = nullptr;
  mutable std::mutex mutex_;  ///< guards map_, recovered_, snapshot bookkeeping
  std::map<std::string, std::string> map_;
  std::map<std::string, std::string> recovered_;  ///< stream -> blob from snapshot
  std::map<std::string, std::function<std::string()>> providers_;
  std::unique_ptr<WriteAheadLog> wal_;  ///< null in in-memory mode

  Lsn memory_lsn_ = 0;  ///< monotonic counter standing in for the WAL's LSN
  Lsn snapshot_lsn_ = 0;
  std::uint64_t snapshots_written_ = 0;
  std::uint64_t segments_compacted_ = 0;
  std::uint64_t replayed_records_ = 0;
  double recovery_ms_ = 0.0;
  bool snapshot_in_progress_ = false;
};

}  // namespace ig::store
