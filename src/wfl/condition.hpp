// The condition sub-language of the process-description grammar.
//
// Section 2 of the paper defines conditions of the form
//
//   <DataName>.<Property> <op> <Value>        op ∈ { <, >, = }
//
// combined into condition sets. The paper's Figure 13 uses conjunctions
// ("C1: A.Classification = 'POD-Parameter' and B.Classification = '2D
// Image'") and the constraint Cons1 compares numeric values
// ("D10.Value > 8"). We implement the full boolean closure (and/or/not,
// parentheses) plus the inequality operators the examples imply.
//
// Conditions are immutable values; copying shares the expression tree.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "meta/value.hpp"
#include "wfl/data.hpp"

namespace ig::wfl {

class ConditionParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class CompareOp { Less, Greater, Equal, NotEqual, LessEqual, GreaterEqual };

std::string_view to_string(CompareOp op) noexcept;

/// Variable bindings for evaluation: variable name -> data item.
using Bindings = std::map<std::string, const DataSpec*, std::less<>>;

/// Builds bindings where each data item is bound to its own name
/// (the common case for case-description constraints like Cons1).
Bindings self_bindings(const DataSet& data);

class Condition;

/// Guard evaluation against a world state: variables matching data names
/// bind by name; a remaining single free variable is bound existentially
/// (true if some item satisfies the condition). Used by the coordination
/// service for Choice guards such as Cons1.
bool evaluate_against_state(const Condition& condition, const DataSet& data);

/// An immutable boolean expression over data properties.
class Condition {
 public:
  /// The always-true condition (used for unconditioned transitions).
  Condition();

  static Condition comparison(std::string variable, std::string property, CompareOp op,
                              meta::Value value);
  static Condition conjunction(Condition lhs, Condition rhs);
  static Condition disjunction(Condition lhs, Condition rhs);
  static Condition negation(Condition operand);
  static Condition always_true();
  static Condition always_false();

  /// Parses the textual grammar; throws ConditionParseError.
  static Condition parse(std::string_view text);

  /// Evaluates under the given bindings. A comparison whose variable is
  /// unbound or whose property is unset evaluates to false (the data does
  /// not meet the specification).
  bool evaluate(const Bindings& bindings) const;

  /// Convenience: bind every data item in `data` to its own name.
  bool evaluate_on(const DataSet& data) const;

  /// Fast path for unary filters: evaluates with exactly one binding,
  /// `variable` -> `item`, without building a Bindings map. Comparisons on
  /// any other variable evaluate to false (unbound).
  bool evaluate_single(std::string_view variable, const DataSpec& item) const;

  /// True when this is the trivially-true condition.
  bool is_trivially_true() const noexcept;

  /// Distinct variable names referenced, in first-appearance order.
  std::vector<std::string> variables() const;

  /// Splits a top-level conjunction into its conjuncts (a non-conjunction
  /// yields itself). The service binder uses this to turn an input
  /// condition into per-formal unary filters.
  std::vector<Condition> conjuncts() const;

  /// Canonical textual rendering (parses back to an equal condition).
  std::string to_string() const;

  /// All atomic comparisons mentioning `variable` with Equal op — used by
  /// the planner to *construct* data satisfying a postcondition.
  std::vector<std::pair<std::string, meta::Value>> equality_requirements(
      std::string_view variable) const;

  bool operator==(const Condition& other) const;

  /// Expression node; public for the implementation's free helpers,
  /// opaque (forward-declared) to library users.
  struct Node;

 private:
  explicit Condition(std::shared_ptr<const Node> root);

  std::shared_ptr<const Node> root_;
};

}  // namespace ig::wfl
