#include "services/environment.hpp"

#include "meta/standard.hpp"
#include "services/container_agent.hpp"
#include "services/protocol.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/ontology.hpp"

namespace ig::svc {

Environment::Environment(const EnvironmentOptions& options)
    : injector_(util::Rng(options.seed)),
      platform_(sim_),
      catalogue_(options.catalogue.empty() ? virolab::make_catalogue() : options.catalogue),
      kernels_(options.kernels) {
  // -- grid topology -----------------------------------------------------------
  grid::TopologyParams topology = options.topology;
  if (topology.service_names.empty()) topology.service_names = catalogue_.names();
  util::Rng topology_rng(options.seed ^ 0x9E3779B97F4A7C15ULL);
  grid::build_topology(grid_, topology, topology_rng);

  platform_.set_tracing(options.tracing);

  // -- core services (information service first so registrations succeed) -------
  information_ = &platform_.spawn<InformationService>(names::kInformation);
  brokerage_ = &platform_.spawn<BrokerageService>(names::kBrokerage);
  matchmaking_ =
      &platform_.spawn<MatchmakingService>(names::kMatchmaking, grid_, brokerage_);
  monitoring_ = &platform_.spawn<MonitoringService>(names::kMonitoring, grid_,
                                                    options.monitor_period);
  ontology_ = &platform_.spawn<OntologyService>(names::kOntology);
  ontology_->store(meta::standard_grid_ontology());
  ontology_->store(virolab::make_fig13_ontology());
  authentication_ = &platform_.spawn<AuthenticationService>(names::kAuthentication);
  storage_ = &platform_.spawn<PersistentStorageService>(names::kPersistentStorage);
  scheduling_ = &platform_.spawn<SchedulingService>(names::kScheduling);
  simulation_ =
      &platform_.spawn<SimulationService>(names::kSimulation, catalogue_, options.gp.evaluation);
  planning_ = &platform_.spawn<PlanningService>(names::kPlanning, catalogue_, options.gp);
  coordination_ =
      &platform_.spawn<CoordinationService>(names::kCoordination, options.coordination);

  // -- one agent per application container ----------------------------------------
  virolab::SyntheticKernels* kernels =
      options.use_synthetic_kernels ? &kernels_ : nullptr;
  for (const auto& container : grid_.containers()) {
    platform_.spawn<ContainerAgent>(container->id(), grid_, sim_, injector_, container->id(),
                                    catalogue_, kernels);
  }

  // Flush registrations and advertisements so the environment is ready.
  sim_.run(100'000);
}

std::unique_ptr<Environment> make_environment(EnvironmentOptions options) {
  return std::make_unique<Environment>(options);
}

}  // namespace ig::svc
