#include "wire/codec.hpp"

#include "store/crc32c.hpp"

namespace ig::wire {

// -- varint ---------------------------------------------------------------------

void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

std::optional<std::uint64_t> read_varint(store::Reader& reader) {
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const std::uint8_t byte = reader.u8();
    if (!reader.ok()) return std::nullopt;
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // The 10th byte may only contribute the top bit of a 64-bit value.
      if (shift == 63 && byte > 1) return std::nullopt;
      return value;
    }
  }
  return std::nullopt;  // continuation bit still set after 64 bits
}

// -- encoder --------------------------------------------------------------------

void Encoder::intern_field(std::string_view value, std::string& payload) {
  auto it = table_.find(value);
  if (it != table_.end()) {
    ++stats_.intern_hits;
    put_varint(payload, it->second);
    return;
  }
  ++stats_.intern_misses;
  const std::uint32_t id = next_id_++;
  table_.emplace(std::string(value), id);
  put_varint(payload, 0);  // definition marker
  put_varint(payload, id);
  store::Writer writer(payload);
  writer.str(value);
}

void Encoder::encode(const agent::AclMessage& message, std::string& out) {
  std::string payload;
  store::Writer writer(payload);
  writer.u8(kWireVersion);
  intern_field(agent::to_string(message.performative), payload);
  writer.str(message.sender);
  writer.str(message.receiver);
  writer.str(message.conversation_id);
  intern_field(message.protocol, payload);
  intern_field(message.ontology, payload);
  writer.str(message.content);
  put_varint(payload, message.params.size());
  for (const auto& [name, value] : message.params) {
    intern_field(name, payload);
    store::Writer param_writer(payload);
    param_writer.str(value);
  }

  std::string header;
  store::Writer header_writer(header);
  header_writer.u32(static_cast<std::uint32_t>(payload.size()));
  header_writer.u32(store::crc32c(payload));
  out += header;
  out += payload;

  ++stats_.frames;
  stats_.payload_bytes += payload.size();
  stats_.frame_bytes += kFrameHeaderBytes + payload.size();
}

std::string Encoder::encode(const agent::AclMessage& message) {
  std::string out;
  encode(message, out);
  return out;
}

// -- decoder --------------------------------------------------------------------

agent::AclMessage WireMessageView::materialize() const {
  agent::AclMessage message;
  message.performative = performative;
  message.sender = std::string(sender);
  message.receiver = std::string(receiver);
  message.conversation_id = std::string(conversation_id);
  message.protocol = std::string(protocol);
  message.ontology = std::string(ontology);
  message.content = std::string(content);
  for (const auto& [name, value] : params) message.params.emplace(name, value);
  return message;
}

FrameStatus peek_frame(std::string_view buffer, std::string_view& payload,
                       std::size_t& frame_size, std::string* error) {
  if (buffer.size() < kFrameHeaderBytes) return FrameStatus::kNeedMore;
  store::Reader reader(buffer);
  const std::uint32_t length = reader.u32();
  const std::uint32_t checksum = reader.u32();
  if (length > kMaxFramePayload) {
    if (error != nullptr)
      *error = "oversized frame: length prefix " + std::to_string(length) + " exceeds " +
               std::to_string(kMaxFramePayload);
    return FrameStatus::kBad;
  }
  if (buffer.size() - kFrameHeaderBytes < length) return FrameStatus::kNeedMore;
  payload = buffer.substr(kFrameHeaderBytes, length);
  if (store::crc32c(payload) != checksum) {
    if (error != nullptr) *error = "frame checksum mismatch";
    payload = {};
    return FrameStatus::kBad;
  }
  frame_size = kFrameHeaderBytes + length;
  return FrameStatus::kFrame;
}

bool Decoder::intern_field(store::Reader& reader, std::string_view& value, std::string* error) {
  const auto tag = read_varint(reader);
  if (!tag.has_value()) {
    if (error != nullptr) *error = "truncated intern tag";
    return false;
  }
  if (*tag != 0) {
    // Reference to an already-defined vocabulary entry.
    if (*tag > table_.size()) {
      if (error != nullptr)
        *error = "unknown intern id " + std::to_string(*tag) + " (table holds " +
                 std::to_string(table_.size()) + ")";
      return false;
    }
    value = table_[static_cast<std::size_t>(*tag) - 1];
    return true;
  }
  const auto id = read_varint(reader);
  if (!id.has_value() || *id == 0) {
    if (error != nullptr) *error = "malformed intern definition id";
    return false;
  }
  const std::string_view literal = reader.str();
  if (!reader.ok()) {
    if (error != nullptr) *error = "truncated intern literal";
    return false;
  }
  if (*id <= table_.size()) {
    // Idempotent redefinition (a duplicated frame); the literal must match.
    const std::string& existing = table_[static_cast<std::size_t>(*id) - 1];
    if (existing != literal) {
      if (error != nullptr)
        *error = "intern id " + std::to_string(*id) + " redefined with different literal";
      return false;
    }
    value = existing;
    return true;
  }
  if (*id != table_.size() + 1) {
    // A gap means the defining frame was lost; indexing past it would lie.
    if (error != nullptr)
      *error = "intern definition out of order: id " + std::to_string(*id) +
               " after table of " + std::to_string(table_.size());
    return false;
  }
  table_.emplace_back(literal);
  value = table_.back();
  return true;
}

bool Decoder::decode_payload(std::string_view payload, WireMessageView& view,
                             std::string* error) {
  view = WireMessageView{};
  store::Reader reader(payload);
  const std::uint8_t version = reader.u8();
  if (!reader.ok() || version != kWireVersion) {
    if (error != nullptr)
      *error = "unsupported wire version " + std::to_string(version);
    return false;
  }
  std::string_view performative;
  if (!intern_field(reader, performative, error)) return false;
  const auto parsed = agent::performative_from_string(performative);
  if (!parsed.has_value()) {
    if (error != nullptr) *error = "unknown performative '" + std::string(performative) + "'";
    return false;
  }
  view.performative = *parsed;
  view.sender = reader.str();
  view.receiver = reader.str();
  view.conversation_id = reader.str();
  if (!reader.ok()) {
    if (error != nullptr) *error = "truncated addressing fields";
    return false;
  }
  if (!intern_field(reader, view.protocol, error)) return false;
  if (!intern_field(reader, view.ontology, error)) return false;
  view.content = reader.str();
  if (!reader.ok()) {
    if (error != nullptr) *error = "truncated content";
    return false;
  }
  const auto count = read_varint(reader);
  if (!count.has_value() || *count > payload.size()) {
    // A param needs at least one byte each; a count beyond the payload size
    // is corrupt and must not drive a giant reserve().
    if (error != nullptr) *error = "malformed param count";
    return false;
  }
  view.params.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    std::string_view name;
    if (!intern_field(reader, name, error)) return false;
    const std::string_view value = reader.str();
    if (!reader.ok()) {
      if (error != nullptr) *error = "truncated param value";
      return false;
    }
    view.params.emplace_back(name, value);
  }
  if (!reader.done()) {
    if (error != nullptr) *error = "trailing bytes after message";
    return false;
  }
  return true;
}

}  // namespace ig::wire
