// Ablation A9 — planner scalability versus service-catalogue size.
//
// The virolab problem has four service types; real grids advertise many
// more, most of them irrelevant to a given goal. The sweep pads the
// catalogue with K distractor services (valid operators over unrelated data
// classifications) and measures how the distractors dilute the search.
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "gp_sweep.hpp"
#include "util/stopwatch.hpp"

using namespace ig;

namespace {

/// Builds a chain of distractor services over private classifications:
/// Distract-k consumes "Noise-k" and produces "Noise-(k+1)".
void add_distractors(wfl::ServiceCatalogue& catalogue, int count) {
  for (int k = 0; k < count; ++k) {
    wfl::ServiceType service("Distract" + std::to_string(k));
    service.set_inputs({"A"});
    service.set_input_condition(
        wfl::Condition::parse("A.Classification = \"Noise-" + std::to_string(k) + "\""));
    service.set_outputs({"B"});
    service.set_output_condition(
        wfl::Condition::parse("B.Classification = \"Noise-" + std::to_string(k + 1) + "\""));
    catalogue.add(std::move(service));
  }
}

}  // namespace

int main() {
  const int distractor_counts[] = {0, 4, 8, 16, 32};
  constexpr int kRuns = 5;

  std::printf("A9: planner quality vs catalogue size (%d runs each)\n\n", kRuns);
  std::printf("%-12s %-10s", "catalogue", "time(s)");
  std::printf(" %-9s %-9s %-9s %-8s %s\n", "fitness", "validity", "goal", "size",
              "optimal-runs");

  int baseline_optimal = 0;
  bool any_degradation_reported = false;
  for (const int distractors : distractor_counts) {
    planner::PlanningProblem problem = bench::virolab_problem();
    add_distractors(problem.catalogue, distractors);
    // Seed one noise datum so distractor chains are actually executable and
    // compete for validity fitness.
    problem.initial_state.put(wfl::DataSpec("noise0").with_classification("Noise-0"));

    planner::GpConfig config;
    config.population_size = 100;
    config.generations = 15;
    util::Stopwatch watch;
    const bench::SweepPoint point = bench::run_sweep_point(problem, config, kRuns);
    const double elapsed = watch.elapsed_seconds();
    std::printf("%-12zu %-10.2f", static_cast<std::size_t>(4 + distractors), elapsed);
    std::printf(" %-9.4f %-9.3f %-9.3f %-8.1f %d/%d\n", point.fitness.mean(),
                point.validity.mean(), point.goal.mean(), point.size.mean(),
                point.optimal_runs, kRuns);
    if (distractors == 0) baseline_optimal = point.optimal_runs;
    if (point.optimal_runs < kRuns) any_degradation_reported = true;

    bench::JsonRecord record("bench_planner_scaling");
    record.add("catalogue_size", static_cast<std::size_t>(4 + distractors))
        .add("runs", static_cast<std::size_t>(kRuns))
        .add("mean_fitness", point.fitness.mean())
        .add("optimal_runs", static_cast<std::size_t>(point.optimal_runs))
        .add("wall_s", elapsed)
        .add("evaluations", point.evaluations)
        .add("evals_per_sec", elapsed > 0 ? point.evaluations / elapsed : 0.0)
        .add("memo_hit_rate", point.memo_hit_rate());
    record.append_to();
  }
  (void)any_degradation_reported;
  std::printf("\nexpected shape: the 4-service baseline is optimal in every run; a larger\n"
              "catalogue dilutes the terminal set and goal-reaching may need more budget.\n");
  const bool ok = baseline_optimal == kRuns;
  std::printf("shape holds: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
