#include "wfl/validate.hpp"

#include <map>
#include <set>

namespace ig::wfl {

namespace {

void check_degree(const ProcessDescription& process, const Activity& activity,
                  std::vector<ValidationError>& errors) {
  const std::size_t in = process.predecessors(activity.id).size();
  const std::size_t out = process.successors(activity.id).size();
  auto report = [&](const std::string& message) {
    errors.push_back({activity.id, activity.name + ": " + message});
  };
  switch (activity.kind) {
    case ActivityKind::Begin:
      if (in != 0) report("Begin must have no predecessors");
      if (out != 1) report("Begin must have exactly one successor");
      break;
    case ActivityKind::End:
      if (out != 0) report("End must have no successors");
      if (in != 1) report("End must have exactly one predecessor");
      break;
    case ActivityKind::EndUser:
      if (in != 1) report("end-user activity must have exactly one predecessor");
      if (out != 1) report("end-user activity must have exactly one successor");
      if (activity.service_name.empty()) report("end-user activity must name a service");
      break;
    case ActivityKind::Fork:
      if (in != 1) report("Fork must have exactly one predecessor");
      if (out < 2) report("Fork must have at least two successors");
      break;
    case ActivityKind::Choice:
      if (in != 1) report("Choice must have exactly one predecessor");
      if (out < 2) report("Choice must have at least two successors");
      break;
    case ActivityKind::Join:
      if (in < 2) report("Join must have at least two predecessors");
      if (out != 1) report("Join must have exactly one successor");
      break;
    case ActivityKind::Merge:
      if (in < 2) report("Merge must have at least two predecessors");
      if (out != 1) report("Merge must have exactly one successor");
      break;
  }
}

std::set<std::string> reachable(const ProcessDescription& process, const std::string& start,
                                bool forward) {
  std::set<std::string> seen{start};
  std::vector<std::string> frontier{start};
  while (!frontier.empty()) {
    const std::string id = frontier.back();
    frontier.pop_back();
    const auto next = forward ? process.successors(id) : process.predecessors(id);
    for (const auto& neighbor : next) {
      if (seen.insert(neighbor).second) frontier.push_back(neighbor);
    }
  }
  return seen;
}

}  // namespace

std::vector<ValidationError> validate(const ProcessDescription& process) {
  std::vector<ValidationError> errors;

  std::size_t begin_count = 0;
  std::size_t end_count = 0;
  for (const auto& activity : process.activities()) {
    if (activity.kind == ActivityKind::Begin) ++begin_count;
    if (activity.kind == ActivityKind::End) ++end_count;
  }
  if (begin_count != 1)
    errors.push_back({"", "process must have exactly one Begin activity, has " +
                              std::to_string(begin_count)});
  if (end_count != 1)
    errors.push_back(
        {"", "process must have exactly one End activity, has " + std::to_string(end_count)});

  // Duplicate transitions between the same pair of activities.
  std::set<std::pair<std::string, std::string>> edges;
  for (const auto& transition : process.transitions()) {
    if (!edges.insert({transition.source, transition.destination}).second)
      errors.push_back({transition.source, "duplicate transition to '" + transition.destination +
                                               "' (" + transition.id + ")"});
  }

  // Guards are only meaningful on transitions leaving a Choice.
  for (const auto& transition : process.transitions()) {
    if (transition.guard.is_trivially_true()) continue;
    const Activity* source = process.find_activity(transition.source);
    if (source != nullptr && source->kind != ActivityKind::Choice)
      errors.push_back({transition.source,
                        "transition " + transition.id + " carries a guard but its source is " +
                            std::string(to_string(source->kind))});
  }

  for (const auto& activity : process.activities()) check_degree(process, activity, errors);

  if (begin_count == 1 && end_count == 1) {
    const std::string begin_id = process.begin_activity().id;
    const std::string end_id = process.end_activity().id;
    const auto from_begin = reachable(process, begin_id, /*forward=*/true);
    const auto to_end = reachable(process, end_id, /*forward=*/false);
    for (const auto& activity : process.activities()) {
      if (from_begin.count(activity.id) == 0)
        errors.push_back({activity.id, activity.name + ": not reachable from Begin"});
      if (to_end.count(activity.id) == 0)
        errors.push_back({activity.id, activity.name + ": End not reachable from it"});
    }
  }

  return errors;
}

bool is_valid(const ProcessDescription& process) { return validate(process).empty(); }

std::string to_string(const std::vector<ValidationError>& errors) {
  std::string out;
  for (const auto& error : errors) {
    if (!error.activity_id.empty()) out += "[" + error.activity_id + "] ";
    out += error.message;
    out += '\n';
  }
  return out;
}

}  // namespace ig::wfl
