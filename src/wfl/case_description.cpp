#include "wfl/case_description.hpp"

namespace ig::wfl {

bool GoalSpec::satisfied_by(const DataSet& data) const {
  const auto variables = condition.variables();
  if (variables.empty()) return condition.evaluate({});
  // Existential: bind the (single) variable to each item in turn.
  const std::string& variable = variables.front();
  for (const auto& item : data.items()) {
    Bindings bindings;
    bindings[variable] = &item;
    if (condition.evaluate(bindings)) return true;
  }
  return false;
}

double CaseDescription::goal_satisfaction(const DataSet& data) const {
  if (goals_.empty()) return 1.0;
  std::size_t satisfied = 0;
  for (const auto& goal : goals_) {
    if (goal.satisfied_by(data)) ++satisfied;
  }
  return static_cast<double>(satisfied) / static_cast<double>(goals_.size());
}

void CaseDescription::add_constraint(std::string name, Condition condition) {
  for (auto& [existing_name, existing_condition] : constraints_) {
    if (existing_name == name) {
      existing_condition = std::move(condition);
      return;
    }
  }
  constraints_.emplace_back(std::move(name), std::move(condition));
}

const Condition* CaseDescription::find_constraint(std::string_view name) const noexcept {
  for (const auto& [constraint_name, condition] : constraints_) {
    if (constraint_name == name) return &condition;
  }
  return nullptr;
}

}  // namespace ig::wfl
