#include "store/segment.hpp"

#include <fcntl.h>
#include <sys/mman.h>

#include <cerrno>
#include <cstring>

#include "store/crc32c.hpp"
#include "util/log.hpp"

namespace ig::store {
namespace {

constexpr std::uint64_t kMagic = 0x3130304745534749ULL;  // "IGSEG01" + version tag
constexpr std::uint32_t kVersion = 1;

void put_u32(unsigned char* at, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) at[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xFF);
}

void put_u64(unsigned char* at, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) at[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xFF);
}

std::uint32_t get_u32(const unsigned char* at) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) value |= static_cast<std::uint32_t>(at[i]) << (8 * i);
  return value;
}

std::uint64_t get_u64(const unsigned char* at) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value |= static_cast<std::uint64_t>(at[i]) << (8 * i);
  return value;
}

}  // namespace

std::unique_ptr<Segment> Segment::create(FileOps& fops, const std::string& path,
                                         std::size_t capacity, std::uint64_t sequence,
                                         Lsn first_lsn) {
  if (capacity < kHeaderSize + kFrameOverhead) capacity = kHeaderSize + kFrameOverhead;
  const int fd = fops.open(path, O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return nullptr;
  if (fops.ftruncate(fd, static_cast<off_t>(capacity)) != 0) {
    const int err = errno;  // close() must not clobber the real failure
    fops.close(fd);
    errno = err;
    return nullptr;
  }
  void* map = fops.mmap(fd, capacity);
  const int map_err = errno;
  fops.close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    errno = map_err;
    return nullptr;
  }

  auto segment = std::unique_ptr<Segment>(new Segment());
  segment->fops_ = &fops;
  segment->path_ = path;
  segment->map_ = static_cast<unsigned char*>(map);
  segment->capacity_ = capacity;
  segment->sequence_ = sequence;
  segment->first_lsn_ = first_lsn;
  unsigned char* h = segment->map_;
  put_u64(h, kMagic);
  put_u32(h + 8, kVersion);
  put_u32(h + 12, 0);
  put_u64(h + 16, sequence);
  put_u64(h + 24, first_lsn);
  put_u64(h + 32, capacity);
  return segment;
}

std::unique_ptr<Segment> Segment::open(FileOps& fops, const std::string& path) {
  const int fd = fops.open(path, O_RDWR, 0);
  if (fd < 0) return nullptr;
  const off_t file_size = fops.size(fd);
  if (file_size < 0 || static_cast<std::size_t>(file_size) < kHeaderSize) {
    fops.close(fd);
    return nullptr;
  }
  // Peek at the header to learn the declared capacity, then grow the file
  // back to it if a crash (or a test harness) truncated it — the restored
  // bytes read as zeros, which the scan below treats as a clean end.
  unsigned char header[kHeaderSize];
  if (fops.pread(fd, header, kHeaderSize, 0) != static_cast<ssize_t>(kHeaderSize) ||
      get_u64(header) != kMagic || get_u32(header + 8) != kVersion) {
    fops.close(fd);
    return nullptr;
  }
  const std::size_t capacity = get_u64(header + 32);
  if (capacity < kHeaderSize + kFrameOverhead ||
      (static_cast<std::size_t>(file_size) != capacity &&
       fops.ftruncate(fd, static_cast<off_t>(capacity)) != 0)) {
    const int err = errno;
    fops.close(fd);
    errno = err;
    return nullptr;
  }
  void* map = fops.mmap(fd, capacity);
  const int map_err = errno;
  fops.close(fd);
  if (map == MAP_FAILED) {
    errno = map_err;
    return nullptr;
  }

  auto segment = std::unique_ptr<Segment>(new Segment());
  segment->fops_ = &fops;
  segment->path_ = path;
  segment->map_ = static_cast<unsigned char*>(map);
  segment->capacity_ = capacity;
  segment->sequence_ = get_u64(segment->map_ + 16);
  segment->first_lsn_ = get_u64(segment->map_ + 24);

  // Scan the record run. Stop cleanly at a zero length (never-written
  // space — a file the crash truncated short was re-extended with zeros
  // above, so a frame the truncation cut lands here too, via either a
  // zeroed length or a CRC mismatch over its zeroed tail); stop *torn* at
  // an implausible length or a CRC mismatch.
  std::size_t offset = kHeaderSize;
  while (offset + kFrameOverhead <= capacity) {
    const std::uint32_t length = get_u32(segment->map_ + offset);
    if (length == 0) break;  // clean end of the run
    if (length > capacity - offset - kFrameOverhead) {
      segment->torn_ = true;
      break;
    }
    const std::uint32_t stored_crc = get_u32(segment->map_ + offset + 4);
    const unsigned char* payload = segment->map_ + offset + kFrameOverhead;
    if (crc32c(payload, length) != stored_crc) {
      segment->torn_ = true;
      break;
    }
    segment->records_.emplace_back(reinterpret_cast<const char*>(payload), length);
    offset += kFrameOverhead + length;
  }
  segment->tail_ = offset;
  if (segment->torn_ && offset < capacity) {
    // Scrub everything after the last intact record: garbage from the torn
    // write must not be joinable into a plausible frame by a later append.
    std::memset(segment->map_ + offset, 0, capacity - offset);
    IG_LOG_DEBUG("store") << "segment " << path << ": torn tail dropped at offset "
                          << offset << " (" << segment->records_.size()
                          << " records recovered)";
  }
  return segment;
}

Segment::~Segment() {
  if (map_ != nullptr) {
    fops_->msync(map_, tail_, /*sync=*/false);  // best-effort; a failure here
    fops_->munmap(map_, capacity_);             // cannot be acted on anyway
  }
}

void Segment::append(std::string_view payload) {
  unsigned char* at = map_ + tail_;
  put_u32(at, static_cast<std::uint32_t>(payload.size()));
  put_u32(at + 4, crc32c(payload));
  std::memcpy(at + kFrameOverhead, payload.data(), payload.size());
  records_.emplace_back(reinterpret_cast<const char*>(at + kFrameOverhead), payload.size());
  tail_ += kFrameOverhead + payload.size();
}

// Only the used prefix needs a barrier: everything at or past tail_ is
// zeros (or a scrubbed torn tail that reopen would reject again anyway),
// and the header lives inside any non-empty prefix.
bool Segment::sync() { return fops_->msync(map_, tail_, /*sync=*/true) == 0; }

}  // namespace ig::store
