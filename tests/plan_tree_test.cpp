#include <gtest/gtest.h>

#include "planner/operators.hpp"
#include "planner/plan_tree.hpp"
#include "util/rng.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"

namespace ig::planner {
namespace {

PlanNode sample() {
  // Sequential(POD, Concurrent(P3DR, P3DR), PSF) — 6 nodes.
  std::vector<PlanNode> concurrent;
  concurrent.push_back(PlanNode::terminal("P3DR"));
  concurrent.push_back(PlanNode::terminal("P3DR"));
  std::vector<PlanNode> top;
  top.push_back(PlanNode::terminal("POD"));
  top.push_back(PlanNode::concurrent(std::move(concurrent)));
  top.push_back(PlanNode::terminal("PSF"));
  return PlanNode::sequential(std::move(top));
}

TEST(PlanTree, SizeDepthTerminals) {
  const PlanNode tree = sample();
  EXPECT_EQ(tree.size(), 6u);
  EXPECT_EQ(tree.depth(), 3u);
  EXPECT_EQ(tree.terminal_count(), 4u);
  EXPECT_EQ(PlanNode::terminal("X").size(), 1u);
  EXPECT_EQ(PlanNode::terminal("X").depth(), 1u);
}

TEST(PlanTree, PreorderIndexing) {
  const PlanNode tree = sample();
  EXPECT_EQ(tree.at_preorder(0).kind, PlanNode::Kind::Sequential);
  EXPECT_EQ(tree.at_preorder(1).service, "POD");
  EXPECT_EQ(tree.at_preorder(2).kind, PlanNode::Kind::Concurrent);
  EXPECT_EQ(tree.at_preorder(3).service, "P3DR");
  EXPECT_EQ(tree.at_preorder(4).service, "P3DR");
  EXPECT_EQ(tree.at_preorder(5).service, "PSF");
  EXPECT_THROW(tree.at_preorder(6), std::out_of_range);
}

TEST(PlanTree, ReplaceSubtree) {
  PlanNode tree = sample();
  tree.replace_at_preorder(2, PlanNode::terminal("POR"));
  EXPECT_EQ(tree.size(), 4u);
  EXPECT_EQ(tree.at_preorder(2).service, "POR");
  // Replacing the root swaps the whole tree.
  tree.replace_at_preorder(0, PlanNode::terminal("ONLY"));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.service, "ONLY");
}

TEST(PlanTree, Equality) {
  EXPECT_EQ(sample(), sample());
  PlanNode changed = sample();
  changed.replace_at_preorder(5, PlanNode::terminal("POR"));
  EXPECT_FALSE(sample() == changed);
}

TEST(PlanTree, IterativeHoldsBodyAsChildren) {
  // Figure 11: the iterative node's children are the loop body in order.
  const PlanNode tree = virolab::make_fig11_plan_tree();
  ASSERT_EQ(tree.kind, PlanNode::Kind::Sequential);
  ASSERT_EQ(tree.children.size(), 3u);
  const PlanNode& loop = tree.children[2];
  EXPECT_EQ(loop.kind, PlanNode::Kind::Iterative);
  ASSERT_EQ(loop.children.size(), 3u);
  EXPECT_EQ(loop.children[0].service, "POR");
  EXPECT_EQ(loop.children[1].kind, PlanNode::Kind::Concurrent);
  EXPECT_EQ(loop.children[2].service, "PSF");
  EXPECT_FALSE(loop.continue_condition.is_trivially_true());
}

TEST(PlanTree, Figure11Size) {
  // POD, P3DR, POR, P3DR x3, PSF = 7 terminals; Sequential + Iterative +
  // Concurrent = 3 controllers; 10 nodes total (paper: average size < 10).
  const PlanNode tree = virolab::make_fig11_plan_tree();
  EXPECT_EQ(tree.size(), 10u);
  EXPECT_EQ(tree.terminal_count(), 7u);
}

TEST(PlanTree, TreeStringShowsStructure) {
  const std::string text = virolab::make_fig11_plan_tree().to_tree_string();
  EXPECT_NE(text.find("Sequential"), std::string::npos);
  EXPECT_NE(text.find("Iterative"), std::string::npos);
  EXPECT_NE(text.find("Concurrent"), std::string::npos);
  EXPECT_NE(text.find("POD"), std::string::npos);
}

TEST(PlanTree, StructureChecks) {
  EXPECT_EQ(check_structure(sample()), "");
  // Controller without children.
  PlanNode empty_controller;
  empty_controller.kind = PlanNode::Kind::Sequential;
  EXPECT_NE(check_structure(empty_controller), "");
  // Terminal with children.
  PlanNode bad_terminal = PlanNode::terminal("X");
  bad_terminal.children.push_back(PlanNode::terminal("Y"));
  EXPECT_NE(check_structure(bad_terminal), "");
  // Terminal without service.
  EXPECT_NE(check_structure(PlanNode::terminal("")), "");
  // Selective guard mismatch.
  PlanNode selective = PlanNode::selective({PlanNode::terminal("A")});
  selective.guards.clear();
  EXPECT_NE(check_structure(selective), "");
}

TEST(PlanTree, SelectiveDefaultsGuards) {
  const PlanNode selective =
      PlanNode::selective({PlanNode::terminal("A"), PlanNode::terminal("B")});
  ASSERT_EQ(selective.guards.size(), 2u);
  EXPECT_TRUE(selective.guards[0].is_trivially_true());
}

TEST(PlanTree, KindNames) {
  EXPECT_EQ(to_string(PlanNode::Kind::Terminal), "Terminal");
  EXPECT_EQ(to_string(PlanNode::Kind::Iterative), "Iterative");
}

TEST(PlanTreeHash, EqualTreesHashEqual) {
  const PlanNode a = sample();
  const PlanNode b = sample();
  ASSERT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  // Copies too.
  const PlanNode c = a;
  EXPECT_EQ(a.hash(), c.hash());
}

TEST(PlanTreeHash, SensitiveToEveryStructuralField) {
  const PlanNode base = sample();
  const std::uint64_t reference = base.hash();

  PlanNode renamed = base;
  renamed.at_preorder(1).service = "POR";
  EXPECT_NE(renamed.hash(), reference);

  PlanNode rekinded = base;
  rekinded.at_preorder(2).kind = PlanNode::Kind::Sequential;
  EXPECT_NE(rekinded.hash(), reference);

  PlanNode extended = base;
  extended.children.push_back(PlanNode::terminal("POR"));
  EXPECT_NE(extended.hash(), reference);

  PlanNode reordered = base;
  std::swap(reordered.children.front(), reordered.children.back());
  EXPECT_NE(reordered.hash(), reference);

  PlanNode guarded = PlanNode::selective({PlanNode::terminal("A"), PlanNode::terminal("B")});
  const std::uint64_t trivially_guarded = guarded.hash();
  guarded.guards[0] = wfl::Condition::parse("A.Classification = \"2D Image\"");
  EXPECT_NE(guarded.hash(), trivially_guarded);

  PlanNode looped = PlanNode::iterative({PlanNode::terminal("POR")});
  const std::uint64_t trivially_looped = looped.hash();
  looped.continue_condition = wfl::Condition::parse("D10.Value > 8");
  EXPECT_NE(looped.hash(), trivially_looped);
}

TEST(PlanTreeHash, TerminalVersusControllerOfSameName) {
  // A lone terminal and a one-child controller around it must differ.
  const PlanNode leaf = PlanNode::terminal("POD");
  const PlanNode wrapped = PlanNode::sequential({PlanNode::terminal("POD")});
  EXPECT_NE(leaf.hash(), wrapped.hash());
}

TEST(PlanTreeHash, CollisionSanityOnMutatedTrees) {
  // Generate a cloud of random trees plus single-step mutants and check
  // hash() separates every structurally distinct pair (64-bit hashes over a
  // few hundred small trees: any collision is a red flag for the mixer).
  const wfl::ServiceCatalogue catalogue = virolab::make_catalogue();
  util::Rng rng(99);
  std::vector<PlanNode> trees;
  for (int i = 0; i < 150; ++i) {
    trees.push_back(random_tree(rng, catalogue, 20));
    PlanNode mutant = trees.back();
    if (mutate(mutant, rng, catalogue, 0.5, 20)) trees.push_back(std::move(mutant));
  }
  std::size_t distinct_pairs = 0;
  for (std::size_t i = 0; i < trees.size(); ++i) {
    for (std::size_t j = i + 1; j < trees.size(); ++j) {
      if (trees[i] == trees[j]) {
        EXPECT_EQ(trees[i].hash(), trees[j].hash());
      } else {
        ++distinct_pairs;
        EXPECT_NE(trees[i].hash(), trees[j].hash())
            << "collision between\n"
            << trees[i].to_tree_string() << "and\n"
            << trees[j].to_tree_string();
      }
    }
  }
  EXPECT_GT(distinct_pairs, 1000u);  // the cloud really is diverse
}

}  // namespace
}  // namespace ig::planner
