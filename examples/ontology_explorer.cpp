// Metainformation tour: the Figure 12 ontology shell and the Figure 13
// instances, served over the ontology service's wire protocol.
//
//   $ ./ontology_explorer [class-name]
//
// Prints the logic view of the standard grid ontology (classes and slots),
// then fetches the populated 3DSD ontology through the ontology service and
// dumps the task/activity/data instances. With an argument, prints only the
// named class and its instances.
#include <cstdio>
#include <string>

#include "meta/standard.hpp"
#include "meta/xml_io.hpp"
#include "services/environment.hpp"
#include "services/protocol.hpp"
#include "util/strings.hpp"

using namespace ig;
namespace names = svc::names;
namespace protocols = svc::protocols;

namespace {

void print_class(const meta::Ontology& ontology, const meta::OntologyClass& cls) {
  std::printf("%s%s%s\n", cls.name().c_str(), cls.parent().empty() ? "" : " : ",
              cls.parent().c_str());
  if (!cls.documentation().empty()) std::printf("  # %s\n", cls.documentation().c_str());
  for (const auto& slot : ontology.effective_slots(cls.name())) {
    const std::string allowed =
        slot.allowed_values.empty()
            ? std::string()
            : "  in {" + util::join(slot.allowed_values, ", ") + "}";
    std::printf("  %-24s %-8s%s%s\n", slot.name.c_str(),
                std::string(meta::to_string(slot.type)).c_str(),
                slot.required ? " required" : "", allowed.c_str());
  }
}

void print_instances(const meta::Ontology& ontology, const std::string& class_name) {
  const auto instances = ontology.instances_of(class_name);
  if (instances.empty()) return;
  std::printf("\n-- instances of %s (%zu) --\n", class_name.c_str(), instances.size());
  for (const auto* instance : instances) {
    std::printf("%s:\n", instance->id().c_str());
    for (const auto& [slot, value] : instance->slots())
      std::printf("  %-24s %s\n", slot.c_str(), value.to_display_string().c_str());
  }
}

class Fetcher : public agent::Agent {
 public:
  using Agent::Agent;
  void on_start() override {
    agent::AclMessage query;
    query.performative = agent::Performative::QueryRef;
    query.receiver = names::kOntology;
    query.protocol = protocols::kGetOntology;
    query.params["name"] = "3DSD-instances";
    send(std::move(query));
  }
  void handle_message(const agent::AclMessage& message) override {
    if (message.performative == agent::Performative::Inform) payload = message.content;
  }
  std::string payload;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string filter = argc > 1 ? argv[1] : "";

  std::printf("=== Figure 12: the standard grid ontology (logic view) ===\n\n");
  const meta::Ontology shell = meta::standard_grid_ontology();
  for (const auto* cls : shell.classes()) {
    if (!filter.empty() && cls->name() != filter) continue;
    print_class(shell, *cls);
    std::printf("\n");
  }

  // Fetch the populated ontology over the wire, exactly as a user interface
  // agent would.
  svc::EnvironmentOptions options;
  options.topology.domains = 1;
  options.topology.nodes_per_domain = 1;
  auto environment = svc::make_environment(options);
  auto& fetcher = environment->platform().spawn<Fetcher>("explorer");
  environment->run();

  if (fetcher.payload.empty()) {
    std::fprintf(stderr, "ontology service returned nothing\n");
    return 1;
  }
  const meta::Ontology populated = meta::from_xml_string(fetcher.payload);
  std::printf("=== Figure 13: populated ontology '%s' (%zu instances) ===\n",
              populated.name().c_str(), populated.instance_count());
  if (filter.empty()) {
    for (const char* class_name :
         {meta::classes::kTask, meta::classes::kProcessDescription,
          meta::classes::kCaseDescription, meta::classes::kActivity,
          meta::classes::kTransition, meta::classes::kData, meta::classes::kService}) {
      print_instances(populated, class_name);
    }
  } else {
    print_instances(populated, filter);
  }

  const auto issues = populated.validate();
  std::printf("\nvalidation: %zu issues\n", issues.size());
  return issues.empty() ? 0 : 1;
}
