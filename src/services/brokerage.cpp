#include "services/brokerage.hpp"

#include <algorithm>
#include <optional>

#include "services/protocol.hpp"
#include "util/strings.hpp"

namespace ig::svc {

using agent::AclMessage;
using agent::Performative;

void BrokerageService::on_start() {
  register_with_information_service(*this, platform(), "brokerage");
}

void BrokerageService::handle_message(const AclMessage& message) {
  if (message.protocol == protocols::kAdvertise) return handle_advertise(message);
  if (message.protocol == protocols::kQueryProviders) return handle_query_providers(message);
  if (message.protocol == protocols::kReportPerformance) return handle_report(message);
  if (message.protocol == protocols::kQueryHistory) return handle_query_history(message);
  if (!should_bounce_unknown(message)) return;
  send(make_not_understood(message, "unknown protocol '" + message.protocol + "'"));
}

void BrokerageService::handle_advertise(const AclMessage& message) {
  const std::string container = message.param("container", message.sender);
  const std::vector<std::string> services =
      util::split_trimmed(message.param("services"), ',');
  advertised_[container] = services;
  for (const auto& service : services) {
    auto& providers = offers_[service];
    if (std::find(providers.begin(), providers.end(), container) == providers.end())
      providers.push_back(container);
  }
  send(message.make_reply(Performative::Agree));
}

void BrokerageService::handle_query_providers(const AclMessage& message) {
  AclMessage reply = message.make_reply(Performative::Inform);
  const std::string service = message.param("service");
  reply.params["service"] = service;
  reply.params["containers"] = util::join(providers_of(service), ",");
  send(std::move(reply));
}

void BrokerageService::handle_report(const AclMessage& message) {
  if (message.param("outcome") == "success") {
    const auto duration = message.has_param("duration") ? message.param_double("duration")
                                                        : std::optional<double>(0.0);
    // A mangled duration would poison the mean; drop the whole report rather
    // than credit a success with garbage timing.
    if (!duration.has_value()) return;
    auto& history = history_[message.param("container")];
    ++history.successes;
    history.total_duration += *duration;
  } else {
    ++history_[message.param("container")].failures;
  }
  // Performance reports are fire-and-forget; no reply.
}

void BrokerageService::handle_query_history(const AclMessage& message) {
  AclMessage reply = message.make_reply(Performative::Inform);
  const std::string container = message.param("container");
  reply.params["container"] = container;
  const PerformanceHistory* history = history_of(container);
  reply.params["successes"] = std::to_string(history ? history->successes : 0);
  reply.params["failures"] = std::to_string(history ? history->failures : 0);
  reply.params["success-rate"] = util::format_number(history ? history->success_rate() : 1.0, 4);
  reply.params["mean-duration"] =
      util::format_number(history ? history->mean_duration() : 0.0, 4);
  send(std::move(reply));
}

std::vector<std::string> BrokerageService::providers_of(const std::string& service_type) const {
  auto it = offers_.find(service_type);
  return it != offers_.end() ? it->second : std::vector<std::string>{};
}

const PerformanceHistory* BrokerageService::history_of(const std::string& container_id) const {
  auto it = history_.find(container_id);
  return it != history_.end() ? &it->second : nullptr;
}

std::map<std::string, std::vector<std::string>> BrokerageService::equivalence_classes() const {
  std::map<std::string, std::vector<std::string>> classes;
  for (const auto& [container, services] : advertised_) {
    std::vector<std::string> key_parts = services;
    std::sort(key_parts.begin(), key_parts.end());
    classes[util::join(key_parts, "+")].push_back(container);
  }
  return classes;
}

}  // namespace ig::svc
