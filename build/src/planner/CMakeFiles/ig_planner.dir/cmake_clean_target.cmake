file(REMOVE_RECURSE
  "libig_planner.a"
)
