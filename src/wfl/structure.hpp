// Conversion between structured flow expressions and process-description
// graphs (Figures 4–7 of the paper).
//
// `lower_to_process` expands a FlowExpr into the activity/transition graph:
// Concurrent -> FORK/JOIN pair, Selective -> CHOICE/MERGE pair,
// Iterative -> MERGE (loop header) + CHOICE (loop exit) with a back edge,
// exactly the shapes shown in the figures. `lift_from_process` recovers the
// expression from any well-structured graph produced this way (or drawn by a
// user following the same discipline, like Figure 10).
#pragma once

#include "wfl/flowexpr.hpp"
#include "wfl/process.hpp"

namespace ig::wfl {

/// Options controlling activity/transition naming during lowering.
struct LowerOptions {
  /// Prefix for generated activity ids ("A" -> A1, A2, ...).
  std::string activity_id_prefix = "A";
  /// Prefix for generated transition ids ("TR" -> TR1, TR2, ...).
  std::string transition_id_prefix = "TR";
};

/// Expands a flow expression into a process description named `name`.
/// The generated graph always has exactly one Begin and one End activity.
ProcessDescription lower_to_process(const FlowExpr& expr, std::string name,
                                    const LowerOptions& options = {});

/// Recovers the flow expression from a well-structured process description.
/// Throws ProcessError when the graph is not well-structured (e.g. a Fork
/// whose branches do not reconverge on a single Join).
FlowExpr lift_from_process(const ProcessDescription& process);

}  // namespace ig::wfl
