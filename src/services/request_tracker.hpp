// Request reliability: deadlines, bounded retries, dead letters.
//
// The services converse over an unreliable transport (see agent/chaos.hpp):
// a request may be dropped, its reply may be dropped, or the peer may be
// wedged. A RequestTracker gives every outstanding conversation a
// simulation-time deadline; on expiry it resends the original message after
// an exponential backoff with decorrelated jitter, and after a bounded
// number of attempts it gives up and records a dead letter so the owner can
// escalate (exclude the container, re-plan, fail the case) instead of
// hanging forever.
//
// Discipline for owners: call `settle` for *every* reply — including
// Failure bounces — before acting on it. The first settle wins; a false
// return means the reply is late or duplicated (a retry raced the original,
// or the chaos layer duplicated it) and must be dropped, or duplicate
// replies would corrupt enactment state.
//
// All jitter is drawn from util::derive_stream(seed, request-sequence), so
// a chaotic run retries at bitwise-reproducible times.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "agent/message.hpp"
#include "grid/sim.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace ig::svc {

/// Per-conversation reliability knobs. Defaults are generous: on a healthy
/// platform every reply lands long before its deadline and the cancelled
/// timers cost nothing, so enabling the tracker does not change clean runs.
struct RetryPolicy {
  grid::SimTime timeout = 30.0;      ///< per-attempt reply deadline (virtual s)
  int max_attempts = 3;              ///< total sends (1 = never retry)
  grid::SimTime backoff_base = 0.25; ///< jitter lower bound before a resend
  grid::SimTime backoff_cap = 5.0;   ///< jitter upper clamp
};

/// A conversation the tracker gave up on.
struct DeadLetter {
  std::string conversation_id;
  std::string receiver;
  std::string protocol;
  int attempts = 0;
  grid::SimTime first_sent = 0.0;
  grid::SimTime abandoned_at = 0.0;
  std::string reason;
};

class RequestTracker {
 public:
  using SendFn = std::function<void(agent::AclMessage)>;
  using DeadLetterFn = std::function<void(const DeadLetter&)>;

  RequestTracker() = default;
  ~RequestTracker();

  RequestTracker(const RequestTracker&) = delete;
  RequestTracker& operator=(const RequestTracker&) = delete;

  /// Must be called before `track` (agents bind in on_start, when the
  /// platform is available). `on_dead_letter` may be null.
  void bind(grid::Simulation& sim, SendFn send, DeadLetterFn on_dead_letter = nullptr);

  /// Seed for the backoff jitter streams (derive per-shard for engines).
  void set_seed(std::uint64_t seed) noexcept { seed_ = seed; }

  /// Sends `message` (attempt 1 of `policy.max_attempts`) and arms its
  /// deadline. Re-tracking a conversation id replaces the previous entry.
  void track(agent::AclMessage message, const RetryPolicy& policy);

  /// A reply arrived. True: first reply, caller should process it (the
  /// deadline timer is cancelled). False: late, duplicated, or never
  /// tracked — the caller must drop the message.
  bool settle(const std::string& conversation_id);

  /// Cancels one conversation without a reply and without a dead letter.
  bool abandon(const std::string& conversation_id);

  /// Cancels every outstanding conversation whose id starts with `prefix`
  /// (enactments abandon "<case>/" when they finish or re-plan). Returns
  /// how many were cancelled.
  std::size_t abandon_prefix(const std::string& prefix);

  bool outstanding(const std::string& conversation_id) const {
    return pending_.count(conversation_id) > 0;
  }
  std::size_t outstanding_count() const noexcept { return pending_.size(); }

  /// Dead letters observed so far (most recent last; ring-capped). Same
  /// thread as the simulation only.
  const std::vector<DeadLetter>& dead_letters() const noexcept { return dead_letters_; }
  void set_max_dead_letters(std::size_t limit) noexcept { max_dead_letters_ = limit; }

  // Counters are atomic so an engine metrics snapshot may read them from
  // another thread while the shard runs.
  std::size_t retries_total() const noexcept {
    return retries_total_.load(std::memory_order_relaxed);
  }
  std::size_t timeouts_total() const noexcept {
    return timeouts_total_.load(std::memory_order_relaxed);
  }
  std::size_t dead_letters_total() const noexcept {
    return dead_letters_total_.load(std::memory_order_relaxed);
  }

  /// Pushes the atomic counters into `registry` under `labels`. Safe from a
  /// metrics thread while the simulation runs.
  void publish(obs::MetricsRegistry& registry, const obs::Labels& labels = {}) const {
    registry.counter("tracker_retries_total", labels).set_to(retries_total());
    registry.counter("tracker_timeouts_total", labels).set_to(timeouts_total());
    registry.counter("tracker_dead_letters_total", labels).set_to(dead_letters_total());
  }

 private:
  struct Pending {
    agent::AclMessage message;  ///< kept verbatim for resends
    RetryPolicy policy;
    int attempts = 1;
    grid::SimTime first_sent = 0.0;
    grid::SimTime prev_sleep = 0.0;  ///< decorrelated-jitter state
    util::Rng rng{0};
    grid::EventId timer = 0;
  };

  void on_deadline(const std::string& conversation_id);
  void resend(const std::string& conversation_id);

  grid::Simulation* sim_ = nullptr;
  SendFn send_;
  DeadLetterFn on_dead_letter_;
  std::uint64_t seed_ = 0x7E57;
  std::uint64_t next_sequence_ = 0;
  std::map<std::string, Pending> pending_;
  std::vector<DeadLetter> dead_letters_;
  std::size_t max_dead_letters_ = 256;
  std::atomic<std::size_t> retries_total_{0};
  std::atomic<std::size_t> timeouts_total_{0};
  std::atomic<std::size_t> dead_letters_total_{0};
};

}  // namespace ig::svc
