#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace ig::util {

namespace {
bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}
}  // namespace

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char separator) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == separator) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::vector<std::string> split_trimmed(std::string_view text, char separator) {
  std::vector<std::string> fields;
  for (const auto& field : split(text, separator)) {
    auto trimmed = trim(field);
    if (!trimmed.empty()) fields.emplace_back(trimmed);
  }
  return fields;
}

std::string join(const std::vector<std::string>& items, std::string_view separator) {
  std::string result;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) result += separator;
    result += items[i];
  }
  return result;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string result(text);
  std::transform(result.begin(), result.end(), result.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return result;
}

bool is_number(std::string_view text) noexcept {
  text = trim(text);
  if (text.empty()) return false;
  double value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  return ec == std::errc() && ptr == last;
}

std::optional<double> parse_double(std::string_view text) noexcept {
  text = trim(text);
  // from_chars rejects a leading '+' on the mantissa; tolerate exactly one.
  if (!text.empty() && text.front() == '+') text.remove_prefix(1);
  if (text.empty()) return std::nullopt;
  double value = 0;
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::optional<int> parse_int(std::string_view text) noexcept {
  text = trim(text);
  if (!text.empty() && text.front() == '+') text.remove_prefix(1);
  if (text.empty()) return std::nullopt;
  int value = 0;
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_uint(std::string_view text) noexcept {
  text = trim(text);
  if (!text.empty() && text.front() == '+') text.remove_prefix(1);
  if (text.empty() || text.front() == '-') return std::nullopt;
  std::uint64_t value = 0;
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::optional<bool> parse_bool(std::string_view text) noexcept {
  text = trim(text);
  auto equals_lower = [](std::string_view value, std::string_view word) noexcept {
    if (value.size() != word.size()) return false;
    for (std::size_t i = 0; i < value.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(value[i])) != word[i]) return false;
    }
    return true;
  };
  if (text == "1" || equals_lower(text, "true")) return true;
  if (text == "0" || equals_lower(text, "false")) return false;
  return std::nullopt;
}

std::string format_number(double value, int max_decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", max_decimals, value);
  std::string text(buffer);
  if (text.find('.') != std::string::npos) {
    while (!text.empty() && text.back() == '0') text.pop_back();
    if (!text.empty() && text.back() == '.') text.pop_back();
  }
  if (text == "-0") text = "0";
  return text;
}

}  // namespace ig::util
