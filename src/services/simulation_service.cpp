#include "services/simulation_service.hpp"

#include "planner/convert.hpp"
#include "services/protocol.hpp"
#include "util/strings.hpp"
#include "wfl/enact.hpp"
#include "wfl/xml_io.hpp"

namespace ig::svc {

using agent::AclMessage;
using agent::Performative;

void SimulationService::on_start() {
  register_with_information_service(*this, platform(), "simulation");
}

void SimulationService::handle_message(const AclMessage& message) {
  if (message.protocol != protocols::kSimulateCase &&
      message.protocol != protocols::kSimulatePlan) {
    if (!should_bounce_unknown(message)) return;
    send(make_not_understood(message, "unknown protocol '" + message.protocol + "'"));
    return;
  }

  AclMessage reply = message.make_reply(Performative::Inform);
  try {
    const wfl::ProcessDescription process = wfl::process_from_xml_string(message.content);
    wfl::CaseDescription case_description;
    if (message.has_param("case-xml"))
      case_description = wfl::case_from_xml_string(message.param("case-xml"));

    if (message.protocol == protocols::kSimulateCase) {
      // Full dry-run: walk the abstract ATN machine with the declarative
      // (catalogue-backed) executor — no grid resources consumed.
      const wfl::EnactmentResult result =
          wfl::enact(process, case_description, wfl::make_catalogue_executor(catalogue_));
      ++simulations_;
      reply.params["success"] = result.success ? "true" : "false";
      if (!result.error.empty()) reply.params["error"] = result.error;
      reply.params["activities-executed"] = std::to_string(result.activities_executed);
      reply.params["goal-satisfaction"] =
          util::format_number(result.goal_satisfaction, 4);
      reply.content = wfl::dataset_to_xml_string(result.final_data);
      send(std::move(reply));
      return;
    }

    // simulate-plan: fitness evaluation through the planner's flow model.
    const planner::PlanNode plan = planner::from_process(process);
    planner::PlanningProblem problem =
        planner::PlanningProblem::from_case(case_description, catalogue_);
    planner::PlanEvaluator evaluator(problem, config_);
    const planner::Fitness fitness = evaluator.evaluate(plan);
    ++simulations_;
    reply.params["fitness"] = util::format_number(fitness.overall, 4);
    reply.params["validity-fitness"] = util::format_number(fitness.validity, 4);
    reply.params["goal-fitness"] = util::format_number(fitness.goal, 4);
    reply.params["size"] = std::to_string(fitness.size);
    reply.params["flows"] = std::to_string(fitness.flows);
  } catch (const std::exception& error) {
    reply.performative = Performative::Failure;
    reply.params["error"] = error.what();
  }
  send(std::move(reply));
}

}  // namespace ig::svc
