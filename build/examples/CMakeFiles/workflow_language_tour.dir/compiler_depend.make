# Empty compiler generated dependencies file for workflow_language_tour.
# This may be replaced when dependencies are built.
