#include "services/scheduling.hpp"

#include <algorithm>
#include <limits>

#include "services/protocol.hpp"
#include "util/strings.hpp"

namespace ig::svc {

using agent::AclMessage;
using agent::Performative;

Schedule schedule_lpt(std::vector<ScheduledTask> tasks, const std::vector<double>& speeds) {
  Schedule schedule;
  if (speeds.empty()) {
    schedule.tasks = std::move(tasks);
    return schedule;
  }
  std::sort(tasks.begin(), tasks.end(),
            [](const ScheduledTask& a, const ScheduledTask& b) { return a.work > b.work; });
  std::vector<double> finish(speeds.size(), 0.0);
  for (auto& task : tasks) {
    // Place on the machine that finishes this task earliest.
    std::size_t best = 0;
    double best_finish = std::numeric_limits<double>::max();
    for (std::size_t m = 0; m < speeds.size(); ++m) {
      const double speed = speeds[m] > 0 ? speeds[m] : 1e-9;
      const double candidate = finish[m] + task.work / speed;
      if (candidate < best_finish) {
        best_finish = candidate;
        best = m;
      }
    }
    task.assigned_machine = static_cast<int>(best);
    finish[best] = best_finish;
  }
  schedule.tasks = std::move(tasks);
  schedule.makespan = *std::max_element(finish.begin(), finish.end());
  return schedule;
}

namespace {

void branch(const std::vector<ScheduledTask>& tasks, const std::vector<double>& speeds,
            std::size_t index, std::vector<double>& finish, std::vector<int>& assignment,
            double current_max, double& best_makespan, std::vector<int>& best_assignment) {
  if (current_max >= best_makespan) return;  // bound
  if (index == tasks.size()) {
    best_makespan = current_max;
    best_assignment = assignment;
    return;
  }
  for (std::size_t m = 0; m < speeds.size(); ++m) {
    const double speed = speeds[m] > 0 ? speeds[m] : 1e-9;
    const double added = tasks[index].work / speed;
    finish[m] += added;
    assignment[index] = static_cast<int>(m);
    branch(tasks, speeds, index + 1, finish, assignment, std::max(current_max, finish[m]),
           best_makespan, best_assignment);
    finish[m] -= added;
  }
}

}  // namespace

Schedule schedule_optimal(std::vector<ScheduledTask> tasks, const std::vector<double>& speeds) {
  Schedule schedule;
  if (speeds.empty() || tasks.empty()) {
    schedule.tasks = std::move(tasks);
    return schedule;
  }
  // Sorting big-first makes the bound effective.
  std::sort(tasks.begin(), tasks.end(),
            [](const ScheduledTask& a, const ScheduledTask& b) { return a.work > b.work; });
  // Warm start: the greedy (LPT) solution on this exact order seeds both the
  // incumbent bound and the incumbent assignment, so the search only has to
  // *improve* on it (and a -1 assignment can never leak out).
  std::vector<double> finish(speeds.size(), 0.0);
  std::vector<int> best_assignment(tasks.size(), -1);
  double best_makespan = 0.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    std::size_t best_machine = 0;
    double best_finish = std::numeric_limits<double>::max();
    for (std::size_t m = 0; m < speeds.size(); ++m) {
      const double speed = speeds[m] > 0 ? speeds[m] : 1e-9;
      const double candidate = finish[m] + tasks[i].work / speed;
      if (candidate < best_finish) {
        best_finish = candidate;
        best_machine = m;
      }
    }
    best_assignment[i] = static_cast<int>(best_machine);
    finish[best_machine] = best_finish;
    best_makespan = std::max(best_makespan, best_finish);
  }
  std::fill(finish.begin(), finish.end(), 0.0);
  std::vector<int> assignment(tasks.size(), -1);
  branch(tasks, speeds, 0, finish, assignment, 0.0, best_makespan, best_assignment);
  for (std::size_t i = 0; i < tasks.size(); ++i) tasks[i].assigned_machine = best_assignment[i];
  schedule.tasks = std::move(tasks);
  schedule.makespan = best_makespan;
  return schedule;
}

void SchedulingService::on_start() {
  register_with_information_service(*this, platform(), "scheduling");
}

void SchedulingService::handle_message(const AclMessage& message) {
  if (message.protocol != protocols::kScheduleRequest) {
    if (!should_bounce_unknown(message)) return;
    send(make_not_understood(message, "unknown protocol '" + message.protocol + "'"));
    return;
  }
  // params: tasks = "id:work,id:work,..." ; speeds = "1.0,2.0,..."
  std::vector<ScheduledTask> tasks;
  for (const auto& entry : util::split_trimmed(message.param("tasks"), ',')) {
    const auto parts = util::split(entry, ':');
    ScheduledTask task;
    task.task_id = parts.empty() ? entry : parts[0];
    task.work = 1.0;
    if (parts.size() > 1) {
      const auto work = util::parse_double(parts[1]);
      if (!work.has_value()) {
        send(make_not_understood(message, "bad task entry '" + entry + "': work must be numeric"));
        return;
      }
      task.work = *work;
    }
    tasks.push_back(std::move(task));
  }
  std::vector<double> speeds;
  for (const auto& entry : util::split_trimmed(message.param("speeds"), ',')) {
    const auto speed = util::parse_double(entry);
    if (!speed.has_value()) {
      send(make_not_understood(message, "bad speed entry '" + entry + "': must be numeric"));
      return;
    }
    speeds.push_back(*speed);
  }

  const bool optimal = message.param("mode") == "optimal" && tasks.size() <= 12;
  const Schedule schedule =
      optimal ? schedule_optimal(std::move(tasks), speeds) : schedule_lpt(std::move(tasks), speeds);

  AclMessage reply = message.make_reply(Performative::Inform);
  reply.params["makespan"] = util::format_number(schedule.makespan, 6);
  std::vector<std::string> assignments;
  assignments.reserve(schedule.tasks.size());
  for (const auto& task : schedule.tasks)
    assignments.push_back(task.task_id + ":" + std::to_string(task.assigned_machine));
  reply.params["assignment"] = util::join(assignments, ",");
  send(std::move(reply));
}

}  // namespace ig::svc
