// Chaos soak — enactment under deterministic message-level fault injection.
//
// Sweeps the drop rate applied to container-bound messages (with a paired
// delay probability) on a single-shard engine and reports the recovery
// rate, the request-layer work that bought it (retries, dead letters), and
// the virtual-time cost versus the fault-free baseline. A final pass
// re-runs the harshest point with the same seed and checks that the fault
// counts and case outcomes are identical — the whole nemesis is replayable.
//
// Appends one JSON Lines record per point to BENCH_chaos.json. With
// `--export` the replay pass also runs traced and writes its observability
// artifacts — chaos_trace.json (Chrome trace of the shard's spans) and
// chaos_metrics.prom (Prometheus exposition) — validating both formats
// before reporting success.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "engine/engine.hpp"
#include "obs/export.hpp"
#include "util/stopwatch.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"

using namespace ig;

namespace {

struct Point {
  double drop = 0.0;
  double delay = 0.0;
  std::size_t cases = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  double recovery_rate = 0.0;
  double mean_makespan = 0.0;  ///< virtual seconds, over completed cases
  double wall_seconds = 0.0;
  engine::EngineMetrics metrics;
  bool export_ok = true;  ///< false when a written artifact failed validation
};

/// Writes `content` to `path`; returns false (and complains) on failure.
bool write_artifact(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    return false;
  }
  out << content << '\n';
  return true;
}

Point run_point(double drop, double delay, std::size_t cases, std::uint64_t seed,
                bool export_artifacts = false) {
  engine::EngineConfig config;
  config.shards = 1;  // bit-reproducible: one shard, one event calendar
  config.queue_capacity = cases + 8;
  config.max_case_retries = 1;
  config.environment.topology.domains = 2;
  config.environment.topology.nodes_per_domain = 3;
  config.environment.heartbeat_period = 5.0;
  // The loose defaults assume an honest transport; under chaos the request
  // layer is the recovery path, so tighten it to re-send within a makespan.
  config.environment.coordination.exec_policy = {300.0, 3, 0.5, 10.0};
  config.environment.coordination.replan_policy = {300.0, 2, 0.5, 10.0};
  if (drop > 0.0 || delay > 0.0) {
    agent::ChaosRule rule;
    rule.match.receiver = "ac-*";  // everything bound for a container
    rule.drop = drop;
    rule.delay = delay;
    config.environment.chaos.rules.push_back(rule);
    config.environment.chaos.seed = seed;
  }
  // Tracing is passive: enabling it on the export pass must not perturb the
  // replay determinism check (spans only observe the event stream).
  if (export_artifacts) config.environment.span_tracing = true;
  engine::EnactmentEngine engine(config);

  util::Stopwatch watch;
  std::vector<engine::CaseId> ids;
  for (std::size_t i = 0; i < cases; ++i) {
    const double resolution = 8.0 - 0.04 * static_cast<double>(i);
    ids.push_back(engine.submit(virolab::make_fig10_process(resolution),
                                virolab::make_case_description(resolution)));
  }
  engine.drain();

  Point point;
  point.drop = drop;
  point.delay = delay;
  point.cases = cases;
  point.wall_seconds = watch.elapsed_seconds();
  point.metrics = engine.metrics();
  point.completed = point.metrics.completed;
  point.failed = point.metrics.failed;
  point.recovery_rate =
      cases > 0 ? static_cast<double>(point.completed) / static_cast<double>(cases) : 0.0;
  double makespan_sum = 0.0;
  for (const engine::CaseId id : ids) {
    const auto outcome = engine.result(id);
    if (outcome.has_value() && outcome->state == engine::CaseState::Completed)
      makespan_sum += outcome->makespan;
  }
  if (point.completed > 0)
    point.mean_makespan = makespan_sum / static_cast<double>(point.completed);

  if (export_artifacts) {
    const std::string trace = obs::to_chrome_trace(engine.shard_spans(0));
    const std::string exposition = obs::to_prometheus(engine.registry().snapshot());
    std::string problem;
    if (!obs::validate_json(trace, &problem)) {
      std::fprintf(stderr, "chaos_trace.json invalid: %s\n", problem.c_str());
      point.export_ok = false;
    }
    if (!obs::validate_prometheus(exposition, &problem)) {
      std::fprintf(stderr, "chaos_metrics.prom invalid: %s\n", problem.c_str());
      point.export_ok = false;
    }
    if (!write_artifact("chaos_trace.json", trace)) point.export_ok = false;
    if (!write_artifact("chaos_metrics.prom", exposition)) point.export_ok = false;
  }
  return point;
}

void emit_record(const Point& point, double baseline_makespan) {
  bench::JsonRecord record("bench_chaos_soak");
  record.add("drop", point.drop);
  record.add("delay", point.delay);
  record.add("cases", point.cases);
  record.add("completed", point.completed);
  record.add("failed", point.failed);
  record.add("recovery_rate", point.recovery_rate);
  record.add("faults_injected", point.metrics.faults_injected);
  record.add("request_retries", point.metrics.request_retries);
  record.add("dead_letters", point.metrics.dead_letters);
  record.add("containers_recovered", point.metrics.containers_recovered);
  record.add("mean_makespan", point.mean_makespan);
  record.add("added_makespan", point.mean_makespan - baseline_makespan);
  record.add("wall_seconds", point.wall_seconds);
  record.append_to("BENCH_chaos.json");
}

void print_point(const Point& point, double baseline_makespan) {
  std::printf("%-7.2f %-7.2f %-7zu %-6zu %-6zu %-9zu %-8zu %-8zu %-10.1f %+.1f\n",
              point.drop, point.delay, point.cases, point.completed, point.failed,
              point.metrics.faults_injected, point.metrics.request_retries,
              point.metrics.dead_letters, point.mean_makespan,
              point.mean_makespan - baseline_makespan);
}

/// Steal-heavy smoke: a 4-shard fleet time-sliced over 2 job-system workers
/// under chaos, run twice with the same seed. Forces constant pump-stream
/// migration between workers and checks the fleet still completes the same
/// set of cases both times — stealing moves *where* a shard's slices run,
/// never what they compute. (Per-case bitwise replay is the 1-shard
/// guarantee checked above; a multi-shard fleet only promises outcome-set
/// equality because shards race for queue admission.)
int run_steal_smoke() {
  const std::size_t cases = 12;
  std::printf("Steal smoke: %zu fig10 cases, 4 shards over 2 workers, 20%% drop\n", cases);

  auto run_once = [&] {
    engine::EngineConfig config;
    config.shards = 4;
    config.workers = 2;
    config.queue_capacity = cases + 8;
    config.max_case_retries = 1;
    config.environment.topology.domains = 2;
    config.environment.topology.nodes_per_domain = 3;
    config.environment.coordination.exec_policy = {300.0, 3, 0.5, 10.0};
    config.environment.coordination.replan_policy = {300.0, 2, 0.5, 10.0};
    agent::ChaosRule rule;
    rule.match.receiver = "ac-*";
    rule.drop = 0.2;
    rule.delay = 0.1;
    config.environment.chaos.rules.push_back(rule);
    config.environment.chaos.seed = 2004;
    engine::EnactmentEngine engine(config);
    for (std::size_t i = 0; i < cases; ++i) {
      const double resolution = 8.0 - 0.04 * static_cast<double>(i);
      engine.submit(virolab::make_fig10_process(resolution),
                    virolab::make_case_description(resolution));
    }
    engine.drain();
    return engine.metrics();
  };

  const engine::EngineMetrics first = run_once();
  const engine::EngineMetrics second = run_once();
  std::printf("run 1: completed %zu, failed %zu, steal rate %.1f%% "
              "(%zu of %zu jobs)\n",
              first.completed, first.failed, 100.0 * first.steal_rate, first.jobs_stolen,
              first.jobs_executed);
  std::printf("run 2: completed %zu, failed %zu, steal rate %.1f%%\n", second.completed,
              second.failed, 100.0 * second.steal_rate);
  const bool complete = first.completed + first.failed == cases;
  const bool stable = first.completed == second.completed && first.failed == second.failed;
  std::printf("all cases terminal: %s; same outcome counts across runs: %s\n",
              complete ? "yes" : "NO", stable ? "yes" : "NO");
  return (complete && stable) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool export_artifacts = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--export") == 0) export_artifacts = true;
    // Smoke-only mode: skip the soak sweep entirely (CI's steal check).
    if (std::strcmp(argv[i], "--steal-smoke") == 0) return run_steal_smoke();
  }

  const std::size_t cases = quick ? 6 : 16;
  const std::uint64_t seed = 2004;
  std::printf("Chaos soak: %zu fig10 cases, 1 shard, container-bound drop/delay sweep, "
              "seed %llu\n\n",
              cases, static_cast<unsigned long long>(seed));
  std::printf("%-7s %-7s %-7s %-6s %-6s %-9s %-8s %-8s %-10s %s\n", "drop", "delay",
              "cases", "done", "fail", "injected", "retries", "dead", "makespan",
              "added");

  const std::vector<std::pair<double, double>> sweep =
      quick ? std::vector<std::pair<double, double>>{{0.0, 0.0}, {0.2, 0.1}}
            : std::vector<std::pair<double, double>>{
                  {0.0, 0.0}, {0.1, 0.05}, {0.2, 0.1}, {0.3, 0.15}};

  double baseline_makespan = 0.0;
  double worst_recovery = 1.0;
  Point harshest;
  for (const auto& [drop, delay] : sweep) {
    const Point point = run_point(drop, delay, cases, seed);
    if (drop == 0.0 && delay == 0.0) baseline_makespan = point.mean_makespan;
    if (drop > 0.0 && point.recovery_rate < worst_recovery)
      worst_recovery = point.recovery_rate;
    print_point(point, baseline_makespan);
    emit_record(point, baseline_makespan);
    harshest = point;
  }

  // Replayability: the harshest point again, same seed -> same chaos, same
  // retries, same outcomes. This is what makes chaotic failures debuggable.
  // The export pass piggybacks on the replay: tracing is passive, so the
  // traced run must still match the untraced original bit for bit.
  const Point replay = run_point(harshest.drop, harshest.delay, cases, seed,
                                 export_artifacts);
  const bool deterministic =
      replay.completed == harshest.completed && replay.failed == harshest.failed &&
      replay.metrics.faults_injected == harshest.metrics.faults_injected &&
      replay.metrics.request_retries == harshest.metrics.request_retries &&
      replay.metrics.dead_letters == harshest.metrics.dead_letters;
  std::printf("\nsame-seed replay identical (outcomes + fault counts): %s\n",
              deterministic ? "yes" : "NO");

  const bool recovery_ok = worst_recovery >= 0.95;
  std::printf("recovery rate under chaos: %.0f%% (target >= 95%%)\n",
              worst_recovery * 100.0);
  if (export_artifacts)
    std::printf("exported chaos_trace.json + chaos_metrics.prom: %s\n",
                replay.export_ok ? "valid" : "INVALID");

  bench::JsonRecord summary("bench_chaos_soak");
  summary.add("config", std::string("summary"));
  summary.add("worst_recovery_rate", worst_recovery);
  summary.add("deterministic_replay", std::string(deterministic ? "yes" : "no"));
  summary.append_to("BENCH_chaos.json");
  return (deterministic && recovery_ok && replay.export_ok) ? 0 : 1;
}
