#include <gtest/gtest.h>

#include "virolab/catalogue.hpp"
#include "wfl/case_description.hpp"
#include "wfl/xml_io.hpp"

namespace ig::wfl {
namespace {

TEST(GoalSpec, ExistentialSatisfaction) {
  GoalSpec goal;
  goal.condition = Condition::parse("R.Classification = \"Resolution File\"");
  DataSet state;
  EXPECT_FALSE(goal.satisfied_by(state));
  state.put(DataSpec("other").with_classification("3D Model"));
  EXPECT_FALSE(goal.satisfied_by(state));
  state.put(DataSpec("res").with_classification("Resolution File"));
  EXPECT_TRUE(goal.satisfied_by(state));
}

TEST(GoalSpec, VariableFreeCondition) {
  GoalSpec goal;
  goal.condition = Condition::parse("true");
  EXPECT_TRUE(goal.satisfied_by(DataSet{}));
}

TEST(CaseDescription, GoalSatisfactionFraction) {
  CaseDescription cd("test");
  GoalSpec g1;
  g1.condition = Condition::parse("R.Classification = \"Resolution File\"");
  GoalSpec g2;
  g2.condition = Condition::parse("M.Classification = \"3D Model\"");
  cd.add_goal(g1);
  cd.add_goal(g2);

  DataSet state;
  EXPECT_DOUBLE_EQ(cd.goal_satisfaction(state), 0.0);
  state.put(DataSpec("m").with_classification("3D Model"));
  EXPECT_DOUBLE_EQ(cd.goal_satisfaction(state), 0.5);
  state.put(DataSpec("r").with_classification("Resolution File"));
  EXPECT_DOUBLE_EQ(cd.goal_satisfaction(state), 1.0);
}

TEST(CaseDescription, NoGoalsIsFullySatisfied) {
  CaseDescription cd("empty");
  EXPECT_DOUBLE_EQ(cd.goal_satisfaction(DataSet{}), 1.0);
}

TEST(CaseDescription, ConstraintsNamedAndReplaced) {
  CaseDescription cd("test");
  cd.add_constraint("Cons1", Condition::parse("R.Value > 8"));
  ASSERT_NE(cd.find_constraint("Cons1"), nullptr);
  EXPECT_EQ(cd.find_constraint("Cons1")->to_string(), "R.Value > 8");
  EXPECT_EQ(cd.find_constraint("Cons2"), nullptr);
  cd.add_constraint("Cons1", Condition::parse("R.Value > 6"));
  EXPECT_EQ(cd.constraints().size(), 1u);
  EXPECT_EQ(cd.find_constraint("Cons1")->to_string(), "R.Value > 6");
}

TEST(CaseXml, RoundTrip) {
  CaseDescription original = virolab::make_case_description();
  const CaseDescription restored = case_from_xml_string(case_to_xml_string(original));
  EXPECT_EQ(restored.name(), original.name());
  EXPECT_EQ(restored.id(), original.id());
  EXPECT_EQ(restored.process_name(), "PD-3DSD");
  EXPECT_EQ(restored.initial_data().size(), 7u);
  ASSERT_EQ(restored.goals().size(), 1u);
  EXPECT_EQ(restored.goals()[0].condition.to_string(),
            original.goals()[0].condition.to_string());
  ASSERT_NE(restored.find_constraint("Cons1"), nullptr);
  EXPECT_EQ(restored.expected_results(), original.expected_results());
  // Data properties survive.
  ASSERT_NE(restored.initial_data().find("D7"), nullptr);
  EXPECT_EQ(restored.initial_data().find("D7")->classification(), "2D Image");
  EXPECT_DOUBLE_EQ(restored.initial_data().find("D7")->get("Size").as_number(), 1536.0);
}

TEST(CaseXml, DatasetRoundTrip) {
  DataSet original;
  original.put(DataSpec("a").with_classification("X").with("Size", meta::Value(2.5)));
  original.put(DataSpec("b").with("Flag", meta::Value(true)));
  const DataSet restored = dataset_from_xml_string(dataset_to_xml_string(original));
  EXPECT_EQ(restored, original);
}

TEST(CaseXml, RejectsWrongRoot) {
  EXPECT_THROW(case_from_xml_string("<process/>"), ProcessError);
}

}  // namespace
}  // namespace ig::wfl
