#include "services/matchmaking.hpp"

#include <algorithm>

#include "services/protocol.hpp"
#include "util/strings.hpp"

namespace ig::svc {

using agent::AclMessage;
using agent::Performative;

MatchStrategy match_strategy_from_string(const std::string& text) {
  if (text == "fastest") return MatchStrategy::Fastest;
  if (text == "reliable") return MatchStrategy::Reliable;
  if (text == "first-fit") return MatchStrategy::FirstFit;
  if (text == "deadline") return MatchStrategy::Deadline;
  if (text == "cheapest") return MatchStrategy::Cheapest;
  return MatchStrategy::Balanced;
}

bool MatchmakingService::quarantined(const std::string& container_id) const {
  return monitoring_ != nullptr &&
         monitoring_->liveness_of(container_id) == Liveness::Dead;
}

double MatchmakingService::expected_duration(const grid::ApplicationContainer& container,
                                             double work, grid::SimTime now) const {
  const grid::GridNode* node = grid_->find_node(container.node_id());
  if (node == nullptr) return 1e18;
  const double effective_speed =
      std::max(node->hardware().speed * node->node_count(), 1e-9);
  const double backlog = std::max(0.0, node->next_free() - now);
  double estimate = backlog + work / effective_speed;
  // History sanity check: when the container has past executions, a much
  // larger observed mean dominates the model-based estimate (the resource
  // may be slower than advertised — brokerage data "may be obsolete").
  if (brokerage_ != nullptr) {
    const PerformanceHistory* history = brokerage_->history_of(container.id());
    if (history != nullptr && history->successes > 0)
      estimate = std::max(estimate, history->mean_duration());
  }
  return estimate;
}

std::vector<std::string> MatchmakingService::rank_deadline(
    const std::string& service_type, const std::vector<std::string>& excluded, double work,
    double deadline_s, grid::SimTime now) const {
  struct Candidate {
    bool feasible;
    double key;  // feasible: -reliability (higher better); infeasible: duration
    std::string id;
  };
  std::vector<Candidate> candidates;
  for (const auto* container : grid_->containers_hosting(service_type)) {
    if (std::find(excluded.begin(), excluded.end(), container->id()) != excluded.end()) continue;
    if (quarantined(container->id())) continue;
    const double duration = expected_duration(*container, work, now);
    const bool feasible = duration <= deadline_s;
    const double key = feasible ? -score(*container, MatchStrategy::Reliable) : duration;
    candidates.push_back({feasible, key, container->id()});
  }
  std::stable_sort(candidates.begin(), candidates.end(), [](const Candidate& a,
                                                            const Candidate& b) {
    if (a.feasible != b.feasible) return a.feasible;  // feasible first
    return a.key < b.key;
  });
  std::vector<std::string> ranked;
  ranked.reserve(candidates.size());
  for (auto& candidate : candidates) ranked.push_back(std::move(candidate.id));
  return ranked;
}

double MatchmakingService::score(const grid::ApplicationContainer& container,
                                 MatchStrategy strategy) const {
  const grid::GridNode* node = grid_->find_node(container.node_id());
  if (node == nullptr) return 0.0;
  const double effective_speed = node->hardware().speed * node->node_count();
  const double backlog = node->next_free();
  double history_rate = 1.0;
  if (brokerage_ != nullptr) {
    const PerformanceHistory* history = brokerage_->history_of(container.id());
    if (history != nullptr) history_rate = history->success_rate();
  }
  switch (strategy) {
    case MatchStrategy::Fastest:
      return effective_speed;
    case MatchStrategy::Reliable:
      return node->reliability() * history_rate;
    case MatchStrategy::FirstFit:
      return 1.0;  // order preserved by stable sort
    case MatchStrategy::Cheapest:
      return 1.0 / std::max(container.price_factor(), 1e-9);
    case MatchStrategy::Deadline:  // handled by rank_deadline
    case MatchStrategy::Balanced:
      break;
  }
  return effective_speed / (1.0 + backlog) * node->reliability() * history_rate;
}

std::vector<std::string> MatchmakingService::rank(const std::string& service_type,
                                                  const std::vector<std::string>& excluded,
                                                  MatchStrategy strategy) const {
  std::vector<std::pair<double, std::string>> scored;
  for (const auto* container : grid_->containers_hosting(service_type)) {
    if (std::find(excluded.begin(), excluded.end(), container->id()) != excluded.end()) continue;
    if (quarantined(container->id())) continue;
    scored.emplace_back(score(*container, strategy), container->id());
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> ranked;
  ranked.reserve(scored.size());
  for (auto& [points, id] : scored) {
    (void)points;
    ranked.push_back(std::move(id));
  }
  return ranked;
}

void MatchmakingService::on_start() {
  register_with_information_service(*this, platform(), "matchmaking");
}

void MatchmakingService::handle_message(const AclMessage& message) {
  if (message.protocol != protocols::kFindContainer) {
    if (!should_bounce_unknown(message)) return;
    send(make_not_understood(message, "unknown protocol '" + message.protocol + "'"));
    return;
  }
  const std::string service = message.param("service");
  const std::vector<std::string> excluded = util::split_trimmed(message.param("exclude"), ',');
  const MatchStrategy strategy = match_strategy_from_string(message.param("strategy"));
  std::vector<std::string> ranked;
  if (strategy == MatchStrategy::Deadline) {
    const auto work = message.has_param("work") ? message.param_double("work")
                                                : std::optional<double>(1.0);
    const auto deadline = message.has_param("deadline") ? message.param_double("deadline")
                                                        : std::optional<double>(1e18);
    if (!work.has_value()) {
      send(make_not_understood(message, message.describe_bad_param("work", "double")));
      return;
    }
    if (!deadline.has_value()) {
      send(make_not_understood(message, message.describe_bad_param("deadline", "double")));
      return;
    }
    ranked = rank_deadline(service, excluded, *work, *deadline, now());
  } else {
    ranked = rank(service, excluded, strategy);
  }

  if (ranked.empty()) {
    AclMessage reply = message.make_reply(Performative::Failure);
    reply.params["service"] = service;
    reply.params["error"] = "no available container hosts '" + service + "'";
    send(std::move(reply));
    return;
  }
  AclMessage reply = message.make_reply(Performative::Inform);
  reply.params["service"] = service;
  reply.params["container"] = ranked.front();
  reply.params["candidates"] = util::join(ranked, ",");
  send(std::move(reply));
}

}  // namespace ig::svc
