#include "agent/chaos.hpp"

namespace ig::agent {

namespace {

/// Exact match, or prefix match when the pattern ends in '*'; empty matches
/// everything.
bool matches_pattern(const std::string& pattern, const std::string& value) {
  if (pattern.empty()) return true;
  if (pattern.back() == '*')
    return value.compare(0, pattern.size() - 1, pattern, 0, pattern.size() - 1) == 0;
  return pattern == value;
}

}  // namespace

bool ChaosMatch::matches(const AclMessage& message) const {
  if (performative.has_value() && *performative != message.performative) return false;
  if (!matches_pattern(sender, message.sender)) return false;
  if (!matches_pattern(receiver, message.receiver)) return false;
  if (!matches_pattern(protocol, message.protocol)) return false;
  return true;
}

const ChaosRule* ChaosPolicy::first_match(const AclMessage& message) const {
  for (const auto& rule : rules) {
    if (rule.match.matches(message)) return &rule;
  }
  return nullptr;
}

void ChaosStats::publish(obs::MetricsRegistry& registry, const obs::Labels& labels) const {
  const auto set = [&](const char* kind, std::size_t value) {
    obs::Labels with_kind = labels;
    with_kind.emplace_back("kind", kind);
    registry.counter("chaos_faults_total", with_kind).set_to(value);
  };
  set("dropped", dropped);
  set("delayed", delayed);
  set("duplicated", duplicated);
  set("reordered", reordered);
  set("crashed", crashed);
  set("hung", hung);
  set("swallowed", swallowed);
}

}  // namespace ig::agent
