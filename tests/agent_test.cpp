#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "agent/platform.hpp"
#include "agent/trace_render.hpp"

namespace ig::agent {
namespace {

/// Records everything it receives; can auto-reply.
class EchoAgent : public Agent {
 public:
  explicit EchoAgent(std::string name, bool reply = false)
      : Agent(std::move(name)), reply_(reply) {}

  void handle_message(const AclMessage& message) override {
    received.push_back(message);
    if (reply_ && message.performative == Performative::Request) {
      send(message.make_reply(Performative::Inform));
    }
  }

  std::vector<AclMessage> received;

 private:
  bool reply_;
};

TEST(Message, ParamAccess) {
  AclMessage message;
  message.params["k"] = "v";
  EXPECT_EQ(message.param("k"), "v");
  EXPECT_EQ(message.param("missing", "fb"), "fb");
  EXPECT_TRUE(message.has_param("k"));
  EXPECT_FALSE(message.has_param("missing"));
}

TEST(Message, MakeReplySwapsEndpoints) {
  AclMessage message;
  message.performative = Performative::Request;
  message.sender = "cs";
  message.receiver = "ps";
  message.conversation_id = "c1";
  message.protocol = "planning-request";
  const AclMessage reply = message.make_reply(Performative::Inform);
  EXPECT_EQ(reply.sender, "ps");
  EXPECT_EQ(reply.receiver, "cs");
  EXPECT_EQ(reply.conversation_id, "c1");
  EXPECT_EQ(reply.protocol, "planning-request");
  EXPECT_EQ(reply.performative, Performative::Inform);
}

TEST(Message, DisplayString) {
  AclMessage message;
  message.performative = Performative::Request;
  message.sender = "cs";
  message.receiver = "ps";
  message.protocol = "planning-request";
  EXPECT_EQ(message.to_display_string(), "REQUEST cs -> ps [planning-request]");
}

TEST(Platform, RegisterAndLookup) {
  grid::Simulation sim;
  AgentPlatform platform(sim);
  platform.spawn<EchoAgent>("a");
  EXPECT_TRUE(platform.has_agent("a"));
  EXPECT_NE(platform.find_agent("a"), nullptr);
  EXPECT_EQ(platform.find_agent("b"), nullptr);
  EXPECT_EQ(platform.agent_names(), (std::vector<std::string>{"a"}));
}

TEST(Platform, DuplicateNameThrows) {
  grid::Simulation sim;
  AgentPlatform platform(sim);
  platform.spawn<EchoAgent>("a");
  EXPECT_THROW(platform.spawn<EchoAgent>("a"), std::invalid_argument);
}

TEST(Platform, DeliversAfterLatency) {
  grid::Simulation sim;
  AgentPlatform platform(sim);
  auto& receiver = platform.spawn<EchoAgent>("rx");
  platform.spawn<EchoAgent>("tx");
  platform.set_latency_function([](const std::string&, const std::string&) { return 0.25; });

  AclMessage message;
  message.sender = "tx";
  message.receiver = "rx";
  platform.send(message);
  EXPECT_TRUE(receiver.received.empty());  // not yet delivered
  sim.run();
  ASSERT_EQ(receiver.received.size(), 1u);
  EXPECT_DOUBLE_EQ(sim.now(), 0.25);
  EXPECT_EQ(platform.messages_delivered(), 1u);
}

TEST(Platform, RequestReplyConversation) {
  grid::Simulation sim;
  AgentPlatform platform(sim);
  auto& client = platform.spawn<EchoAgent>("client");
  platform.spawn<EchoAgent>("server", /*reply=*/true);

  AclMessage request;
  request.performative = Performative::Request;
  request.sender = "client";
  request.receiver = "server";
  request.conversation_id = "conv-9";
  platform.send(request);
  sim.run();
  ASSERT_EQ(client.received.size(), 1u);
  EXPECT_EQ(client.received[0].performative, Performative::Inform);
  EXPECT_EQ(client.received[0].conversation_id, "conv-9");
}

TEST(Platform, UnknownReceiverBouncesToSender) {
  grid::Simulation sim;
  AgentPlatform platform(sim);
  auto& sender = platform.spawn<EchoAgent>("tx");
  AclMessage message;
  message.performative = Performative::Request;
  message.sender = "tx";
  message.receiver = "ghost";
  message.protocol = "anything";
  platform.send(message);
  sim.run();
  ASSERT_EQ(sender.received.size(), 1u);
  EXPECT_EQ(sender.received[0].performative, Performative::Failure);
  EXPECT_EQ(sender.received[0].protocol, "platform-error");
  EXPECT_NE(sender.received[0].param("error").find("ghost"), std::string::npos);
}

TEST(Platform, FailureToUnknownDoesNotLoop) {
  grid::Simulation sim;
  AgentPlatform platform(sim);
  AclMessage message;
  message.performative = Performative::Failure;  // failures never bounce
  message.sender = "ghost-a";
  message.receiver = "ghost-b";
  platform.send(message);
  EXPECT_LT(sim.run(1000), 1000u);  // terminates
}

TEST(Platform, DeregisterDropsAgent) {
  grid::Simulation sim;
  AgentPlatform platform(sim);
  platform.spawn<EchoAgent>("a");
  EXPECT_TRUE(platform.deregister_agent("a"));
  EXPECT_FALSE(platform.deregister_agent("a"));
  EXPECT_FALSE(platform.has_agent("a"));
}

/// Always throws: models a buggy agent whose handler dies on any input.
class ThrowingAgent : public Agent {
 public:
  using Agent::Agent;
  void handle_message(const AclMessage& message) override {
    throw std::runtime_error("boom on " + std::string(to_string(message.performative)));
  }
};

TEST(Platform, ContainsThrowingHandlerAndRepliesFailure) {
  grid::Simulation sim;
  AgentPlatform platform(sim);
  platform.set_tracing(true);
  auto& sender = platform.spawn<EchoAgent>("tx");
  platform.spawn<ThrowingAgent>("bad");

  AclMessage request;
  request.performative = Performative::Request;
  request.sender = "tx";
  request.receiver = "bad";
  request.protocol = "some-protocol";
  request.conversation_id = "conv-1";
  platform.send(request);
  sim.run();

  // The exception is contained: the sender gets a Failure reply that keeps
  // the conversation, names the culprit, and carries the what() string.
  ASSERT_EQ(sender.received.size(), 1u);
  EXPECT_EQ(sender.received[0].performative, Performative::Failure);
  EXPECT_EQ(sender.received[0].conversation_id, "conv-1");
  EXPECT_EQ(sender.received[0].protocol, "some-protocol");
  EXPECT_NE(sender.received[0].param("reason").find("bad"), std::string::npos);
  EXPECT_NE(sender.received[0].param("reason").find("boom"), std::string::npos);

  // Counters attribute the failure to the throwing agent only.
  EXPECT_EQ(platform.handler_failures("bad"), 1u);
  EXPECT_EQ(platform.handler_failures("tx"), 0u);
  EXPECT_EQ(platform.handler_failures_total(), 1u);
  ASSERT_EQ(platform.handler_failures_by_agent().size(), 1u);

  // The trace annotates the poisoned delivery.
  EXPECT_NE(platform.trace_to_string().find("HANDLER ERROR"), std::string::npos);
  bool annotated = false;
  for (const auto& record : platform.trace())
    if (!record.handler_error.empty()) annotated = true;
  EXPECT_TRUE(annotated);
}

TEST(Platform, ThrowingOnFailureReplyDoesNotLoop) {
  // tx throws on everything too — including the containment Failure it gets
  // back. The platform must not convert that second throw into another
  // reply, or two buggy agents would ping-pong forever.
  grid::Simulation sim;
  AgentPlatform platform(sim);
  platform.spawn<ThrowingAgent>("tx");
  platform.spawn<ThrowingAgent>("bad");

  AclMessage request;
  request.performative = Performative::Request;
  request.sender = "tx";
  request.receiver = "bad";
  platform.send(request);
  EXPECT_LT(sim.run(1000), 1000u);  // terminates
  EXPECT_EQ(platform.handler_failures("bad"), 1u);
  EXPECT_EQ(platform.handler_failures("tx"), 1u);
  EXPECT_EQ(platform.handler_failures_total(), 2u);
}

TEST(Platform, ContainmentSurvivesDepartedSender) {
  // The buggy agent's correspondent may be gone by the time the throw
  // happens; the containment net must cope without a reply target.
  grid::Simulation sim;
  AgentPlatform platform(sim);
  platform.spawn<EchoAgent>("tx");
  platform.spawn<ThrowingAgent>("bad");
  AclMessage request;
  request.performative = Performative::Request;
  request.sender = "tx";
  request.receiver = "bad";
  platform.send(request);
  platform.deregister_agent("tx");
  EXPECT_LT(sim.run(1000), 1000u);
  EXPECT_EQ(platform.handler_failures_total(), 1u);
}

TEST(Platform, TraceRecordsDeliveries) {
  grid::Simulation sim;
  AgentPlatform platform(sim);
  platform.set_tracing(true);
  platform.spawn<EchoAgent>("rx");
  platform.spawn<EchoAgent>("tx");
  AclMessage message;
  message.performative = Performative::Inform;
  message.sender = "tx";
  message.receiver = "rx";
  message.protocol = "test-proto";
  platform.send(message);
  sim.run();
  ASSERT_EQ(platform.trace().size(), 1u);
  EXPECT_TRUE(platform.trace()[0].delivered);
  const std::string rendered = platform.trace_to_string();
  EXPECT_NE(rendered.find("INFORM tx -> rx [test-proto]"), std::string::npos);
  platform.clear_trace();
  EXPECT_TRUE(platform.trace().empty());
}

TEST(Platform, TraceCapBoundsMemory) {
  grid::Simulation sim;
  AgentPlatform platform(sim);
  platform.set_tracing(true);
  platform.spawn<EchoAgent>("rx");
  platform.spawn<EchoAgent>("tx");
  EXPECT_EQ(platform.trace_limit(), 0u);  // unlimited by default
  platform.set_trace_limit(3);

  for (int i = 0; i < 5; ++i) {
    AclMessage message;
    message.performative = Performative::Inform;
    message.sender = "tx";
    message.receiver = "rx";
    message.protocol = "msg-" + std::to_string(i);
    platform.send(message);
    sim.run();
  }
  // The ring keeps the newest 3 records and counts what it dropped.
  ASSERT_EQ(platform.trace().size(), 3u);
  EXPECT_EQ(platform.trace_dropped(), 2u);
  EXPECT_EQ(platform.trace()[0].message.protocol, "msg-2");
  EXPECT_EQ(platform.trace()[2].message.protocol, "msg-4");

  // Tightening the cap trims existing overflow immediately.
  platform.set_trace_limit(1);
  ASSERT_EQ(platform.trace().size(), 1u);
  EXPECT_EQ(platform.trace()[0].message.protocol, "msg-4");
  EXPECT_EQ(platform.trace_dropped(), 4u);

  // Lifting the cap stops dropping without clearing history.
  platform.set_trace_limit(0);
  AclMessage last;
  last.performative = Performative::Inform;
  last.sender = "tx";
  last.receiver = "rx";
  last.protocol = "msg-5";
  platform.send(last);
  sim.run();
  EXPECT_EQ(platform.trace().size(), 2u);
}

TEST(Platform, AgentSchedulesTimers) {
  class TimerAgent : public Agent {
   public:
    using Agent::Agent;
    void on_start() override {
      schedule(2.0, [this] { fired_at = now(); });
    }
    void handle_message(const AclMessage&) override {}
    grid::SimTime fired_at = -1;
  };
  grid::Simulation sim;
  AgentPlatform platform(sim);
  auto& timer = platform.spawn<TimerAgent>("t");
  sim.run();
  EXPECT_DOUBLE_EQ(timer.fired_at, 2.0);
}

TEST(TraceRender, ArrowListingFiltersByProtocol) {
  grid::Simulation sim;
  AgentPlatform platform(sim);
  platform.set_tracing(true);
  platform.spawn<EchoAgent>("a");
  platform.spawn<EchoAgent>("b");
  for (const char* protocol : {"keep", "drop", "keep"}) {
    AclMessage message;
    message.performative = Performative::Inform;
    message.sender = "a";
    message.receiver = "b";
    message.protocol = protocol;
    platform.send(message);
  }
  sim.run();
  TraceRenderOptions options;
  options.protocols = {"keep"};
  const std::string arrows = render_arrows(platform.trace(), options);
  EXPECT_EQ(std::count(arrows.begin(), arrows.end(), '\n'), 2);
  EXPECT_EQ(arrows.find("drop"), std::string::npos);
}

TEST(TraceRender, SequenceDiagramHasParticipantsAndArrows) {
  grid::Simulation sim;
  AgentPlatform platform(sim);
  platform.set_tracing(true);
  platform.spawn<EchoAgent>("cs");
  platform.spawn<EchoAgent>("ps");
  AclMessage message;
  message.performative = Performative::Request;
  message.sender = "cs";
  message.receiver = "ps";
  message.protocol = "planning-request";
  platform.send(message);
  sim.run();
  const std::string diagram = render_sequence_diagram(platform.trace());
  EXPECT_NE(diagram.find("cs"), std::string::npos);
  EXPECT_NE(diagram.find("ps"), std::string::npos);
  EXPECT_NE(diagram.find(">"), std::string::npos);
  EXPECT_NE(diagram.find("planning-req"), std::string::npos);
}

TEST(TraceRender, EmptySelectionSaysSo) {
  const std::string diagram = render_sequence_diagram({});
  EXPECT_NE(diagram.find("no matching messages"), std::string::npos);
}

TEST(Agent, SendWithoutPlatformThrows) {
  EchoAgent orphan("alone");
  AclMessage message;
  EXPECT_THROW(
      {
        // Accessing the platform without registration is a logic error.
        orphan.handle_message(message);  // fine
        // send() is protected; exercise through a derived helper:
        struct Probe : EchoAgent {
          using EchoAgent::EchoAgent;
          void poke() { send(AclMessage{}); }
        };
        Probe probe("p");
        probe.poke();
      },
      std::logic_error);
}

}  // namespace
}  // namespace ig::agent
