#include "services/coordination.hpp"

#include <algorithm>

#include "services/protocol.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "wfl/validate.hpp"

namespace ig::svc {

using agent::AclMessage;
using agent::Performative;
using wfl::ActivityKind;

void CoordinationService::on_start() {
  register_with_information_service(*this, platform(), "coordination");
  tracker_.bind(
      sim(), [this](AclMessage message) { send(std::move(message)); },
      [this](const DeadLetter& letter) { on_dead_letter(letter); });
}

std::vector<std::string> CoordinationService::split_conversation(
    const std::string& conversation_id) {
  return util::split(conversation_id, '/');
}

CoordinationService::Enactment* CoordinationService::find_enactment(const std::string& id) {
  auto it = enactments_.find(id);
  return it != enactments_.end() ? &it->second : nullptr;
}

void CoordinationService::handle_message(const AclMessage& message) {
  if (message.protocol == protocols::kEnactCase) return handle_enact(message);
  if (message.protocol == protocols::kCheckpointCase) return handle_checkpoint(message);
  if (message.protocol == protocols::kRestoreCase) return handle_restore(message);

  const auto parts = split_conversation(message.conversation_id);
  if (parts.size() >= 2 && find_enactment(parts[0]) != nullptr) {
    if (parts[1] == "match") return handle_match_reply(message);
    if (parts[1] == "exec") return handle_execution_reply(message);
    if (parts[1] == "replan") return handle_plan_reply(message);
  }
  if (!should_bounce_unknown(message)) return;
  send(make_not_understood(message, "unknown protocol '" + message.protocol + "'"));
}

void CoordinationService::handle_enact(const AclMessage& message) {
  const std::string id = "case-" + std::to_string(next_enactment_++);
  Enactment& enactment = enactments_[id];
  enactment.id = id;
  enactment.original = message;
  enactment.started = now();
  try {
    enactment.process = wfl::process_from_xml_string(message.param("process-xml").empty()
                                                         ? message.content
                                                         : message.param("process-xml"));
    if (message.has_param("case-xml"))
      enactment.case_description = wfl::case_from_xml_string(message.param("case-xml"));
    const auto errors = wfl::validate(enactment.process);
    if (!errors.empty())
      throw wfl::ProcessError("invalid process description: " + errors.front().message);
  } catch (const std::exception& error) {
    AclMessage reply = message.make_reply(Performative::Failure);
    reply.params["error"] = error.what();
    send(std::move(reply));
    enactments_.erase(id);
    return;
  }
  enactment.data = enactment.case_description.initial_data();
  if (tracer_ != nullptr) {
    enactment.case_span =
        tracer_->begin(obs::SpanKind::Case, enactment.process.name(), id, 0, now());
  }
  IG_LOG_DEBUG("cs") << "enacting " << enactment.process.name() << " as " << id;
  start_enactment(enactment);
}

void CoordinationService::handle_checkpoint(const AclMessage& message) {
  Enactment* enactment = find_enactment(message.param("case"));
  if (enactment == nullptr) {
    AclMessage reply = message.make_reply(Performative::Failure);
    reply.params["error"] = "unknown case '" + message.param("case") + "'";
    send(std::move(reply));
    return;
  }
  xml::Document document("checkpoint");
  xml::Element& root = document.root();
  root.set_attribute("case", enactment->id);
  root.add_child("process-xml")
      .set_text(wfl::process_to_xml_string(enactment->process));
  root.add_child("case-xml")
      .set_text(wfl::case_to_xml_string(enactment->case_description));
  root.add_child("dataset-xml").set_text(wfl::dataset_to_xml_string(enactment->data));
  xml::Element& completions = root.add_child("completions");
  for (const auto& [activity_id, count] : enactment->completions) {
    const wfl::Activity* activity = enactment->process.find_activity(activity_id);
    // Only end-user completions are credited on restore; flow-control
    // token state is reconstructed by the replay walk itself.
    if (activity == nullptr || activity->kind != wfl::ActivityKind::EndUser) continue;
    if (count <= 0) continue;
    xml::Element& node = completions.add_child("completed");
    node.set_attribute("activity", activity_id);
    node.set_attribute("count", std::to_string(count));
  }
  root.set_attribute("replans", std::to_string(enactment->replans));
  root.set_attribute("activities-executed", std::to_string(enactment->activities_executed));

  AclMessage reply = message.make_reply(Performative::Inform);
  reply.params["case"] = enactment->id;
  reply.content = document.to_string();
  send(std::move(reply));
}

void CoordinationService::handle_restore(const AclMessage& message) {
  const std::string id = "case-" + std::to_string(next_enactment_++);
  Enactment& enactment = enactments_[id];
  enactment.id = id;
  enactment.original = message;
  enactment.started = now();
  try {
    const xml::Document document = xml::parse(message.content);
    const xml::Element& root = document.root();
    if (root.name() != "checkpoint") throw wfl::ProcessError("not a checkpoint document");
    enactment.process = wfl::process_from_xml_string(root.child_text("process-xml"));
    enactment.case_description = wfl::case_from_xml_string(root.child_text("case-xml"));
    enactment.data = wfl::dataset_from_xml_string(root.child_text("dataset-xml"));
    const xml::Element* completions = root.find_child("completions");
    if (completions != nullptr) {
      for (const auto* node : completions->find_children("completed")) {
        const auto count = util::parse_int(node->attribute_or("count", "0"));
        if (!count.has_value())
          throw wfl::ProcessError("completed count '" + node->attribute_or("count", "") +
                                  "' is not an integer");
        enactment.replay_credits[node->attribute_or("activity", "")] = *count;
      }
    }
    const auto replans = util::parse_int(root.attribute_or("replans", "0"));
    if (!replans.has_value())
      throw wfl::ProcessError("replans attribute '" + root.attribute_or("replans", "") +
                              "' is not an integer");
    enactment.replans = *replans;
    // Retry hook for the enactment engine: a checkpoint captured after a
    // failure carries the spent re-planning budget; a supervised retry on a
    // fresh shard asks for the budget back.
    if (message.param_bool("reset-replans", false)) enactment.replans = 0;
  } catch (const std::exception& error) {
    AclMessage reply = message.make_reply(Performative::Failure);
    reply.params["error"] = std::string("bad checkpoint: ") + error.what();
    send(std::move(reply));
    enactments_.erase(id);
    return;
  }
  if (tracer_ != nullptr) {
    enactment.case_span =
        tracer_->begin(obs::SpanKind::Case, enactment.process.name(), id, 0, now());
    tracer_->tag(enactment.case_span, "restored", "true");
  }
  IG_LOG_DEBUG("cs") << "restoring checkpointed case as " << id;
  start_enactment(enactment);
}

void CoordinationService::start_enactment(Enactment& enactment) {
  ++enactment.epoch;
  // Work of the superseded plan stops here; its spans close as such.
  if (enactment.epoch > 1) close_open_spans(enactment, "superseded");
  // Conversations of the superseded epoch must not retry or dead-letter.
  tracker_.abandon_prefix(enactment.id + "/");
  enactment.completions.clear();
  enactment.running.clear();
  enactment.join_arrivals.clear();
  enactment.retries.clear();
  complete_activity(enactment, enactment.process.begin_activity().id);
}

void CoordinationService::complete_activity(Enactment& enactment,
                                            const std::string& activity_id) {
  if (enactment.finished) return;
  const wfl::Activity* activity = enactment.process.find_activity(activity_id);
  if (activity == nullptr) return finish(enactment, false, "activity vanished");
  ++enactment.completions[activity_id];

  if (activity->kind == ActivityKind::End) {
    // Reaching End only succeeds when the case's goals are met; otherwise
    // the coordinator escalates to re-planning (or fails once the budget is
    // exhausted) instead of reporting a hollow success.
    const double satisfaction =
        enactment.case_description.goal_satisfaction(enactment.data);
    if (satisfaction >= 1.0) return finish(enactment, true, "");
    if (enactment.replans < config_.max_replans)
      return request_replanning(enactment, "");
    return finish(enactment, false, "plan completed without satisfying the case goals");
  }

  const auto outgoing = enactment.process.outgoing(activity_id);
  if (tracer_ != nullptr && activity->kind == ActivityKind::Fork) {
    const obs::SpanId fork = tracer_->instant(obs::SpanKind::Barrier, activity->name,
                                              enactment.id, enactment.case_span, now());
    tracer_->tag(fork, "type", "fork");
    tracer_->tag(fork, "fanout", std::to_string(outgoing.size()));
  }

  if (activity->kind == ActivityKind::Choice) {
    // Evaluate guards in transition order against the current data.
    const wfl::Transition* chosen = nullptr;
    const wfl::Transition* fallback = nullptr;
    for (const auto* transition : outgoing) {
      const bool back_edge = enactment.completions[transition->destination] > 0;
      const bool satisfied = wfl::evaluate_against_state(transition->guard, enactment.data);
      if (!satisfied) continue;
      // Guardrail: once a loop has run its allotted iterations, prefer a
      // forward transition even if the (possibly trivially-true) back-edge
      // guard still holds.
      if (back_edge &&
          enactment.completions[activity_id] >= config_.max_loop_iterations) {
        fallback = transition;
        continue;
      }
      chosen = transition;
      break;
    }
    if (chosen == nullptr) {
      // No guard satisfied: prefer any forward transition, then fallback.
      for (const auto* transition : outgoing) {
        if (enactment.completions[transition->destination] == 0) {
          chosen = transition;
          break;
        }
      }
      if (chosen == nullptr) chosen = fallback;
    }
    if (chosen == nullptr)
      return finish(enactment, false, "Choice '" + activity->name + "' has no viable transition");
    if (tracer_ != nullptr) {
      const obs::SpanId decision = tracer_->instant(
          obs::SpanKind::Choice, activity->name, enactment.id, enactment.case_span, now());
      tracer_->tag(decision, "chosen", chosen->destination);
      tracer_->tag(decision, "visit", std::to_string(enactment.completions[activity_id]));
      // A back edge opens the next loop pass; any edge closes the current one.
      auto open = enactment.iteration_spans.find(activity_id);
      if (open != enactment.iteration_spans.end()) {
        tracer_->end(open->second, now());
        enactment.iteration_spans.erase(open);
      }
      if (enactment.completions[chosen->destination] > 0) {
        const obs::SpanId pass = tracer_->begin(
            obs::SpanKind::Iteration, activity->name, enactment.id, enactment.case_span, now());
        tracer_->tag(pass, "pass", std::to_string(enactment.completions[activity_id]));
        enactment.iteration_spans[activity_id] = pass;
      }
    }
    return follow_transition(enactment, *chosen);
  }

  // Begin, EndUser, Fork, Join, Merge: follow every outgoing transition
  // (Fork has several; the others exactly one).
  for (const auto* transition : outgoing) follow_transition(enactment, *transition);
}

void CoordinationService::follow_transition(Enactment& enactment,
                                            const wfl::Transition& transition) {
  trigger(enactment, transition.destination, transition.source);
}

void CoordinationService::trigger(Enactment& enactment, const std::string& activity_id,
                                  const std::string& from_activity) {
  if (enactment.finished) return;
  const wfl::Activity* activity = enactment.process.find_activity(activity_id);
  if (activity == nullptr) return finish(enactment, false, "dangling transition");

  switch (activity->kind) {
    case ActivityKind::Begin:
      return finish(enactment, false, "transition into Begin");
    case ActivityKind::End:
    case ActivityKind::Fork:
    case ActivityKind::Choice:
      return complete_activity(enactment, activity_id);
    case ActivityKind::Merge:
      // "A Merge activity is triggered after the completion of any activity
      // in its predecessor set."
      return complete_activity(enactment, activity_id);
    case ActivityKind::Join: {
      // "A Join activity can be triggered only after all of its predecessor
      // activities are completed."
      auto& arrivals = enactment.join_arrivals[activity_id];
      if (tracer_ != nullptr && arrivals.empty() &&
          enactment.barrier_spans.count(activity_id) == 0) {
        // The wait starts at the first arrival and ends when the join fires.
        const obs::SpanId wait = tracer_->begin(obs::SpanKind::Barrier, activity->name,
                                                enactment.id, enactment.case_span, now());
        tracer_->tag(wait, "type", "join");
        enactment.barrier_spans[activity_id] = wait;
      }
      arrivals.insert(from_activity);
      const auto predecessors = enactment.process.predecessors(activity_id);
      if (arrivals.size() < predecessors.size()) return;
      if (tracer_ != nullptr) {
        auto wait = enactment.barrier_spans.find(activity_id);
        if (wait != enactment.barrier_spans.end()) {
          tracer_->tag(wait->second, "arrivals", std::to_string(arrivals.size()));
          tracer_->end(wait->second, now());
          enactment.barrier_spans.erase(wait);
        }
      }
      arrivals.clear();  // reset for the next loop iteration, if any
      return complete_activity(enactment, activity_id);
    }
    case ActivityKind::EndUser:
      return dispatch(enactment, *activity);
  }
}

void CoordinationService::dispatch(Enactment& enactment, const wfl::Activity& activity) {
  // Restore replay: a credited activity already ran before the checkpoint;
  // its outputs are in the data snapshot, so it completes without dispatch.
  auto credit = enactment.replay_credits.find(activity.id);
  if (credit != enactment.replay_credits.end() && credit->second > 0) {
    --credit->second;
    ++enactment.activities_replayed;
    if (tracer_ != nullptr) {
      const obs::SpanId replay = tracer_->instant(
          obs::SpanKind::Activity, activity.name, enactment.id, enactment.case_span, now());
      tracer_->tag(replay, "status", "replayed");
    }
    return complete_activity(enactment, activity.id);
  }
  // One Activity span covers all container attempts of one dispatch: a
  // retry tags the open span instead of opening a second one.
  if (tracer_ != nullptr && enactment.activity_spans.count(activity.id) == 0) {
    const obs::SpanId span = tracer_->begin(obs::SpanKind::Activity, activity.name,
                                            enactment.id, enactment.case_span, now());
    tracer_->tag(span, "service", activity.service_name);
    enactment.activity_spans[activity.id] = span;
  }
  enactment.running.insert(activity.id);
  AclMessage query;
  query.performative = Performative::QueryRef;
  query.receiver = names::kMatchmaking;
  query.protocol = protocols::kFindContainer;
  query.conversation_id =
      enactment.id + "/match/" + activity.id + "/" + std::to_string(enactment.epoch);
  query.params["service"] = activity.service_name;
  query.params["strategy"] = config_.match_strategy;
  query.params["exclude"] =
      util::join(enactment.excluded_containers[activity.id], ",");
  tracker_.track(std::move(query), config_.match_policy);
}

void CoordinationService::handle_match_reply(const AclMessage& message) {
  // Late or duplicated replies (a retry raced the original, or the chaos
  // layer duplicated the message) must not drive the machine twice.
  if (!tracker_.settle(message.conversation_id)) return;
  const auto parts = split_conversation(message.conversation_id);
  Enactment* enactment = find_enactment(parts[0]);
  if (enactment == nullptr || enactment->finished) return;
  // Replies carrying a stale (or unparseable) epoch belong to a superseded
  // plan or a mangled conversation id: drop them.
  if (parts.size() > 3 && util::parse_int(parts[3]) != std::optional<int>(enactment->epoch))
    return;
  const std::string activity_id = parts.size() > 2 ? parts[2] : "";
  const wfl::Activity* activity = enactment->process.find_activity(activity_id);
  if (activity == nullptr) return;

  if (message.performative != Performative::Inform) {
    // No container can host the service at all: go straight to re-planning.
    enactment->running.erase(activity_id);
    ++enactment->dispatch_failures;
    if (tracer_ != nullptr) {
      auto span = enactment->activity_spans.find(activity_id);
      if (span != enactment->activity_spans.end()) {
        tracer_->tag(span->second, "status", "failed");
        tracer_->tag(span->second, "fault", "no container offered");
        tracer_->end(span->second, now());
        enactment->activity_spans.erase(span);
      }
    }
    return request_replanning(*enactment, activity->service_name);
  }

  AclMessage execute;
  execute.performative = Performative::Request;
  execute.receiver = message.param("container");
  execute.protocol = protocols::kExecuteActivity;
  execute.conversation_id =
      enactment->id + "/exec/" + activity_id + "/" + std::to_string(enactment->epoch);
  execute.params["service"] = activity->service_name;
  execute.params["activity"] = activity_id;
  execute.params["outputs"] = util::join(activity->output_data, ",");
  // Ship the whole current data set; the container binds the precondition.
  execute.content = wfl::dataset_to_xml_string(enactment->data);
  tracker_.track(std::move(execute), config_.exec_policy);
}

void CoordinationService::handle_execution_reply(const AclMessage& message) {
  if (!tracker_.settle(message.conversation_id)) return;
  const auto parts = split_conversation(message.conversation_id);
  Enactment* enactment = find_enactment(parts[0]);
  if (enactment == nullptr || enactment->finished) return;
  // Replies carrying a stale (or unparseable) epoch belong to a superseded
  // plan or a mangled conversation id: drop them.
  if (parts.size() > 3 && util::parse_int(parts[3]) != std::optional<int>(enactment->epoch))
    return;
  const std::string activity_id = parts.size() > 2 ? parts[2] : "";

  if (message.performative == Performative::Failure) {
    // Platform-level containment failures carry no 'container' param; the
    // sender is the container that blew up, so it still gets excluded.
    return handle_dispatch_failure(*enactment, activity_id,
                                   message.param("container", message.sender),
                                   message.param("error"));
  }
  if (message.performative != Performative::Inform) return;

  // Merge produced data into the case's world state.
  try {
    const wfl::DataSet produced = wfl::dataset_from_xml_string(message.content);
    for (const auto& item : produced.items()) enactment->data.put(item);
  } catch (const std::exception& error) {
    return handle_dispatch_failure(*enactment, activity_id, message.param("container"),
                                   std::string("bad result payload: ") + error.what());
  }
  enactment->running.erase(activity_id);
  enactment->retries[activity_id] = 0;
  ++enactment->activities_executed;
  enactment->total_cost += message.param_double("cost", 0.0);
  if (tracer_ != nullptr) {
    auto span = enactment->activity_spans.find(activity_id);
    if (span != enactment->activity_spans.end()) {
      tracer_->tag(span->second, "status", "ok");
      tracer_->tag(span->second, "container", message.param("container", message.sender));
      tracer_->end(span->second, now());
      enactment->activity_spans.erase(span);
    }
  }
  complete_activity(*enactment, activity_id);
}

void CoordinationService::handle_dispatch_failure(Enactment& enactment,
                                                  const std::string& activity_id,
                                                  const std::string& container,
                                                  const std::string& reason) {
  ++enactment.dispatch_failures;
  const wfl::Activity* activity = enactment.process.find_activity(activity_id);
  if (activity == nullptr) return;
  IG_LOG_DEBUG("cs") << activity->name << " failed on " << container << ": " << reason;

  // A container that failed this activity is excluded from the retry
  // (Figure 3's excluded-runner discipline), unless the data itself was the
  // problem — then another container would fail identically.
  const bool data_problem = reason.find("precondition") != std::string::npos;
  if (!container.empty() && !data_problem)
    enactment.excluded_containers[activity_id].push_back(container);

  int& attempts = enactment.retries[activity_id];
  ++attempts;
  if (tracer_ != nullptr) {
    auto span = enactment.activity_spans.find(activity_id);
    if (span != enactment.activity_spans.end()) {
      tracer_->tag(span->second, "retry", std::to_string(attempts));
      tracer_->tag(span->second, "fault", reason);
    }
  }
  if (!data_problem && attempts <= config_.max_retries) {
    return dispatch(enactment, *activity);  // try the next-best container
  }
  if (tracer_ != nullptr) {
    auto span = enactment.activity_spans.find(activity_id);
    if (span != enactment.activity_spans.end()) {
      tracer_->tag(span->second, "status", "failed");
      tracer_->end(span->second, now());
      enactment.activity_spans.erase(span);
    }
  }
  enactment.running.erase(activity_id);
  request_replanning(enactment, activity->service_name);
}

void CoordinationService::request_replanning(Enactment& enactment,
                                             const std::string& failed_service) {
  if (enactment.awaiting_plan) return;
  if (enactment.replans >= config_.max_replans)
    return finish(enactment, false,
                  "re-planning budget exhausted after failure of '" + failed_service + "'");
  ++enactment.replans;
  ++replans_triggered_;
  enactment.awaiting_plan = true;
  if (tracer_ != nullptr) {
    tracer_->tag(enactment.case_span, "replan", std::to_string(enactment.replans));
    if (!failed_service.empty())
      tracer_->tag(enactment.case_span, "replan-cause", failed_service);
  }

  // Ship all available data: initial + everything created so far.
  wfl::CaseDescription current = enactment.case_description;
  current.initial_data() = enactment.data;
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kPlanning;
  request.protocol = protocols::kReplanRequest;
  request.conversation_id = enactment.id + "/replan";
  request.params["failed-services"] = failed_service;
  request.params["probe"] = "true";
  request.content = wfl::case_to_xml_string(current);
  tracker_.track(std::move(request), config_.replan_policy);
}

void CoordinationService::handle_plan_reply(const AclMessage& message) {
  if (!tracker_.settle(message.conversation_id)) return;
  const auto parts = split_conversation(message.conversation_id);
  Enactment* enactment = find_enactment(parts[0]);
  if (enactment == nullptr || enactment->finished) return;
  enactment->awaiting_plan = false;

  if (message.performative != Performative::Inform) {
    return finish(*enactment, false, "re-planning failed: " + message.param("error"));
  }
  try {
    enactment->process = wfl::process_from_xml_string(message.content);
  } catch (const std::exception& error) {
    return finish(*enactment, false, std::string("bad re-plan payload: ") + error.what());
  }
  IG_LOG_DEBUG("cs") << enactment->id << " restarting on new plan '"
                     << enactment->process.name() << "'";
  start_enactment(*enactment);
}

void CoordinationService::on_dead_letter(const DeadLetter& letter) {
  const auto parts = split_conversation(letter.conversation_id);
  Enactment* enactment = parts.empty() ? nullptr : find_enactment(parts[0]);
  if (enactment == nullptr || enactment->finished) return;
  const std::string kind = parts.size() > 1 ? parts[1] : "";
  const std::string activity_id = parts.size() > 2 ? parts[2] : "";
  if (parts.size() > 3 && util::parse_int(parts[3]) != std::optional<int>(enactment->epoch))
    return;

  if (kind == "exec") {
    // The container (or the path to it) is gone: exclude it and escalate
    // through the normal dispatch-failure ladder.
    return handle_dispatch_failure(*enactment, activity_id, letter.receiver, letter.reason);
  }
  if (kind == "match") {
    // The matchmaking service itself is unreachable; re-planning is the
    // only lever left.
    enactment->running.erase(activity_id);
    ++enactment->dispatch_failures;
    const wfl::Activity* activity = enactment->process.find_activity(activity_id);
    return request_replanning(*enactment,
                              activity != nullptr ? activity->service_name : activity_id);
  }
  if (kind == "replan") {
    enactment->awaiting_plan = false;
    return finish(*enactment, false, "re-planning request timed out: " + letter.reason);
  }
}

void CoordinationService::close_open_spans(Enactment& enactment, const std::string& status) {
  if (tracer_ == nullptr) return;
  const auto close = [&](std::map<std::string, obs::SpanId>& open) {
    for (const auto& [id, span] : open) {
      tracer_->tag(span, "status", status);
      tracer_->end(span, now());
    }
    open.clear();
  };
  close(enactment.activity_spans);
  close(enactment.barrier_spans);
  close(enactment.iteration_spans);
}

void CoordinationService::finish(Enactment& enactment, bool success, const std::string& reason) {
  if (enactment.finished) return;
  enactment.finished = true;
  // Outstanding conversations of a finished case must not retry into the
  // void (or keep the calendar alive until their deadlines).
  tracker_.abandon_prefix(enactment.id + "/");
  close_open_spans(enactment, success ? "ok" : "aborted");
  if (tracer_ != nullptr && enactment.case_span != 0) {
    tracer_->tag(enactment.case_span, "success", success ? "true" : "false");
    tracer_->tag(enactment.case_span, "replans", std::to_string(enactment.replans));
    if (!reason.empty()) tracer_->tag(enactment.case_span, "error", reason);
    tracer_->end(enactment.case_span, now());
  }
  if (success) ++cases_completed_;
  else ++cases_failed_;

  AclMessage reply = enactment.original.make_reply(success ? Performative::Inform
                                                           : Performative::Failure);
  reply.protocol = protocols::kCaseCompleted;
  reply.params["case"] = enactment.id;
  reply.params["success"] = success ? "true" : "false";
  if (!reason.empty()) reply.params["error"] = reason;
  reply.params["makespan"] = util::format_number(now() - enactment.started, 6);
  reply.params["activities-executed"] = std::to_string(enactment.activities_executed);
  reply.params["activities-replayed"] = std::to_string(enactment.activities_replayed);
  reply.params["total-cost"] = util::format_number(enactment.total_cost, 6);
  reply.params["dispatch-failures"] = std::to_string(enactment.dispatch_failures);
  reply.params["replans"] = std::to_string(enactment.replans);
  // Goal check against the final state.
  reply.params["goal-satisfaction"] = util::format_number(
      enactment.case_description.goal_satisfaction(enactment.data), 4);
  reply.content = wfl::dataset_to_xml_string(enactment.data);
  send(std::move(reply));
}

}  // namespace ig::svc
