// Table 2 — Experiment results collected from the best solutions of ten
// runs (Section 5).
//
// Reproduces the paper's experiment exactly: the GP planner with Table 1's
// parameters on the Section 4 computational-biology planning problem
// ({D1..D7} -> a resolution file), ten independent runs, averaging the best
// individual of each run.
//
// Paper's row:   fitness 0.928, validity 1.0, goal 1.0, size 9.7
// Expectation:   validity and goal reach 1.0 in EVERY run; size stays well
//                below Smax = 40; fitness follows from
//                f = 0.2 fv + 0.5 fg + 0.3 (1 - size/40).
#include <cstdio>

#include "bench_json.hpp"
#include "planner/convert.hpp"
#include "planner/gp.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "virolab/catalogue.hpp"

using namespace ig;

int main() {
  const planner::PlanningProblem problem = planner::PlanningProblem::from_case(
      virolab::make_case_description(), virolab::make_catalogue());

  constexpr int kRuns = 10;
  util::SampleSet fitness;
  util::SampleSet validity;
  util::SampleSet goal;
  util::SampleSet size;
  int optimal_runs = 0;
  std::size_t total_evaluations = 0;
  std::size_t total_memo_hits = 0;

  std::printf("Running the Table 2 experiment: %d GP runs, Table 1 parameters...\n\n", kRuns);
  std::printf("%-5s %-10s %-10s %-10s %-6s %-8s  best plan (workflow text)\n", "run",
              "fitness", "validity", "goal", "size", "time(s)");

  util::Stopwatch total;
  for (int run = 1; run <= kRuns; ++run) {
    planner::GpConfig config;  // Table 1 defaults
    config.seed = static_cast<std::uint64_t>(run);
    util::Stopwatch watch;
    const planner::GpResult result = planner::run_gp(problem, config);
    const double elapsed = watch.elapsed_seconds();

    fitness.add(result.best_fitness.overall);
    validity.add(result.best_fitness.validity);
    goal.add(result.best_fitness.goal);
    size.add(static_cast<double>(result.best_fitness.size));
    if (result.best_fitness.validity == 1.0 && result.best_fitness.goal == 1.0)
      ++optimal_runs;
    total_evaluations += result.evaluations;
    total_memo_hits += result.memo_hits;

    std::printf("%-5d %-10.4f %-10.2f %-10.2f %-6zu %-8.2f  %s\n", run,
                result.best_fitness.overall, result.best_fitness.validity,
                result.best_fitness.goal, result.best_fitness.size,
                elapsed, planner::to_flow_expr(result.best_plan).to_text().c_str());
  }

  std::printf("\nTable 2. Experiment results collected from the best solutions of ten runs.\n");
  std::printf("%-34s %-10s %s\n", "", "Paper", "Measured");
  std::printf("%-34s %-10s %.3f\n", "Average Fitness", "0.928", fitness.mean());
  std::printf("%-34s %-10s %.3f\n", "Average Validity Fitness", "1.0", validity.mean());
  std::printf("%-34s %-10s %.3f\n", "Average Goal Fitness", "1.0", goal.mean());
  std::printf("%-34s %-10s %.1f\n", "Average Size of solutions", "9.7", size.mean());
  std::printf("\nruns reaching optimal validity AND goal fitness: %d / %d (paper: every run)\n",
              optimal_runs, kRuns);
  std::printf("total wall time: %.1f s\n", total.elapsed_seconds());

  const double wall = total.elapsed_seconds();
  bench::JsonRecord record("bench_table2_planning");
  record.add("runs", static_cast<std::size_t>(kRuns))
      .add("mean_fitness", fitness.mean())
      .add("mean_validity", validity.mean())
      .add("mean_goal", goal.mean())
      .add("mean_size", size.mean())
      .add("optimal_runs", static_cast<std::size_t>(optimal_runs))
      .add("wall_s", wall)
      .add("evaluations", total_evaluations)
      .add("evals_per_sec", wall > 0 ? total_evaluations / wall : 0.0)
      .add("memo_hit_rate", total_evaluations > 0
                                ? static_cast<double>(total_memo_hits) / total_evaluations
                                : 0.0);
  record.append_to();

  const bool shape_holds = optimal_runs == kRuns && size.mean() < 20.0 && fitness.mean() > 0.9;
  std::printf("qualitative claims hold: %s\n", shape_holds ? "yes" : "NO");
  return shape_holds ? 0 : 1;
}
