// Application containers: hosts for end-user services.
//
// "Application Containers (ACs) host end-user services." A container runs on
// a grid node, advertises the service types it can execute, and may be
// unavailable (its reliability "cannot be guaranteed; such services may be
// short-lived"). The planning service probes containers during re-planning
// (Figure 3, steps 6–7).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "grid/node.hpp"

namespace ig::grid {

class ApplicationContainer {
 public:
  ApplicationContainer(std::string id, std::string node_id)
      : id_(std::move(id)), node_id_(std::move(node_id)) {}

  const std::string& id() const noexcept { return id_; }
  const std::string& node_id() const noexcept { return node_id_; }

  /// Service types this container can execute.
  void host_service(std::string service_name) {
    hosted_services_.push_back(std::move(service_name));
  }
  /// Withdraws one service offering (the container stays up for the rest).
  /// Returns false when the service was not hosted here.
  bool unhost_service(std::string_view service_name);
  bool hosts(std::string_view service_name) const noexcept;
  const std::vector<std::string>& hosted_services() const noexcept { return hosted_services_; }

  /// End-user services are not persistent: a container may go away.
  bool available() const noexcept { return available_; }
  void set_available(bool available) noexcept { available_ = available; }

  /// Per-dispatch failure probability of this container's runtime (on top
  /// of node reliability).
  double failure_probability() const noexcept { return failure_probability_; }
  void set_failure_probability(double p) noexcept { failure_probability_ = p; }

  /// Spot-market price multiplier ("resource acquisition on the spot
  /// markets ... faces stiff competition"): the charge for one execution is
  /// the service's base cost times this factor.
  double price_factor() const noexcept { return price_factor_; }
  void set_price_factor(double factor) noexcept { price_factor_ = factor; }

  std::size_t dispatch_count() const noexcept { return dispatch_count_; }
  std::size_t failure_count() const noexcept { return failure_count_; }
  void record_dispatch(bool failed) noexcept {
    ++dispatch_count_;
    if (failed) ++failure_count_;
  }

 private:
  std::string id_;
  std::string node_id_;
  std::vector<std::string> hosted_services_;
  bool available_ = true;
  double failure_probability_ = 0.0;
  double price_factor_ = 1.0;
  std::size_t dispatch_count_ = 0;
  std::size_t failure_count_ = 0;
};

}  // namespace ig::grid
