# Empty dependencies file for ig_planner.
# This may be replaced when dependencies are built.
