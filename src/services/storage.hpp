// Persistent storage service.
//
// "Persistent storage services provide access to the data needed for the
// execution of user tasks." It also backs the "system knowledge base" where
// process descriptions are archived (Section 3). A keyed document store with
// optional namespaces is sufficient for both roles.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "agent/agent.hpp"

namespace ig::svc {

class PersistentStorageService : public agent::Agent {
 public:
  explicit PersistentStorageService(std::string name = "pss") : Agent(std::move(name)) {}

  void on_start() override;
  void handle_message(const agent::AclMessage& message) override;

  // Direct access for tests and harnesses.
  void put(const std::string& key, std::string value);
  const std::string* get(const std::string& key) const;
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;
  std::size_t size() const noexcept { return store_.size(); }

 private:
  std::map<std::string, std::string> store_;
};

}  // namespace ig::svc
