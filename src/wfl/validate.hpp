// Structural validation of process descriptions.
//
// The coordination service refuses to enact a malformed process description;
// this module implements the well-formedness rules implied by Section 3.1:
// exactly one Begin (no predecessors) and one End (no successors), Fork and
// Choice fan out, Join and Merge fan in, guards only on Choice out-edges,
// every activity reachable from Begin and co-reachable from End.
#pragma once

#include <string>
#include <vector>

#include "wfl/process.hpp"

namespace ig::wfl {

struct ValidationError {
  std::string activity_id;  ///< offending activity, or empty for global errors
  std::string message;
};

/// Returns all structural violations (empty == valid).
std::vector<ValidationError> validate(const ProcessDescription& process);

/// True when `validate` finds no violations.
bool is_valid(const ProcessDescription& process);

/// Renders violations as one line each, for diagnostics.
std::string to_string(const std::vector<ValidationError>& errors);

}  // namespace ig::wfl
