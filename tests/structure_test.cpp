#include <gtest/gtest.h>

#include "wfl/flowexpr.hpp"
#include "wfl/process.hpp"
#include "wfl/structure.hpp"
#include "wfl/validate.hpp"

namespace ig::wfl {
namespace {

ProcessDescription lower(const char* text) {
  return lower_to_process(parse_flow(text), "test");
}

void expect_roundtrip(const char* text) {
  const FlowExpr original = parse_flow(text);
  const ProcessDescription process = lower_to_process(original, "rt");
  EXPECT_TRUE(is_valid(process)) << text << "\n" << to_string(validate(process));
  const FlowExpr lifted = lift_from_process(process);
  EXPECT_TRUE(original == lifted) << text << "\nlifted: " << lifted.to_text();
}

// --- Figure 4: sequential ---------------------------------------------------

TEST(Lower, SequentialFigure4) {
  const ProcessDescription process = lower("BEGIN, A; B; C, END");
  // Begin + 3 activities + End; 4 transitions.
  EXPECT_EQ(process.activity_count(), 5u);
  EXPECT_EQ(process.transition_count(), 4u);
  EXPECT_EQ(process.end_user_activity_count(), 3u);
  EXPECT_TRUE(is_valid(process));
}

// --- Figure 5: concurrent ----------------------------------------------------

TEST(Lower, ConcurrentFigure5) {
  const ProcessDescription process = lower("BEGIN, {FORK {A} {B} JOIN}, END");
  // Begin, Fork, A, B, Join, End.
  EXPECT_EQ(process.activity_count(), 6u);
  const Activity* fork = process.find_activity_by_name("FORK");
  ASSERT_NE(fork, nullptr);
  EXPECT_EQ(process.successors(fork->id).size(), 2u);
  const Activity* join = process.find_activity_by_name("JOIN");
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(process.predecessors(join->id).size(), 2u);
  EXPECT_TRUE(is_valid(process));
}

// --- Figure 6: selective -------------------------------------------------------

TEST(Lower, SelectiveFigure6) {
  const ProcessDescription process =
      lower("BEGIN, {CHOICE {X.V > 1} {A} {X.V <= 1} {B} MERGE}, END");
  const Activity* choice = process.find_activity_by_name("CHOICE");
  ASSERT_NE(choice, nullptr);
  const auto outgoing = process.outgoing(choice->id);
  ASSERT_EQ(outgoing.size(), 2u);
  EXPECT_FALSE(outgoing[0]->guard.is_trivially_true());
  EXPECT_FALSE(outgoing[1]->guard.is_trivially_true());
  const Activity* merge = process.find_activity_by_name("MERGE");
  ASSERT_NE(merge, nullptr);
  EXPECT_EQ(process.predecessors(merge->id).size(), 2u);
  EXPECT_TRUE(is_valid(process));
}

// --- Figure 7: iterative ----------------------------------------------------------

TEST(Lower, IterativeFigure7) {
  const ProcessDescription process =
      lower("BEGIN, {ITERATIVE {COND R.Value > 8} {A; B}}, END");
  // Loop header Merge precedes the body; loop-exit Choice follows it, with a
  // back edge to the Merge — exactly Figure 7's shape.
  const Activity* merge = process.find_activity_by_name("MERGE");
  const Activity* choice = process.find_activity_by_name("CHOICE");
  ASSERT_NE(merge, nullptr);
  ASSERT_NE(choice, nullptr);
  bool found_back_edge = false;
  for (const auto* transition : process.outgoing(choice->id)) {
    if (transition->destination == merge->id) {
      found_back_edge = true;
      EXPECT_EQ(transition->guard.to_string(), "R.Value > 8");
    }
  }
  EXPECT_TRUE(found_back_edge);
  EXPECT_TRUE(is_valid(process));
}

TEST(Lower, IterativeExitGuardIsNegation) {
  const ProcessDescription process =
      lower("BEGIN, {ITERATIVE {COND R.Value > 8} {A}}, END");
  const Activity& end = process.end_activity();
  const auto incoming = process.incoming(end.id);
  ASSERT_EQ(incoming.size(), 1u);
  EXPECT_EQ(incoming[0]->guard.to_string(), "not R.Value > 8");
}

TEST(Lower, EmptySelectiveBranchGoesStraightToMerge) {
  const ProcessDescription process =
      lower("BEGIN, {CHOICE {X.V > 1} {A} {X.V <= 1} {} MERGE}, END");
  const Activity* choice = process.find_activity_by_name("CHOICE");
  const Activity* merge = process.find_activity_by_name("MERGE");
  ASSERT_NE(choice, nullptr);
  ASSERT_NE(merge, nullptr);
  bool direct = false;
  for (const auto* transition : process.outgoing(choice->id)) {
    if (transition->destination == merge->id) direct = true;
  }
  EXPECT_TRUE(direct);
  EXPECT_TRUE(is_valid(process));
}

TEST(Lower, CustomIdPrefixes) {
  LowerOptions options;
  options.activity_id_prefix = "N";
  options.transition_id_prefix = "E";
  const ProcessDescription process =
      lower_to_process(parse_flow("BEGIN, A, END"), "prefixed", options);
  EXPECT_NE(process.find_activity("N1"), nullptr);
  EXPECT_NE(process.find_transition("E1"), nullptr);
}

// --- Round trips -------------------------------------------------------------------

TEST(RoundTrip, AllCanonicalShapes) {
  expect_roundtrip("BEGIN, A, END");
  expect_roundtrip("BEGIN, A; B; C, END");
  expect_roundtrip("BEGIN, {FORK {A} {B} JOIN}, END");
  expect_roundtrip("BEGIN, {FORK {A; B} {C} {D} JOIN}, END");
  expect_roundtrip("BEGIN, {CHOICE {X.V > 1} {A} {X.V <= 1} {B} MERGE}, END");
  expect_roundtrip("BEGIN, {ITERATIVE {COND R.Value > 8} {A}}, END");
  expect_roundtrip("BEGIN, {ITERATIVE {COND R.Value > 8} {A; B; C}}, END");
}

TEST(RoundTrip, NestedShapes) {
  expect_roundtrip("BEGIN, {FORK {{FORK {A} {B} JOIN}} {C} JOIN}, END");
  expect_roundtrip(
      "BEGIN, {ITERATIVE {COND R.V > 8} {{FORK {A} {B} JOIN}}}, END");
  expect_roundtrip(
      "BEGIN, {CHOICE {X.V > 1} {{FORK {A} {B} JOIN}} {X.V <= 1} {C} MERGE}, END");
  expect_roundtrip(
      "BEGIN, {ITERATIVE {COND R.V > 8} "
      "{{CHOICE {X.V > 1} {A} {X.V <= 1} {B} MERGE}}}, END");
  // Nested loops.
  expect_roundtrip(
      "BEGIN, {ITERATIVE {COND R.V > 8} {A; {ITERATIVE {COND S.W > 2} {B}}}}, END");
}

TEST(RoundTrip, PaperFigure10Shape) {
  expect_roundtrip(
      "BEGIN, POD; P3DR1=P3DR; {ITERATIVE {COND R.Value > 8} "
      "{POR; {FORK {P3DR2=P3DR} {P3DR3=P3DR} {P3DR4=P3DR} JOIN}; PSF}}, END");
}

TEST(Lift, RejectsUnstructuredGraphs) {
  // Fork branches converging on different joins.
  ProcessDescription bad("bad");
  bad.add_flow_control("B", ActivityKind::Begin);
  bad.add_flow_control("F", ActivityKind::Fork);
  bad.add_end_user("X", "X", "svc");
  bad.add_end_user("Y", "Y", "svc");
  bad.add_flow_control("J1", ActivityKind::Join);
  bad.add_flow_control("J2", ActivityKind::Join);
  bad.add_flow_control("E", ActivityKind::End);
  bad.add_transition("B", "F");
  bad.add_transition("F", "X");
  bad.add_transition("F", "Y");
  bad.add_transition("X", "J1");
  bad.add_transition("Y", "J2");
  // (leave the joins dangling: also unstructured)
  bad.add_transition("J1", "E");
  EXPECT_THROW(lift_from_process(bad), ProcessError);
}

TEST(Lift, RejectsMissingEnd) {
  ProcessDescription bad("bad");
  bad.add_flow_control("B", ActivityKind::Begin);
  bad.add_end_user("X", "X", "svc");
  bad.add_flow_control("E", ActivityKind::End);
  bad.add_transition("B", "X");
  bad.add_transition("X", "E");
  // Sanity: this one is fine.
  EXPECT_NO_THROW(lift_from_process(bad));

  ProcessDescription no_end("worse");
  no_end.add_flow_control("B", ActivityKind::Begin);
  no_end.add_end_user("X", "X", "svc");
  no_end.add_transition("B", "X");
  EXPECT_THROW(lift_from_process(no_end), ProcessError);
}

}  // namespace
}  // namespace ig::wfl
