file(REMOVE_RECURSE
  "CMakeFiles/ig_util.dir/log.cpp.o"
  "CMakeFiles/ig_util.dir/log.cpp.o.d"
  "CMakeFiles/ig_util.dir/stats.cpp.o"
  "CMakeFiles/ig_util.dir/stats.cpp.o.d"
  "CMakeFiles/ig_util.dir/strings.cpp.o"
  "CMakeFiles/ig_util.dir/strings.cpp.o.d"
  "libig_util.a"
  "libig_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
