
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/planner/convert.cpp" "src/planner/CMakeFiles/ig_planner.dir/convert.cpp.o" "gcc" "src/planner/CMakeFiles/ig_planner.dir/convert.cpp.o.d"
  "/root/repo/src/planner/evaluate.cpp" "src/planner/CMakeFiles/ig_planner.dir/evaluate.cpp.o" "gcc" "src/planner/CMakeFiles/ig_planner.dir/evaluate.cpp.o.d"
  "/root/repo/src/planner/gp.cpp" "src/planner/CMakeFiles/ig_planner.dir/gp.cpp.o" "gcc" "src/planner/CMakeFiles/ig_planner.dir/gp.cpp.o.d"
  "/root/repo/src/planner/operators.cpp" "src/planner/CMakeFiles/ig_planner.dir/operators.cpp.o" "gcc" "src/planner/CMakeFiles/ig_planner.dir/operators.cpp.o.d"
  "/root/repo/src/planner/plan_tree.cpp" "src/planner/CMakeFiles/ig_planner.dir/plan_tree.cpp.o" "gcc" "src/planner/CMakeFiles/ig_planner.dir/plan_tree.cpp.o.d"
  "/root/repo/src/planner/simplify.cpp" "src/planner/CMakeFiles/ig_planner.dir/simplify.cpp.o" "gcc" "src/planner/CMakeFiles/ig_planner.dir/simplify.cpp.o.d"
  "/root/repo/src/planner/workload.cpp" "src/planner/CMakeFiles/ig_planner.dir/workload.cpp.o" "gcc" "src/planner/CMakeFiles/ig_planner.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ig_util.dir/DependInfo.cmake"
  "/root/repo/build/src/wfl/CMakeFiles/ig_wfl.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/ig_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/ig_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
