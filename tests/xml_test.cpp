#include <gtest/gtest.h>

#include "xml/xml.hpp"

namespace ig::xml {
namespace {

TEST(Escape, AllEntities) {
  EXPECT_EQ(escape("a<b>c&d\"e'f"), "a&lt;b&gt;c&amp;d&quot;e&apos;f");
  EXPECT_EQ(escape("plain"), "plain");
}

TEST(Escape, RoundTrip) {
  const std::string original = "x < y && z > \"w\" '!'";
  EXPECT_EQ(unescape(escape(original)), original);
}

TEST(Unescape, UnknownEntityThrows) {
  EXPECT_THROW(unescape("&bogus;"), ParseError);
  EXPECT_THROW(unescape("&amp"), ParseError);  // unterminated
}

TEST(Element, AttributesSetAndOverwrite) {
  Element element("node");
  element.set_attribute("a", "1");
  element.set_attribute("a", "2");
  element.set_attribute("b", "3");
  EXPECT_EQ(element.attribute_or("a", ""), "2");
  EXPECT_EQ(element.attribute_or("b", ""), "3");
  EXPECT_EQ(element.attribute_or("missing", "x"), "x");
  EXPECT_FALSE(element.attribute("missing").has_value());
  EXPECT_TRUE(element.has_attribute("a"));
}

TEST(Element, ChildNavigation) {
  Element root("root");
  root.add_child_text("item", "one");
  root.add_child_text("item", "two");
  root.add_child("other");
  EXPECT_EQ(root.children().size(), 3u);
  EXPECT_EQ(root.find_children("item").size(), 2u);
  ASSERT_NE(root.find_child("other"), nullptr);
  EXPECT_EQ(root.find_child("nope"), nullptr);
  EXPECT_EQ(root.child_text("item"), "one");
  EXPECT_EQ(root.child_text("nope"), "");
}

TEST(Writer, SelfClosingEmptyElement) {
  Element element("empty");
  EXPECT_EQ(element.to_string(-1), "<empty/>");
}

TEST(Writer, TextContentEscaped) {
  Element element("t");
  element.set_text("a<b");
  EXPECT_EQ(element.to_string(-1), "<t>a&lt;b</t>");
}

TEST(Writer, AttributesQuotedAndEscaped) {
  Element element("t");
  element.set_attribute("k", "va\"lue");
  EXPECT_EQ(element.to_string(-1), "<t k=\"va&quot;lue\"/>");
}

TEST(Parser, SimpleDocument) {
  const Document document = parse("<root a=\"1\"><child>text</child></root>");
  EXPECT_EQ(document.root().name(), "root");
  EXPECT_EQ(document.root().attribute_or("a", ""), "1");
  EXPECT_EQ(document.root().child_text("child"), "text");
}

TEST(Parser, DeclarationAndComments) {
  const Document document = parse(
      "<?xml version=\"1.0\"?>\n<!-- header -->\n<root><!-- inner -->"
      "<a/></root><!-- trailer -->");
  EXPECT_EQ(document.root().name(), "root");
  EXPECT_EQ(document.root().children().size(), 1u);
}

TEST(Parser, WhitespaceBetweenElementsIgnored) {
  const Document document = parse("<r>\n  <a/>\n  <b/>\n</r>");
  EXPECT_EQ(document.root().children().size(), 2u);
  EXPECT_TRUE(document.root().text().empty());
}

TEST(Parser, EntitiesInTextAndAttributes) {
  const Document document = parse("<r k=\"&lt;x&gt;\">&amp;&apos;</r>");
  EXPECT_EQ(document.root().attribute_or("k", ""), "<x>");
  EXPECT_EQ(document.root().text(), "&'");
}

TEST(Parser, SingleQuotedAttributes) {
  const Document document = parse("<r k='v'/>");
  EXPECT_EQ(document.root().attribute_or("k", ""), "v");
}

TEST(Parser, MismatchedTagThrows) {
  EXPECT_THROW(parse("<a><b></a></b>"), ParseError);
}

TEST(Parser, UnterminatedThrows) {
  EXPECT_THROW(parse("<a><b>"), ParseError);
  EXPECT_THROW(parse("<a attr=>"), ParseError);
  EXPECT_THROW(parse("<a"), ParseError);
}

TEST(Parser, TrailingContentThrows) {
  EXPECT_THROW(parse("<a/><b/>"), ParseError);
  EXPECT_THROW(parse("<a/>junk"), ParseError);
}

TEST(Parser, ErrorCarriesOffset) {
  try {
    parse("<a><b></c></a>");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_GT(error.offset(), 0u);
  }
}

TEST(RoundTrip, NestedDocument) {
  Document document("ontology");
  document.root().set_attribute("name", "grid");
  Element& cls = document.root().add_child("class");
  cls.set_attribute("name", "Task");
  cls.add_child_text("documentation", "a <complex> problem & more");
  Element& slot = cls.add_child("slot");
  slot.set_attribute("name", "Need Planning");
  slot.set_attribute("type", "boolean");

  const Document reparsed = parse(document.to_string());
  EXPECT_EQ(reparsed.root().attribute_or("name", ""), "grid");
  const Element* parsed_class = reparsed.root().find_child("class");
  ASSERT_NE(parsed_class, nullptr);
  EXPECT_EQ(parsed_class->child_text("documentation"), "a <complex> problem & more");
  const Element* parsed_slot = parsed_class->find_child("slot");
  ASSERT_NE(parsed_slot, nullptr);
  EXPECT_EQ(parsed_slot->attribute_or("name", ""), "Need Planning");
}

TEST(RoundTrip, CompactAndPrettyAgree) {
  Document document("r");
  document.root().add_child_text("x", "1");
  document.root().add_child("y").set_attribute("k", "v");
  const Document from_pretty = parse(document.to_string(2));
  const Document from_compact = parse(document.to_string(-1));
  EXPECT_EQ(from_pretty.root().children().size(), from_compact.root().children().size());
  EXPECT_EQ(from_pretty.root().child_text("x"), "1");
  EXPECT_EQ(from_compact.root().child_text("x"), "1");
}

TEST(Parser, MixedTextAndChildren) {
  const Document document = parse("<r>prefix<a/>suffix</r>");
  // Character data inside an element concatenates (simplified mixed content).
  EXPECT_EQ(document.root().text(), "prefixsuffix");
  EXPECT_EQ(document.root().children().size(), 1u);
}

TEST(Parser, MixedContentKeepsDocumentOrder) {
  const Document document = parse("<a>x<b/>y</a>");
  const auto& runs = document.root().text_runs();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].text, "x");
  EXPECT_EQ(runs[0].position, 0u);  // before <b/>
  EXPECT_EQ(runs[1].text, "y");
  EXPECT_EQ(runs[1].position, 1u);  // after <b/>
  // Compact serialization reproduces the original order exactly.
  EXPECT_EQ(document.root().to_string(-1), "<a>x<b/>y</a>");
}

TEST(RoundTrip, MixedContentCompact) {
  const std::string original = "<r>alpha<a/>beta<b><c/>gamma</b>delta</r>";
  const Document document = parse(original);
  EXPECT_EQ(document.root().to_string(-1), original);
  // A second pass is a fixpoint.
  const Document again = parse(document.root().to_string(-1));
  EXPECT_EQ(again.root().to_string(-1), original);
  EXPECT_EQ(again.root().text(), "alphabetadelta");
}

TEST(Element, SetTextResetsRunsAppendTextMerges) {
  Element element("e");
  element.append_text("a");
  element.append_text("b");  // same position: merges with the previous run
  ASSERT_EQ(element.text_runs().size(), 1u);
  EXPECT_EQ(element.text_runs()[0].text, "ab");
  element.add_child("k");
  element.append_text("c");
  ASSERT_EQ(element.text_runs().size(), 2u);
  EXPECT_EQ(element.text_runs()[1].position, 1u);
  EXPECT_EQ(element.text(), "abc");
  element.set_text("fresh");
  ASSERT_EQ(element.text_runs().size(), 1u);
  EXPECT_EQ(element.text_runs()[0].position, 0u);
  EXPECT_EQ(element.text(), "fresh");
}

TEST(Unescape, NumericCharacterReferences) {
  EXPECT_EQ(unescape("&#65;"), "A");
  EXPECT_EQ(unescape("&#x41;"), "A");
  EXPECT_EQ(unescape("&#X41;"), "A");
  EXPECT_EQ(unescape("line&#10;break"), "line\nbreak");
  EXPECT_EQ(unescape("&#xA9;"), "\xC2\xA9");          // two-byte UTF-8
  EXPECT_EQ(unescape("&#x20AC;"), "\xE2\x82\xAC");    // three-byte UTF-8
  EXPECT_EQ(unescape("&#x1F600;"), "\xF0\x9F\x98\x80");  // four-byte UTF-8
}

TEST(Unescape, MalformedCharacterReferencesThrow) {
  for (const char* bad : {"&#;", "&#x;", "&#xG;", "&#12a;", "&#0;", "&#xD800;",
                          "&#xDFFF;", "&#1114112;", "&#-5;"}) {
    EXPECT_THROW(unescape(bad), ParseError) << bad;
  }
}

TEST(Parser, NumericReferencesInTextAndAttributes) {
  const Document document = parse("<r k=\"a&#10;b\">x&#x26;y</r>");
  EXPECT_EQ(document.root().attribute_or("k", ""), "a\nb");
  EXPECT_EQ(document.root().text(), "x&y");
}

TEST(Escape, RejectsControlCharactersWithOffset) {
  // XML 1.0 cannot represent C0 controls (other than tab/LF/CR), and the
  // historical pass-through wrote documents that parsed back corrupted.
  // Reject-with-reason is the fix; binary payloads take the wire codec.
  for (const char byte : {'\0', '\x01', '\x08', '\x0B', '\x1F'}) {
    const std::string text = std::string("ab") + byte + "c";
    try {
      escape(text);
      FAIL() << "control byte " << static_cast<int>(byte) << " accepted";
    } catch (const ParseError& error) {
      EXPECT_EQ(error.offset(), 2u);
    }
  }
}

TEST(Escape, KeepsXmlWhitespaceControls) {
  EXPECT_EQ(escape("a\tb\nc\rd"), "a\tb\nc\rd");
}

TEST(Unescape, RejectsReferencesToControlCharacters) {
  // &#1; was never a well-formed reference; decoding it would smuggle in a
  // byte escape() can no longer write back.
  for (const char* bad : {"&#1;", "&#8;", "&#x0B;", "&#31;", "&#x1F;"})
    EXPECT_THROW(unescape(bad), ParseError) << bad;
  EXPECT_EQ(unescape("&#9;&#10;&#13;"), "\t\n\r");  // the three XML allows
}

TEST(RoundTrip, EscapeThenParseRecoversControlCharacters) {
  // The parser must accept the writer's output; tab/LF/CR and the five
  // predefined entities must round-trip.
  Document document("r");
  document.root().set_attribute("k", "a&b<c>\"d'");
  document.root().set_text("text & <markup> \"quoted\"");
  const Document reparsed = parse(document.to_string());
  EXPECT_EQ(reparsed.root().attribute_or("k", ""), "a&b<c>\"d'");
  EXPECT_EQ(reparsed.root().text(), "text & <markup> \"quoted\"");
}

TEST(Parser, DuplicateAttributeLastWins) {
  const Document document = parse("<r k=\"a\" k=\"b\"/>");
  EXPECT_EQ(document.root().attribute_or("k", ""), "b");
}

TEST(Parser, DeeplyNestedDocument) {
  std::string text;
  const int depth = 200;
  for (int i = 0; i < depth; ++i) text += "<n>";
  for (int i = 0; i < depth; ++i) text += "</n>";
  const Document document = parse(text);
  const Element* cursor = &document.root();
  int measured = 1;
  while (!cursor->children().empty()) {
    cursor = cursor->children().front().get();
    ++measured;
  }
  EXPECT_EQ(measured, depth);
}

TEST(Writer, DeepValueNesting) {
  Element root("v");
  Element* cursor = &root;
  for (int i = 0; i < 20; ++i) cursor = &cursor->add_child("v");
  cursor->set_text("leaf");
  const Document reparsed = parse(root.to_string());
  const Element* probe = &reparsed.root();
  while (!probe->children().empty()) probe = probe->children().front().get();
  EXPECT_EQ(probe->text(), "leaf");
}

TEST(Parser, AttributeNamesWithNamespaceChars) {
  const Document document = parse("<r xml:lang=\"en\" data-x=\"1\"/>");
  EXPECT_EQ(document.root().attribute_or("xml:lang", ""), "en");
  EXPECT_EQ(document.root().attribute_or("data-x", ""), "1");
}

}  // namespace
}  // namespace ig::xml
