// Durable-mode enactment engine: journaled lifecycle, cold-start recovery,
// and the determinism contract — a same-seed chaos run interrupted by a
// kill and resumed on a fresh engine must produce bitwise-identical
// per-case outcomes to an uninterrupted run.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"

namespace ig {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<std::uint64_t> counter{0};
    path_ = fs::path(::testing::TempDir()) /
            ("igrid-recovery-" + tag + "-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter.fetch_add(1)));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

/// The chaos soak configuration (mirrors chaos_test.cpp) plus a journal.
engine::EngineConfig durable_config(const std::string& dir, std::size_t cases,
                                    double drop, std::uint64_t seed) {
  engine::EngineConfig config;
  config.shards = 1;  // one shard = deterministic case order
  config.queue_capacity = cases + 8;
  config.seed = seed;
  config.environment.topology.domains = 2;
  config.environment.topology.nodes_per_domain = 3;
  config.environment.heartbeat_period = 5.0;
  config.environment.coordination.exec_policy = {300.0, 3, 0.5, 10.0};
  config.environment.coordination.replan_policy = {300.0, 2, 0.5, 10.0};
  if (drop > 0.0) {
    agent::ChaosRule rule;
    rule.match.receiver = "ac-*";
    rule.drop = drop;
    rule.delay = drop / 2.0;
    config.environment.chaos.rules.push_back(rule);
    config.environment.chaos.seed = seed;
  }
  config.storage.data_dir = dir;
  config.storage.snapshot_interval = 8;  // exercise snapshots mid-run
  return config;
}

std::vector<engine::CaseId> submit_fleet(engine::EnactmentEngine& engine,
                                         std::size_t cases) {
  std::vector<engine::CaseId> ids;
  for (std::size_t i = 0; i < cases; ++i) {
    const double resolution = 8.0 - 0.04 * static_cast<double>(i);
    ids.push_back(engine.submit(virolab::make_fig10_process(resolution),
                                virolab::make_case_description(resolution)));
  }
  return ids;
}

/// The deterministic slice of a case outcome: everything that must be
/// bitwise-identical across a kill-and-restart. Wall-clock fields
/// (latency), placement (shard) and completion order are excluded by
/// design — they describe the host, not the enactment.
struct OutcomeSignature {
  engine::CaseState state{};
  std::uint64_t makespan_bits = 0;
  int activities_executed = 0;
  int activities_replayed = 0;
  int dispatch_failures = 0;
  int replans = 0;
  std::uint64_t goal_bits = 0;
  std::uint64_t cost_bits = 0;

  bool operator==(const OutcomeSignature& other) const {
    return std::memcmp(this, &other, sizeof(OutcomeSignature)) == 0;
  }
};

std::uint64_t bits(double value) {
  std::uint64_t out = 0;
  std::memcpy(&out, &value, sizeof(out));
  return out;
}

OutcomeSignature signature(const engine::CaseOutcome& outcome) {
  OutcomeSignature sig{};
  sig.state = outcome.state;
  sig.makespan_bits = bits(outcome.makespan);
  sig.activities_executed = outcome.activities_executed;
  sig.activities_replayed = outcome.activities_replayed;
  sig.dispatch_failures = outcome.dispatch_failures;
  sig.replans = outcome.replans;
  sig.goal_bits = bits(outcome.goal_satisfaction);
  sig.cost_bits = bits(outcome.total_cost);
  return sig;
}

std::vector<OutcomeSignature> collect_signatures(engine::EnactmentEngine& engine,
                                                 const std::vector<engine::CaseId>& ids) {
  std::vector<OutcomeSignature> signatures;
  for (const engine::CaseId id : ids) {
    const auto outcome = engine.result(id);
    EXPECT_TRUE(outcome.has_value()) << "case " << id << " not terminal";
    signatures.push_back(outcome.has_value() ? signature(*outcome) : OutcomeSignature{});
  }
  return signatures;
}

TEST(DurableEngine, InMemoryByDefault) {
  engine::EngineConfig config;
  config.shards = 1;
  config.environment.topology.domains = 2;
  config.environment.topology.nodes_per_domain = 2;
  engine::EnactmentEngine engine(config);
  EXPECT_FALSE(engine.durable());
  EXPECT_EQ(engine.journal(), nullptr);
}

TEST(DurableEngine, ColdStartResumesQueuedAndRunningCases) {
  TempDir dir("resume");
  const std::size_t kCases = 4;
  std::vector<engine::CaseId> ids;
  {
    engine::EnactmentEngine engine(durable_config(dir.str(), kCases, 0.0, 11));
    ASSERT_TRUE(engine.durable());
    ids = submit_fleet(engine, kCases);
    for (const engine::CaseId id : ids) ASSERT_NE(id, engine::kInvalidCase);
    // Kill without draining: whatever is mid-flight is abandoned, nothing
    // terminal is journaled for it.
  }
  engine::EnactmentEngine restarted(durable_config(dir.str(), kCases, 0.0, 11));
  const engine::EngineMetrics after_recovery = restarted.metrics();
  EXPECT_EQ(after_recovery.submitted, kCases);
  EXPECT_GE(after_recovery.recovered, 1u);
  EXPECT_EQ(after_recovery.recovered + after_recovery.completed, kCases);
  restarted.drain();
  for (const engine::CaseId id : ids)
    EXPECT_EQ(restarted.status(id), engine::CaseState::Completed) << "case " << id;
  EXPECT_EQ(restarted.metrics().completed, kCases);
}

// The acceptance bar: a chaos run killed mid-flight and cold-started on a
// fresh engine ends bitwise-identical (per-case) to the uninterrupted run.
TEST(DurableEngine, KillAndRestartReplayIsBitwiseIdenticalToUninterruptedRun) {
  const std::size_t kCases = 6;
  const double kDrop = 0.25;
  const std::uint64_t kSeed = 77;

  TempDir baseline_dir("baseline");
  std::vector<OutcomeSignature> baseline;
  {
    engine::EnactmentEngine engine(durable_config(baseline_dir.str(), kCases, kDrop, kSeed));
    const std::vector<engine::CaseId> ids = submit_fleet(engine, kCases);
    engine.drain();
    baseline = collect_signatures(engine, ids);
    // The chaos layer must actually be biting for this test to mean much.
    EXPECT_GT(engine.metrics().faults_injected, 0u);
  }

  TempDir killed_dir("killed");
  std::vector<engine::CaseId> ids;
  {
    engine::EnactmentEngine engine(durable_config(killed_dir.str(), kCases, kDrop, kSeed));
    ids = submit_fleet(engine, kCases);
    // Let part of the fleet finish, then kill mid-flight (the in-flight
    // attempt — enactment or checkpoint — is abandoned un-journaled).
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
      const engine::EngineMetrics m = engine.metrics();
      if (m.completed + m.failed + m.cancelled >= 2) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  engine::EnactmentEngine restarted(durable_config(killed_dir.str(), kCases, kDrop, kSeed));
  EXPECT_GE(restarted.metrics().recovered, 1u);
  restarted.drain();
  const std::vector<OutcomeSignature> replayed = collect_signatures(restarted, ids);

  ASSERT_EQ(replayed.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_TRUE(replayed[i] == baseline[i])
        << "case " << ids[i] << " diverged after the restart (state "
        << engine::to_string(replayed[i].state) << " vs "
        << engine::to_string(baseline[i].state) << ")";
  }
}

TEST(DurableEngine, TerminalOutcomesSurviveRestart) {
  TempDir dir("terminal");
  const std::size_t kCases = 3;
  std::vector<engine::CaseId> ids;
  std::vector<OutcomeSignature> before;
  {
    engine::EnactmentEngine engine(durable_config(dir.str(), kCases, 0.0, 5));
    ids = submit_fleet(engine, kCases);
    engine.drain();
    before = collect_signatures(engine, ids);
  }
  engine::EnactmentEngine restarted(durable_config(dir.str(), kCases, 0.0, 5));
  const engine::EngineMetrics metrics = restarted.metrics();
  EXPECT_EQ(metrics.recovered, 0u);
  EXPECT_EQ(metrics.completed, kCases);
  EXPECT_EQ(metrics.submitted, kCases);
  const std::vector<OutcomeSignature> after = collect_signatures(restarted, ids);
  for (std::size_t i = 0; i < before.size(); ++i) EXPECT_TRUE(after[i] == before[i]);
  // New submissions pick up fresh ids after the recovered ones.
  const engine::CaseId next = restarted.submit(virolab::make_fig10_process(),
                                               virolab::make_case_description());
  EXPECT_GT(next, ids.back());
  restarted.drain();
}

TEST(DurableEngine, RetryStateAndFailureSurviveRestart) {
  TempDir dir("retry");
  engine::EngineConfig config = durable_config(dir.str(), 1, 0.0, 9);
  config.max_case_retries = 1;
  config.shard_failure_floor = {1.0};  // every dispatch fails: retry, then Failed
  engine::CaseId id = engine::kInvalidCase;
  {
    engine::EnactmentEngine engine(config);
    id = engine.submit(virolab::make_fig10_process(), virolab::make_case_description());
    const auto outcome = engine.wait(id);
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(outcome->state, engine::CaseState::Failed);
    EXPECT_EQ(outcome->engine_retries, 1);
  }
  engine::EnactmentEngine restarted(config);
  EXPECT_EQ(restarted.metrics().recovered, 0u);
  EXPECT_EQ(restarted.status(id), engine::CaseState::Failed);
  const auto outcome = restarted.result(id);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->engine_retries, 1);
  EXPECT_EQ(restarted.metrics().retried, 1u);
}

TEST(DurableEngine, CancelledCaseStaysCancelledAfterRestart) {
  TempDir dir("cancel");
  const std::size_t kCases = 2;
  std::vector<engine::CaseId> ids;
  {
    engine::EnactmentEngine engine(durable_config(dir.str(), kCases, 0.0, 3));
    ids = submit_fleet(engine, kCases);
    // With one shard the second case sits queued behind the first for the
    // whole first enactment; cancelling it now is deterministic.
    EXPECT_TRUE(engine.cancel(ids[1]));
    engine.drain();
    EXPECT_EQ(engine.status(ids[1]), engine::CaseState::Cancelled);
  }
  engine::EnactmentEngine restarted(durable_config(dir.str(), kCases, 0.0, 3));
  EXPECT_EQ(restarted.status(ids[1]), engine::CaseState::Cancelled);
  EXPECT_EQ(restarted.metrics().cancelled, 1u);
  restarted.drain();
  EXPECT_EQ(restarted.status(ids[0]), engine::CaseState::Completed);
}

// A crash between writing snap-N.snap.tmp and renaming it leaves the .tmp
// on disk. The next open must discard it — the previous good snapshot stays
// authoritative — and recover every terminal outcome as if the half-written
// snapshot had never existed.
TEST(DurableEngine, StaleSnapshotTmpIsRemovedAtReopenAndPreviousSnapshotWins) {
  TempDir dir("staletmp");
  const std::size_t kCases = 2;
  std::vector<engine::CaseId> ids;
  std::vector<OutcomeSignature> before;
  {
    engine::EnactmentEngine engine(durable_config(dir.str(), kCases, 0.0, 13));
    ids = submit_fleet(engine, kCases);
    engine.drain();
    ASSERT_TRUE(engine.journal()->snapshot());  // the good, authoritative one
    before = collect_signatures(engine, ids);
  }
  // Plant the crash artifact: a half-written snapshot that never got renamed.
  const fs::path stale = fs::path(dir.str()) / "snap-9999999999999999.snap.tmp";
  std::ofstream(stale) << "half-written snapshot garbage";
  ASSERT_TRUE(fs::exists(stale));

  engine::EnactmentEngine restarted(durable_config(dir.str(), kCases, 0.0, 13));
  EXPECT_FALSE(fs::exists(stale)) << "stale .tmp survived reopen";
  const engine::EngineMetrics metrics = restarted.metrics();
  EXPECT_EQ(metrics.recovered, 0u);
  EXPECT_EQ(metrics.completed, kCases);
  const std::vector<OutcomeSignature> after = collect_signatures(restarted, ids);
  for (std::size_t i = 0; i < before.size(); ++i) EXPECT_TRUE(after[i] == before[i]);
}

TEST(DurableEngine, JournalStatsAndMetricsArePublished) {
  TempDir dir("metrics");
  engine::EnactmentEngine engine(durable_config(dir.str(), 2, 0.0, 21));
  const std::vector<engine::CaseId> ids = submit_fleet(engine, 2);
  engine.drain();
  ASSERT_NE(engine.journal(), nullptr);
  const store::StoreStats stats = engine.journal()->stats();
  EXPECT_TRUE(stats.durable);
  // At least one Admit and one Terminal per case.
  EXPECT_GE(stats.wal.appends + stats.snapshot_lsn, 2u * ids.size());
  engine.metrics();  // refreshes the registry, including store_* series
  bool store_series_present = false;
  for (const auto& point : engine.registry().snapshot().points) {
    if (point.name.rfind("store_", 0) == 0) store_series_present = true;
  }
  EXPECT_TRUE(store_series_present);
}

}  // namespace
}  // namespace ig
