file(REMOVE_RECURSE
  "../bench/bench_replanning_robustness"
  "../bench/bench_replanning_robustness.pdb"
  "CMakeFiles/bench_replanning_robustness.dir/bench_replanning_robustness.cpp.o"
  "CMakeFiles/bench_replanning_robustness.dir/bench_replanning_robustness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_replanning_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
