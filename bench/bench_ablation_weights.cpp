// Ablation A3 — fitness-weight sweep over the (wv, wg, wr) simplex.
//
// Eq. 4 combines validity, goal and representation-efficiency fitness with
// weights summing to 1. The paper picks (0.2, 0.5, 0.3). The sweep shows
// what each extreme optimizes for: all-wr rewards one-node plans that do
// nothing; all-wv rewards any executable activity; goal weight is what pulls
// the search toward plans that actually produce the resolution file.
#include <cstdio>
#include <string>

#include "gp_sweep.hpp"

using namespace ig;

int main() {
  const planner::PlanningProblem problem = bench::virolab_problem();
  struct Weights {
    const char* label;
    double wv, wg, wr;
  };
  const Weights settings[] = {
      {"paper(.2/.5/.3)", 0.2, 0.5, 0.3},
      {"1/0/0 validity", 1.0, 0.0, 0.0},
      {"0/1/0 goal", 0.0, 1.0, 0.0},
      {"0/0/1 size", 0.0, 0.0, 1.0},
      {"1/3 each", 1.0 / 3, 1.0 / 3, 1.0 / 3},
      {".45/.45/.1", 0.45, 0.45, 0.1},
  };
  constexpr int kRuns = 5;

  std::printf("A3: fitness-weight sweep (%d runs each)\n\n", kRuns);
  bench::print_sweep_header("weights");
  double size_only_goal = 1.0;
  int paper_optimal = 0;
  for (const auto& weights : settings) {
    planner::GpConfig config;
    config.population_size = 100;
    config.generations = 15;
    config.evaluation.wv = weights.wv;
    config.evaluation.wg = weights.wg;
    config.evaluation.wr = weights.wr;
    const bench::SweepPoint point = bench::run_sweep_point(problem, config, kRuns);
    bench::print_sweep_row(weights.label, point);
    if (std::string(weights.label) == "0/0/1 size") size_only_goal = point.goal.mean();
    if (std::string(weights.label) == "paper(.2/.5/.3)") paper_optimal = point.optimal_runs;
  }
  std::printf("\nexpected shape: pure size weight collapses to tiny useless plans\n"
              "(goal fitness ~ 0); the paper's weights reach the goal in every run.\n");
  const bool ok = paper_optimal == kRuns && size_only_goal < 0.5;
  std::printf("shape holds: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
