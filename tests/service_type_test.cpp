#include <gtest/gtest.h>

#include "virolab/catalogue.hpp"
#include "wfl/service.hpp"

namespace ig::wfl {
namespace {

ServiceType pod() {
  ServiceType service("POD");
  service.set_inputs({"A", "B"});
  service.set_input_condition(Condition::parse(
      "A.Classification = \"POD-Parameter\" and B.Classification = \"2D Image\""));
  service.set_outputs({"C"});
  service.set_output_condition(Condition::parse("C.Classification = \"Orientation File\""));
  return service;
}

DataSet pod_inputs() {
  DataSet state;
  state.put(DataSpec("D1").with_classification("POD-Parameter"));
  state.put(DataSpec("D7").with_classification("2D Image"));
  return state;
}

TEST(ServiceType, BindInputsSucceeds) {
  const ServiceType service = pod();
  const DataSet state = pod_inputs();  // bindings point into this set
  const auto bindings = service.bind_inputs(state);
  ASSERT_TRUE(bindings.has_value());
  EXPECT_EQ(bindings->at("A")->name(), "D1");
  EXPECT_EQ(bindings->at("B")->name(), "D7");
  EXPECT_TRUE(service.executable_in(pod_inputs()));
}

TEST(ServiceType, BindInputsFailsWhenDataMissing) {
  const ServiceType service = pod();
  DataSet state;
  state.put(DataSpec("D1").with_classification("POD-Parameter"));
  EXPECT_FALSE(service.bind_inputs(state).has_value());
  EXPECT_FALSE(service.executable_in(state));
}

TEST(ServiceType, BindInputsRequiresDistinctItems) {
  // PSF needs TWO distinct 3D models; one is not enough even though it would
  // satisfy both comparisons individually.
  ServiceType psf("PSF");
  psf.set_inputs({"A", "B", "C"});
  psf.set_input_condition(Condition::parse(
      "A.Classification = \"PSF-Parameter\" and B.Classification = \"3D Model\" and "
      "C.Classification = \"3D Model\""));
  DataSet one_model;
  one_model.put(DataSpec("D6").with_classification("PSF-Parameter"));
  one_model.put(DataSpec("M1").with_classification("3D Model"));
  EXPECT_FALSE(psf.bind_inputs(one_model).has_value());

  one_model.put(DataSpec("M2").with_classification("3D Model"));
  EXPECT_TRUE(psf.bind_inputs(one_model).has_value());
}

TEST(ServiceType, BindInputsBacktracks) {
  // A greedy left-to-right binder could bind A to the wrong item; the search
  // must backtrack to find the valid assignment.
  ServiceType service("S");
  service.set_inputs({"A", "B"});
  service.set_input_condition(
      Condition::parse("A.Kind = \"x\" and B.Kind = \"x\" and B.Level > 5"));
  DataSet state;
  state.put(DataSpec("first").with("Kind", meta::Value("x")).with("Level", meta::Value(9.0)));
  state.put(DataSpec("second").with("Kind", meta::Value("x")).with("Level", meta::Value(1.0)));
  const auto bindings = service.bind_inputs(state);
  ASSERT_TRUE(bindings.has_value());
  EXPECT_EQ(bindings->at("B")->name(), "first");
  EXPECT_EQ(bindings->at("A")->name(), "second");
}

TEST(ServiceType, ProduceOutputsCarriesEqualities) {
  const ServiceType service = pod();
  const auto outputs = service.produce_outputs("POD#1:");
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].name(), "POD#1:C");
  EXPECT_EQ(outputs[0].classification(), "Orientation File");
  EXPECT_EQ(outputs[0].get(props::kCreator).as_string(), "POD");
}

TEST(ServiceType, NoInputsIsTriviallyExecutable) {
  ServiceType generator("GEN");
  generator.set_outputs({"X"});
  generator.set_output_condition(Condition::parse("X.Classification = \"Seed\""));
  EXPECT_TRUE(generator.executable_in(DataSet{}));
  EXPECT_EQ(generator.produce_outputs("g:").size(), 1u);
}

TEST(Catalogue, AddFindReplace) {
  ServiceCatalogue catalogue;
  catalogue.add(pod());
  EXPECT_TRUE(catalogue.contains("POD"));
  EXPECT_EQ(catalogue.size(), 1u);
  ServiceType updated = pod();
  updated.set_cost(99.0);
  catalogue.add(std::move(updated));
  EXPECT_EQ(catalogue.size(), 1u);  // replaced, not appended
  EXPECT_DOUBLE_EQ(catalogue.find("POD")->cost(), 99.0);
  EXPECT_EQ(catalogue.find("NOPE"), nullptr);
}

TEST(Catalogue, Names) {
  const ServiceCatalogue catalogue = virolab::make_catalogue();
  const auto names = catalogue.names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "POD");
  EXPECT_EQ(names[3], "PSF");
}

// --- The virolab chain C1..C8 ------------------------------------------------

TEST(VirolabChain, FullPipelineBindsStepByStep) {
  const ServiceCatalogue catalogue = virolab::make_catalogue();
  DataSet state = virolab::make_initial_data();

  // POD is the only service executable initially (P3DR needs an orientation
  // file, POR additionally a model, PSF two models).
  EXPECT_TRUE(catalogue.find("POD")->executable_in(state));
  EXPECT_FALSE(catalogue.find("P3DR")->executable_in(state));
  EXPECT_FALSE(catalogue.find("POR")->executable_in(state));
  EXPECT_FALSE(catalogue.find("PSF")->executable_in(state));

  for (auto& out : catalogue.find("POD")->produce_outputs("pod:")) state.put(std::move(out));
  EXPECT_TRUE(catalogue.find("P3DR")->executable_in(state));
  EXPECT_FALSE(catalogue.find("POR")->executable_in(state));

  for (auto& out : catalogue.find("P3DR")->produce_outputs("p3dr1:")) state.put(std::move(out));
  EXPECT_TRUE(catalogue.find("POR")->executable_in(state));
  EXPECT_FALSE(catalogue.find("PSF")->executable_in(state));  // one model only

  for (auto& out : catalogue.find("P3DR")->produce_outputs("p3dr2:")) state.put(std::move(out));
  EXPECT_TRUE(catalogue.find("PSF")->executable_in(state));

  for (auto& out : catalogue.find("PSF")->produce_outputs("psf:")) state.put(std::move(out));
  EXPECT_EQ(state.with_classification(virolab::cls::kResolutionFile).size(), 1u);
}

}  // namespace
}  // namespace ig::wfl
