// ACL messages: the lingua franca of the multi-agent system.
//
// The paper builds its services on the Jade framework, whose agents speak
// FIPA ACL. This module provides the equivalent message shape: a
// performative, sender/receiver, a conversation id correlating a whole
// exchange (e.g. one re-planning episode), a protocol name, and content.
// Content travels either as a free-form string (often XML produced by the
// wfl/meta serializers) or as lightweight key-value parameters.
#pragma once

#include <map>
#include <string>
#include <string_view>

namespace ig::agent {

/// FIPA-style performatives (the subset the core services use).
enum class Performative {
  Request,
  Inform,
  Agree,
  Refuse,
  Failure,
  QueryRef,
  QueryIf,
  Propose,
  AcceptProposal,
  RejectProposal,
  Subscribe,
  Cancel,
  NotUnderstood,
};

std::string_view to_string(Performative performative) noexcept;

struct AclMessage {
  Performative performative = Performative::Inform;
  std::string sender;
  std::string receiver;
  std::string conversation_id;  ///< correlates a whole exchange
  std::string protocol;         ///< e.g. "planning-request", "service-query"
  std::string ontology;         ///< vocabulary of the content, e.g. "grid-standard"
  std::string content;          ///< free-form payload (often XML)
  std::map<std::string, std::string> params;  ///< structured payload fields

  /// Returns params[key] or `fallback`.
  std::string param(std::string_view key, std::string_view fallback = "") const;
  bool has_param(std::string_view key) const;

  /// Builds a reply: swaps sender/receiver, keeps conversation id and
  /// protocol, sets the performative.
  AclMessage make_reply(Performative reply_performative) const;

  /// One-line rendering for traces: "REQUEST cs -> ps [planning-request]".
  std::string to_display_string() const;
};

}  // namespace ig::agent
