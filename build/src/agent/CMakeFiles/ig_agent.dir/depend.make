# Empty dependencies file for ig_agent.
# This may be replaced when dependencies are built.
