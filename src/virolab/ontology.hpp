// Figure 13: the populated ontology for task T1 (3DSD).
//
// Builds the standard grid ontology shell and fills it with the instances
// shown in the figure: task T1, process description PD-3DSD, case
// description CD-3DSD, activities A1..A13, transitions TR1..TR15, data items
// D1..D12, and the four service frames with their condition texts.
#pragma once

#include "meta/ontology.hpp"

namespace ig::virolab {

/// The populated ontology used by the coordination service to automate the
/// 3-D reconstruction (Figure 13).
meta::Ontology make_fig13_ontology();

}  // namespace ig::virolab
