#include "wire/acl_xml.hpp"

#include <cstdio>
#include <stdexcept>

#include "xml/xml.hpp"

namespace ig::wire {

namespace {

/// The writer-side guard of the control-character bugfix: xml::escape also
/// rejects these bytes now, but checking here names the field instead of a
/// byte offset deep inside a serialized document.
void require_representable(std::string_view field, std::string_view value) {
  for (std::size_t i = 0; i < value.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(value[i]);
    if (c < 0x20 && c != '\t' && c != '\n' && c != '\r') {
      char buffer[8];
      std::snprintf(buffer, sizeof buffer, "0x%02X", c);
      throw std::invalid_argument("acl_to_xml: " + std::string(field) + " contains byte " +
                                  buffer + " at offset " + std::to_string(i) +
                                  ", which XML 1.0 cannot represent; use the binary codec");
    }
  }
}

}  // namespace

std::string acl_to_xml(const agent::AclMessage& message) {
  require_representable("sender", message.sender);
  require_representable("receiver", message.receiver);
  require_representable("conversation-id", message.conversation_id);
  require_representable("protocol", message.protocol);
  require_representable("ontology", message.ontology);
  require_representable("content", message.content);
  for (const auto& [name, value] : message.params) {
    require_representable("param name '" + name + "'", name);
    require_representable("param '" + name + "'", value);
  }

  xml::Document document("acl");
  xml::Element& root = document.root();
  root.set_attribute("performative", agent::to_string(message.performative));
  root.set_attribute("sender", message.sender);
  root.set_attribute("receiver", message.receiver);
  root.set_attribute("conversation-id", message.conversation_id);
  root.set_attribute("protocol", message.protocol);
  root.set_attribute("ontology", message.ontology);
  root.set_attribute("content", message.content);
  for (const auto& [name, value] : message.params) {
    xml::Element& param = root.add_child("param");
    param.set_attribute("name", name);
    param.set_attribute("value", value);
  }
  return document.to_string(-1);  // compact: the wire form has no pretty print
}

agent::AclMessage acl_from_xml(std::string_view text) {
  const xml::Document document = xml::parse(text);
  const xml::Element& root = document.root();
  if (root.name() != "acl") throw xml::ParseError("expected <acl> root element", 0);
  agent::AclMessage message;
  const std::string performative = root.attribute_or("performative", "");
  const auto parsed = agent::performative_from_string(performative);
  if (!parsed.has_value())
    throw xml::ParseError("unknown performative '" + performative + "'", 0);
  message.performative = *parsed;
  message.sender = root.attribute_or("sender", "");
  message.receiver = root.attribute_or("receiver", "");
  message.conversation_id = root.attribute_or("conversation-id", "");
  message.protocol = root.attribute_or("protocol", "");
  message.ontology = root.attribute_or("ontology", "");
  message.content = root.attribute_or("content", "");
  for (const auto& child : root.children()) {
    if (child->name() != "param") continue;
    message.params[child->attribute_or("name", "")] = child->attribute_or("value", "");
  }
  return message;
}

}  // namespace ig::wire
