// Chaos layer: deterministic fault injection, request reliability, and
// heartbeat-driven quarantine — the transport lies and the services cope.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "agent/platform.hpp"
#include "engine/engine.hpp"
#include "grid/grid.hpp"
#include "services/matchmaking.hpp"
#include "services/monitoring.hpp"
#include "services/protocol.hpp"
#include "services/request_tracker.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"

namespace ig {
namespace {

using agent::AclMessage;
using agent::Performative;

/// Records everything it receives.
class Recorder : public agent::Agent {
 public:
  using Agent::Agent;
  void handle_message(const AclMessage& message) override { received.push_back(message); }
  void post(AclMessage message) { send(std::move(message)); }
  std::vector<AclMessage> received;
};

/// Answers half-open liveness probes like a recovered container would.
class ProbeResponder : public agent::Agent {
 public:
  using Agent::Agent;
  void handle_message(const AclMessage& message) override {
    if (message.protocol == svc::protocols::kQueryExecutable &&
        message.performative == Performative::QueryIf)
      send(message.make_reply(Performative::Inform));
  }
};

AclMessage make_request(const std::string& sender, const std::string& receiver,
                        const std::string& conversation) {
  AclMessage message;
  message.performative = Performative::Request;
  message.sender = sender;
  message.receiver = receiver;
  message.conversation_id = conversation;
  message.protocol = "test";
  return message;
}

// -- match rules ---------------------------------------------------------------

TEST(ChaosMatch, EmptyFieldsMatchEverythingAndStarMatchesPrefix) {
  AclMessage message = make_request("cs", "ac-3", "c1");
  agent::ChaosMatch any;
  EXPECT_TRUE(any.matches(message));
  agent::ChaosMatch prefix;
  prefix.receiver = "ac-*";
  EXPECT_TRUE(prefix.matches(message));
  prefix.receiver = "cs-*";
  EXPECT_FALSE(prefix.matches(message));
  agent::ChaosMatch exact;
  exact.sender = "cs";
  exact.performative = Performative::Request;
  EXPECT_TRUE(exact.matches(message));
  exact.performative = Performative::Inform;
  EXPECT_FALSE(exact.matches(message));
}

// -- platform fault injection --------------------------------------------------

TEST(Chaos, DropRuleLosesEveryMatchingMessage) {
  grid::Simulation sim;
  agent::AgentPlatform platform(sim);
  platform.set_tracing(true);
  platform.spawn<Recorder>("a");
  auto& b = platform.spawn<Recorder>("b");

  agent::ChaosPolicy policy;
  policy.seed = 7;
  agent::ChaosRule rule;
  rule.match.receiver = "b";
  rule.drop = 1.0;
  policy.rules.push_back(rule);
  platform.set_chaos(policy);

  for (int i = 0; i < 5; ++i)
    platform.send(make_request("a", "b", "c" + std::to_string(i)));
  sim.run();

  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(platform.chaos_stats().dropped, 5u);
  // The loss is visible in the trace, not silent.
  bool annotated = false;
  for (const auto& record : platform.trace())
    if (!record.chaos.empty()) annotated = true;
  EXPECT_TRUE(annotated);
}

TEST(Chaos, DuplicateRuleDeliversTwoCopies) {
  grid::Simulation sim;
  agent::AgentPlatform platform(sim);
  platform.spawn<Recorder>("a");
  auto& b = platform.spawn<Recorder>("b");

  agent::ChaosPolicy policy;
  agent::ChaosRule rule;
  rule.match.receiver = "b";
  rule.duplicate = 1.0;
  policy.rules.push_back(rule);
  platform.set_chaos(policy);

  platform.send(make_request("a", "b", "c1"));
  sim.run();

  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[0].conversation_id, "c1");
  EXPECT_EQ(b.received[1].conversation_id, "c1");
  EXPECT_EQ(platform.chaos_stats().duplicated, 1u);
}

TEST(Chaos, SameSeedReproducesFaultCountsBitwise) {
  const auto run_once = [] {
    grid::Simulation sim;
    agent::AgentPlatform platform(sim);
    platform.spawn<Recorder>("a");
    auto& b = platform.spawn<Recorder>("b");
    agent::ChaosPolicy policy;
    policy.seed = 2004;
    agent::ChaosRule rule;
    rule.match.receiver = "b";
    rule.drop = 0.3;
    rule.delay = 0.3;
    rule.duplicate = 0.2;
    rule.reorder = 0.1;
    policy.rules.push_back(rule);
    platform.set_chaos(policy);
    for (int i = 0; i < 200; ++i)
      platform.send(make_request("a", "b", "c" + std::to_string(i)));
    sim.run();
    return std::make_tuple(platform.chaos_stats(), b.received.size());
  };

  const auto [stats_a, delivered_a] = run_once();
  const auto [stats_b, delivered_b] = run_once();
  EXPECT_EQ(stats_a.dropped, stats_b.dropped);
  EXPECT_EQ(stats_a.delayed, stats_b.delayed);
  EXPECT_EQ(stats_a.duplicated, stats_b.duplicated);
  EXPECT_EQ(stats_a.reordered, stats_b.reordered);
  EXPECT_EQ(delivered_a, delivered_b);
  EXPECT_GT(stats_a.dropped, 0u);  // the rule actually fired
}

TEST(Chaos, CrashFaultFiresAtNthDeliveryAndBounces) {
  grid::Simulation sim;
  agent::AgentPlatform platform(sim);
  auto& a = platform.spawn<Recorder>("a");
  auto& b = platform.spawn<Recorder>("b");

  agent::ChaosPolicy policy;
  agent::AgentFault fault;
  fault.agent = "b";
  fault.after_deliveries = 2;
  fault.kind = agent::AgentFault::Kind::Crash;
  policy.agent_faults.push_back(fault);
  platform.set_chaos(policy);

  platform.send(make_request("a", "b", "c1"));
  sim.run();
  platform.send(make_request("a", "b", "c2"));
  sim.run();

  // Delivery 1 arrived; delivery 2 fired the crash and bounced.
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(platform.agent_health("b"), agent::AgentHealth::Crashed);
  EXPECT_EQ(platform.chaos_stats().crashed, 1u);
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(a.received[0].performative, Performative::Failure);
  EXPECT_NE(a.received[0].param("error").find("crashed"), std::string::npos);

  // A revived agent receives again (the object never went away).
  platform.revive_agent("b");
  platform.send(make_request("a", "b", "c3"));
  sim.run();
  EXPECT_EQ(b.received.size(), 2u);
}

TEST(Chaos, HangSwallowsBothDirectionsSilently) {
  grid::Simulation sim;
  agent::AgentPlatform platform(sim);
  auto& a = platform.spawn<Recorder>("a");
  auto& b = platform.spawn<Recorder>("b");

  platform.hang_agent("b");
  platform.send(make_request("a", "b", "in"));  // delivery swallowed
  b.post(make_request("b", "a", "out"));        // send swallowed
  sim.run();

  EXPECT_TRUE(b.received.empty());
  EXPECT_TRUE(a.received.empty());  // no bounce: hangs are invisible
  const agent::ChaosStats stats = platform.chaos_stats();
  EXPECT_EQ(stats.swallowed, 1u);
  EXPECT_EQ(stats.dropped, 1u);
}

// -- request tracker -----------------------------------------------------------

TEST(RequestTracker, RetriesOnTimeoutThenDeadLetters) {
  grid::Simulation sim;
  svc::RequestTracker tracker;
  std::vector<AclMessage> sent;
  std::vector<svc::DeadLetter> letters;
  tracker.bind(
      sim, [&](AclMessage message) { sent.push_back(std::move(message)); },
      [&](const svc::DeadLetter& letter) { letters.push_back(letter); });

  tracker.track(make_request("cs", "ac-0", "case/exec/a1/0"), {1.0, 3, 0.1, 0.5});
  sim.run();  // nobody ever answers

  EXPECT_EQ(sent.size(), 3u);  // original + 2 retries
  EXPECT_EQ(tracker.retries_total(), 2u);
  ASSERT_EQ(letters.size(), 1u);
  EXPECT_EQ(letters[0].conversation_id, "case/exec/a1/0");
  EXPECT_EQ(letters[0].receiver, "ac-0");
  EXPECT_EQ(letters[0].attempts, 3);
  EXPECT_EQ(tracker.dead_letters_total(), 1u);
  EXPECT_EQ(tracker.outstanding_count(), 0u);
}

TEST(RequestTracker, SettleWinsOnceAndCancelsTheDeadline) {
  grid::Simulation sim;
  svc::RequestTracker tracker;
  std::size_t sends = 0;
  tracker.bind(sim, [&](AclMessage) { ++sends; });

  tracker.track(make_request("cs", "ac-0", "c1"), {10.0, 3, 0.1, 0.5});
  sim.schedule(0.5, [&] {
    EXPECT_TRUE(tracker.settle("c1"));    // first reply processed
    EXPECT_FALSE(tracker.settle("c1"));   // a chaos duplicate is dropped
  });
  sim.run();

  EXPECT_EQ(sends, 1u);  // the deadline never fired
  EXPECT_EQ(tracker.retries_total(), 0u);
  EXPECT_TRUE(tracker.dead_letters().empty());
  EXPECT_FALSE(tracker.settle("never-tracked"));
}

TEST(RequestTracker, AbandonPrefixCancelsWithoutDeadLetters) {
  grid::Simulation sim;
  svc::RequestTracker tracker;
  tracker.bind(sim, [](AclMessage) {});
  tracker.track(make_request("cs", "x", "case-7/exec/a1/0"), {5.0, 2, 0.1, 0.5});
  tracker.track(make_request("cs", "x", "case-7/match/a2/0"), {5.0, 2, 0.1, 0.5});
  tracker.track(make_request("cs", "x", "case-8/exec/a1/0"), {5.0, 2, 0.1, 0.5});

  EXPECT_EQ(tracker.abandon_prefix("case-7/"), 2u);
  EXPECT_EQ(tracker.outstanding_count(), 1u);
  EXPECT_TRUE(tracker.outstanding("case-8/exec/a1/0"));
  EXPECT_TRUE(tracker.abandon("case-8/exec/a1/0"));
  sim.run();
  EXPECT_TRUE(tracker.dead_letters().empty());
}

TEST(RequestTracker, SameSeedRetriesAtIdenticalTimes) {
  const auto deadline_times = [] {
    grid::Simulation sim;
    svc::RequestTracker tracker;
    tracker.set_seed(99);
    std::vector<grid::SimTime> times;
    tracker.bind(sim, [&](AclMessage) {});
    tracker.track(make_request("cs", "x", "c1"), {1.0, 4, 0.2, 2.0});
    // Observe the virtual time of every send indirectly via the dead letter.
    sim.run();
    return tracker.dead_letters().at(0).abandoned_at;
  };
  EXPECT_DOUBLE_EQ(deadline_times(), deadline_times());
}

// -- heartbeat liveness and quarantine ----------------------------------------

svc::HeartbeatConfig fast_heartbeat() {
  svc::HeartbeatConfig config;
  config.period = 1.0;
  config.suspect_missed = 2.0;
  config.dead_missed = 5.0;
  config.probe_interval = 3.0;
  return config;
}

AclMessage make_heartbeat(const std::string& container) {
  AclMessage beat;
  beat.performative = Performative::Inform;
  beat.sender = container;
  beat.receiver = "mons";
  beat.protocol = svc::protocols::kHeartbeat;
  beat.params["container"] = container;
  return beat;
}

TEST(Liveness, SilenceWalksAliveThroughSuspectToDead) {
  grid::Simulation sim;
  agent::AgentPlatform platform(sim);
  grid::Grid grid;
  auto& monitor = platform.spawn<svc::MonitoringService>("mons", grid, 0.0, fast_heartbeat());

  EXPECT_EQ(monitor.liveness_of("ac-x"), svc::Liveness::Unknown);
  platform.send(make_heartbeat("ac-x"));
  sim.run();
  EXPECT_EQ(monitor.liveness_of("ac-x"), svc::Liveness::Alive);
  EXPECT_EQ(monitor.heartbeats_received(), 1u);

  sim.run_until(sim.now() + 2.5);
  EXPECT_EQ(monitor.liveness_of("ac-x"), svc::Liveness::Suspect);
  sim.run_until(sim.now() + 4.0);
  EXPECT_EQ(monitor.liveness_of("ac-x"), svc::Liveness::Dead);
  EXPECT_EQ(monitor.dead_containers(), (std::vector<std::string>{"ac-x"}));

  // A resumed beat after a Dead-length silence closes the breaker.
  platform.send(make_heartbeat("ac-x"));
  sim.run();
  EXPECT_EQ(monitor.liveness_of("ac-x"), svc::Liveness::Alive);
  EXPECT_EQ(monitor.containers_recovered(), 1u);
}

TEST(Liveness, HalfOpenProbeReadmitsAResponsiveContainer) {
  grid::Simulation sim;
  agent::AgentPlatform platform(sim);
  grid::Grid grid;
  auto& monitor = platform.spawn<svc::MonitoringService>("mons", grid, 0.0, fast_heartbeat());
  platform.spawn<ProbeResponder>("ac-y");

  platform.send(make_heartbeat("ac-y"));
  sim.run();
  sim.run_until(sim.now() + 10.0);
  EXPECT_EQ(monitor.liveness_of("ac-y"), svc::Liveness::Dead);  // emits a probe

  sim.run();  // probe round trip
  EXPECT_EQ(monitor.containers_recovered(), 1u);
  EXPECT_EQ(monitor.liveness_of("ac-y"), svc::Liveness::Alive);
}

TEST(Liveness, MatchmakingQuarantinesDeadContainersOnly) {
  grid::Simulation sim;
  agent::AgentPlatform platform(sim);
  grid::Grid grid;
  grid.add_node("n1", "node-1", "domA", grid::HardwareSpec{});
  grid.add_container("c1", "n1").host_service("svc");
  grid.add_container("c2", "n1").host_service("svc");
  auto& monitor = platform.spawn<svc::MonitoringService>("mons", grid, 0.0, fast_heartbeat());
  platform.spawn<svc::MatchmakingService>("mms", grid, nullptr, &monitor);
  auto& client = platform.spawn<Recorder>("client");

  // c1 beats once, then goes silent past the Dead threshold; c2 never beat
  // (Unknown — it may predate the heartbeat scheme) and stays eligible.
  platform.send(make_heartbeat("c1"));
  sim.run();
  sim.run_until(sim.now() + 10.0);

  AclMessage query = make_request("client", "mms", "q1");
  query.protocol = svc::protocols::kFindContainer;
  query.params["service"] = "svc";
  client.post(std::move(query));
  sim.run();

  ASSERT_EQ(client.received.size(), 1u);
  EXPECT_EQ(client.received[0].performative, Performative::Inform);
  EXPECT_EQ(client.received[0].param("container"), "c2");
  EXPECT_EQ(client.received[0].param("candidates"), "c2");
}

// -- engine under chaos --------------------------------------------------------

engine::EngineConfig chaos_engine_config(std::size_t cases, double drop,
                                         std::uint64_t seed) {
  engine::EngineConfig config;
  config.shards = 1;  // one shard = one calendar = bit-reproducible
  config.queue_capacity = cases + 8;
  config.environment.topology.domains = 2;
  config.environment.topology.nodes_per_domain = 3;
  config.environment.heartbeat_period = 5.0;
  config.environment.coordination.exec_policy = {300.0, 3, 0.5, 10.0};
  config.environment.coordination.replan_policy = {300.0, 2, 0.5, 10.0};
  agent::ChaosRule rule;
  rule.match.receiver = "ac-*";
  rule.drop = drop;
  rule.delay = drop / 2.0;
  config.environment.chaos.rules.push_back(rule);
  config.environment.chaos.seed = seed;
  return config;
}

struct SoakResult {
  std::vector<engine::CaseState> states;
  engine::EngineMetrics metrics;
};

SoakResult run_soak(std::size_t cases, double drop, std::uint64_t seed) {
  engine::EnactmentEngine engine(chaos_engine_config(cases, drop, seed));
  std::vector<engine::CaseId> ids;
  for (std::size_t i = 0; i < cases; ++i) {
    const double resolution = 8.0 - 0.04 * static_cast<double>(i);
    ids.push_back(engine.submit(virolab::make_fig10_process(resolution),
                                virolab::make_case_description(resolution)));
  }
  engine.drain();
  SoakResult result;
  for (const engine::CaseId id : ids) result.states.push_back(engine.status(id));
  result.metrics = engine.metrics();
  return result;
}

// The issue's acceptance bar: 20% of container-bound messages dropped at a
// fixed seed, 50 cases, >= 95% complete, the rest Failed (never hung).
TEST(ChaosEngine, FiftyCaseSoakAtTwentyPercentDropMostlyRecovers) {
  const std::size_t cases = 50;
  const SoakResult soak = run_soak(cases, 0.2, 2004);

  std::size_t completed = 0;
  for (const engine::CaseState state : soak.states) {
    ASSERT_TRUE(engine::is_terminal(state));  // drain() + terminal = no hangs
    if (state == engine::CaseState::Completed) ++completed;
  }
  EXPECT_GE(completed, (cases * 95) / 100);
  EXPECT_EQ(soak.metrics.completed + soak.metrics.failed, cases);
  EXPECT_GT(soak.metrics.faults_injected, 0u);
  EXPECT_GT(soak.metrics.request_retries, 0u);
  // Every engine-level failure must be explained by an abandoned request.
  if (soak.metrics.failed > 0) {
    EXPECT_GT(soak.metrics.dead_letters, 0u);
  }
}

TEST(ChaosEngine, SameSeedRunsAreIdentical) {
  const SoakResult first = run_soak(10, 0.25, 77);
  const SoakResult second = run_soak(10, 0.25, 77);
  EXPECT_EQ(first.states, second.states);
  EXPECT_EQ(first.metrics.faults_injected, second.metrics.faults_injected);
  EXPECT_EQ(first.metrics.request_retries, second.metrics.request_retries);
  EXPECT_EQ(first.metrics.dead_letters, second.metrics.dead_letters);
  EXPECT_EQ(first.metrics.completed, second.metrics.completed);
  EXPECT_EQ(first.metrics.failed, second.metrics.failed);
}

// Double fault: every dispatch is dropped AND the first container crashes
// outright, with the in-shard retry budgets cut to the bone. The case must
// fail cleanly — dead letters on the record, drain() returning — rather
// than hanging on a conversation nobody will ever finish.
TEST(ChaosEngine, DoubleFaultFailsWithDeadLettersInsteadOfHanging) {
  engine::EngineConfig config;
  config.shards = 1;
  config.max_case_retries = 0;
  config.environment.topology.domains = 2;
  config.environment.topology.nodes_per_domain = 2;
  config.environment.coordination.max_retries = 1;
  config.environment.coordination.max_replans = 0;
  config.environment.coordination.exec_policy = {5.0, 2, 0.1, 1.0};
  agent::ChaosRule rule;
  rule.match.receiver = "ac-*";
  rule.drop = 1.0;  // no dispatch ever arrives
  config.environment.chaos.rules.push_back(rule);
  agent::AgentFault crash;
  crash.agent = "ac-0";
  crash.after_deliveries = 1;
  config.environment.chaos.agent_faults.push_back(crash);
  config.environment.chaos.seed = 5;

  engine::EnactmentEngine engine(config);
  const engine::CaseId id =
      engine.submit(virolab::make_fig10_process(), virolab::make_case_description());
  const auto outcome = engine.wait(id);

  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->state, engine::CaseState::Failed);
  EXPECT_FALSE(outcome->error.empty());
  const engine::EngineMetrics metrics = engine.metrics();
  EXPECT_GE(metrics.dead_letters, 1u);
  EXPECT_EQ(metrics.completed, 0u);
}

}  // namespace
}  // namespace ig
