# Empty dependencies file for ig_virolab.
# This may be replaced when dependencies are built.
