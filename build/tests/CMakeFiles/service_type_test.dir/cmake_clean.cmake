file(REMOVE_RECURSE
  "CMakeFiles/service_type_test.dir/service_type_test.cpp.o"
  "CMakeFiles/service_type_test.dir/service_type_test.cpp.o.d"
  "service_type_test"
  "service_type_test.pdb"
  "service_type_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_type_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
