// Ablation A2 — Smax (plan-tree size bound) versus fitness and bloat.
//
// Section 3.4.1: "The value of Smax should be properly set to ensure the
// efficiency of the search without compromising the quality of solutions."
// Too small an Smax forbids valid plans (the minimal goal-reaching plan
// needs 5 nodes); large Smax admits bloat that the fr term must fight.
#include <cstdio>
#include <string>

#include "gp_sweep.hpp"

using namespace ig;

int main() {
  const planner::PlanningProblem problem = bench::virolab_problem();
  const std::size_t bounds[] = {4, 8, 10, 20, 40, 80};
  constexpr int kRuns = 5;

  std::printf("A2: Smax sweep (%d runs each; minimal valid plan = 5 nodes)\n\n", kRuns);
  bench::print_sweep_header("Smax");
  int optimal_at_4 = -1;
  int optimal_at_40 = -1;
  for (const std::size_t smax : bounds) {
    planner::GpConfig config;
    config.population_size = 100;
    config.generations = 15;
    config.evaluation.smax = smax;
    const bench::SweepPoint point = bench::run_sweep_point(problem, config, kRuns);
    bench::print_sweep_row(std::to_string(smax).c_str(), point);
    if (smax == 4) optimal_at_4 = point.optimal_runs;
    if (smax == 40) optimal_at_40 = point.optimal_runs;
  }
  std::printf("\nexpected shape: Smax = 4 cannot express the 5-node minimal valid plan\n"
              "(goal fitness < 1); the paper's Smax = 40 succeeds in every run.\n");
  const bool ok = optimal_at_4 == 0 && optimal_at_40 == kRuns;
  std::printf("shape holds: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
