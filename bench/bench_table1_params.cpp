// Table 1 — Parameter settings in the experiments.
//
// Prints the configuration the experiment harness (bench_table2_planning)
// uses, side by side with the paper's values. These are the library
// defaults, so a mismatch here would mean the defaults drifted.
#include <cstdio>

#include "planner/gp.hpp"

int main() {
  const ig::planner::GpConfig config;  // library defaults = Table 1

  std::printf("Table 1. Parameter Settings in the experiments.\n");
  std::printf("%-28s %-12s %s\n", "Parameter", "Paper", "This library");
  std::printf("%-28s %-12s %g\n", "Population Size", "200",
              static_cast<double>(config.population_size));
  std::printf("%-28s %-12s %g\n", "Number of Generation", "20",
              static_cast<double>(config.generations));
  std::printf("%-28s %-12s %g\n", "Crossover Rate", "0.7", config.crossover_rate);
  std::printf("%-28s %-12s %g\n", "Mutation Rate", "0.001", config.mutation_rate);
  std::printf("%-28s %-12s %g\n", "Smax", "40", static_cast<double>(config.evaluation.smax));
  std::printf("%-28s %-12s %g\n", "wv", "0.2", config.evaluation.wv);
  std::printf("%-28s %-12s %g\n", "wg", "0.5", config.evaluation.wg);
  std::printf("%-28s %-12s %g   (wv+wg+wr = 1)\n", "wr (implied)", "0.3",
              config.evaluation.wr);

  const bool match = config.population_size == 200 && config.generations == 20 &&
                     config.crossover_rate == 0.7 && config.mutation_rate == 0.001 &&
                     config.evaluation.smax == 40 && config.evaluation.wv == 0.2 &&
                     config.evaluation.wg == 0.5 && config.evaluation.wr == 0.3;
  std::printf("\ndefaults match Table 1: %s\n", match ? "yes" : "NO");
  return match ? 0 : 1;
}
