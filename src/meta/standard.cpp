#include "meta/standard.hpp"

namespace ig::meta {

namespace {

SlotDef str(std::string name, bool required = false) {
  SlotDef slot;
  slot.name = std::move(name);
  slot.type = ValueType::String;
  slot.required = required;
  return slot;
}

SlotDef num(std::string name, bool required = false) {
  SlotDef slot;
  slot.name = std::move(name);
  slot.type = ValueType::Number;
  slot.required = required;
  return slot;
}

SlotDef boolean(std::string name, bool required = false) {
  SlotDef slot;
  slot.name = std::move(name);
  slot.type = ValueType::Boolean;
  slot.required = required;
  return slot;
}

SlotDef list(std::string name, bool required = false) {
  SlotDef slot;
  slot.name = std::move(name);
  slot.type = ValueType::List;
  slot.required = required;
  return slot;
}

SlotDef enumeration(std::string name, std::vector<std::string> allowed, bool required = false) {
  SlotDef slot;
  slot.name = std::move(name);
  slot.type = ValueType::String;
  slot.required = required;
  slot.allowed_values = std::move(allowed);
  return slot;
}

}  // namespace

Ontology standard_grid_ontology() {
  Ontology ontology("grid-standard");

  auto& task = ontology.add_class(classes::kTask);
  task.set_documentation("A complex problem submitted by an end user.");
  task.add_slot(str("ID", /*required=*/true));
  task.add_slot(str("Name", /*required=*/true));
  task.add_slot(str("Owner"));
  task.add_slot(str("Submit Location"));
  task.add_slot(enumeration("Status", {"Submitted", "Planning", "Running", "Suspended",
                                       "Completed", "Failed"}));
  task.add_slot(list("Data Set"));
  task.add_slot(list("Result Set"));
  task.add_slot(str("Case Description"));
  task.add_slot(str("Process Description"));
  task.add_slot(boolean("Need Planning"));

  auto& process = ontology.add_class(classes::kProcessDescription);
  process.set_documentation(
      "Formal ATN-style description of the complex problem the user wishes to solve.");
  process.add_slot(str("ID"));
  process.add_slot(str("Name", /*required=*/true));
  process.add_slot(str("Location"));
  process.add_slot(list("Activity Set", /*required=*/true));
  process.add_slot(list("Transition Set", /*required=*/true));
  process.add_slot(str("Creator"));

  auto& transition = ontology.add_class(classes::kTransition);
  transition.set_documentation("A directed edge between two activities.");
  transition.add_slot(str("ID", /*required=*/true));
  transition.add_slot(str("Source Activity", /*required=*/true));
  transition.add_slot(str("Destination Activity", /*required=*/true));

  auto& case_description = ontology.add_class(classes::kCaseDescription);
  case_description.set_documentation(
      "Per-instance binding: actual data, constraints, conditions and goal.");
  case_description.add_slot(str("ID"));
  case_description.add_slot(str("Name", /*required=*/true));
  case_description.add_slot(list("Initial Data Set"));
  case_description.add_slot(list("Result Set"));
  case_description.add_slot(str("Constraint"));
  case_description.add_slot(str("Goal"));
  case_description.add_slot(str("Condition"));

  auto& activity = ontology.add_class(classes::kActivity);
  activity.set_documentation("One node of a process description.");
  activity.add_slot(str("ID", /*required=*/true));
  activity.add_slot(str("Name", /*required=*/true));
  activity.add_slot(str("Task ID"));
  activity.add_slot(str("Owner"));
  activity.add_slot(str("Service Name"));
  activity.add_slot(enumeration("Type", {"Begin", "End", "Choice", "Fork", "Join", "Merge",
                                         "End-user"},
                                /*required=*/true));
  activity.add_slot(str("Execution Location"));
  activity.add_slot(list("Input Data Set"));
  activity.add_slot(list("Output Data Set"));
  activity.add_slot(list("Input Data Order"));
  activity.add_slot(list("Output Data Order"));
  activity.add_slot(str("Status"));
  activity.add_slot(str("Constraint"));
  activity.add_slot(str("Work Directory"));
  activity.add_slot(list("Direct Predecessor Set"));
  activity.add_slot(list("Direct Successor Set"));
  activity.add_slot(num("Retry Count"));
  activity.add_slot(str("Dispatched By"));

  auto& data = ontology.add_class(classes::kData);
  data.set_documentation("A data item consumed or produced by activities.");
  data.add_slot(str("Name", /*required=*/true));
  data.add_slot(str("Location"));
  data.add_slot(str("Time Stamp"));
  data.add_slot(str("Value"));
  data.add_slot(str("Category"));
  data.add_slot(str("Format"));
  data.add_slot(str("Owner"));
  data.add_slot(str("Creator"));
  data.add_slot(num("Size"));
  data.add_slot(str("Creation Date"));
  data.add_slot(str("Description"));
  data.add_slot(str("Latest Modified Date"));
  data.add_slot(str("Classification"));
  data.add_slot(str("Type"));
  data.add_slot(str("Access Right"));

  auto& service = ontology.add_class(classes::kService);
  service.set_documentation("An end-user computing service hosted by an application container.");
  service.add_slot(str("Name", /*required=*/true));
  service.add_slot(str("Type"));
  service.add_slot(str("Time Stamp"));
  service.add_slot(list("User Set"));
  service.add_slot(str("Location"));
  service.add_slot(str("Creation Date"));
  service.add_slot(str("Version"));
  service.add_slot(str("Description"));
  service.add_slot(list("Command History"));
  service.add_slot(str("Input Condition"));
  service.add_slot(str("Output Condition"));
  service.add_slot(list("Input Data Set"));
  service.add_slot(list("Output Data Set"));
  service.add_slot(list("Input Data Order"));
  service.add_slot(list("Output Data Order"));
  service.add_slot(num("Cost"));
  service.add_slot(str("Resource"));

  auto& resource = ontology.add_class(classes::kResource);
  resource.set_documentation("A computational resource (site, cluster, host).");
  resource.add_slot(str("Name", /*required=*/true));
  resource.add_slot(str("Type"));
  resource.add_slot(str("Location"));
  resource.add_slot(num("Number of Nodes"));
  resource.add_slot(str("Administration Domain"));
  resource.add_slot(str("Hardware"));
  resource.add_slot(str("Software"));
  resource.add_slot(list("Access Set"));

  auto& hardware = ontology.add_class(classes::kHardware);
  hardware.set_documentation("Hardware characteristics of a resource.");
  hardware.add_slot(str("Type"));
  hardware.add_slot(num("Speed"));
  hardware.add_slot(num("Size"));
  hardware.add_slot(num("Bandwidth"));
  hardware.add_slot(num("Latency"));
  hardware.add_slot(str("Manufacturer"));
  hardware.add_slot(str("Model"));
  hardware.add_slot(str("Comment"));

  auto& software = ontology.add_class(classes::kSoftware);
  software.set_documentation("Software installed on a resource.");
  software.add_slot(str("Name", /*required=*/true));
  software.add_slot(str("Type"));
  software.add_slot(str("Manufacturer"));
  software.add_slot(str("Version"));
  software.add_slot(str("Distribution"));

  return ontology;
}

}  // namespace ig::meta
