file(REMOVE_RECURSE
  "../bench/bench_planner_scaling"
  "../bench/bench_planner_scaling.pdb"
  "CMakeFiles/bench_planner_scaling.dir/bench_planner_scaling.cpp.o"
  "CMakeFiles/bench_planner_scaling.dir/bench_planner_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_planner_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
