# Empty compiler generated dependencies file for virus_reconstruction.
# This may be replaced when dependencies are built.
