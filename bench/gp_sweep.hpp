// Shared helper for the GP ablation benches: run N seeded GP runs for a
// configuration and aggregate the best-of-run statistics. The seeded runs
// are independent, so they execute on the work-stealing job system (one run
// per job, each run itself single-threaded to avoid oversubscription);
// run_gp is thread-count-deterministic and results are aggregated in seed
// order, so the numbers match the serial sweep exactly.
#pragma once

#include <cstdio>
#include <vector>

#include "planner/gp.hpp"
#include "sched/job_system.hpp"
#include "util/stats.hpp"
#include "virolab/catalogue.hpp"

namespace ig::bench {

struct SweepPoint {
  util::SampleSet fitness;
  util::SampleSet validity;
  util::SampleSet goal;
  util::SampleSet size;
  int optimal_runs = 0;  ///< runs with fv = fg = 1
  int runs = 0;
  std::size_t evaluations = 0;  ///< total across runs, memo hits included
  std::size_t memo_hits = 0;    ///< evaluations served from the fitness memo

  double memo_hit_rate() const {
    return evaluations > 0 ? static_cast<double>(memo_hits) / static_cast<double>(evaluations)
                           : 0.0;
  }
};

inline planner::PlanningProblem virolab_problem() {
  return planner::PlanningProblem::from_case(virolab::make_case_description(),
                                             virolab::make_catalogue());
}

/// Runs `runs` seeded GP runs. `outer_threads`: 0 = one task per hardware
/// thread (capped at `runs`), 1 = serial, N = that many concurrent runs.
inline SweepPoint run_sweep_point(const planner::PlanningProblem& problem,
                                  planner::GpConfig config, int runs,
                                  std::uint64_t seed_base = 1000,
                                  std::size_t outer_threads = 0) {
  if (outer_threads == 0)
    outer_threads = std::min<std::size_t>(sched::JobSystem::hardware_threads(),
                                          runs > 0 ? static_cast<std::size_t>(runs) : 1);

  std::vector<planner::GpResult> results(static_cast<std::size_t>(runs > 0 ? runs : 0));
  const auto run_one = [&](std::size_t run) {
    planner::GpConfig run_config = config;
    run_config.seed = seed_base + run;
    // The job system supplies the parallelism; each run stays single-threaded.
    if (outer_threads > 1) run_config.threads = 1;
    results[run] = planner::run_gp(problem, run_config);
  };
  if (outer_threads > 1) {
    sched::JobSystem jobs(outer_threads);
    jobs.parallel_for(
        results.size(), [&](std::size_t run, std::size_t) { run_one(run); },
        /*min_chunk=*/1);
  } else {
    for (std::size_t run = 0; run < results.size(); ++run) run_one(run);
  }

  SweepPoint point;
  point.runs = runs;
  for (const planner::GpResult& result : results) {
    point.fitness.add(result.best_fitness.overall);
    point.validity.add(result.best_fitness.validity);
    point.goal.add(result.best_fitness.goal);
    point.size.add(static_cast<double>(result.best_fitness.size));
    if (result.best_fitness.validity == 1.0 && result.best_fitness.goal == 1.0)
      ++point.optimal_runs;
    point.evaluations += result.evaluations;
    point.memo_hits += result.memo_hits;
  }
  return point;
}

inline void print_sweep_header(const char* parameter_name) {
  std::printf("%-14s %-9s %-9s %-9s %-8s %s\n", parameter_name, "fitness", "validity",
              "goal", "size", "optimal-runs");
}

inline void print_sweep_row(const char* label, const SweepPoint& point) {
  std::printf("%-14s %-9.4f %-9.3f %-9.3f %-8.1f %d/%d\n", label, point.fitness.mean(),
              point.validity.mean(), point.goal.mean(), point.size.mean(),
              point.optimal_runs, point.runs);
}

}  // namespace ig::bench
