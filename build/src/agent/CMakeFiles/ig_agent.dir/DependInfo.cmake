
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agent/agent.cpp" "src/agent/CMakeFiles/ig_agent.dir/agent.cpp.o" "gcc" "src/agent/CMakeFiles/ig_agent.dir/agent.cpp.o.d"
  "/root/repo/src/agent/message.cpp" "src/agent/CMakeFiles/ig_agent.dir/message.cpp.o" "gcc" "src/agent/CMakeFiles/ig_agent.dir/message.cpp.o.d"
  "/root/repo/src/agent/platform.cpp" "src/agent/CMakeFiles/ig_agent.dir/platform.cpp.o" "gcc" "src/agent/CMakeFiles/ig_agent.dir/platform.cpp.o.d"
  "/root/repo/src/agent/trace_render.cpp" "src/agent/CMakeFiles/ig_agent.dir/trace_render.cpp.o" "gcc" "src/agent/CMakeFiles/ig_agent.dir/trace_render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ig_util.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/ig_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/wfl/CMakeFiles/ig_wfl.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/ig_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/ig_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
