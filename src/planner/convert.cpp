#include "planner/convert.hpp"

#include <map>

namespace ig::planner {

namespace {

void count_services(const PlanNode& node, std::map<std::string, int>& totals) {
  if (node.is_terminal()) {
    ++totals[node.service];
    return;
  }
  for (const auto& child : node.children) count_services(child, totals);
}

wfl::FlowExpr convert_node(const PlanNode& node, const std::map<std::string, int>& totals,
                           std::map<std::string, int>& seen) {
  switch (node.kind) {
    case PlanNode::Kind::Terminal: {
      const int total = totals.at(node.service);
      std::string name = node.service;
      if (total > 1) name += std::to_string(++seen[node.service]);
      return wfl::FlowExpr::activity(std::move(name), node.service);
    }
    case PlanNode::Kind::Sequential: {
      std::vector<wfl::FlowExpr> elements;
      elements.reserve(node.children.size());
      for (const auto& child : node.children)
        elements.push_back(convert_node(child, totals, seen));
      return wfl::FlowExpr::sequence(std::move(elements));
    }
    case PlanNode::Kind::Concurrent: {
      std::vector<wfl::FlowExpr> branches;
      branches.reserve(node.children.size());
      for (const auto& child : node.children)
        branches.push_back(convert_node(child, totals, seen));
      return wfl::FlowExpr::concurrent(std::move(branches));
    }
    case PlanNode::Kind::Selective: {
      std::vector<wfl::FlowExpr> branches;
      branches.reserve(node.children.size());
      for (const auto& child : node.children)
        branches.push_back(convert_node(child, totals, seen));
      return wfl::FlowExpr::selective(node.guards, std::move(branches));
    }
    case PlanNode::Kind::Iterative: {
      std::vector<wfl::FlowExpr> body;
      body.reserve(node.children.size());
      for (const auto& child : node.children)
        body.push_back(convert_node(child, totals, seen));
      return wfl::FlowExpr::iterative(node.continue_condition,
                                      wfl::FlowExpr::sequence(std::move(body)));
    }
  }
  throw wfl::ProcessError("convert: unknown plan node kind");
}

}  // namespace

wfl::FlowExpr to_flow_expr(const PlanNode& plan) {
  std::map<std::string, int> totals;
  count_services(plan, totals);
  std::map<std::string, int> seen;
  return convert_node(plan, totals, seen);
}

PlanNode from_flow_expr(const wfl::FlowExpr& expr) {
  switch (expr.kind) {
    case wfl::FlowExpr::Kind::Activity:
      return PlanNode::terminal(expr.service);
    case wfl::FlowExpr::Kind::Sequence: {
      std::vector<PlanNode> children;
      children.reserve(expr.children.size());
      for (const auto& child : expr.children) children.push_back(from_flow_expr(child));
      if (children.size() == 1) return std::move(children.front());
      return PlanNode::sequential(std::move(children));
    }
    case wfl::FlowExpr::Kind::Concurrent: {
      std::vector<PlanNode> children;
      children.reserve(expr.children.size());
      for (const auto& child : expr.children) children.push_back(from_flow_expr(child));
      return PlanNode::concurrent(std::move(children));
    }
    case wfl::FlowExpr::Kind::Selective: {
      std::vector<PlanNode> children;
      children.reserve(expr.children.size());
      for (const auto& child : expr.children) children.push_back(from_flow_expr(child));
      return PlanNode::selective(std::move(children), expr.guards);
    }
    case wfl::FlowExpr::Kind::Iterative: {
      // The flow expression's single body (a sequence) flattens back into
      // the iterative node's child list, as in Figure 11.
      const wfl::FlowExpr& body = expr.children.front();
      std::vector<PlanNode> children;
      if (body.kind == wfl::FlowExpr::Kind::Sequence) {
        children.reserve(body.children.size());
        for (const auto& element : body.children) children.push_back(from_flow_expr(element));
      } else {
        children.push_back(from_flow_expr(body));
      }
      return PlanNode::iterative(std::move(children), expr.guards.front());
    }
  }
  throw wfl::ProcessError("convert: unknown flow expression kind");
}

wfl::ProcessDescription to_process(const PlanNode& plan, std::string name) {
  return wfl::lower_to_process(to_flow_expr(plan), std::move(name));
}

PlanNode from_process(const wfl::ProcessDescription& process) {
  return from_flow_expr(wfl::lift_from_process(process));
}

}  // namespace ig::planner
