#include <gtest/gtest.h>

#include <set>

#include "meta/standard.hpp"
#include "meta/xml_io.hpp"
#include "services/environment.hpp"
#include "services/protocol.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"
#include "wfl/xml_io.hpp"

namespace ig::svc {
namespace {

using agent::AclMessage;
using agent::Performative;

/// Test client that records replies.
class Client : public agent::Agent {
 public:
  explicit Client(std::string name = "ui") : Agent(std::move(name)) {}
  void handle_message(const AclMessage& message) override { replies.push_back(message); }

  void request(agent::AgentPlatform& platform, AclMessage message) {
    message.sender = name();
    platform.send(std::move(message));
  }

  std::vector<AclMessage> replies;
};

struct Fixture {
  Fixture() {
    EnvironmentOptions options;
    options.topology.domains = 2;
    options.topology.nodes_per_domain = 2;
    options.seed = 11;
    environment = make_environment(options);
    client = &environment->platform().spawn<Client>("ui");
  }

  AclMessage last() const {
    EXPECT_FALSE(client->replies.empty());
    return client->replies.empty() ? AclMessage{} : client->replies.back();
  }

  std::unique_ptr<Environment> environment;
  Client* client = nullptr;
};

TEST(InformationServiceTest, CoreServicesSelfRegister) {
  Fixture fixture;
  auto& info = fixture.environment->information();
  EXPECT_EQ(info.providers_of("brokerage"), (std::vector<std::string>{names::kBrokerage}));
  EXPECT_EQ(info.providers_of("planning"), (std::vector<std::string>{names::kPlanning}));
  EXPECT_EQ(info.providers_of("coordination"),
            (std::vector<std::string>{names::kCoordination}));
  EXPECT_FALSE(info.providers_of("application-container").empty());
  EXPECT_TRUE(info.providers_of("teleportation").empty());
}

TEST(InformationServiceTest, QueryByMessage) {
  Fixture fixture;
  AclMessage query;
  query.performative = Performative::QueryRef;
  query.receiver = names::kInformation;
  query.protocol = protocols::kQueryService;
  query.params["type"] = "matchmaking";
  fixture.client->request(fixture.environment->platform(), query);
  fixture.environment->run();
  EXPECT_EQ(fixture.last().param("providers"), names::kMatchmaking);
}

TEST(InformationServiceTest, DeregisterRemovesProvider) {
  Fixture fixture;
  AclMessage dereg;
  dereg.performative = Performative::Request;
  dereg.receiver = names::kInformation;
  dereg.protocol = protocols::kDeregister;
  dereg.params["type"] = "scheduling";
  dereg.params["provider"] = names::kScheduling;
  fixture.client->request(fixture.environment->platform(), dereg);
  fixture.environment->run();
  EXPECT_TRUE(fixture.environment->information().providers_of("scheduling").empty());
}

TEST(BrokerageTest, ContainersAdvertiseOnStartup) {
  Fixture fixture;
  auto& brokerage = fixture.environment->brokerage();
  for (const char* service : {"POD", "P3DR", "POR", "PSF"}) {
    EXPECT_FALSE(brokerage.providers_of(service).empty()) << service;
  }
  EXPECT_FALSE(brokerage.equivalence_classes().empty());
}

TEST(BrokerageTest, HistoryQueryNeutralWhenUnknown) {
  Fixture fixture;
  AclMessage query;
  query.performative = Performative::QueryRef;
  query.receiver = names::kBrokerage;
  query.protocol = protocols::kQueryHistory;
  query.params["container"] = "never-dispatched";
  fixture.client->request(fixture.environment->platform(), query);
  fixture.environment->run();
  EXPECT_EQ(fixture.last().param("success-rate"), "1");
}

TEST(BrokerageTest, PerformanceReportsAccumulate) {
  Fixture fixture;
  auto& platform = fixture.environment->platform();
  for (int i = 0; i < 3; ++i) {
    AclMessage report;
    report.performative = Performative::Inform;
    report.receiver = names::kBrokerage;
    report.protocol = protocols::kReportPerformance;
    report.params["container"] = "ac-1";
    report.params["outcome"] = i < 2 ? "success" : "failure";
    report.params["duration"] = "2.0";
    fixture.client->request(platform, report);
  }
  fixture.environment->run();
  const PerformanceHistory* history = fixture.environment->brokerage().history_of("ac-1");
  ASSERT_NE(history, nullptr);
  EXPECT_EQ(history->successes, 2u);
  EXPECT_EQ(history->failures, 1u);
  EXPECT_NEAR(history->success_rate(), 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(history->mean_duration(), 2.0);
}

TEST(MatchmakingTest, FindsContainerForService) {
  Fixture fixture;
  AclMessage query;
  query.performative = Performative::QueryRef;
  query.receiver = names::kMatchmaking;
  query.protocol = protocols::kFindContainer;
  query.params["service"] = "POD";
  fixture.client->request(fixture.environment->platform(), query);
  fixture.environment->run();
  const AclMessage reply = fixture.last();
  EXPECT_EQ(reply.performative, Performative::Inform);
  EXPECT_FALSE(reply.param("container").empty());
}

TEST(MatchmakingTest, ExclusionRespected) {
  Fixture fixture;
  const auto all = fixture.environment->matchmaking().rank("POD", {}, MatchStrategy::Balanced);
  ASSERT_FALSE(all.empty());
  const auto without_best =
      fixture.environment->matchmaking().rank("POD", {all.front()}, MatchStrategy::Balanced);
  for (const auto& container : without_best) EXPECT_NE(container, all.front());
}

TEST(MatchmakingTest, FailsWhenNoProvider) {
  Fixture fixture;
  AclMessage query;
  query.performative = Performative::QueryRef;
  query.receiver = names::kMatchmaking;
  query.protocol = protocols::kFindContainer;
  query.params["service"] = "NONEXISTENT";
  fixture.client->request(fixture.environment->platform(), query);
  fixture.environment->run();
  EXPECT_EQ(fixture.last().performative, Performative::Failure);
}

TEST(MatchmakingTest, StrategiesRankDifferently) {
  Fixture fixture;
  auto& matchmaking = fixture.environment->matchmaking();
  const auto fastest = matchmaking.rank("POD", {}, MatchStrategy::Fastest);
  const auto first_fit = matchmaking.rank("POD", {}, MatchStrategy::FirstFit);
  ASSERT_FALSE(fastest.empty());
  EXPECT_EQ(fastest.size(), first_fit.size());
  // FirstFit preserves discovery order; Fastest sorts by speed. They may
  // coincide by luck on tiny grids, but the sets must be equal.
  std::set<std::string> a(fastest.begin(), fastest.end());
  std::set<std::string> b(first_fit.begin(), first_fit.end());
  EXPECT_EQ(a, b);
}

TEST(MonitoringTest, NodeStatusQuery) {
  Fixture fixture;
  const std::string node_id = fixture.environment->grid().nodes().front()->id();
  AclMessage query;
  query.performative = Performative::QueryRef;
  query.receiver = names::kMonitoring;
  query.protocol = protocols::kQueryStatus;
  query.params["node"] = node_id;
  fixture.client->request(fixture.environment->platform(), query);
  fixture.environment->run();
  EXPECT_EQ(fixture.last().param("state"), "up");
}

TEST(MonitoringTest, UnknownNodeFails) {
  Fixture fixture;
  AclMessage query;
  query.performative = Performative::QueryRef;
  query.receiver = names::kMonitoring;
  query.protocol = protocols::kQueryStatus;
  query.params["node"] = "ghost";
  fixture.client->request(fixture.environment->platform(), query);
  fixture.environment->run();
  EXPECT_EQ(fixture.last().performative, Performative::Failure);
}

TEST(OntologyServiceTest, ShellVersusPopulated) {
  Fixture fixture;
  auto& platform = fixture.environment->platform();
  AclMessage shell_query;
  shell_query.performative = Performative::QueryRef;
  shell_query.receiver = names::kOntology;
  shell_query.protocol = protocols::kGetShell;
  shell_query.params["name"] = "3DSD-instances";
  fixture.client->request(platform, shell_query);
  fixture.environment->run();
  {
    const meta::Ontology shell = meta::from_xml_string(fixture.last().content);
    EXPECT_TRUE(shell.is_shell());
    EXPECT_EQ(shell.class_count(), 10u);
  }
  AclMessage full_query;
  full_query.performative = Performative::QueryRef;
  full_query.receiver = names::kOntology;
  full_query.protocol = protocols::kGetOntology;
  full_query.params["name"] = "3DSD-instances";
  fixture.client->request(platform, full_query);
  fixture.environment->run();
  {
    const meta::Ontology full = meta::from_xml_string(fixture.last().content);
    EXPECT_FALSE(full.is_shell());
    EXPECT_EQ(full.instances_of(meta::classes::kData).size(), 12u);
  }
}

TEST(OntologyServiceTest, StoreValidatesDocuments) {
  Fixture fixture;
  meta::Ontology bad("broken");
  bad.add_class("Task").add_slot({"ID", meta::ValueType::String, true, {}, ""});
  bad.add_instance("T1", "Task");  // required ID missing
  AclMessage store;
  store.performative = Performative::Request;
  store.receiver = names::kOntology;
  store.protocol = protocols::kStoreOntology;
  store.content = meta::to_xml_string(bad);
  fixture.client->request(fixture.environment->platform(), store);
  fixture.environment->run();
  EXPECT_EQ(fixture.last().performative, Performative::Refuse);
  EXPECT_EQ(fixture.environment->ontology().find("broken"), nullptr);
}

TEST(AuthenticationTest, TokenLifecycle) {
  Fixture fixture;
  fixture.environment->authentication().add_principal("alice", "secret");
  AclMessage login;
  login.performative = Performative::Request;
  login.receiver = names::kAuthentication;
  login.protocol = protocols::kAuthenticate;
  login.params["principal"] = "alice";
  login.params["secret"] = "secret";
  fixture.client->request(fixture.environment->platform(), login);
  fixture.environment->run();
  const std::string token = fixture.last().param("token");
  EXPECT_FALSE(token.empty());
  EXPECT_TRUE(fixture.environment->authentication().verify("alice", token));
  EXPECT_FALSE(fixture.environment->authentication().verify("alice", "forged"));
  EXPECT_FALSE(fixture.environment->authentication().verify("bob", token));
}

TEST(AuthenticationTest, BadCredentialsRefused) {
  Fixture fixture;
  fixture.environment->authentication().add_principal("alice", "secret");
  AclMessage login;
  login.performative = Performative::Request;
  login.receiver = names::kAuthentication;
  login.protocol = protocols::kAuthenticate;
  login.params["principal"] = "alice";
  login.params["secret"] = "wrong";
  fixture.client->request(fixture.environment->platform(), login);
  fixture.environment->run();
  EXPECT_EQ(fixture.last().performative, Performative::Refuse);
}

TEST(StorageTest, PutGetList) {
  Fixture fixture;
  auto& platform = fixture.environment->platform();
  AclMessage put;
  put.performative = Performative::Request;
  put.receiver = names::kPersistentStorage;
  put.protocol = protocols::kStorePut;
  put.params["key"] = "process/PD-1";
  put.content = "<process name=\"PD-1\"/>";
  fixture.client->request(platform, put);
  fixture.environment->run();

  AclMessage get;
  get.performative = Performative::QueryRef;
  get.receiver = names::kPersistentStorage;
  get.protocol = protocols::kStoreGet;
  get.params["key"] = "process/PD-1";
  fixture.client->request(platform, get);
  fixture.environment->run();
  EXPECT_EQ(fixture.last().content, "<process name=\"PD-1\"/>");

  AclMessage list;
  list.performative = Performative::QueryRef;
  list.receiver = names::kPersistentStorage;
  list.protocol = protocols::kStoreList;
  list.params["prefix"] = "process/";
  fixture.client->request(platform, list);
  fixture.environment->run();
  EXPECT_NE(fixture.last().param("keys").find("process/PD-1"), std::string::npos);
}

TEST(StorageTest, KeysWithPrefixRangeScan) {
  PersistentStorageService storage;
  // Interleaved prefixes, plus neighbours that sort immediately around the
  // "process/" range: "process" (no slash) sorts before it, "process0"
  // ('0' > '/') sorts after every "process/..." key and must not match.
  for (const char* key : {"plan/PD-1", "process/PD-1", "plan/PD-2", "process/PD-10",
                          "process", "process0", "case/1", "process/PD-2"})
    storage.put(key, "x");

  EXPECT_EQ(storage.keys_with_prefix("process/"),
            (std::vector<std::string>{"process/PD-1", "process/PD-10", "process/PD-2"}));
  EXPECT_EQ(storage.keys_with_prefix("plan/"),
            (std::vector<std::string>{"plan/PD-1", "plan/PD-2"}));
  EXPECT_EQ(storage.keys_with_prefix("proc").size(), 5u);  // "process*" family
  EXPECT_TRUE(storage.keys_with_prefix("zzz").empty());
  EXPECT_EQ(storage.keys_with_prefix("").size(), storage.size());
}

TEST(StorageTest, MissingKeyFails) {
  Fixture fixture;
  AclMessage get;
  get.performative = Performative::QueryRef;
  get.receiver = names::kPersistentStorage;
  get.protocol = protocols::kStoreGet;
  get.params["key"] = "void";
  fixture.client->request(fixture.environment->platform(), get);
  fixture.environment->run();
  EXPECT_EQ(fixture.last().performative, Performative::Failure);
}

TEST(SchedulingTest, LptBeatsNothingAndOptimalBeatsLpt) {
  std::vector<ScheduledTask> tasks;
  for (double work : {7.0, 5.0, 4.0, 3.0, 3.0, 2.0}) tasks.push_back({"t", work, -1});
  const std::vector<double> speeds{1.0, 1.0};
  const Schedule lpt = schedule_lpt(tasks, speeds);
  const Schedule optimal = schedule_optimal(tasks, speeds);
  EXPECT_LE(optimal.makespan, lpt.makespan + 1e-12);
  EXPECT_DOUBLE_EQ(optimal.makespan, 12.0);  // total 24 split evenly
  for (const auto& task : lpt.tasks) EXPECT_GE(task.assigned_machine, 0);
}

TEST(SchedulingTest, HeterogeneousSpeedsFavorFastMachine) {
  std::vector<ScheduledTask> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back({"t" + std::to_string(i), 4.0, -1});
  const Schedule schedule = schedule_lpt(tasks, {4.0, 1.0});
  int fast = 0;
  for (const auto& task : schedule.tasks) {
    if (task.assigned_machine == 0) ++fast;
  }
  EXPECT_GT(fast, 4);
}

TEST(SchedulingTest, MessageProtocol) {
  Fixture fixture;
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kScheduling;
  request.protocol = protocols::kScheduleRequest;
  request.params["tasks"] = "a:6,b:4,c:2";
  request.params["speeds"] = "1,1";
  request.params["mode"] = "optimal";
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();
  EXPECT_EQ(fixture.last().param("makespan"), "6");
  EXPECT_FALSE(fixture.last().param("assignment").empty());
}

TEST(SimulationServiceTest, DryRunsProcessDescription) {
  Fixture fixture;
  const auto process = virolab::make_fig10_process();
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kSimulation;
  request.protocol = protocols::kSimulatePlan;
  request.content = wfl::process_to_xml_string(process);
  request.params["case-xml"] = wfl::case_to_xml_string(virolab::make_case_description());
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();
  const AclMessage reply = fixture.last();
  EXPECT_EQ(reply.performative, Performative::Inform);
  EXPECT_EQ(reply.param("validity-fitness"), "1");
  EXPECT_EQ(reply.param("goal-fitness"), "1");
  EXPECT_EQ(reply.param("size"), "10");
}

TEST(ContainerAgentTest, QueryExecutableReflectsAvailability) {
  Fixture fixture;
  auto& grid = fixture.environment->grid();
  // Find a container hosting POD.
  const auto hosts = grid.containers_hosting("POD");
  ASSERT_FALSE(hosts.empty());
  const std::string container_id = hosts.front()->id();

  AclMessage probe;
  probe.performative = Performative::QueryIf;
  probe.receiver = container_id;
  probe.protocol = protocols::kQueryExecutable;
  probe.params["service"] = "POD";
  fixture.client->request(fixture.environment->platform(), probe);
  fixture.environment->run();
  EXPECT_EQ(fixture.last().param("executable"), "true");

  grid.set_container_available(container_id, false);
  fixture.client->request(fixture.environment->platform(), probe);
  fixture.environment->run();
  EXPECT_EQ(fixture.last().param("executable"), "false");
}

TEST(ContainerAgentTest, ExecuteProducesOutputs) {
  Fixture fixture;
  const auto hosts = fixture.environment->grid().containers_hosting("POD");
  ASSERT_FALSE(hosts.empty());

  AclMessage execute;
  execute.performative = Performative::Request;
  execute.receiver = hosts.front()->id();
  execute.protocol = protocols::kExecuteActivity;
  execute.params["service"] = "POD";
  execute.params["activity"] = "A2";
  execute.params["outputs"] = "D8";
  execute.content = wfl::dataset_to_xml_string(virolab::make_initial_data());
  fixture.client->request(fixture.environment->platform(), execute);
  fixture.environment->run();
  const AclMessage reply = fixture.last();
  ASSERT_EQ(reply.performative, Performative::Inform) << reply.param("error");
  const wfl::DataSet produced = wfl::dataset_from_xml_string(reply.content);
  ASSERT_NE(produced.find("D8"), nullptr);
  EXPECT_EQ(produced.find("D8")->classification(), "Orientation File");
  EXPECT_GT(std::stod(reply.param("duration")), 0.0);
}

TEST(ContainerAgentTest, ExecuteFailsOnUnmetPrecondition) {
  Fixture fixture;
  const auto hosts = fixture.environment->grid().containers_hosting("PSF");
  ASSERT_FALSE(hosts.empty());
  AclMessage execute;
  execute.performative = Performative::Request;
  execute.receiver = hosts.front()->id();
  execute.protocol = protocols::kExecuteActivity;
  execute.params["service"] = "PSF";
  execute.params["activity"] = "A11";
  execute.content = wfl::dataset_to_xml_string(virolab::make_initial_data());  // no models
  fixture.client->request(fixture.environment->platform(), execute);
  fixture.environment->run();
  EXPECT_EQ(fixture.last().performative, Performative::Failure);
  EXPECT_NE(fixture.last().param("error").find("precondition"), std::string::npos);
}

TEST(PlanningServiceTest, Figure2PlanRequestReturnsValidProcess) {
  Fixture fixture;
  planner::GpConfig config = fixture.environment->planning().gp_config();
  config.population_size = 140;
  config.generations = 18;
  fixture.environment->planning().set_gp_config(config);

  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kPlanning;
  request.protocol = protocols::kPlanRequest;
  request.content = wfl::case_to_xml_string(virolab::make_case_description());
  request.params["seed"] = "5";
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();

  const AclMessage reply = fixture.last();
  ASSERT_EQ(reply.performative, Performative::Inform) << reply.param("error");
  EXPECT_EQ(reply.param("validity-fitness"), "1");
  EXPECT_EQ(reply.param("goal-fitness"), "1");
  const auto process = wfl::process_from_xml_string(reply.content);
  EXPECT_GT(process.end_user_activity_count(), 0u);
  // The plan is archived in the knowledge base (persistent storage).
  EXPECT_TRUE(fixture.environment->storage().get("process/PD-3DSD").has_value());
}

TEST(PlanningServiceTest, Figure3ReplanExcludesFailedServices) {
  Fixture fixture;
  planner::GpConfig config = fixture.environment->planning().gp_config();
  config.population_size = 140;
  config.generations = 18;
  fixture.environment->planning().set_gp_config(config);

  // Kill every container hosting POR so probing reports it non-executable.
  auto& grid = fixture.environment->grid();
  for (const auto* container : grid.containers_advertising("POR"))
    grid.find_container(container->id())->unhost_service("POR");

  wfl::CaseDescription replan_case = virolab::make_case_description();
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kPlanning;
  request.protocol = protocols::kReplanRequest;
  request.params["probe"] = "true";
  request.content = wfl::case_to_xml_string(replan_case);
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();

  const AclMessage reply = fixture.last();
  ASSERT_EQ(reply.performative, Performative::Inform) << reply.param("error");
  const auto process = wfl::process_from_xml_string(reply.content);
  // POR cannot appear in the new plan.
  for (const auto& activity : process.activities()) {
    EXPECT_NE(activity.service_name, "POR") << "POR is not executable anywhere";
  }
}

}  // namespace
}  // namespace ig::svc
