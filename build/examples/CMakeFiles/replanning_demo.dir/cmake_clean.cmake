file(REMOVE_RECURSE
  "CMakeFiles/replanning_demo.dir/replanning_demo.cpp.o"
  "CMakeFiles/replanning_demo.dir/replanning_demo.cpp.o.d"
  "replanning_demo"
  "replanning_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replanning_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
