#include "planner/evaluate.hpp"

#include <iterator>
#include <memory>
#include <string>

namespace ig::planner {

namespace {

/// One simulated execution flow: the evolving world state plus validity
/// counters ("each execution is counted in the validity check").
///
/// Items are immutable once produced, so the state is a vector of shared
/// pointers: branching a flow (selective/concurrent/iterative enumeration)
/// copies pointers, not property maps. Output names are made unique by a
/// per-flow counter, so plain append suffices (no by-name dedup needed).
struct Flow {
  std::vector<std::shared_ptr<const wfl::DataSpec>> state;
  std::size_t valid = 0;
  std::size_t executed = 0;
  /// Per-service execution counts in this flow (occurrence index into the
  /// output cache). Linear scan; catalogues hold a handful of services.
  std::vector<std::pair<const wfl::ServiceType*, std::size_t>> service_counts;

  std::size_t next_occurrence(const wfl::ServiceType* service) {
    for (auto& [known, count] : service_counts) {
      if (known == service) return count++;
    }
    service_counts.emplace_back(service, 1);
    return 0;
  }
};

class Simulator {
 public:
  Simulator(const PlanningProblem& problem, const EvaluationConfig& config, OutputCache& cache)
      : problem_(problem), config_(config), cache_(cache) {}

  std::vector<Flow> run(const PlanNode& plan) {
    Flow initial;
    initial.state.reserve(problem_.initial_state.size());
    for (const auto& item : problem_.initial_state.items())
      initial.state.push_back(std::make_shared<wfl::DataSpec>(item));
    std::vector<Flow> flows;
    flows.push_back(std::move(initial));
    simulate(plan, flows);
    return flows;
  }

  bool truncated() const noexcept { return truncated_; }

 private:
  /// Executes one terminal activity on one flow.
  void execute_terminal(const PlanNode& node, Flow& flow) {
    ++flow.executed;
    const wfl::ServiceType* service = problem_.catalogue.find(node.service);
    if (service == nullptr) return;  // unknown service: executed but invalid
    scratch_items_.clear();
    scratch_items_.reserve(flow.state.size());
    for (const auto& item : flow.state) scratch_items_.push_back(item.get());
    auto bindings = service->bind_inputs(scratch_items_);
    if (!bindings.has_value()) return;  // precondition unmet: invalid
    ++flow.valid;
    // Postcondition: append the (cached, immutable) produced data.
    const auto& outputs = cache_.get(*service, flow.next_occurrence(service));
    flow.state.insert(flow.state.end(), outputs.begin(), outputs.end());
  }

  void cap_flows(std::vector<Flow>& flows) {
    if (flows.size() > config_.max_flows) {
      flows.resize(config_.max_flows);
      truncated_ = true;
    }
  }

  void simulate(const PlanNode& node, std::vector<Flow>& flows) {
    switch (node.kind) {
      case PlanNode::Kind::Terminal:
        for (auto& flow : flows) execute_terminal(node, flow);
        return;
      case PlanNode::Kind::Sequential:
        // Children execute strictly left to right.
        for (const auto& child : node.children) simulate(child, flows);
        return;
      case PlanNode::Kind::Concurrent: {
        // "All activities ... can be executed either sequentially or
        // concurrently. If the activities are executed sequentially, they
        // can be executed in any order." A correct concurrent block must be
        // valid under every serialization; checking the forward and reverse
        // orders catches order-dependent children at 2x cost instead of n!.
        if (node.children.size() <= 1 || config_.concurrent_orders <= 1) {
          for (const auto& child : node.children) simulate(child, flows);
          return;
        }
        std::vector<Flow> reversed_flows = flows;
        for (const auto& child : node.children) simulate(child, flows);
        for (auto it = node.children.rbegin(); it != node.children.rend(); ++it)
          simulate(*it, reversed_flows);
        flows.insert(flows.end(), std::make_move_iterator(reversed_flows.begin()),
                     std::make_move_iterator(reversed_flows.end()));
        cap_flows(flows);
        return;
      }
      case PlanNode::Kind::Selective: {
        // Enumerate: each branch spawns an alternative flow set.
        std::vector<Flow> combined;
        for (std::size_t i = 0; i < node.children.size(); ++i) {
          std::vector<Flow> branch_flows = flows;
          simulate(node.children[i], branch_flows);
          combined.insert(combined.end(), std::make_move_iterator(branch_flows.begin()),
                          std::make_move_iterator(branch_flows.end()));
          cap_flows(combined);
          if (combined.size() >= config_.max_flows) {
            // Remaining branches would be dropped: that is truncation too.
            if (i + 1 < node.children.size()) truncated_ = true;
            break;
          }
        }
        flows = std::move(combined);
        return;
      }
      case PlanNode::Kind::Iterative: {
        // Enumerate 1..max_unroll passes over the body.
        std::vector<Flow> combined;
        std::vector<Flow> current = flows;
        for (std::size_t pass = 1; pass <= config_.max_unroll; ++pass) {
          for (const auto& child : node.children) simulate(child, current);
          combined.insert(combined.end(), current.begin(), current.end());
          cap_flows(combined);
          if (combined.size() >= config_.max_flows) {
            if (pass < config_.max_unroll) truncated_ = true;
            break;
          }
        }
        flows = std::move(combined);
        return;
      }
    }
  }

  const PlanningProblem& problem_;
  const EvaluationConfig& config_;
  OutputCache& cache_;
  bool truncated_ = false;
  std::vector<const wfl::DataSpec*> scratch_items_;
};

}  // namespace

const std::vector<std::shared_ptr<const wfl::DataSpec>>& OutputCache::get(
    const wfl::ServiceType& service, std::size_t occurrence) {
  auto& per_occurrence = cache_[service.name()];
  while (per_occurrence.size() <= occurrence) {
    const std::string prefix =
        service.name() + "#" + std::to_string(per_occurrence.size() + 1) + ":";
    std::vector<std::shared_ptr<const wfl::DataSpec>> items;
    for (auto& output : service.produce_outputs(prefix))
      items.push_back(std::make_shared<wfl::DataSpec>(std::move(output)));
    per_occurrence.push_back(std::move(items));
  }
  return per_occurrence[occurrence];
}

PlanEvaluator::PlanEvaluator(const PlanningProblem& problem, EvaluationConfig config,
                             std::size_t workers)
    : problem_(&problem), config_(config) {
  if (workers == 0) workers = 1;
  caches_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) caches_.push_back(std::make_unique<OutputCache>());
}

Fitness PlanEvaluator::evaluate(const PlanNode& plan, std::size_t worker) const {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  if (!config_.memoize) return simulate(plan, worker);

  const std::uint64_t key = plan.hash();
  MemoShard& shard = memo_[key % kMemoShards];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto chain = shard.entries.find(key);
    if (chain != shard.entries.end()) {
      for (const auto& [known, fitness] : chain->second) {
        if (known == plan) {
          memo_hits_.fetch_add(1, std::memory_order_relaxed);
          return fitness;
        }
      }
    }
  }

  const Fitness fitness = simulate(plan, worker);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto& chain = shard.entries[key];
    // A concurrent worker may have simulated the same plan meanwhile; both
    // computed the same pure value, so keeping one copy suffices.
    bool present = false;
    for (const auto& [known, cached] : chain) {
      if (known == plan) {
        present = true;
        break;
      }
    }
    if (!present) chain.emplace_back(plan, fitness);
  }
  return fitness;
}

Fitness PlanEvaluator::simulate(const PlanNode& plan, std::size_t worker) const {
  Fitness fitness;
  fitness.size = plan.size();

  Simulator simulator(*problem_, config_, *caches_.at(worker));
  const std::vector<Flow> flows = simulator.run(plan);
  fitness.flows = flows.size();
  fitness.flows_truncated = simulator.truncated();

  // Eq. 1 — validity: totals across all enumerated executions.
  std::size_t total_valid = 0;
  std::size_t total_executed = 0;
  for (const auto& flow : flows) {
    total_valid += flow.valid;
    total_executed += flow.executed;
  }
  fitness.validity =
      total_executed > 0 ? static_cast<double>(total_valid) / static_cast<double>(total_executed)
                         : 0.0;

  // Eq. 2 — goal fitness, averaged over flows ("the goal fitness is given as
  // the average goal fitness of each execution"). Goals bind their single
  // variable existentially over the flow's final items.
  double goal_sum = 0.0;
  for (const auto& flow : flows) {
    std::size_t satisfied = 0;
    for (const auto& goal : problem_->goals) {
      const auto variables = goal.condition.variables();
      if (variables.empty()) {
        if (goal.condition.evaluate({})) ++satisfied;
        continue;
      }
      for (const auto& item : flow.state) {
        wfl::Bindings bindings;
        bindings[variables.front()] = item.get();
        if (goal.condition.evaluate(bindings)) {
          ++satisfied;
          break;
        }
      }
    }
    goal_sum += problem_->goals.empty()
                    ? 1.0
                    : static_cast<double>(satisfied) / static_cast<double>(problem_->goals.size());
  }
  fitness.goal = flows.empty() ? 0.0 : goal_sum / static_cast<double>(flows.size());

  // Eq. 3 — representation efficiency.
  const double size_ratio =
      config_.smax > 0 ? static_cast<double>(fitness.size) / static_cast<double>(config_.smax)
                       : 1.0;
  fitness.representation = size_ratio < 1.0 ? 1.0 - size_ratio : 0.0;

  // Eq. 4 — weighted sum.
  fitness.overall = config_.wv * fitness.validity + config_.wg * fitness.goal +
                    config_.wr * fitness.representation;
  return fitness;
}

}  // namespace ig::planner
