#include "wire/channel.hpp"

namespace ig::wire {

// -- Stream ---------------------------------------------------------------------

void Stream::send(const agent::AclMessage& message) {
  compact();
  encoder_.encode(message, buffer_);
}

void Stream::feed_bytes(std::string_view bytes) {
  compact();
  buffer_.append(bytes.data(), bytes.size());
}

void Stream::compact() {
  // Drop the decoded prefix before appending so the buffer does not grow
  // without bound on a long-lived connection. Safe: views handed out by
  // receive() do not outlive the receive call.
  if (consumed_ == 0) return;
  buffer_.erase(0, consumed_);
  consumed_ = 0;
}

std::size_t Stream::receive(const std::function<void(const WireMessageView&)>& fn) {
  std::size_t delivered = 0;
  for (;;) {
    const std::string_view pending = std::string_view(buffer_).substr(consumed_);
    if (pending.empty()) break;
    std::string_view payload;
    std::size_t frame_size = 0;
    std::string error;
    const FrameStatus status = peek_frame(pending, payload, frame_size, &error);
    if (status == FrameStatus::kNeedMore) break;
    if (status == FrameStatus::kBad) {
      // A byte stream cannot resync past a corrupt length prefix or
      // checksum; poison the rest of the pending bytes.
      ++decode_errors_;
      last_error_ = error;
      consumed_ = buffer_.size();
      break;
    }
    WireMessageView view;
    if (decoder_.decode_payload(payload, view, &error)) {
      ++frames_delivered_;
      ++delivered;
      if (fn) fn(view);
    } else {
      ++decode_errors_;
      last_error_ = error;
    }
    consumed_ += frame_size;
  }
  return delivered;
}

// -- FramedChannel --------------------------------------------------------------

std::vector<agent::AclMessage> FramedChannel::Endpoint::drain() {
  std::vector<agent::AclMessage> messages;
  in_->receive([&](const WireMessageView& view) { messages.push_back(view.materialize()); });
  return messages;
}

// -- WireLink -------------------------------------------------------------------

std::optional<agent::AclMessage> WireLink::round_trip(const agent::AclMessage& message,
                                                      std::string* error) {
  Stream& out = channel_.a().outgoing();
  const EncoderStats before = out.encoder_stats();
  channel_.a().send(message);
  const EncoderStats& after = out.encoder_stats();
  frames_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(after.frame_bytes - before.frame_bytes, std::memory_order_relaxed);
  intern_hits_.fetch_add(after.intern_hits - before.intern_hits, std::memory_order_relaxed);
  intern_misses_.fetch_add(after.intern_misses - before.intern_misses,
                           std::memory_order_relaxed);

  std::optional<agent::AclMessage> decoded;
  channel_.b().receive(
      [&](const WireMessageView& view) { decoded = view.materialize(); });
  if (!decoded.has_value()) {
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    // The loopback delivers synchronously, so the failure reason sits on
    // the stream endpoint b just received from.
    if (error != nullptr) {
      *error = channel_.b().incoming().last_error();
      if (error->empty()) *error = "wire decode failed";
    }
  }
  return decoded;
}

LinkStats WireLink::stats() const {
  LinkStats stats;
  stats.frames = frames_.load(std::memory_order_relaxed);
  stats.bytes = bytes_.load(std::memory_order_relaxed);
  stats.intern_hits = intern_hits_.load(std::memory_order_relaxed);
  stats.intern_misses = intern_misses_.load(std::memory_order_relaxed);
  stats.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  return stats;
}

void WireLink::publish_metrics(obs::MetricsRegistry& registry,
                               const obs::Labels& labels) const {
  const LinkStats snapshot = stats();
  registry.counter("wire_frames_total", labels).set_to(snapshot.frames);
  registry.counter("wire_bytes_total", labels).set_to(snapshot.bytes);
  registry.counter("wire_intern_hits_total", labels).set_to(snapshot.intern_hits);
  registry.counter("wire_intern_misses_total", labels).set_to(snapshot.intern_misses);
  registry.counter("wire_decode_errors_total", labels).set_to(snapshot.decode_errors);
}

agent::TransportHook make_transport_hook(WireLink& link) {
  return [&link](const agent::AclMessage& message,
                 std::string* error) -> std::optional<agent::AclMessage> {
    return link.round_trip(message, error);
  };
}

}  // namespace ig::wire
