file(REMOVE_RECURSE
  "../bench/bench_table2_planning"
  "../bench/bench_table2_planning.pdb"
  "CMakeFiles/bench_table2_planning.dir/bench_table2_planning.cpp.o"
  "CMakeFiles/bench_table2_planning.dir/bench_table2_planning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
