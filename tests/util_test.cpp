#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace ig::util {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 30);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto value = rng.next_below(13);
    EXPECT_LT(value, 13u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto value = rng.next_int(-2, 2);
    EXPECT_GE(value, -2);
    EXPECT_LE(value, 2);
    if (value == -2) saw_lo = true;
    if (value == 2) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.next_double();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(Rng, NextDoubleMeanIsCentered) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NextBoolProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NextBoolExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(29);
  Rng child = parent.split();
  // The child stream should not be a shifted copy of the parent stream.
  Rng parent_copy(29);
  int matches = 0;
  for (int i = 0; i < 32; ++i) {
    if (child() == parent_copy()) ++matches;
  }
  EXPECT_LT(matches, 4);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(RunningStats, Empty) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  // An empty accumulator has no mean — NaN, not a fake 0.0 that could be
  // mistaken for a real measurement.
  EXPECT_TRUE(std::isnan(stats.mean()));
  EXPECT_TRUE(std::isnan(stats.stddev()));
  EXPECT_TRUE(std::isnan(stats.min()));
  EXPECT_TRUE(std::isnan(stats.max()));
}

TEST(RunningStats, KnownValues) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
  EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(SampleSet, Percentiles) {
  SampleSet samples;
  for (int i = 1; i <= 100; ++i) samples.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(samples.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(samples.percentile(100), 100.0);
  EXPECT_NEAR(samples.median(), 50.5, 1e-9);
  EXPECT_NEAR(samples.percentile(90), 90.1, 1e-9);
}

TEST(SampleSet, MeanAndStddevMatchRunningStats) {
  SampleSet samples;
  RunningStats stats;
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.next_double(0, 10);
    samples.add(v);
    stats.add(v);
  }
  EXPECT_NEAR(samples.mean(), stats.mean(), 1e-9);
  EXPECT_NEAR(samples.stddev(), stats.stddev(), 1e-9);
}

TEST(SampleSet, EmptyIsSafe) {
  SampleSet samples;
  EXPECT_TRUE(std::isnan(samples.mean()));
  EXPECT_TRUE(std::isnan(samples.stddev()));
  EXPECT_TRUE(std::isnan(samples.min()));
  EXPECT_TRUE(std::isnan(samples.max()));
  EXPECT_TRUE(std::isnan(samples.percentile(50)));
  const auto qs = samples.percentiles({50.0, 99.0});
  ASSERT_EQ(qs.size(), 2u);
  EXPECT_TRUE(std::isnan(qs[0]));
  EXPECT_TRUE(std::isnan(qs[1]));
}

TEST(SampleSet, MultiQuantileMatchesPercentile) {
  SampleSet samples;
  Rng rng(47);
  for (int i = 0; i < 333; ++i) samples.add(rng.next_double(-5, 5));
  const auto qs = samples.percentiles({0.0, 12.5, 50.0, 90.0, 99.0, 100.0});
  ASSERT_EQ(qs.size(), 6u);
  EXPECT_DOUBLE_EQ(qs[0], samples.percentile(0.0));
  EXPECT_DOUBLE_EQ(qs[1], samples.percentile(12.5));
  EXPECT_DOUBLE_EQ(qs[2], samples.percentile(50.0));
  EXPECT_DOUBLE_EQ(qs[3], samples.percentile(90.0));
  EXPECT_DOUBLE_EQ(qs[4], samples.percentile(99.0));
  EXPECT_DOUBLE_EQ(qs[5], samples.percentile(100.0));
}

TEST(SampleSet, CachedSortInvalidatedOnAdd) {
  SampleSet samples;
  samples.add(10.0);
  samples.add(20.0);
  EXPECT_DOUBLE_EQ(samples.percentile(100), 20.0);  // builds the cache
  samples.add(5.0);                                 // must invalidate it
  EXPECT_DOUBLE_EQ(samples.percentile(0), 5.0);
  EXPECT_DOUBLE_EQ(samples.percentile(100), 20.0);
  EXPECT_DOUBLE_EQ(samples.median(), 10.0);
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(Strings, Split) {
  const auto fields = split("a,b,,c", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "c");
}

TEST(Strings, SplitTrimmedDropsEmpty) {
  const auto fields = split_trimmed(" a , b ,, c ", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(Strings, SplitEmptyString) {
  const auto fields = split("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
  EXPECT_TRUE(split_trimmed("", ',').empty());
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(Strings, JoinSplitRoundTrip) {
  const std::vector<std::string> original{"POD", "P3DR", "POR", "PSF"};
  EXPECT_EQ(split(join(original, ","), ','), original);
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("BEGIN, POD", "BEGIN"));
  EXPECT_FALSE(starts_with("BEG", "BEGIN"));
  EXPECT_TRUE(ends_with("plan.xml", ".xml"));
  EXPECT_FALSE(ends_with("xml", ".xml"));
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("FoRk"), "fork");
  EXPECT_EQ(to_lower("123-ABC"), "123-abc");
}

TEST(Strings, IsNumber) {
  EXPECT_TRUE(is_number("42"));
  EXPECT_TRUE(is_number("-3.5"));
  EXPECT_TRUE(is_number(" 8 "));
  EXPECT_FALSE(is_number("8x"));
  EXPECT_FALSE(is_number(""));
  EXPECT_FALSE(is_number("Resolution"));
}

TEST(Strings, FormatNumber) {
  EXPECT_EQ(format_number(1.5), "1.5");
  EXPECT_EQ(format_number(3.0), "3");
  EXPECT_EQ(format_number(0.25), "0.25");
  EXPECT_EQ(format_number(0.123456789, 3), "0.123");
  EXPECT_EQ(format_number(-0.0), "0");
}

// ---------------------------------------------------------------------------
// Log
// ---------------------------------------------------------------------------

TEST(Log, LevelFiltering) {
  std::ostringstream sink;
  Logger::instance().set_stream(&sink);
  Logger::instance().set_level(LogLevel::Warn);
  IG_LOG_DEBUG("test") << "hidden";
  IG_LOG_WARN("test") << "visible " << 42;
  Logger::instance().set_stream(nullptr);
  const std::string output = sink.str();
  EXPECT_EQ(output.find("hidden"), std::string::npos);
  EXPECT_NE(output.find("visible 42"), std::string::npos);
  EXPECT_NE(output.find("[WARN] test:"), std::string::npos);
}

TEST(Log, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::Trace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::Error), "ERROR");
}

TEST(Stopwatch, MeasuresForward) {
  Stopwatch watch;
  EXPECT_GE(watch.elapsed_seconds(), 0.0);
  watch.reset();
  EXPECT_GE(watch.elapsed_ms(), 0.0);
}

}  // namespace
}  // namespace ig::util
