#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ig::util {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}  // namespace

double quantile_sorted(const std::vector<double>& sorted, double q) noexcept {
  if (sorted.empty()) return kNaN;
  if (q <= 0.0) return sorted.front();
  if (q >= 100.0) return sorted.back();
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(rank);
  const double fraction = rank - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) return sorted.back();
  return sorted[lower] + fraction * (sorted[lower + 1] - sorted[lower]);
}

void RunningStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::mean() const noexcept { return count_ > 0 ? mean_ : kNaN; }

double RunningStats::variance() const noexcept {
  if (count_ == 0) return kNaN;
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::min() const noexcept { return count_ > 0 ? min_ : kNaN; }

double RunningStats::max() const noexcept { return count_ > 0 ? max_ : kNaN; }

double SampleSet::mean() const noexcept {
  if (samples_.empty()) return kNaN;
  double total = 0.0;
  for (double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const noexcept {
  if (samples_.empty()) return kNaN;
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double m2 = 0.0;
  for (double s : samples_) m2 += (s - m) * (s - m);
  return std::sqrt(m2 / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const noexcept {
  if (samples_.empty()) return kNaN;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const noexcept {
  if (samples_.empty()) return kNaN;
  return *std::max_element(samples_.begin(), samples_.end());
}

const std::vector<double>& SampleSet::sorted_view() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return sorted_;
}

double SampleSet::percentile(double q) const { return quantile_sorted(sorted_view(), q); }

std::vector<double> SampleSet::percentiles(const std::vector<double>& qs) const {
  const std::vector<double>& sorted = sorted_view();
  std::vector<double> out;
  out.reserve(qs.size());
  for (const double q : qs) out.push_back(quantile_sorted(sorted, q));
  return out;
}

}  // namespace ig::util
