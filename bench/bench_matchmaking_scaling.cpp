// Ablation A7 — matchmaking latency versus registry size (google-benchmark).
//
// Measures ranking cost as the grid grows from tens to thousands of
// containers, for each strategy. Brokers "must maintain full information
// about resources with similar characteristics and group them in multiple
// equivalence classes" — the equivalence-class grouping is measured too.
#include <benchmark/benchmark.h>

#include <memory>

#include "agent/platform.hpp"
#include "grid/grid.hpp"
#include "services/brokerage.hpp"
#include "services/matchmaking.hpp"
#include "virolab/catalogue.hpp"

using namespace ig;

namespace {

struct World {
  grid::Simulation sim;
  agent::AgentPlatform platform{sim};
  grid::Grid grid;
  svc::BrokerageService* brokerage = nullptr;
  svc::MatchmakingService* matchmaking = nullptr;
};

std::unique_ptr<World> make_world(int containers) {
  auto world = std::make_unique<World>();
  grid::TopologyParams params;
  params.domains = 4;
  params.nodes_per_domain = std::max(1, containers / 4);
  params.containers_per_node = 1;
  params.service_names = virolab::make_catalogue().names();
  util::Rng rng(1234);
  grid::build_topology(world->grid, params, rng);
  world->brokerage = &world->platform.spawn<svc::BrokerageService>("bs");
  world->matchmaking = &world->platform.spawn<svc::MatchmakingService>(
      "ms", world->grid, world->brokerage);
  return world;
}

void BM_MatchmakingRank(benchmark::State& state) {
  auto world = make_world(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world->matchmaking->rank("P3DR", {}, svc::MatchStrategy::Balanced));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MatchmakingRank)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

void BM_MatchmakingStrategies(benchmark::State& state) {
  auto world = make_world(512);
  const svc::MatchStrategy strategies[] = {
      svc::MatchStrategy::Balanced, svc::MatchStrategy::Fastest,
      svc::MatchStrategy::Reliable, svc::MatchStrategy::FirstFit};
  const auto strategy = strategies[state.range(0)];
  for (auto _ : state) {
    benchmark::DoNotOptimize(world->matchmaking->rank("P3DR", {}, strategy));
  }
}
BENCHMARK(BM_MatchmakingStrategies)->DenseRange(0, 3);

void BM_ContainersHostingQuery(benchmark::State& state) {
  auto world = make_world(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(world->grid.containers_hosting("PSF"));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ContainersHostingQuery)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

}  // namespace
