// Matchmaking service: locating resources in the spot market.
//
// "Matchmaking services allow individual users represented by their proxies
// (coordination services) to locate resources in a spot market, subject to a
// wide range of conditions." Given a service type and optional exclusions,
// the matchmaker ranks the live candidate containers by a pluggable
// strategy combining node speed, queue backlog, reliability and the
// brokerage performance history ("the search ... must be complemented by
// the ability to access history information about the past execution").
#pragma once

#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "grid/grid.hpp"
#include "services/brokerage.hpp"
#include "services/monitoring.hpp"

namespace ig::svc {

enum class MatchStrategy {
  Balanced,  ///< speed / (1 + backlog) x reliability x history
  Fastest,   ///< raw effective speed
  Reliable,  ///< reliability x history success rate
  FirstFit,  ///< first live candidate (baseline)
  Deadline,  ///< soft-deadline aware (see rank_deadline)
  Cheapest,  ///< lowest spot-market price factor
};

MatchStrategy match_strategy_from_string(const std::string& text);

class MatchmakingService : public agent::Agent {
 public:
  /// `brokerage` may be null; history then defaults to neutral.
  /// `monitoring` may be null; containers the monitor classifies Dead are
  /// then not quarantined (no liveness data).
  MatchmakingService(std::string name, const grid::Grid& grid,
                     const BrokerageService* brokerage,
                     MonitoringService* monitoring = nullptr)
      : Agent(std::move(name)), grid_(&grid), brokerage_(brokerage), monitoring_(monitoring) {}

  void on_start() override;
  void handle_message(const agent::AclMessage& message) override;

  /// Direct matchmaking (used by tests and by the simulation service).
  /// Returns the ranked container ids, best first.
  std::vector<std::string> rank(const std::string& service_type,
                                const std::vector<std::string>& excluded,
                                MatchStrategy strategy) const;

  /// Soft-deadline matchmaking (Section 1: "if a task has soft deadlines
  /// ... the search for a site with adequate resources must be complemented
  /// by the ability to access history information"). Candidates whose
  /// expected completion (queue backlog + work/effective speed, sanity-
  /// checked against the brokerage history) fits within `deadline_s` are
  /// ranked by reliability; when none fits, the fastest candidates follow
  /// so a best-effort dispatch is still possible.
  std::vector<std::string> rank_deadline(const std::string& service_type,
                                         const std::vector<std::string>& excluded,
                                         double work, double deadline_s,
                                         grid::SimTime now) const;

  /// Expected completion delay of `work` on this container's node.
  double expected_duration(const grid::ApplicationContainer& container, double work,
                           grid::SimTime now) const;

 private:
  double score(const grid::ApplicationContainer& container, MatchStrategy strategy) const;
  /// Heartbeat quarantine: true when the monitor says the container is Dead
  /// (its candidacy would only burn a dispatch attempt). Suspect containers
  /// stay eligible — a missed beat or two is not evidence enough to shrink
  /// the pool.
  bool quarantined(const std::string& container_id) const;

  const grid::Grid* grid_;
  const BrokerageService* brokerage_;
  MonitoringService* monitoring_;
};

}  // namespace ig::svc
