#include <gtest/gtest.h>

#include <vector>

#include "grid/sim.hpp"

namespace ig::grid {
namespace {

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, FifoWithinSameTime) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.schedule(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, NestedScheduling) {
  Simulation sim;
  std::vector<double> times;
  sim.schedule(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule(0.5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(Simulation, NegativeDelayClampsToNow) {
  Simulation sim;
  bool fired = false;
  sim.schedule(-5.0, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulation, Cancel) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // already cancelled
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(Simulation, CancelUnknownIdFails) {
  Simulation sim;
  EXPECT_FALSE(sim.cancel(12345));
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.schedule(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, RunBounded) {
  Simulation sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) sim.schedule(i, [&] { ++count; });
  EXPECT_EQ(sim.run(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(sim.run(), 6u);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) sim.schedule(t, [&fired, &sim] { fired.push_back(sim.now()); });
  sim.run_until(2.5);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);  // clock advanced to the boundary
  sim.run_until(10.0);
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulation, RunUntilWithCancelledHead) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.schedule(1.0, [] {});
  sim.schedule(2.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Simulation, PendingEventsAccounting) {
  Simulation sim;
  const EventId a = sim.schedule(1.0, [] {});
  sim.schedule(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Simulation, ScheduleAtAbsoluteTime) {
  Simulation sim;
  double fired_at = -1;
  sim.schedule(5.0, [&] {
    sim.schedule_at(3.0, [&] { fired_at = sim.now(); });  // in the past: clamps
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

}  // namespace
}  // namespace ig::grid
