# Empty compiler generated dependencies file for bench_ablation_matchstrategy.
# This may be replaced when dependencies are built.
