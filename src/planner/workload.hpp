// Synthetic planning-problem generator.
//
// The paper evaluates the planner on one problem (the Section 4 virus
// laboratory). To study scaling behaviour we need families of problems with
// controllable difficulty; this generator builds layered service chains:
//
//   layer 0: initial data classifications (in Sinit)
//   layer k: services consuming layer k-1 artefacts and producing layer-k
//            artefacts; the goal requires the final layer's artefact.
//
// Knobs: chain depth, services per layer (redundant providers), inputs per
// service (fan-in), and distractor chains that are executable but unrelated
// to the goal. Problems are solvable by construction; the minimal plan
// executes one service per layer (times the fan-in of deeper layers).
#pragma once

#include <cstdint>
#include <string>

#include "planner/problem.hpp"
#include "util/rng.hpp"

namespace ig::planner {

struct WorkloadParams {
  int depth = 3;              ///< layers between Sinit and the goal
  int services_per_layer = 2; ///< redundant providers per layer
  int fan_in = 1;             ///< distinct layer-(k-1) artefacts each service needs
  int distractor_chains = 0;  ///< executable chains unrelated to the goal
  int distractor_depth = 2;
  std::uint64_t seed = 1;
};

/// Builds a solvable synthetic problem per the parameters.
PlanningProblem make_layered_problem(const WorkloadParams& params);

/// Lower bound on the number of end-user activities a goal-reaching plan
/// must execute (one provider per layer, times cumulative fan-in).
std::size_t minimal_activity_count(const WorkloadParams& params);

}  // namespace ig::planner
