// ACL messages: the lingua franca of the multi-agent system.
//
// The paper builds its services on the Jade framework, whose agents speak
// FIPA ACL. This module provides the equivalent message shape: a
// performative, sender/receiver, a conversation id correlating a whole
// exchange (e.g. one re-planning episode), a protocol name, and content.
// Content travels either as a free-form string (often XML produced by the
// wfl/meta serializers) or as lightweight key-value parameters.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace ig::agent {

/// FIPA-style performatives (the subset the core services use).
enum class Performative {
  Request,
  Inform,
  Agree,
  Refuse,
  Failure,
  QueryRef,
  QueryIf,
  Propose,
  AcceptProposal,
  RejectProposal,
  Subscribe,
  Cancel,
  NotUnderstood,
};

std::string_view to_string(Performative performative) noexcept;

/// Inverse of to_string: "REQUEST" -> Performative::Request. nullopt for
/// anything else (the wire decoder turns that into a decode error instead
/// of guessing).
std::optional<Performative> performative_from_string(std::string_view text) noexcept;

struct AclMessage {
  Performative performative = Performative::Inform;
  std::string sender;
  std::string receiver;
  std::string conversation_id;  ///< correlates a whole exchange
  std::string protocol;         ///< e.g. "planning-request", "service-query"
  std::string ontology;         ///< vocabulary of the content, e.g. "grid-standard"
  std::string content;          ///< free-form payload (often XML)
  std::map<std::string, std::string> params;  ///< structured payload fields

  /// Returns params[key] or `fallback`.
  std::string param(std::string_view key, std::string_view fallback = "") const;
  bool has_param(std::string_view key) const;

  /// Typed param access for untrusted payloads. Backed by std::from_chars:
  /// never throws, never consults the locale. The optional overloads yield
  /// nullopt when the key is missing or the value does not parse fully
  /// (empty, non-numeric, trailing junk, overflow, negative-where-unsigned);
  /// the fallback overloads substitute `fallback` in those cases. Handlers
  /// that need to report *why* a payload was rejected use describe_bad_param.
  std::optional<double> param_double(std::string_view key) const;
  std::optional<int> param_int(std::string_view key) const;
  std::optional<std::uint64_t> param_uint(std::string_view key) const;
  std::optional<bool> param_bool(std::string_view key) const;
  double param_double(std::string_view key, double fallback) const;
  int param_int(std::string_view key, int fallback) const;
  std::uint64_t param_uint(std::string_view key, std::uint64_t fallback) const;
  bool param_bool(std::string_view key, bool fallback) const;

  /// Human-readable reason a param failed typed parsing, for NotUnderstood
  /// replies: "missing param 'seed'" / "param 'seed': invalid uint 'abc'".
  std::string describe_bad_param(std::string_view key, std::string_view expected_type) const;

  /// Builds a reply: swaps sender/receiver, keeps conversation id and
  /// protocol, sets the performative.
  AclMessage make_reply(Performative reply_performative) const;

  /// One-line rendering for traces: "REQUEST cs -> ps [planning-request]".
  std::string to_display_string() const;
};

}  // namespace ig::agent
