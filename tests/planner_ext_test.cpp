// Tests for the planner extensions: the synthetic workload generator and
// the fitness-preserving plan simplifier.
#include <gtest/gtest.h>

#include "planner/gp.hpp"
#include "planner/simplify.hpp"
#include "planner/workload.hpp"
#include "virolab/catalogue.hpp"

namespace ig::planner {
namespace {

// ---------------------------------------------------------------------------
// Workload generator
// ---------------------------------------------------------------------------

TEST(Workload, LayeredProblemIsSolvableByChain) {
  WorkloadParams params;
  params.depth = 3;
  params.services_per_layer = 2;
  const PlanningProblem problem = make_layered_problem(params);
  EXPECT_EQ(problem.catalogue.size(), 6u);  // 3 layers x 2 providers
  ASSERT_EQ(problem.goals.size(), 1u);

  // Execute Stage1; Stage2; Stage3 by hand: the goal must be reached.
  std::vector<PlanNode> chain;
  chain.push_back(PlanNode::terminal("Stage1"));
  chain.push_back(PlanNode::terminal("Stage2"));
  chain.push_back(PlanNode::terminal("Stage3"));
  PlanEvaluator evaluator(problem);
  const Fitness fitness = evaluator.evaluate(PlanNode::sequential(std::move(chain)));
  EXPECT_DOUBLE_EQ(fitness.validity, 1.0);
  EXPECT_DOUBLE_EQ(fitness.goal, 1.0);
}

TEST(Workload, RedundantProvidersAreEquivalent) {
  WorkloadParams params;
  params.depth = 2;
  params.services_per_layer = 2;
  const PlanningProblem problem = make_layered_problem(params);
  PlanEvaluator evaluator(problem);
  // The v1 providers work just as well as the primaries.
  std::vector<PlanNode> chain;
  chain.push_back(PlanNode::terminal("Stage1v1"));
  chain.push_back(PlanNode::terminal("Stage2v1"));
  const Fitness fitness = evaluator.evaluate(PlanNode::sequential(std::move(chain)));
  EXPECT_DOUBLE_EQ(fitness.goal, 1.0);
}

TEST(Workload, FanInRequiresMultipleArtefacts) {
  WorkloadParams params;
  params.depth = 1;
  params.fan_in = 2;
  const PlanningProblem problem = make_layered_problem(params);
  PlanEvaluator evaluator(problem);
  // Initial data carries 2 x fan_in seeds, so one Stage1 invocation binds.
  const Fitness fitness = evaluator.evaluate(PlanNode::terminal("Stage1"));
  EXPECT_DOUBLE_EQ(fitness.validity, 1.0);
  EXPECT_DOUBLE_EQ(fitness.goal, 1.0);
  // And the service really declares two formals.
  EXPECT_EQ(problem.catalogue.find("Stage1")->inputs().size(), 2u);
}

TEST(Workload, DistractorsAreExecutableButUseless) {
  WorkloadParams params;
  params.depth = 1;
  params.distractor_chains = 1;
  params.distractor_depth = 2;
  const PlanningProblem problem = make_layered_problem(params);
  PlanEvaluator evaluator(problem);
  std::vector<PlanNode> noise;
  noise.push_back(PlanNode::terminal("Distract0s1"));
  noise.push_back(PlanNode::terminal("Distract0s2"));
  const Fitness fitness = evaluator.evaluate(PlanNode::sequential(std::move(noise)));
  EXPECT_DOUBLE_EQ(fitness.validity, 1.0);  // executable
  EXPECT_DOUBLE_EQ(fitness.goal, 0.0);      // but goal-irrelevant
}

TEST(Workload, GpSolvesGeneratedProblems) {
  WorkloadParams params;
  params.depth = 3;
  params.services_per_layer = 2;
  params.distractor_chains = 2;
  const PlanningProblem problem = make_layered_problem(params);
  GpConfig config;
  config.population_size = 120;
  config.generations = 15;
  config.seed = 11;
  const GpResult result = run_gp(problem, config);
  EXPECT_DOUBLE_EQ(result.best_fitness.goal, 1.0);
  EXPECT_GE(result.best_fitness.size, minimal_activity_count(params));
}

TEST(Workload, MinimalActivityCount) {
  WorkloadParams params;
  params.depth = 4;
  EXPECT_EQ(minimal_activity_count(params), 4u);
  params.depth = 0;
  EXPECT_EQ(minimal_activity_count(params), 0u);
}

// ---------------------------------------------------------------------------
// Simplifier
// ---------------------------------------------------------------------------

PlanningProblem virolab_problem() {
  return PlanningProblem::from_case(virolab::make_case_description(),
                                    virolab::make_catalogue());
}

TEST(Simplify, RemovesDeadSubtrees) {
  const PlanningProblem problem = virolab_problem();
  PlanEvaluator evaluator(problem);
  // Valid core plan plus a dead POD tail (a second POD adds nothing).
  std::vector<PlanNode> padded;
  padded.push_back(PlanNode::terminal("POD"));
  padded.push_back(PlanNode::terminal("P3DR"));
  padded.push_back(PlanNode::terminal("P3DR"));
  padded.push_back(PlanNode::terminal("PSF"));
  padded.push_back(PlanNode::terminal("POD"));  // dead weight
  const PlanNode plan = PlanNode::sequential(std::move(padded));

  const SimplifyResult result = simplify_plan(plan, evaluator);
  EXPECT_LT(result.plan.size(), plan.size());
  EXPECT_DOUBLE_EQ(result.fitness.validity, 1.0);
  EXPECT_DOUBLE_EQ(result.fitness.goal, 1.0);
  EXPECT_GE(result.fitness.overall, 0.95);  // 5-node minimal plan
  EXPECT_EQ(result.plan.size(), 5u);
}

TEST(Simplify, KeepsMinimalPlanIntact) {
  const PlanningProblem problem = virolab_problem();
  PlanEvaluator evaluator(problem);
  std::vector<PlanNode> minimal;
  minimal.push_back(PlanNode::terminal("POD"));
  minimal.push_back(PlanNode::terminal("P3DR"));
  minimal.push_back(PlanNode::terminal("P3DR"));
  minimal.push_back(PlanNode::terminal("PSF"));
  const PlanNode plan = PlanNode::sequential(std::move(minimal));
  const SimplifyResult result = simplify_plan(plan, evaluator);
  EXPECT_EQ(result.plan.size(), plan.size());
  EXPECT_EQ(result.removed_nodes, 0u);
  EXPECT_DOUBLE_EQ(result.fitness.goal, 1.0);
}

TEST(Simplify, NeverDegradesFitness) {
  const PlanningProblem problem = virolab_problem();
  PlanEvaluator evaluator(problem);
  util::Rng rng(99);
  for (int i = 0; i < 25; ++i) {
    const PlanNode plan = random_tree(rng, problem.catalogue, 30);
    const Fitness before = evaluator.evaluate(plan);
    const SimplifyResult result = simplify_plan(plan, evaluator);
    EXPECT_GE(result.fitness.overall + 1e-9, before.overall);
    EXPECT_GE(result.fitness.validity + 1e-9, before.validity);
    EXPECT_GE(result.fitness.goal + 1e-9, before.goal);
    EXPECT_LE(result.plan.size(), plan.size());
    EXPECT_EQ(check_structure(result.plan), "");
  }
}

TEST(Simplify, CollapsesOneChildControllers) {
  const PlanningProblem problem = virolab_problem();
  PlanEvaluator evaluator(problem);
  // Concurrent(POD, junk) where removing junk leaves a one-child concurrent
  // that must collapse into plain POD.
  const PlanNode plan = PlanNode::concurrent(
      {PlanNode::terminal("POD"), PlanNode::terminal("PSF")});
  const SimplifyResult result = simplify_plan(plan, evaluator);
  EXPECT_TRUE(result.plan.is_terminal());
  EXPECT_EQ(result.plan.service, "POD");
}

TEST(Simplify, ShrinksGpResultsTowardMinimal) {
  const PlanningProblem problem = virolab_problem();
  PlanEvaluator evaluator(problem);
  GpConfig config;
  config.population_size = 100;
  config.generations = 12;
  config.seed = 77;
  const GpResult gp = run_gp(problem, config);
  const SimplifyResult simplified = simplify_plan(gp.best_plan, evaluator);
  EXPECT_LE(simplified.plan.size(), gp.best_fitness.size);
  EXPECT_GE(simplified.fitness.overall + 1e-9, gp.best_fitness.overall);
}

}  // namespace
}  // namespace ig::planner
