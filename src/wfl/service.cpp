#include "wfl/service.hpp"

#include <algorithm>
#include <numeric>

namespace ig::wfl {

void ServiceType::rebuild_binder() {
  unary_filters_.assign(inputs_.size(), Condition::always_true());
  residual_condition_ = Condition::always_true();
  for (const Condition& conjunct : input_condition_.conjuncts()) {
    const std::vector<std::string> variables = conjunct.variables();
    if (variables.size() == 1) {
      auto it = std::find(inputs_.begin(), inputs_.end(), variables.front());
      if (it != inputs_.end()) {
        const std::size_t index = static_cast<std::size_t>(it - inputs_.begin());
        unary_filters_[index] = Condition::conjunction(unary_filters_[index], conjunct);
        continue;
      }
    }
    residual_condition_ = Condition::conjunction(residual_condition_, conjunct);
  }
}

bool ServiceType::bind_recursive(const std::vector<std::vector<const DataSpec*>>& candidates,
                                 std::size_t order_index, const std::vector<std::size_t>& order,
                                 Bindings& bindings) const {
  if (order_index >= order.size()) return residual_condition_.evaluate(bindings);
  const std::size_t formal_index = order[order_index];
  const std::string& formal = inputs_[formal_index];
  for (const DataSpec* item : candidates[formal_index]) {
    // Distinct formals bind distinct items (the paper's input sets never
    // repeat a data item).
    bool already_bound = false;
    for (const auto& [name, bound] : bindings) {
      (void)name;
      if (bound == item) {
        already_bound = true;
        break;
      }
    }
    if (already_bound) continue;
    bindings[formal] = item;
    if (bind_recursive(candidates, order_index + 1, order, bindings)) return true;
    bindings.erase(formal);
  }
  return false;
}

std::optional<Bindings> ServiceType::bind_inputs(const DataSet& state) const {
  std::vector<const DataSpec*> items;
  items.reserve(state.size());
  for (const auto& item : state.items()) items.push_back(&item);
  return bind_inputs(items);
}

std::optional<Bindings> ServiceType::bind_inputs(
    const std::vector<const DataSpec*>& items) const {
  if (unary_filters_.size() != inputs_.size()) {
    // Binder never built (e.g. condition assigned before inputs through a
    // copy of an old object) — rebuild defensively.
    const_cast<ServiceType*>(this)->rebuild_binder();
  }

  // Candidate items per formal: those passing the formal's unary filter.
  std::vector<std::vector<const DataSpec*>> candidates(inputs_.size());
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    const Condition& filter = unary_filters_[i];
    const bool pass_all = filter.is_trivially_true();
    for (const DataSpec* item : items) {
      if (item == nullptr) continue;
      if (pass_all || filter.evaluate_single(inputs_[i], *item)) candidates[i].push_back(item);
    }
    if (candidates[i].empty()) return std::nullopt;  // precondition cannot be met
  }

  // Most-constrained-first ordering prunes the backtracking search.
  std::vector<std::size_t> order(inputs_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return candidates[a].size() < candidates[b].size();
  });

  Bindings bindings;
  if (bind_recursive(candidates, 0, order, bindings)) return bindings;
  return std::nullopt;
}

void ServiceType::rebuild_outputs() {
  output_properties_.clear();
  output_properties_.reserve(outputs_.size());
  for (const auto& formal : outputs_)
    output_properties_.push_back(output_condition_.equality_requirements(formal));
}

std::vector<DataSpec> ServiceType::produce_outputs(std::string_view name_prefix) const {
  if (output_properties_.size() != outputs_.size())
    const_cast<ServiceType*>(this)->rebuild_outputs();
  std::vector<DataSpec> outputs;
  outputs.reserve(outputs_.size());
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    DataSpec item(std::string(name_prefix) + outputs_[i]);
    for (const auto& [property, value] : output_properties_[i]) item.set(property, value);
    item.set(props::kCreator, meta::Value(name_));
    outputs.push_back(std::move(item));
  }
  return outputs;
}

void ServiceCatalogue::add(ServiceType service) {
  for (auto& existing : services_) {
    if (existing.name() == service.name()) {
      existing = std::move(service);
      return;
    }
  }
  services_.push_back(std::move(service));
}

const ServiceType* ServiceCatalogue::find(std::string_view name) const noexcept {
  for (const auto& service : services_) {
    if (service.name() == name) return &service;
  }
  return nullptr;
}

std::vector<std::string> ServiceCatalogue::names() const {
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (const auto& service : services_) out.push_back(service.name());
  return out;
}

}  // namespace ig::wfl
