// Simulation service.
//
// "Simulation services are necessary to study the scalability of the system
// and they are also useful for end-users to simulate an experiment before
// actually conducting it." Given a process description and a case, the
// service dry-runs the plan with the planner's execution-flow simulator and
// reports the predicted validity / goal satisfaction — no grid resources are
// consumed.
#pragma once

#include "agent/agent.hpp"
#include "planner/evaluate.hpp"
#include "wfl/service.hpp"

namespace ig::svc {

class SimulationService : public agent::Agent {
 public:
  SimulationService(std::string name, wfl::ServiceCatalogue catalogue,
                    planner::EvaluationConfig config = {})
      : Agent(std::move(name)), catalogue_(std::move(catalogue)), config_(config) {}

  void on_start() override;
  void handle_message(const agent::AclMessage& message) override;

  std::size_t simulations_run() const noexcept { return simulations_; }

 private:
  wfl::ServiceCatalogue catalogue_;
  planner::EvaluationConfig config_;
  std::size_t simulations_ = 0;
};

}  // namespace ig::svc
