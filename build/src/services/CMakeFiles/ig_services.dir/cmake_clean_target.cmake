file(REMOVE_RECURSE
  "libig_services.a"
)
