// End-to-end scenarios across the full service stack: plan with the GP
// planner through the planning service, then enact the returned process
// description through the coordination service — the complete Figure 1
// pipeline on the simulated grid.
#include <gtest/gtest.h>

#include "services/container_agent.hpp"
#include "services/environment.hpp"
#include "services/protocol.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"
#include "wfl/xml_io.hpp"

namespace ig::svc {
namespace {

using agent::AclMessage;
using agent::Performative;

/// A user-interface agent that requests a plan and then enacts it.
class UserAgent : public agent::Agent {
 public:
  explicit UserAgent(std::string name, wfl::CaseDescription cd)
      : Agent(std::move(name)), case_(std::move(cd)) {}

  void on_start() override {
    AclMessage request;
    request.performative = Performative::Request;
    request.receiver = names::kPlanning;
    request.protocol = protocols::kPlanRequest;
    request.conversation_id = "user-plan";
    request.params["seed"] = "13";
    request.content = wfl::case_to_xml_string(case_);
    send(std::move(request));
  }

  void handle_message(const AclMessage& message) override {
    if (message.protocol == protocols::kPlanRequest) {
      plan_reply = message;
      if (message.performative != Performative::Inform) return;
      AclMessage enact;
      enact.performative = Performative::Request;
      enact.receiver = names::kCoordination;
      enact.protocol = protocols::kEnactCase;
      enact.content = message.content;
      enact.params["case-xml"] = wfl::case_to_xml_string(case_);
      send(std::move(enact));
      return;
    }
    if (message.protocol == protocols::kCaseCompleted) {
      case_reply = message;
    }
  }

  wfl::CaseDescription case_;
  AclMessage plan_reply;
  AclMessage case_reply;
};

EnvironmentOptions small_options(std::uint64_t seed = 42) {
  EnvironmentOptions options;
  options.topology.domains = 2;
  options.topology.nodes_per_domain = 3;
  options.gp.population_size = 140;
  options.gp.generations = 18;
  options.seed = seed;
  return options;
}

TEST(Integration, PlanThenEnactReachesGoal) {
  auto environment = make_environment(small_options());
  auto& user = environment->platform().spawn<UserAgent>(
      "user", virolab::make_case_description());
  environment->run();

  ASSERT_EQ(user.plan_reply.performative, Performative::Inform)
      << user.plan_reply.param("error");
  EXPECT_EQ(user.plan_reply.param("goal-fitness"), "1");

  ASSERT_EQ(user.case_reply.performative, Performative::Inform)
      << user.case_reply.param("error");
  EXPECT_EQ(user.case_reply.param("success"), "true");
  EXPECT_EQ(user.case_reply.param("goal-satisfaction"), "1");

  // The produced resolution file is in the final state.
  const wfl::DataSet final_state = wfl::dataset_from_xml_string(user.case_reply.content);
  bool has_resolution = false;
  for (const auto& item : final_state.items()) {
    if (item.classification() == "Resolution File") has_resolution = true;
  }
  EXPECT_TRUE(has_resolution);
}

TEST(Integration, PlanThenEnactSurvivesMidRunOutages) {
  auto environment = make_environment(small_options(77));
  auto& grid = environment->grid();
  // Guarantee an alternate POD host exists, then take the primary one down
  // mid-run (it recovers much later): the retry ladder must reroute.
  grid::HardwareSpec spare_hw;
  spare_hw.speed = 2.0;
  grid.add_node("spare-node", "spare", "domain1", spare_hw);
  auto& spare = grid.add_container("spare-ac", "spare-node");
  spare.host_service("POD");
  environment->platform().spawn<ContainerAgent>("spare-ac", grid, environment->sim(),
                                                environment->injector(), "spare-ac",
                                                environment->catalogue(),
                                                &environment->kernels());
  const auto pod_hosts = grid.containers_advertising("POD");
  ASSERT_GE(pod_hosts.size(), 2u);
  environment->injector().schedule_container_outage(environment->sim(), grid,
                                                    pod_hosts.front()->id(), 0.5, 200.0);
  auto& user = environment->platform().spawn<UserAgent>(
      "user", virolab::make_case_description());
  environment->run();
  ASSERT_EQ(user.case_reply.performative, Performative::Inform)
      << user.case_reply.param("error");
  EXPECT_EQ(user.case_reply.param("success"), "true");
}

TEST(Integration, MessageTraceCoversFigure2Exchange) {
  EnvironmentOptions options = small_options();
  options.tracing = true;
  auto environment = make_environment(options);
  environment->platform().clear_trace();

  environment->platform().spawn<UserAgent>("user", virolab::make_case_description());
  environment->run();

  // Figure 2: a planning request reaches PS and a plan comes back.
  bool saw_request = false;
  bool saw_reply = false;
  for (const auto& record : environment->platform().trace()) {
    if (record.message.protocol == protocols::kPlanRequest) {
      if (record.message.receiver == names::kPlanning &&
          record.message.performative == Performative::Request)
        saw_request = true;
      if (record.message.sender == names::kPlanning &&
          record.message.performative == Performative::Inform)
        saw_reply = true;
    }
  }
  EXPECT_TRUE(saw_request);
  EXPECT_TRUE(saw_reply);
}

TEST(Integration, BrokerageHistoryGrowsWithExecutions) {
  auto environment = make_environment(small_options());
  auto& user = environment->platform().spawn<UserAgent>(
      "user", virolab::make_case_description());
  environment->run();
  ASSERT_EQ(user.case_reply.param("success"), "true");

  // Every executed activity reported its performance to the brokerage.
  std::size_t recorded = 0;
  for (const auto& container : environment->grid().containers()) {
    const PerformanceHistory* history =
        environment->brokerage().history_of(container->id());
    if (history != nullptr) recorded += history->successes + history->failures;
  }
  EXPECT_GE(recorded, std::stoul(user.case_reply.param("activities-executed")));
}

TEST(Integration, MonitoringSamplesUtilization) {
  EnvironmentOptions options = small_options();
  options.monitor_period = 0.5;
  auto environment = make_environment(options);
  environment->platform().spawn<UserAgent>("user", virolab::make_case_description());
  environment->run(200'000);
  EXPECT_FALSE(environment->monitoring().samples().empty());
}

TEST(Integration, DeterministicAcrossIdenticalEnvironments) {
  auto run_once = [] {
    auto environment = make_environment(small_options(5));
    auto& user = environment->platform().spawn<UserAgent>(
        "user", virolab::make_case_description());
    environment->run();
    return user.case_reply.param("makespan");
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ig::svc
