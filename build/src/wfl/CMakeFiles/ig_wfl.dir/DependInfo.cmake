
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wfl/case_description.cpp" "src/wfl/CMakeFiles/ig_wfl.dir/case_description.cpp.o" "gcc" "src/wfl/CMakeFiles/ig_wfl.dir/case_description.cpp.o.d"
  "/root/repo/src/wfl/condition.cpp" "src/wfl/CMakeFiles/ig_wfl.dir/condition.cpp.o" "gcc" "src/wfl/CMakeFiles/ig_wfl.dir/condition.cpp.o.d"
  "/root/repo/src/wfl/data.cpp" "src/wfl/CMakeFiles/ig_wfl.dir/data.cpp.o" "gcc" "src/wfl/CMakeFiles/ig_wfl.dir/data.cpp.o.d"
  "/root/repo/src/wfl/enact.cpp" "src/wfl/CMakeFiles/ig_wfl.dir/enact.cpp.o" "gcc" "src/wfl/CMakeFiles/ig_wfl.dir/enact.cpp.o.d"
  "/root/repo/src/wfl/flowexpr.cpp" "src/wfl/CMakeFiles/ig_wfl.dir/flowexpr.cpp.o" "gcc" "src/wfl/CMakeFiles/ig_wfl.dir/flowexpr.cpp.o.d"
  "/root/repo/src/wfl/process.cpp" "src/wfl/CMakeFiles/ig_wfl.dir/process.cpp.o" "gcc" "src/wfl/CMakeFiles/ig_wfl.dir/process.cpp.o.d"
  "/root/repo/src/wfl/service.cpp" "src/wfl/CMakeFiles/ig_wfl.dir/service.cpp.o" "gcc" "src/wfl/CMakeFiles/ig_wfl.dir/service.cpp.o.d"
  "/root/repo/src/wfl/structure.cpp" "src/wfl/CMakeFiles/ig_wfl.dir/structure.cpp.o" "gcc" "src/wfl/CMakeFiles/ig_wfl.dir/structure.cpp.o.d"
  "/root/repo/src/wfl/validate.cpp" "src/wfl/CMakeFiles/ig_wfl.dir/validate.cpp.o" "gcc" "src/wfl/CMakeFiles/ig_wfl.dir/validate.cpp.o.d"
  "/root/repo/src/wfl/xml_io.cpp" "src/wfl/CMakeFiles/ig_wfl.dir/xml_io.cpp.o" "gcc" "src/wfl/CMakeFiles/ig_wfl.dir/xml_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ig_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/ig_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/ig_meta.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
