// Ablation A6 — coordination-engine micro-benchmarks (google-benchmark).
//
// Measures the hot paths of the middleware substrate: condition evaluation,
// plan-fitness evaluation, process lowering/lifting, XML round trips, and a
// full end-to-end enactment of the Figure 10 case on the simulated grid.
#include <benchmark/benchmark.h>

#include "planner/convert.hpp"
#include "planner/evaluate.hpp"
#include "services/environment.hpp"
#include "services/protocol.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"
#include "wfl/structure.hpp"
#include "wfl/xml_io.hpp"

using namespace ig;

namespace {

void BM_ConditionEvaluate(benchmark::State& state) {
  const wfl::Condition condition = wfl::Condition::parse(
      "A.Classification = \"POR-Parameter\" and B.Classification = \"2D Image\" and "
      "C.Classification = \"Orientation File\" and D.Classification = \"3D Model\"");
  const wfl::DataSet data = virolab::make_initial_data();
  const wfl::Bindings bindings = wfl::self_bindings(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(condition.evaluate(bindings));
  }
}
BENCHMARK(BM_ConditionEvaluate);

void BM_ConditionParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(wfl::Condition::parse(
        "A.Classification = \"PSF-Parameter\" and B.Classification = \"3D Model\" and "
        "C.Classification = \"3D Model\" or not D.Value > 8"));
  }
}
BENCHMARK(BM_ConditionParse);

void BM_ServiceBindInputs(benchmark::State& state) {
  const auto catalogue = virolab::make_catalogue();
  const wfl::ServiceType* por = catalogue.find("POR");
  wfl::DataSet data = virolab::make_initial_data();
  data.put(wfl::DataSpec("D8").with_classification("Orientation File"));
  data.put(wfl::DataSpec("D9").with_classification("3D Model"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(por->bind_inputs(data));
  }
}
BENCHMARK(BM_ServiceBindInputs);

void BM_PlanFitnessEvaluation(benchmark::State& state) {
  const planner::PlanningProblem problem = planner::PlanningProblem::from_case(
      virolab::make_case_description(), virolab::make_catalogue());
  planner::PlanEvaluator evaluator(problem);
  const planner::PlanNode plan = virolab::make_fig11_plan_tree();
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate(plan));
  }
}
BENCHMARK(BM_PlanFitnessEvaluation);

void BM_LowerAndLift(benchmark::State& state) {
  const wfl::FlowExpr expr = virolab::make_flow_expr();
  for (auto _ : state) {
    const wfl::ProcessDescription process = wfl::lower_to_process(expr, "bench");
    benchmark::DoNotOptimize(wfl::lift_from_process(process));
  }
}
BENCHMARK(BM_LowerAndLift);

void BM_ProcessXmlRoundTrip(benchmark::State& state) {
  const wfl::ProcessDescription process = virolab::make_fig10_process();
  for (auto _ : state) {
    const std::string xml = wfl::process_to_xml_string(process);
    benchmark::DoNotOptimize(wfl::process_from_xml_string(xml));
  }
}
BENCHMARK(BM_ProcessXmlRoundTrip);

/// Full enactment of the Figure 10 case: environment bootstrap + plan
/// execution across agents, per iteration.
void BM_EndToEndEnactment(benchmark::State& state) {
  class Runner : public agent::Agent {
   public:
    using Agent::Agent;
    void on_start() override {
      agent::AclMessage request;
      request.performative = agent::Performative::Request;
      request.receiver = svc::names::kCoordination;
      request.protocol = svc::protocols::kEnactCase;
      request.content = wfl::process_to_xml_string(virolab::make_fig10_process());
      request.params["case-xml"] =
          wfl::case_to_xml_string(virolab::make_case_description());
      send(std::move(request));
    }
    void handle_message(const agent::AclMessage& message) override {
      if (message.protocol == svc::protocols::kCaseCompleted)
        success = message.param("success") == "true";
    }
    bool success = false;
  };

  std::size_t completed = 0;
  for (auto _ : state) {
    svc::EnvironmentOptions options;
    options.topology.domains = 2;
    options.topology.nodes_per_domain = 2;
    auto environment = svc::make_environment(options);
    auto& runner = environment->platform().spawn<Runner>("bench-ui");
    environment->run();
    if (runner.success) ++completed;
  }
  state.counters["cases_ok"] = static_cast<double>(completed);
}
BENCHMARK(BM_EndToEndEnactment)->Unit(benchmark::kMillisecond);

}  // namespace
