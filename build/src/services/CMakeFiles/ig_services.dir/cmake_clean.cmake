file(REMOVE_RECURSE
  "CMakeFiles/ig_services.dir/authentication.cpp.o"
  "CMakeFiles/ig_services.dir/authentication.cpp.o.d"
  "CMakeFiles/ig_services.dir/brokerage.cpp.o"
  "CMakeFiles/ig_services.dir/brokerage.cpp.o.d"
  "CMakeFiles/ig_services.dir/container_agent.cpp.o"
  "CMakeFiles/ig_services.dir/container_agent.cpp.o.d"
  "CMakeFiles/ig_services.dir/coordination.cpp.o"
  "CMakeFiles/ig_services.dir/coordination.cpp.o.d"
  "CMakeFiles/ig_services.dir/environment.cpp.o"
  "CMakeFiles/ig_services.dir/environment.cpp.o.d"
  "CMakeFiles/ig_services.dir/information.cpp.o"
  "CMakeFiles/ig_services.dir/information.cpp.o.d"
  "CMakeFiles/ig_services.dir/matchmaking.cpp.o"
  "CMakeFiles/ig_services.dir/matchmaking.cpp.o.d"
  "CMakeFiles/ig_services.dir/monitoring.cpp.o"
  "CMakeFiles/ig_services.dir/monitoring.cpp.o.d"
  "CMakeFiles/ig_services.dir/ontology_service.cpp.o"
  "CMakeFiles/ig_services.dir/ontology_service.cpp.o.d"
  "CMakeFiles/ig_services.dir/planning_service.cpp.o"
  "CMakeFiles/ig_services.dir/planning_service.cpp.o.d"
  "CMakeFiles/ig_services.dir/scheduling.cpp.o"
  "CMakeFiles/ig_services.dir/scheduling.cpp.o.d"
  "CMakeFiles/ig_services.dir/simulation_service.cpp.o"
  "CMakeFiles/ig_services.dir/simulation_service.cpp.o.d"
  "CMakeFiles/ig_services.dir/storage.cpp.o"
  "CMakeFiles/ig_services.dir/storage.cpp.o.d"
  "CMakeFiles/ig_services.dir/user_interface.cpp.o"
  "CMakeFiles/ig_services.dir/user_interface.cpp.o.d"
  "libig_services.a"
  "libig_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
