// A tour of the process-description language (Section 2 grammar) and its
// three interchangeable representations.
//
//   $ ./workflow_language_tour
//
// Parses a workflow written in the concrete syntax, lowers it to the
// activity/transition graph, validates it, lifts it back, converts it to a
// plan tree, dry-runs it against the virolab service catalogue, and archives
// it as XML — the full round trip a workflow takes through the system.
#include <cstdio>

#include "planner/convert.hpp"
#include "planner/evaluate.hpp"
#include "virolab/catalogue.hpp"
#include "wfl/flowexpr.hpp"
#include "wfl/structure.hpp"
#include "wfl/validate.hpp"
#include "wfl/xml_io.hpp"

using namespace ig;

int main() {
  const char* text =
      "BEGIN, POD; P3DR1=P3DR; {ITERATIVE {COND R.Value > 8} "
      "{POR; {FORK {P3DR2=P3DR} {P3DR3=P3DR} {P3DR4=P3DR} JOIN}; PSF}}, END";

  std::printf("=== 1. concrete syntax ===\n%s\n\n", text);

  const wfl::FlowExpr expr = wfl::parse_flow(text);
  std::printf("=== 2. structured form ===\n%s\n", expr.to_tree_string().c_str());
  std::printf("activities: %zu, nodes: %zu, depth: %zu\n\n", expr.activity_count(),
              expr.node_count(), expr.depth());

  const wfl::ProcessDescription process = wfl::lower_to_process(expr, "PD-3DSD");
  std::printf("=== 3. activity/transition graph (Figure 10 form) ===\n%s\n",
              process.to_display_string().c_str());

  const auto errors = wfl::validate(process);
  std::printf("validation: %s\n\n", errors.empty() ? "ok" : wfl::to_string(errors).c_str());

  const wfl::FlowExpr lifted = wfl::lift_from_process(process);
  std::printf("=== 4. lifted back to text ===\n%s\nround-trip equal: %s\n\n",
              lifted.to_text().c_str(), lifted == expr ? "yes" : "NO");

  const planner::PlanNode tree = planner::from_process(process);
  std::printf("=== 5. plan tree (Figure 11 form) ===\n%s\n", tree.to_tree_string().c_str());

  planner::PlanningProblem problem = planner::PlanningProblem::from_case(
      virolab::make_case_description(), virolab::make_catalogue());
  planner::PlanEvaluator evaluator(problem);
  const planner::Fitness fitness = evaluator.evaluate(tree);
  std::printf("=== 6. dry-run fitness ===\nf=%.4f fv=%.4f fg=%.4f fr=%.4f (%zu flows)\n\n",
              fitness.overall, fitness.validity, fitness.goal, fitness.representation,
              fitness.flows);

  const std::string archived = wfl::process_to_xml_string(process);
  std::printf("=== 7. archived as XML (%zu bytes, first lines) ===\n", archived.size());
  std::printf("%.400s...\n", archived.c_str());

  const wfl::ProcessDescription restored = wfl::process_from_xml_string(archived);
  std::printf("restored graph: %zu activities / %zu transitions (equal: %s)\n",
              restored.activity_count(), restored.transition_count(),
              restored.activity_count() == process.activity_count() ? "yes" : "NO");
  return 0;
}
