// Figures 8-9 — Crossover and mutation on plan trees.
//
// Reconstructs the paper's worked examples: two parents exchange subtrees
// (Figure 8) and a selected node's subtree is replaced by a randomly
// generated one (Figure 9). Also verifies the operators' contracts over a
// large random sample: sizes stay within Smax, structures stay well-formed,
// and crossover conserves total node count.
#include <cstdio>

#include "planner/operators.hpp"
#include "virolab/catalogue.hpp"

using namespace ig;
using planner::PlanNode;

namespace {

PlanNode figure8_parent_a() {
  // Sequential(A, Selective(B, C), D) -- mirrors the left parent's shape.
  std::vector<PlanNode> top;
  top.push_back(PlanNode::terminal("POD"));
  top.push_back(PlanNode::selective({PlanNode::terminal("P3DR"), PlanNode::terminal("POR")}));
  top.push_back(PlanNode::terminal("PSF"));
  return PlanNode::sequential(std::move(top));
}

PlanNode figure8_parent_b() {
  // Sequential(Concurrent(E, F), G).
  std::vector<PlanNode> top;
  top.push_back(PlanNode::concurrent({PlanNode::terminal("P3DR"), PlanNode::terminal("P3DR")}));
  top.push_back(PlanNode::terminal("PSF"));
  return PlanNode::sequential(std::move(top));
}

}  // namespace

int main() {
  const auto catalogue = virolab::make_catalogue();
  util::Rng rng(88);

  std::printf("=== Figure 8: crossover on two plan trees ===\n\n");
  const PlanNode parent_a = figure8_parent_a();
  const PlanNode parent_b = figure8_parent_b();
  std::printf("(a) parents:\n%s\n%s\n", parent_a.to_tree_string().c_str(),
              parent_b.to_tree_string().c_str());

  planner::CrossoverResult crossed;
  for (int attempt = 0; attempt < 100 && !crossed.applied; ++attempt)
    crossed = planner::crossover(parent_a, parent_b, rng, 1.0, 40);
  std::printf("(c) offspring (subtrees swapped):\n%s\n%s\n",
              crossed.first.to_tree_string().c_str(), crossed.second.to_tree_string().c_str());
  const bool conserved =
      crossed.first.size() + crossed.second.size() == parent_a.size() + parent_b.size();
  std::printf("total node count conserved: %s\n\n", conserved ? "yes" : "NO");

  std::printf("=== Figure 9: mutation on a plan tree ===\n\n");
  PlanNode mutated = figure8_parent_a();
  std::printf("(a) original:\n%s\n", mutated.to_tree_string().c_str());
  bool changed = false;
  for (int attempt = 0; attempt < 1000 && !changed; ++attempt)
    changed = planner::mutate(mutated, rng, catalogue, 0.5, 40);
  std::printf("(b) after subtree-replacement mutation:\n%s\n", mutated.to_tree_string().c_str());
  std::printf("tree changed: %s, still well-formed: %s\n\n", changed ? "yes" : "NO",
              planner::check_structure(mutated).empty() ? "yes" : "NO");

  // Contract sweep.
  std::printf("=== operator contract sweep (2000 random applications) ===\n");
  std::size_t crossover_applied = 0;
  std::size_t violations = 0;
  for (int i = 0; i < 1000; ++i) {
    const PlanNode a = planner::random_tree(rng, catalogue, 30);
    const PlanNode b = planner::random_tree(rng, catalogue, 30);
    const auto result = planner::crossover(a, b, rng, 0.7, 40);
    if (!result.applied) continue;
    ++crossover_applied;
    if (result.first.size() > 40 || result.second.size() > 40) ++violations;
    if (!planner::check_structure(result.first).empty()) ++violations;
    if (result.first.size() + result.second.size() != a.size() + b.size()) ++violations;
  }
  for (int i = 0; i < 1000; ++i) {
    PlanNode tree = planner::random_tree(rng, catalogue, 30);
    planner::mutate(tree, rng, catalogue, 0.05, 40);
    if (tree.size() > 40) ++violations;
    if (!planner::check_structure(tree).empty()) ++violations;
  }
  std::printf("crossovers applied: %zu / 1000 (rate 0.7, minus Smax rejections)\n",
              crossover_applied);
  std::printf("contract violations: %zu\n", violations);
  const bool ok = conserved && changed && violations == 0;
  std::printf("figures 8-9 semantics hold: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
