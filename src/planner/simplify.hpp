// Plan simplification: fitness-preserving shrinking of evolved plans.
//
// Eq. 3 rewards small plans only linearly (weight wr), so GP runs often
// settle on plans carrying dead subtrees — branches whose removal loses no
// validity or goal fitness. This pass greedily deletes child subtrees while
// the overall fitness does not decrease, converging on a locally minimal
// plan. It is a post-processing step (the paper's planner does not include
// it); ablation A11 measures its effect on the Table 2 size statistic.
#pragma once

#include "planner/evaluate.hpp"
#include "planner/plan_tree.hpp"

namespace ig::planner {

struct SimplifyResult {
  PlanNode plan;
  Fitness fitness;
  std::size_t removed_nodes = 0;  ///< total nodes eliminated
  std::size_t evaluations = 0;    ///< fitness evaluations spent
};

/// Greedy child-subtree deletion until no removal keeps fitness from
/// dropping (tolerance covers floating-point noise). Structure invariants
/// are preserved: a controller never loses its last child; one-child
/// controllers left behind are collapsed into their child.
SimplifyResult simplify_plan(const PlanNode& plan, const PlanEvaluator& evaluator,
                             double tolerance = 1e-12);

}  // namespace ig::planner
