# Empty compiler generated dependencies file for bench_coordination_throughput.
# This may be replaced when dependencies are built.
