#include "wfl/enact.hpp"

#include <deque>
#include <map>
#include <set>

#include "wfl/service.hpp"
#include "wfl/validate.hpp"

namespace ig::wfl {

ActivityExecutor make_catalogue_executor(const ServiceCatalogue& catalogue) {
  // The shared counter gives produced items unique names across the run.
  auto counter = std::make_shared<std::size_t>(0);
  return [&catalogue, counter](const Activity& activity,
                               const DataSet& state) -> std::optional<std::vector<DataSpec>> {
    const ServiceType* service = catalogue.find(activity.service_name);
    if (service == nullptr) return std::nullopt;
    if (!service->bind_inputs(state).has_value()) return std::nullopt;
    std::vector<DataSpec> outputs =
        service->produce_outputs(activity.service_name + "#" + std::to_string(++*counter) + ":");
    // Stable names from the activity's declared output set (D8, D9, ...).
    for (std::size_t i = 0; i < outputs.size() && i < activity.output_data.size(); ++i)
      outputs[i].set_name(activity.output_data[i]);
    return outputs;
  };
}

namespace {

/// The machine: a token queue plus Join synchronization state.
class Machine {
 public:
  Machine(const ProcessDescription& process, const CaseDescription& case_description,
          const ActivityExecutor& executor, const EnactmentOptions& options)
      : process_(process),
        case_(case_description),
        executor_(executor),
        options_(options) {}

  EnactmentResult run() {
    EnactmentResult result;
    const auto errors = validate(process_);
    if (!errors.empty()) {
      result.error = "invalid process description: " + errors.front().message;
      return result;
    }
    data_ = case_.initial_data();

    // Seed: the Begin activity fires immediately.
    trigger(process_.begin_activity().id, "");
    int steps = 0;
    while (!tokens_.empty()) {
      if (++steps > options_.max_steps) {
        result.error = "step budget exhausted (malformed or runaway graph)";
        result.trace = std::move(trace_);
        return result;
      }
      const Token token = tokens_.front();
      tokens_.pop_front();
      if (!consume(token, result)) {
        result.final_data = data_;
        result.trace = std::move(trace_);
        return result;  // error already recorded
      }
      if (reached_end_) break;
    }
    if (!reached_end_) {
      result.error = "control flow stalled before reaching End (Join never satisfied?)";
      result.trace = std::move(trace_);
      result.final_data = data_;
      return result;
    }
    result.final_data = data_;
    result.goal_satisfaction = case_.goal_satisfaction(data_);
    result.success = result.goal_satisfaction >= 1.0;
    if (!result.success) result.error = "plan completed without satisfying the case goals";
    result.activities_executed = executed_;
    result.trace = std::move(trace_);
    return result;
  }

 private:
  struct Token {
    std::string activity_id;
    std::string from;
  };

  void trigger(const std::string& activity_id, const std::string& from) {
    tokens_.push_back({activity_id, from});
  }

  void record(const Activity& activity, bool executed, bool failed) {
    trace_.push_back({activity.id, activity.name, executed, failed});
  }

  /// Processes one token; returns false on fatal failure.
  bool consume(const Token& token, EnactmentResult& result) {
    const Activity* activity = process_.find_activity(token.activity_id);
    if (activity == nullptr) {
      result.error = "dangling transition to '" + token.activity_id + "'";
      return false;
    }
    visited_.insert(activity->id);
    switch (activity->kind) {
      case ActivityKind::Begin:
        record(*activity, false, false);
        return propagate(*activity);
      case ActivityKind::End:
        record(*activity, false, false);
        reached_end_ = true;
        return true;
      case ActivityKind::Fork:
      case ActivityKind::Merge:
        record(*activity, false, false);
        return propagate(*activity);
      case ActivityKind::Join: {
        auto& arrivals = join_arrivals_[activity->id];
        arrivals.insert(token.from);
        if (arrivals.size() < process_.predecessors(activity->id).size()) return true;
        arrivals.clear();
        record(*activity, false, false);
        return propagate(*activity);
      }
      case ActivityKind::Choice:
        record(*activity, false, false);
        return choose(*activity, result);
      case ActivityKind::EndUser: {
        auto produced = executor_(*activity, data_);
        if (!produced.has_value()) {
          record(*activity, true, true);
          result.error = "activity '" + activity->name + "' failed";
          return false;
        }
        ++executed_;
        record(*activity, true, false);
        for (auto& item : *produced) data_.put(std::move(item));
        return propagate(*activity);
      }
    }
    result.error = "unknown activity kind";
    return false;
  }

  /// Follows every outgoing transition (Fork fans out; others have one).
  bool propagate(const Activity& activity) {
    for (const auto* transition : process_.outgoing(activity.id))
      trigger(transition->destination, activity.id);
    return true;
  }

  /// Choice semantics: first satisfied guard wins, with the loop guardrail
  /// preferring a forward transition once the iteration budget is spent.
  bool choose(const Activity& activity, EnactmentResult& result) {
    const int visits = ++choice_visits_[activity.id];
    const Transition* chosen = nullptr;
    const Transition* fallback = nullptr;
    for (const auto* transition : process_.outgoing(activity.id)) {
      const bool back_edge = visited_.count(transition->destination) > 0;
      if (!evaluate_against_state(transition->guard, data_)) continue;
      if (back_edge && visits >= options_.max_loop_iterations) {
        fallback = transition;
        continue;
      }
      chosen = transition;
      break;
    }
    if (chosen == nullptr) {
      for (const auto* transition : process_.outgoing(activity.id)) {
        if (visited_.count(transition->destination) == 0) {
          chosen = transition;
          break;
        }
      }
      if (chosen == nullptr) chosen = fallback;
    }
    if (chosen == nullptr) {
      result.error = "Choice '" + activity.name + "' has no viable transition";
      return false;
    }
    trigger(chosen->destination, activity.id);
    return true;
  }

  const ProcessDescription& process_;
  const CaseDescription& case_;
  const ActivityExecutor& executor_;
  const EnactmentOptions& options_;

  DataSet data_;
  std::deque<Token> tokens_;
  std::map<std::string, std::set<std::string>> join_arrivals_;
  std::map<std::string, int> choice_visits_;
  std::set<std::string> visited_;  ///< activities seen at least once
  std::vector<EnactmentStep> trace_;
  bool reached_end_ = false;
  int executed_ = 0;
};

}  // namespace

EnactmentResult enact(const ProcessDescription& process,
                      const CaseDescription& case_description,
                      const ActivityExecutor& executor, const EnactmentOptions& options) {
  return Machine(process, case_description, executor, options).run();
}

}  // namespace ig::wfl
