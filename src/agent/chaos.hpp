// Deterministic message-level fault injection (the chaos layer).
//
// The paper's grid assumes agents and containers fail; the services above
// this layer claim to survive silent drops, delays and wedged peers. A
// ChaosPolicy installed on the AgentPlatform makes those claims testable:
// per (sender, receiver, performative, protocol) match rules it drops,
// delays (calendar-rescheduled), duplicates, or reorders messages, and can
// crash or hang a named agent at the Nth delivery. Every random decision is
// drawn from a stream derived with util::derive_stream from one seed and
// the message's platform-wide sequence number, so a whole chaotic run is
// bitwise reproducible — the Jepsen-style discipline of testing failure
// handling under a *repeatable* nemesis.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "agent/message.hpp"
#include "obs/metrics.hpp"

namespace ig::agent {

/// Which messages a rule applies to. Empty string fields match anything; a
/// trailing '*' matches by prefix ("ac-*" covers every application
/// container). An unset performative matches all performatives.
struct ChaosMatch {
  std::string sender;
  std::string receiver;
  std::optional<Performative> performative;
  std::string protocol;

  bool matches(const AclMessage& message) const;
};

/// One fault rule. Probabilities are drawn independently in declaration
/// order (drop first — a dropped message cannot also be delayed). Only the
/// first matching rule of a policy applies to a message.
struct ChaosRule {
  ChaosMatch match;
  double drop = 0.0;       ///< P(message silently lost)
  double delay = 0.0;      ///< P(extra transport latency added)
  double delay_min = 0.5;  ///< extra latency bounds (virtual seconds)
  double delay_max = 2.0;
  double duplicate = 0.0;  ///< P(a second copy is also delivered)
  double reorder = 0.0;    ///< P(delivery pushed behind later sends)
};

/// Kills or wedges a named agent at the Nth message delivered to it.
/// Crash: the agent stops existing for the transport — deliveries bounce
/// with a platform FAILURE (an *observed* failure). Hang: the agent turns
/// into a black hole — deliveries to it and sends from it are silently
/// swallowed (the failure mode only timeouts can detect). Neither
/// deregisters the agent object, so its pending timers stay safe to fire.
struct AgentFault {
  enum class Kind { Crash, Hang };
  std::string agent;
  std::size_t after_deliveries = 1;  ///< fires on this delivery attempt (1-based)
  Kind kind = Kind::Crash;
};

struct ChaosPolicy {
  std::uint64_t seed = 1;
  std::vector<ChaosRule> rules;
  std::vector<AgentFault> agent_faults;

  bool enabled() const noexcept { return !rules.empty() || !agent_faults.empty(); }
  const ChaosRule* first_match(const AclMessage& message) const;
};

/// Injected-fault counters (one consistent snapshot; the platform keeps the
/// live counters atomic so an engine metrics pass may read them while the
/// shard runs).
struct ChaosStats {
  std::size_t dropped = 0;     ///< messages lost (incl. hung/crashed senders)
  std::size_t delayed = 0;
  std::size_t duplicated = 0;
  std::size_t reordered = 0;
  std::size_t crashed = 0;     ///< agent-crash faults fired
  std::size_t hung = 0;        ///< agent-hang faults fired
  std::size_t swallowed = 0;   ///< deliveries consumed by a hung receiver

  std::size_t total_injected() const noexcept {
    return dropped + delayed + duplicated + reordered + crashed + hung + swallowed;
  }

  /// Publishes the snapshot into `registry` as `chaos_faults_total` counters
  /// labelled by fault kind (plus `labels`, e.g. the owning shard).
  void publish(obs::MetricsRegistry& registry, const obs::Labels& labels = {}) const;
};

}  // namespace ig::agent
