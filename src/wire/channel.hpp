// Framed byte-stream channel and the platform transport hook.
//
// FramedChannel is the loopback stand-in for the socket transport of the
// federated tier (the follow-on PR): two endpoints joined by a pair of
// in-memory byte streams. Each direction owns an Encoder/Decoder pair, so
// the intern tables stay per-connection and per-direction exactly as they
// will over TCP, and frames arrive in encode order (interning assumes an
// ordered stream). Bytes — not messages — cross the channel: tests feed
// partial frames, flip bits, and replay stale streams against the real
// receive path.
//
// WireLink adapts the channel to AgentPlatform::set_transport_hook: every
// platform send() is encoded onto the channel, pulled off the other end,
// zero-copy decoded, and re-materialized before the chaos layer and the
// delivery calendar see it. The chaos policy therefore drops/delays/
// duplicates messages that really crossed the wire, and a decode failure
// (counted, traced) vanishes the message like a transport loss. Counters
// are atomics: an engine metrics snapshot reads them from another thread
// while the shard's sim is running.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "agent/platform.hpp"
#include "obs/metrics.hpp"
#include "wire/codec.hpp"

namespace ig::wire {

/// One direction of a connection: encoder -> byte buffer -> decoder.
class Stream {
 public:
  /// Encodes `message` as one frame appended to the pending bytes.
  void send(const agent::AclMessage& message);

  /// Appends raw bytes (tests, chaos harnesses, future socket feed).
  void feed_bytes(std::string_view bytes);

  /// Decodes every complete frame currently pending, invoking `fn` with a
  /// view that is only valid during the call. A corrupt frame or payload
  /// poisons the rest of the pending bytes (a byte stream cannot resync
  /// past a bad length prefix): they are discarded, the error is counted
  /// and kept in last_error(). Returns frames delivered.
  std::size_t receive(const std::function<void(const WireMessageView&)>& fn);

  /// Bytes pending but not yet decoded (partial frames linger here).
  std::size_t pending_bytes() const noexcept { return buffer_.size() - consumed_; }

  const EncoderStats& encoder_stats() const noexcept { return encoder_.stats(); }
  std::uint64_t frames_delivered() const noexcept { return frames_delivered_; }
  std::uint64_t decode_errors() const noexcept { return decode_errors_; }
  const std::string& last_error() const noexcept { return last_error_; }

 private:
  /// Drops the decoded prefix (called before appends; views never survive
  /// past the receive() call, so this invalidates nothing live).
  void compact();

  Encoder encoder_;
  Decoder decoder_;
  std::string buffer_;        ///< bytes in flight (append at end)
  std::size_t consumed_ = 0;  ///< prefix already decoded
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t decode_errors_ = 0;
  std::string last_error_;
};

/// Two endpoints joined by two Streams (a->b and b->a). Endpoint `a()`
/// sends on the first and receives from the second; `b()` the reverse.
class FramedChannel {
 public:
  class Endpoint {
   public:
    Endpoint(Stream& out, Stream& in) : out_(&out), in_(&in) {}

    void send(const agent::AclMessage& message) { out_->send(message); }
    std::size_t receive(const std::function<void(const WireMessageView&)>& fn) {
      return in_->receive(fn);
    }
    /// Materializing convenience for tests and demos.
    std::vector<agent::AclMessage> drain();

    Stream& outgoing() noexcept { return *out_; }
    Stream& incoming() noexcept { return *in_; }

   private:
    Stream* out_;
    Stream* in_;
  };

  FramedChannel() : a_(a_to_b_, b_to_a_), b_(b_to_a_, a_to_b_) {}

  Endpoint& a() noexcept { return a_; }
  Endpoint& b() noexcept { return b_; }

 private:
  Stream a_to_b_;
  Stream b_to_a_;
  Endpoint a_;
  Endpoint b_;
};

/// Aggregated wire counters, mirrored into obs::MetricsRegistry as
/// wire_frames_total / wire_bytes_total / wire_intern_hits_total /
/// wire_intern_misses_total / wire_decode_errors_total.
struct LinkStats {
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;  ///< frame bytes including headers
  std::uint64_t intern_hits = 0;
  std::uint64_t intern_misses = 0;
  std::uint64_t decode_errors = 0;
};

/// The platform's wire transport: one FramedChannel whose a-side is "this
/// process sending" and whose b-side is the receiving end of the loopback.
/// `round_trip` is the hook body; `make_transport_hook` packages it for
/// AgentPlatform::set_transport_hook. Single sim thread drives round_trip;
/// the counters are atomics so metrics threads may read concurrently.
class WireLink {
 public:
  /// Encode -> channel -> decode -> materialize. nullopt on decode failure
  /// (reason in `error`), after counting it.
  std::optional<agent::AclMessage> round_trip(const agent::AclMessage& message,
                                              std::string* error);

  LinkStats stats() const;

  /// Pushes the wire_* counters into `registry` under `labels`. Safe from
  /// a metrics thread while the sim thread is inside round_trip.
  void publish_metrics(obs::MetricsRegistry& registry, const obs::Labels& labels = {}) const;

  FramedChannel& channel() noexcept { return channel_; }

 private:
  FramedChannel channel_;
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> intern_hits_{0};
  std::atomic<std::uint64_t> intern_misses_{0};
  std::atomic<std::uint64_t> decode_errors_{0};
};

/// Adapter: a transport hook closed over `link` (which must outlive the
/// platform it is installed on).
agent::TransportHook make_transport_hook(WireLink& link);

}  // namespace ig::wire
