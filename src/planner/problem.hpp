// The planning problem P = {Sinit, G, T} (Section 3.2).
//
//   Sinit — initial state: "all the initial data provided by an end user and
//           their specifications";
//   G     — goal specification: "the specification of all data expected from
//           the execution of a computing task";
//   T     — "a complete set of end-user activities available to the grid
//           computing system".
#pragma once

#include <string>
#include <vector>

#include "wfl/case_description.hpp"
#include "wfl/data.hpp"
#include "wfl/service.hpp"

namespace ig::planner {

struct PlanningProblem {
  std::string name = "problem";
  wfl::DataSet initial_state;          ///< Sinit
  std::vector<wfl::GoalSpec> goals;    ///< G
  wfl::ServiceCatalogue catalogue;     ///< T

  /// Builds a problem from a case description plus the available services.
  static PlanningProblem from_case(const wfl::CaseDescription& case_description,
                                   wfl::ServiceCatalogue catalogue) {
    PlanningProblem problem;
    problem.name = case_description.name();
    problem.initial_state = case_description.initial_data();
    problem.goals = case_description.goals();
    problem.catalogue = std::move(catalogue);
    return problem;
  }
};

}  // namespace ig::planner
