# Empty compiler generated dependencies file for planner_ext_test.
# This may be replaced when dependencies are built.
