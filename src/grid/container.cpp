#include "grid/container.hpp"

#include <algorithm>

namespace ig::grid {

bool ApplicationContainer::unhost_service(std::string_view service_name) {
  auto it = std::find(hosted_services_.begin(), hosted_services_.end(), service_name);
  if (it == hosted_services_.end()) return false;
  hosted_services_.erase(it);
  return true;
}

bool ApplicationContainer::hosts(std::string_view service_name) const noexcept {
  return std::find(hosted_services_.begin(), hosted_services_.end(), service_name) !=
         hosted_services_.end();
}

}  // namespace ig::grid
