// CRC32C (Castagnoli) — the checksum that frames every durable record.
//
// Storage formats that must survive torn writes pair every record with a
// checksum strong enough to reject a partially-persisted tail; CRC32C is
// the de-facto choice (iSCSI, ext4, LevelDB's log format) because its
// polynomial detects all burst errors up to 32 bits and has hardware
// support on modern ISAs. This implementation is pure software —
// slicing-by-8 table lookup, ~1 byte/cycle — so the on-disk format is
// identical on every platform the reproduction builds on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ig::store {

/// CRC32C of `size` bytes starting at `data`, seeded with `seed` (pass the
/// previous return value to checksum a record in chunks). The returned
/// value is the finalized (post-inverted) CRC, as stored on disk.
std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed = 0) noexcept;

inline std::uint32_t crc32c(std::string_view bytes, std::uint32_t seed = 0) noexcept {
  return crc32c(bytes.data(), bytes.size(), seed);
}

}  // namespace ig::store
