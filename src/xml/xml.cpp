#include "xml/xml.hpp"

#include <cctype>
#include <charconv>
#include <cstdint>

namespace ig::xml {

namespace {

/// Encodes one Unicode code point as UTF-8.
void append_utf8(std::string& out, std::uint32_t code) {
  if (code < 0x80) {
    out += static_cast<char>(code);
  } else if (code < 0x800) {
    out += static_cast<char>(0xC0 | (code >> 6));
    out += static_cast<char>(0x80 | (code & 0x3F));
  } else if (code < 0x10000) {
    out += static_cast<char>(0xE0 | (code >> 12));
    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (code & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (code >> 18));
    out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (code & 0x3F));
  }
}

/// Decodes a numeric character reference body ("#10", "#x41") to a code
/// point; nullopt when malformed or outside the XML character range.
std::optional<std::uint32_t> decode_char_ref(std::string_view body) {
  body.remove_prefix(1);  // the '#'
  int base = 10;
  if (!body.empty() && (body.front() == 'x' || body.front() == 'X')) {
    base = 16;
    body.remove_prefix(1);
  }
  if (body.empty()) return std::nullopt;
  std::uint32_t code = 0;
  const char* last = body.data() + body.size();
  auto [ptr, ec] = std::from_chars(body.data(), last, code, base);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  if (code == 0 || code > 0x10FFFF) return std::nullopt;
  if (code >= 0xD800 && code <= 0xDFFF) return std::nullopt;  // surrogates
  // C0 controls other than tab/LF/CR are not XML characters: a document
  // containing &#1; was never well-formed, and decoding it would smuggle
  // into memory a byte the writer can no longer serialize.
  if (code < 0x20 && code != 0x09 && code != 0x0A && code != 0x0D) return std::nullopt;
  return code;
}

/// "0x%02X" without printf: escape() reports rejected control bytes.
std::string to_hex_byte(unsigned char byte) {
  static const char* digits = "0123456789ABCDEF";
  return {digits[byte >> 4], digits[byte & 0x0F]};
}

}  // namespace

// ---------------------------------------------------------------------------
// Element
// ---------------------------------------------------------------------------

void Element::set_attribute(std::string_view name, std::string_view value) {
  for (auto& attribute : attributes_) {
    if (attribute.name == name) {
      attribute.value = std::string(value);
      return;
    }
  }
  attributes_.push_back({std::string(name), std::string(value)});
}

std::optional<std::string> Element::attribute(std::string_view name) const {
  for (const auto& attribute : attributes_) {
    if (attribute.name == name) return attribute.value;
  }
  return std::nullopt;
}

std::string Element::attribute_or(std::string_view name, std::string_view fallback) const {
  auto value = attribute(name);
  return value ? *value : std::string(fallback);
}

bool Element::has_attribute(std::string_view name) const {
  return attribute(name).has_value();
}

Element& Element::add_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

Element& Element::add_child_text(std::string name, std::string_view text) {
  Element& child = add_child(std::move(name));
  child.set_text(std::string(text));
  return child;
}

const Element* Element::find_child(std::string_view name) const noexcept {
  for (const auto& child : children_) {
    if (child->name() == name) return child.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::find_children(std::string_view name) const {
  std::vector<const Element*> matches;
  for (const auto& child : children_) {
    if (child->name() == name) matches.push_back(child.get());
  }
  return matches;
}

std::string Element::child_text(std::string_view name) const {
  const Element* child = find_child(name);
  return child ? child->text() : std::string();
}

void Element::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                                 : std::string();
  out += pad;
  out += '<';
  out += name_;
  for (const auto& attribute : attributes_) {
    out += ' ';
    out += attribute.name;
    out += "=\"";
    out += escape(attribute.value);
    out += '"';
  }
  if (children_.empty() && text_.empty()) {
    out += "/>";
    if (pretty) out += '\n';
    return;
  }
  out += '>';
  if (children_.empty()) {
    out += escape(text_);
    out += "</";
    out += name_;
    out += '>';
    if (pretty) out += '\n';
    return;
  }
  if (pretty) out += '\n';
  // Interleave text runs with children in document order: a run whose
  // position is k precedes children_[k].
  std::size_t run = 0;
  const auto emit_run = [&](const TextRun& text_run) {
    if (pretty) out += std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ');
    out += escape(text_run.text);
    if (pretty) out += '\n';
  };
  for (std::size_t i = 0; i < children_.size(); ++i) {
    while (run < text_runs_.size() && text_runs_[run].position <= i) emit_run(text_runs_[run++]);
    children_[i]->write(out, indent, depth + 1);
  }
  while (run < text_runs_.size()) emit_run(text_runs_[run++]);
  out += pad;
  out += "</";
  out += name_;
  out += '>';
  if (pretty) out += '\n';
}

std::string Element::to_string(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

std::string Document::to_string(int indent) const {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  out += indent >= 0 ? "\n" : "";
  out += root_->to_string(indent);
  return out;
}

// ---------------------------------------------------------------------------
// Escaping
// ---------------------------------------------------------------------------

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: {
        // XML 1.0 has no representation for C0 control characters other
        // than tab/LF/CR — not even as character references. Passing them
        // through raw (the old behavior) produced documents whose parse
        // silently mangled the value; refusing here keeps the corruption
        // out of the archive. Binary payloads belong on the wire codec.
        const unsigned char byte = static_cast<unsigned char>(c);
        if (byte < 0x20 && c != '\t' && c != '\n' && c != '\r') {
          throw ParseError("control character 0x" + to_hex_byte(byte) +
                               " cannot be represented in XML 1.0",
                           i);
        }
        out += c;
      }
    }
  }
  return out;
}

std::string unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '&') {
      out += text[i];
      continue;
    }
    const std::size_t end = text.find(';', i);
    if (end == std::string_view::npos) throw ParseError("unterminated entity", i);
    const std::string_view entity = text.substr(i + 1, end - i - 1);
    if (entity == "amp") out += '&';
    else if (entity == "lt") out += '<';
    else if (entity == "gt") out += '>';
    else if (entity == "quot") out += '"';
    else if (entity == "apos") out += '\'';
    else if (!entity.empty() && entity.front() == '#') {
      const auto code = decode_char_ref(entity);
      if (!code.has_value())
        throw ParseError("bad character reference '&" + std::string(entity) + ";'", i);
      append_utf8(out, *code);
    } else {
      throw ParseError("unknown entity '" + std::string(entity) + "'", i);
    }
    i = end;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Document parse_document() {
    skip_prolog();
    auto root = parse_element();
    skip_misc();
    if (pos_ != input_.size()) throw ParseError("trailing content after root element", pos_);
    return Document(std::move(root));
  }

 private:
  [[noreturn]] void fail(const std::string& message) const { throw ParseError(message, pos_); }

  bool eof() const noexcept { return pos_ >= input_.size(); }
  char peek() const { return input_[pos_]; }

  bool starts(std::string_view prefix) const noexcept {
    return input_.size() - pos_ >= prefix.size() && input_.substr(pos_, prefix.size()) == prefix;
  }

  void expect(std::string_view token) {
    if (!starts(token)) fail("expected '" + std::string(token) + "'");
    pos_ += token.size();
  }

  void skip_whitespace() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  void skip_comment() {
    expect("<!--");
    const std::size_t end = input_.find("-->", pos_);
    if (end == std::string_view::npos) fail("unterminated comment");
    pos_ = end + 3;
  }

  void skip_prolog() {
    skip_whitespace();
    if (starts("<?xml")) {
      const std::size_t end = input_.find("?>", pos_);
      if (end == std::string_view::npos) fail("unterminated XML declaration");
      pos_ = end + 2;
    }
    skip_misc();
  }

  void skip_misc() {
    for (;;) {
      skip_whitespace();
      if (starts("<!--")) skip_comment();
      else return;
    }
  }

  static bool is_name_start(char c) noexcept {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool is_name_char(char c) noexcept {
    return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '.';
  }

  std::string parse_name() {
    if (eof() || !is_name_start(peek())) fail("expected name");
    const std::size_t start = pos_;
    while (!eof() && is_name_char(peek())) ++pos_;
    return std::string(input_.substr(start, pos_ - start));
  }

  std::string parse_attribute_value() {
    if (eof() || (peek() != '"' && peek() != '\'')) fail("expected quoted attribute value");
    const char quote = peek();
    ++pos_;
    const std::size_t start = pos_;
    while (!eof() && peek() != quote) ++pos_;
    if (eof()) fail("unterminated attribute value");
    const std::string value = unescape(input_.substr(start, pos_ - start));
    ++pos_;
    return value;
  }

  std::unique_ptr<Element> parse_element() {
    expect("<");
    auto element = std::make_unique<Element>(parse_name());
    for (;;) {
      skip_whitespace();
      if (eof()) fail("unterminated start tag");
      if (starts("/>")) {
        pos_ += 2;
        return element;
      }
      if (peek() == '>') {
        ++pos_;
        break;
      }
      const std::string name = parse_name();
      skip_whitespace();
      expect("=");
      skip_whitespace();
      element->set_attribute(name, parse_attribute_value());
    }
    // Content: text, comments, and child elements until the end tag.
    for (;;) {
      if (eof()) fail("unterminated element '" + element->name() + "'");
      if (starts("<!--")) {
        skip_comment();
        continue;
      }
      if (starts("</")) {
        pos_ += 2;
        const std::string name = parse_name();
        if (name != element->name())
          fail("mismatched end tag '" + name + "' for '" + element->name() + "'");
        skip_whitespace();
        expect(">");
        return element;
      }
      if (peek() == '<') {
        element->children_mutable().push_back(parse_element());
        continue;
      }
      const std::size_t start = pos_;
      while (!eof() && peek() != '<') ++pos_;
      const std::string raw = std::string(input_.substr(start, pos_ - start));
      // Whitespace-only runs between child elements are formatting noise.
      const std::string text = unescape(raw);
      bool all_space = true;
      for (char c : text) {
        if (!std::isspace(static_cast<unsigned char>(c))) {
          all_space = false;
          break;
        }
      }
      if (!all_space) element->append_text(text);
    }
  }

  std::string_view input_;
  std::size_t pos_ = 0;
};

}  // namespace

Document parse(std::string_view input) { return Parser(input).parse_document(); }

}  // namespace ig::xml
