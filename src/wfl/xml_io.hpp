// XML interchange for process and case descriptions.
//
// The coordination service archives process descriptions in the system
// knowledge base and ships case descriptions between services; both travel
// as XML documents in this format:
//
//   <process name="...">
//     <activity id="A1" name="BEGIN" kind="Begin" service="..." constraint="..."/>
//     <transition id="TR1" source="A1" destination="A2" guard="..."/>
//   </process>
//
//   <case id="..." name="..." process="...">
//     <data name="D1"><property name="Classification" ...>...</property></data>
//     <goal description="...">condition text</goal>
//     <constraint name="Cons1">condition text</constraint>
//     <result name="D12"/>
//   </case>
#pragma once

#include "wfl/case_description.hpp"
#include "wfl/process.hpp"
#include "xml/xml.hpp"

namespace ig::wfl {

xml::Document process_to_xml(const ProcessDescription& process);
ProcessDescription process_from_xml(const xml::Document& document);

xml::Document case_to_xml(const CaseDescription& case_description);
CaseDescription case_from_xml(const xml::Document& document);

/// DataSpec <-> XML element (shared with the services' message payloads).
void data_to_xml(const DataSpec& data, xml::Element& parent);
DataSpec data_from_xml(const xml::Element& element);

/// Whole data sets travel in agent message payloads as <dataset> documents.
std::string dataset_to_xml_string(const DataSet& data);
DataSet dataset_from_xml_string(const std::string& text);

std::string process_to_xml_string(const ProcessDescription& process);
ProcessDescription process_from_xml_string(const std::string& text);
std::string case_to_xml_string(const CaseDescription& case_description);
CaseDescription case_from_xml_string(const std::string& text);

}  // namespace ig::wfl
