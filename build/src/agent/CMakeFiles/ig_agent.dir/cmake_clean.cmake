file(REMOVE_RECURSE
  "CMakeFiles/ig_agent.dir/agent.cpp.o"
  "CMakeFiles/ig_agent.dir/agent.cpp.o.d"
  "CMakeFiles/ig_agent.dir/message.cpp.o"
  "CMakeFiles/ig_agent.dir/message.cpp.o.d"
  "CMakeFiles/ig_agent.dir/platform.cpp.o"
  "CMakeFiles/ig_agent.dir/platform.cpp.o.d"
  "CMakeFiles/ig_agent.dir/trace_render.cpp.o"
  "CMakeFiles/ig_agent.dir/trace_render.cpp.o.d"
  "libig_agent.a"
  "libig_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
