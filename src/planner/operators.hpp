// Genetic operators: initialization, crossover, mutation, selection
// (Sections 3.4.2, 3.4.3, 3.4.5).
#pragma once

#include <cstddef>
#include <vector>

#include "planner/evaluate.hpp"
#include "planner/plan_tree.hpp"
#include "util/rng.hpp"
#include "wfl/service.hpp"

namespace ig::planner {

/// How random plan trees are shaped (Section 3.4.2 leaves the distribution
/// open: "we generate an arbitrary tree structure for a plan of a given
/// size").
enum class InitStyle {
  Grow,    ///< free-form: arities and depths vary, terminals may appear early
  Full,    ///< bushy: controllers until the budget runs out, terminals at the frontier
  Ramped,  ///< GP's ramped half-and-half: alternate Grow and Full
};

/// Generates a random plan tree ("first ... an arbitrary tree structure for
/// a plan of a given size; second ... instantiate each node": internal nodes
/// get one of the four controller kinds, leaves get end-user activities).
/// The result has between 1 and `max_size` nodes.
PlanNode random_tree(util::Rng& rng, const wfl::ServiceCatalogue& catalogue,
                     std::size_t max_size, InitStyle style = InitStyle::Grow);

/// Result of a crossover attempt.
struct CrossoverResult {
  bool applied = false;  ///< false: rate said no, or a child exceeded Smax
  PlanNode first;
  PlanNode second;
};

/// Subtree crossover: picks a random node in each parent and swaps the
/// subtrees. "In case the size of a new tree exceeds Smax, crossover fails
/// and both parents are kept." The crossover_rate gate is applied inside.
CrossoverResult crossover(const PlanNode& parent_a, const PlanNode& parent_b, util::Rng& rng,
                          double crossover_rate, std::size_t smax);

/// Subtree-replacement mutation: every node is independently selected with
/// probability `mutation_rate`; a selected node's subtree is replaced by a
/// freshly generated random tree ("using the same method as plan
/// initialization", hence the style parameter). "If ... the new tree
/// exceeds the size limitation, mutation fails and we keep the original
/// tree." Returns true when the tree changed.
bool mutate(PlanNode& tree, util::Rng& rng, const wfl::ServiceCatalogue& catalogue,
            double mutation_rate, std::size_t smax, InitStyle style = InitStyle::Grow);

enum class SelectionScheme {
  Tournament,  ///< the paper's scheme: binary tournament with replacement
  Roulette,    ///< fitness-proportional (ablation A5)
};

/// Selects `count` indices into `fitnesses` forming the next generation.
std::vector<std::size_t> select(const std::vector<Fitness>& fitnesses, std::size_t count,
                                SelectionScheme scheme, util::Rng& rng,
                                std::size_t tournament_size = 2);

}  // namespace ig::planner
