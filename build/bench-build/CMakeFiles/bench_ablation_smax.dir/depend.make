# Empty dependencies file for bench_ablation_smax.
# This may be replaced when dependencies are built.
