#include "planner/simplify.hpp"

namespace ig::planner {

namespace {

/// Collapses controllers with exactly one child into that child (repeated
/// until stable); Sequential children splice into Sequential parents.
PlanNode normalize(PlanNode node) {
  for (auto& child : node.children) child = normalize(std::move(child));
  if (node.is_terminal()) return node;
  if (node.children.size() == 1 && node.kind != PlanNode::Kind::Iterative) {
    // A one-child sequential/concurrent/selective is just its child.
    return std::move(node.children.front());
  }
  if (node.kind == PlanNode::Kind::Sequential) {
    std::vector<PlanNode> flattened;
    flattened.reserve(node.children.size());
    for (auto& child : node.children) {
      if (child.kind == PlanNode::Kind::Sequential) {
        for (auto& nested : child.children) flattened.push_back(std::move(nested));
      } else {
        flattened.push_back(std::move(child));
      }
    }
    node.children = std::move(flattened);
    if (node.children.size() == 1) return std::move(node.children.front());
  }
  return node;
}

/// Builds every plan obtainable by deleting one child of one controller.
void collect_deletions(const PlanNode& root, const PlanNode& node,
                       std::vector<std::size_t>& path, std::vector<PlanNode>& out) {
  if (node.is_terminal()) return;
  if (node.children.size() >= 2) {
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      // Rebuild the root with child i of the node at `path` removed.
      PlanNode candidate = root;
      PlanNode* cursor = &candidate;
      for (const std::size_t step : path) cursor = &cursor->children[step];
      cursor->children.erase(cursor->children.begin() + static_cast<std::ptrdiff_t>(i));
      if (cursor->kind == PlanNode::Kind::Selective &&
          i < cursor->guards.size())
        cursor->guards.erase(cursor->guards.begin() + static_cast<std::ptrdiff_t>(i));
      out.push_back(normalize(std::move(candidate)));
    }
  }
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    path.push_back(i);
    collect_deletions(root, node.children[i], path, out);
    path.pop_back();
  }
}

}  // namespace

SimplifyResult simplify_plan(const PlanNode& plan, const PlanEvaluator& evaluator,
                             double tolerance) {
  SimplifyResult result;
  result.plan = normalize(plan);
  result.fitness = evaluator.evaluate(result.plan);
  ++result.evaluations;

  bool improved = true;
  while (improved) {
    improved = false;
    std::vector<PlanNode> candidates;
    std::vector<std::size_t> path;
    collect_deletions(result.plan, result.plan, path, candidates);
    for (auto& candidate : candidates) {
      if (check_structure(candidate) != "") continue;
      const Fitness fitness = evaluator.evaluate(candidate);
      ++result.evaluations;
      // Accept any removal that does not lose validity/goal quality. The
      // overall fitness can only rise when size falls (fr grows), so the
      // guard is on the fv/fg components.
      if (fitness.validity + tolerance < result.fitness.validity) continue;
      if (fitness.goal + tolerance < result.fitness.goal) continue;
      if (fitness.overall + tolerance < result.fitness.overall) continue;
      result.removed_nodes += result.plan.size() - candidate.size();
      result.plan = std::move(candidate);
      result.fitness = fitness;
      improved = true;
      break;  // restart enumeration on the smaller plan
    }
  }
  return result;
}

}  // namespace ig::planner
