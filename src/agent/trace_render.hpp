// ASCII sequence-diagram rendering of platform message traces.
//
// Turns the flat TraceRecord list into the lifeline diagrams the paper's
// Figures 2 and 3 draw by hand:
//
//   t=0.0010        cs ──planning-request──────────▶ ps
//   t=0.5012        ps ──planning-request──────────▶ cs   (INFORM)
//
// Used by the figure benches and the replanning demo to show message flows
// straight from the recorded execution.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "agent/platform.hpp"

namespace ig::agent {

struct TraceRenderOptions {
  /// Only records whose protocol is in this list are drawn (empty: all).
  std::vector<std::string> protocols;
  /// Only messages touching one of these agents are drawn (empty: all).
  std::vector<std::string> participants;
  std::size_t max_label_width = 28;
};

/// Renders an arrow-per-message listing, one line per delivered record.
std::string render_arrows(const std::deque<TraceRecord>& trace,
                          const TraceRenderOptions& options = {});

/// Renders a full lifeline diagram: a column per participating agent,
/// a row per message, arrows spanning sender to receiver.
std::string render_sequence_diagram(const std::deque<TraceRecord>& trace,
                                    const TraceRenderOptions& options = {});

}  // namespace ig::agent
