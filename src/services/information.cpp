#include "services/information.hpp"

#include <algorithm>

#include "services/protocol.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace ig::svc {

using agent::AclMessage;
using agent::Performative;

void InformationService::handle_message(const AclMessage& message) {
  if (message.protocol == protocols::kRegister) return handle_register(message);
  if (message.protocol == protocols::kDeregister) return handle_deregister(message);
  if (message.protocol == protocols::kQueryService) {
    // A reply from the parent (correlated by a pending forward) resolves a
    // delegated query; anything else is a fresh query.
    if (message.performative == Performative::Inform ||
        message.performative == Performative::Failure) {
      if (pending_.find(message.conversation_id) != pending_.end())
        return handle_parent_reply(message);
      return;  // stray reply, drop
    }
    return handle_query(message);
  }
  if (!should_bounce_unknown(message)) return;
  send(make_not_understood(message, "unknown protocol '" + message.protocol + "'"));
}

void InformationService::handle_register(const AclMessage& message) {
  const std::string type = message.param("type");
  const std::string provider = message.param("provider", message.sender);
  auto& providers = registry_[type];
  if (std::find(providers.begin(), providers.end(), provider) == providers.end())
    providers.push_back(provider);
  IG_LOG_DEBUG("is") << "registered " << provider << " as " << type;
  AclMessage reply = message.make_reply(Performative::Agree);
  reply.params["type"] = type;
  send(std::move(reply));
}

void InformationService::handle_deregister(const AclMessage& message) {
  const std::string type = message.param("type");
  const std::string provider = message.param("provider", message.sender);
  auto it = registry_.find(type);
  if (it != registry_.end()) {
    auto& providers = it->second;
    providers.erase(std::remove(providers.begin(), providers.end(), provider), providers.end());
  }
  send(message.make_reply(Performative::Agree));
}

void InformationService::handle_query(const AclMessage& message) {
  const std::string type = message.param("type");
  const std::vector<std::string> local = providers_of(type);
  if (local.empty() && !parent_.empty() && platform().has_agent(parent_)) {
    // DNS-style delegation: miss locally, ask the next level up.
    ++delegated_;
    const std::string forward_id =
        name() + "-fwd-" + std::to_string(next_forward_++);
    pending_[forward_id] = message;
    AclMessage forward;
    forward.performative = Performative::QueryRef;
    forward.receiver = parent_;
    forward.protocol = protocols::kQueryService;
    forward.conversation_id = forward_id;
    forward.params["type"] = type;
    send(std::move(forward));
    return;
  }
  AclMessage reply = message.make_reply(Performative::Inform);
  reply.params["type"] = type;
  reply.params["providers"] = util::join(local, ",");
  send(std::move(reply));
}

void InformationService::handle_parent_reply(const AclMessage& message) {
  auto it = pending_.find(message.conversation_id);
  if (it == pending_.end()) return;
  const AclMessage original = it->second;
  pending_.erase(it);
  AclMessage reply = original.make_reply(Performative::Inform);
  reply.params["type"] = message.param("type");
  reply.params["providers"] = message.param("providers");
  reply.params["resolved-by"] = message.sender;
  send(std::move(reply));
}

std::vector<std::string> InformationService::providers_of(const std::string& type) const {
  auto it = registry_.find(type);
  return it != registry_.end() ? it->second : std::vector<std::string>{};
}

std::size_t InformationService::registration_count() const noexcept {
  std::size_t total = 0;
  for (const auto& [type, providers] : registry_) total += providers.size();
  return total;
}

}  // namespace ig::svc
