#include "wfl/flowexpr.hpp"

#include <algorithm>
#include <cctype>

#include "util/strings.hpp"

namespace ig::wfl {

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

FlowExpr FlowExpr::activity(std::string name, std::string service) {
  FlowExpr expr;
  expr.kind = Kind::Activity;
  expr.service = service.empty() ? name : std::move(service);
  expr.name = std::move(name);
  return expr;
}

FlowExpr FlowExpr::sequence(std::vector<FlowExpr> elements) {
  // Canonical form: sequences never nest directly (a; (b; c) == a; b; c in
  // the grammar, which has no way to even write the nested form), and a
  // one-element sequence is its element.
  std::vector<FlowExpr> flattened;
  flattened.reserve(elements.size());
  for (auto& element : elements) {
    if (element.kind == Kind::Sequence) {
      for (auto& nested : element.children) flattened.push_back(std::move(nested));
    } else {
      flattened.push_back(std::move(element));
    }
  }
  if (flattened.size() == 1) return std::move(flattened.front());
  FlowExpr expr;
  expr.kind = Kind::Sequence;
  expr.children = std::move(flattened);
  return expr;
}

FlowExpr FlowExpr::concurrent(std::vector<FlowExpr> branches) {
  // A one-branch FORK is just its branch: Fork/Join pairs need fan-out to be
  // well-formed, so degenerate blocks collapse here.
  if (branches.size() == 1) return std::move(branches.front());
  FlowExpr expr;
  expr.kind = Kind::Concurrent;
  expr.children = std::move(branches);
  return expr;
}

FlowExpr FlowExpr::selective(std::vector<Condition> guards, std::vector<FlowExpr> branches) {
  if (guards.size() != branches.size())
    throw FlowParseError("selective: guard count must equal branch count");
  // A one-branch CHOICE always takes its only alternative; collapse it so
  // the lowered graph stays well-formed (Choice requires fan-out).
  if (branches.size() == 1) return std::move(branches.front());
  FlowExpr expr;
  expr.kind = Kind::Selective;
  expr.guards = std::move(guards);
  expr.children = std::move(branches);
  return expr;
}

FlowExpr FlowExpr::iterative(Condition continue_condition, FlowExpr body) {
  FlowExpr expr;
  expr.kind = Kind::Iterative;
  expr.guards.push_back(std::move(continue_condition));
  expr.children.push_back(std::move(body));
  return expr;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

std::size_t FlowExpr::activity_count() const noexcept {
  if (kind == Kind::Activity) return 1;
  std::size_t count = 0;
  for (const auto& child : children) count += child.activity_count();
  return count;
}

std::size_t FlowExpr::node_count() const noexcept {
  std::size_t count = 1;
  for (const auto& child : children) count += child.node_count();
  return count;
}

std::size_t FlowExpr::depth() const noexcept {
  std::size_t deepest = 0;
  for (const auto& child : children) deepest = std::max(deepest, child.depth());
  return deepest + 1;
}

namespace {
void collect_services(const FlowExpr& expr, std::vector<std::string>& out) {
  if (expr.kind == FlowExpr::Kind::Activity) {
    out.push_back(expr.service);
    return;
  }
  for (const auto& child : expr.children) collect_services(child, out);
}
}  // namespace

std::vector<std::string> FlowExpr::service_references() const {
  std::vector<std::string> out;
  collect_services(*this, out);
  return out;
}

bool FlowExpr::operator==(const FlowExpr& other) const {
  if (kind != other.kind || name != other.name || service != other.service) return false;
  if (children != other.children) return false;
  if (guards.size() != other.guards.size()) return false;
  for (std::size_t i = 0; i < guards.size(); ++i) {
    if (!(guards[i] == other.guards[i])) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

void render_element(const FlowExpr& expr, std::string& out);

void render_sequence_items(const FlowExpr& expr, std::string& out) {
  // A Sequence node renders its children joined by ';'. Any other node is a
  // single element.
  if (expr.kind == FlowExpr::Kind::Sequence) {
    for (std::size_t i = 0; i < expr.children.size(); ++i) {
      if (i > 0) out += "; ";
      render_element(expr.children[i], out);
    }
    return;
  }
  render_element(expr, out);
}

void render_element(const FlowExpr& expr, std::string& out) {
  switch (expr.kind) {
    case FlowExpr::Kind::Activity:
      out += expr.name;
      if (expr.service != expr.name) {
        out += '=';
        out += expr.service;
      }
      return;
    case FlowExpr::Kind::Sequence:
      // A nested sequence inside another sequence is flattened by the
      // factories; when it does appear (e.g. a fork branch), the caller
      // wraps it in braces, so render items inline here.
      render_sequence_items(expr, out);
      return;
    case FlowExpr::Kind::Concurrent:
      out += "{FORK ";
      for (const auto& branch : expr.children) {
        out += '{';
        render_sequence_items(branch, out);
        out += "} ";
      }
      out += "JOIN}";
      return;
    case FlowExpr::Kind::Selective:
      out += "{CHOICE ";
      for (std::size_t i = 0; i < expr.children.size(); ++i) {
        out += '{';
        out += expr.guards[i].to_string();
        out += "} {";
        render_sequence_items(expr.children[i], out);
        out += "} ";
      }
      out += "MERGE}";
      return;
    case FlowExpr::Kind::Iterative:
      out += "{ITERATIVE {COND ";
      out += expr.guards.front().to_string();
      out += "} {";
      render_sequence_items(expr.children.front(), out);
      out += "}}";
      return;
  }
}

const char* kind_label(FlowExpr::Kind kind) {
  switch (kind) {
    case FlowExpr::Kind::Activity: return "Activity";
    case FlowExpr::Kind::Sequence: return "Sequential";
    case FlowExpr::Kind::Concurrent: return "Concurrent";
    case FlowExpr::Kind::Selective: return "Selective";
    case FlowExpr::Kind::Iterative: return "Iterative";
  }
  return "?";
}

void render_tree(const FlowExpr& expr, std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  if (expr.kind == FlowExpr::Kind::Activity) {
    out += expr.name;
    if (expr.service != expr.name) out += " (" + expr.service + ")";
    out += '\n';
    return;
  }
  out += kind_label(expr.kind);
  if (expr.kind == FlowExpr::Kind::Iterative)
    out += " [while " + expr.guards.front().to_string() + "]";
  out += '\n';
  for (std::size_t i = 0; i < expr.children.size(); ++i) {
    if (expr.kind == FlowExpr::Kind::Selective) {
      out.append(static_cast<std::size_t>(depth + 1) * 2, ' ');
      out += "[when " + expr.guards[i].to_string() + "]\n";
      render_tree(expr.children[i], out, depth + 2);
    } else {
      render_tree(expr.children[i], out, depth + 1);
    }
  }
}

}  // namespace

std::string FlowExpr::to_text() const {
  std::string out = "BEGIN, ";
  render_sequence_items(*this, out);
  out += ", END";
  return out;
}

std::string FlowExpr::to_tree_string() const {
  std::string out;
  render_tree(*this, out, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class FlowParser {
 public:
  explicit FlowParser(std::string_view text) : text_(text) {}

  FlowExpr parse_workflow() {
    expect_keyword("BEGIN");
    expect(',');
    FlowExpr body = parse_sequence();
    expect(',');
    expect_keyword("END");
    skip_space();
    if (pos_ != text_.size()) fail("trailing input after END");
    return body;
  }

  /// Parses a bare sequence (no BEGIN/END wrapper).
  FlowExpr parse_bare() {
    FlowExpr body = parse_sequence();
    skip_space();
    if (pos_ != text_.size()) fail("trailing input");
    return body;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw FlowParseError(message + " at offset " + std::to_string(pos_));
  }

  void skip_space() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char peek() {
    skip_space();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool match_keyword(std::string_view keyword) {
    skip_space();
    if (text_.size() - pos_ < keyword.size()) return false;
    if (text_.substr(pos_, keyword.size()) != keyword) return false;
    const std::size_t end = pos_ + keyword.size();
    if (end < text_.size()) {
      const char next = text_[end];
      if (std::isalnum(static_cast<unsigned char>(next)) || next == '_') return false;
    }
    pos_ = end;
    return true;
  }

  void expect_keyword(std::string_view keyword) {
    if (!match_keyword(keyword)) fail("expected '" + std::string(keyword) + "'");
  }

  bool peek_keyword(std::string_view keyword) {
    const std::size_t saved = pos_;
    const bool matched = match_keyword(keyword);
    pos_ = saved;
    return matched;
  }

  std::string parse_name() {
    skip_space();
    if (pos_ >= text_.size()) fail("expected activity name");
    const char first = text_[pos_];
    if (!std::isalpha(static_cast<unsigned char>(first)) && first != '_')
      fail("expected activity name");
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-') ++pos_;
      else break;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  /// A sequence ends at ',', '}' or end-of-input.
  FlowExpr parse_sequence() {
    std::vector<FlowExpr> elements;
    elements.push_back(parse_element());
    while (peek() == ';') {
      ++pos_;
      elements.push_back(parse_element());
    }
    return FlowExpr::sequence(std::move(elements));
  }

  FlowExpr parse_element() {
    if (peek() == '{') return parse_block_element();
    std::string name = parse_name();
    std::string service;
    if (peek() == '=') {
      ++pos_;
      service = parse_name();
    }
    return FlowExpr::activity(std::move(name), std::move(service));
  }

  /// Reads the raw text of a brace-delimited condition block.
  std::string parse_condition_text() {
    expect('{');
    const std::size_t start = pos_;
    int depth = 1;
    while (pos_ < text_.size() && depth > 0) {
      if (text_[pos_] == '{') ++depth;
      else if (text_[pos_] == '}') --depth;
      if (depth > 0) ++pos_;
    }
    if (depth != 0) fail("unterminated condition block");
    const std::string inner(text_.substr(start, pos_ - start));
    ++pos_;  // consume '}'
    return inner;
  }

  /// Parses "{ sequence? }" — an activity-set block; empty means no-op.
  FlowExpr parse_block() {
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return FlowExpr::sequence({});
    }
    FlowExpr body = parse_sequence();
    expect('}');
    return body;
  }

  FlowExpr parse_block_element() {
    expect('{');
    if (match_keyword("FORK")) {
      std::vector<FlowExpr> branches;
      while (peek() == '{') branches.push_back(parse_block());
      expect_keyword("JOIN");
      expect('}');
      if (branches.empty()) fail("FORK requires at least one branch");
      return FlowExpr::concurrent(std::move(branches));
    }
    if (match_keyword("CHOICE")) {
      std::vector<Condition> guards;
      std::vector<FlowExpr> branches;
      while (peek() == '{') {
        guards.push_back(Condition::parse(parse_condition_text()));
        branches.push_back(parse_block());
      }
      expect_keyword("MERGE");
      expect('}');
      if (branches.empty()) fail("CHOICE requires at least one guarded branch");
      return FlowExpr::selective(std::move(guards), std::move(branches));
    }
    if (match_keyword("ITERATIVE")) {
      expect('{');
      expect_keyword("COND");
      // Condition text runs to the matching close brace.
      const std::size_t start = pos_;
      int depth = 1;
      while (pos_ < text_.size() && depth > 0) {
        if (text_[pos_] == '{') ++depth;
        else if (text_[pos_] == '}') --depth;
        if (depth > 0) ++pos_;
      }
      if (depth != 0) fail("unterminated COND block");
      const std::string condition_text(text_.substr(start, pos_ - start));
      ++pos_;
      FlowExpr body = parse_block();
      expect('}');
      return FlowExpr::iterative(Condition::parse(condition_text), std::move(body));
    }
    fail("expected FORK, CHOICE or ITERATIVE");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

FlowExpr parse_flow(std::string_view text) {
  const std::string_view trimmed = util::trim(text);
  if (util::starts_with(trimmed, "BEGIN")) return FlowParser(trimmed).parse_workflow();
  return FlowParser(trimmed).parse_bare();
}

}  // namespace ig::wfl
