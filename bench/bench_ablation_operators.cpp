// Ablation A4 — crossover / mutation rate grid.
//
// Table 1 fixes crossover at 0.7 and (per-node) mutation at 0.001. The grid
// shows the planner is robust across a broad band: with a population of 200
// on this four-service problem even mutation-only or crossover-only search
// usually succeeds, but disabling both leaves pure selection over the
// initial population, which finds valid plans only by initialization luck.
#include <cstdio>

#include "gp_sweep.hpp"

using namespace ig;

int main() {
  const planner::PlanningProblem problem = bench::virolab_problem();
  const double crossover_rates[] = {0.0, 0.3, 0.7, 0.9};
  const double mutation_rates[] = {0.0, 0.001, 0.01, 0.05};
  constexpr int kRuns = 4;

  std::printf("A4: variation-operator grid (%d runs each; cell = optimal-runs, mean fitness)\n\n",
              kRuns);
  std::printf("%-12s", "cx \\ mut");
  for (const double mutation : mutation_rates) std::printf("%-16.3f", mutation);
  std::printf("\n");

  int paper_cell_optimal = 0;
  for (const double crossover : crossover_rates) {
    std::printf("%-12.1f", crossover);
    for (const double mutation : mutation_rates) {
      planner::GpConfig config;
      config.population_size = 100;
      config.generations = 15;
      config.crossover_rate = crossover;
      config.mutation_rate = mutation;
      const bench::SweepPoint point = bench::run_sweep_point(problem, config, kRuns);
      char cell[32];
      std::snprintf(cell, sizeof(cell), "%d/%d f=%.3f", point.optimal_runs, kRuns,
                    point.fitness.mean());
      std::printf("%-16s", cell);
      if (crossover == 0.7 && mutation == 0.001) paper_cell_optimal = point.optimal_runs;
    }
    std::printf("\n");
  }
  std::printf("\nexpected shape: the paper's cell (cx 0.7, mut 0.001) is optimal in every\n"
              "run; quality degrades toward the no-variation corner.\n");
  const bool ok = paper_cell_optimal == kRuns;
  std::printf("shape holds: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
