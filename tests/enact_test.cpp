// Tests for the synchronous abstract ATN machine (wfl/enact.hpp).
#include <gtest/gtest.h>

#include "services/environment.hpp"
#include "services/user_interface.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/kernels.hpp"
#include "virolab/workflow.hpp"
#include "wfl/enact.hpp"
#include "wfl/structure.hpp"

namespace ig::wfl {
namespace {

CaseDescription virolab_case() { return virolab::make_case_description(); }

/// Executor backed by the synthetic kernels (stateful convergence).
ActivityExecutor kernels_executor(virolab::SyntheticKernels& kernels,
                                  const ServiceCatalogue& catalogue) {
  return [&kernels, &catalogue](const Activity& activity,
                                const DataSet& state) -> std::optional<std::vector<DataSpec>> {
    const ServiceType* service = catalogue.find(activity.service_name);
    if (service == nullptr) return std::nullopt;
    auto bindings = service->bind_inputs(state);
    if (!bindings.has_value()) return std::nullopt;
    return kernels.execute(*service, *bindings, activity.output_data);
  };
}

TEST(SyncEnact, Figure10WithKernelsConvergesInTwoPasses) {
  const ProcessDescription process = virolab::make_fig10_process();
  const ServiceCatalogue catalogue = virolab::make_catalogue();
  virolab::SyntheticKernels kernels;
  const EnactmentResult result =
      enact(process, virolab_case(), kernels_executor(kernels, catalogue));
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_EQ(result.activities_executed, 12);  // 2 + 2 x 5
  EXPECT_DOUBLE_EQ(result.goal_satisfaction, 1.0);
  ASSERT_NE(result.final_data.find("D12"), nullptr);
  EXPECT_LE(result.final_data.find("D12")->get("Value").as_number(), 8.0);
  EXPECT_EQ(kernels.refinement_passes(), 2u);
}

TEST(SyncEnact, Figure10WithDeclarativeExecutorExitsLoopAfterOnePass) {
  // The declarative executor produces a Resolution File without a Value
  // property, so Cons1 ("Value > 8") is immediately false: one loop pass.
  const ProcessDescription process = virolab::make_fig10_process();
  const ServiceCatalogue catalogue = virolab::make_catalogue();
  const EnactmentResult result =
      enact(process, virolab_case(), make_catalogue_executor(catalogue));
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_EQ(result.activities_executed, 7);  // 2 + 1 x 5
}

TEST(SyncEnact, ForkJoinExecutesAllBranchesOnce) {
  const ProcessDescription process = lower_to_process(
      parse_flow("BEGIN, POD; P3DR1=P3DR; {FORK {P3DR2=P3DR} {P3DR3=P3DR} JOIN}; PSF, END"),
      "forky");
  const ServiceCatalogue catalogue = virolab::make_catalogue();
  const EnactmentResult result =
      enact(process, virolab_case(), make_catalogue_executor(catalogue));
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_EQ(result.activities_executed, 5);
  // Every end-user activity appears exactly once in the trace.
  int executions = 0;
  for (const auto& step : result.trace) {
    if (step.executed) ++executions;
  }
  EXPECT_EQ(executions, 5);
}

TEST(SyncEnact, ExecutorFailureFailsTheEnactment) {
  const ProcessDescription process =
      lower_to_process(parse_flow("BEGIN, POD, END"), "failing");
  ActivityExecutor failing = [](const Activity&, const DataSet&) {
    return std::optional<std::vector<DataSpec>>{};
  };
  const EnactmentResult result = enact(process, virolab_case(), failing);
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.error.find("failed"), std::string::npos);
  ASSERT_FALSE(result.trace.empty());
  EXPECT_TRUE(result.trace.back().failed);
}

TEST(SyncEnact, InvalidProcessRejected) {
  ProcessDescription broken("broken");
  broken.add_flow_control("B", ActivityKind::Begin);
  const EnactmentResult result =
      enact(broken, virolab_case(), make_catalogue_executor(virolab::make_catalogue()));
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.error.find("invalid process"), std::string::npos);
}

TEST(SyncEnact, ReachingEndWithoutGoalIsNotSuccess) {
  // POD alone does not produce a resolution file.
  const ProcessDescription process = lower_to_process(parse_flow("BEGIN, POD, END"), "short");
  const EnactmentResult result =
      enact(process, virolab_case(), make_catalogue_executor(virolab::make_catalogue()));
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.activities_executed, 1);
  EXPECT_DOUBLE_EQ(result.goal_satisfaction, 0.0);
}

TEST(SyncEnact, TrivialLoopGuardStopsAtGuardrail) {
  const ProcessDescription process = lower_to_process(
      parse_flow("BEGIN, POD; P3DR1=P3DR; {ITERATIVE {COND true} {P3DR2=P3DR}}; PSF, END"),
      "looper");
  EnactmentOptions options;
  options.max_loop_iterations = 3;
  const EnactmentResult result = enact(process, virolab_case(),
                                       make_catalogue_executor(virolab::make_catalogue()),
                                       options);
  ASSERT_TRUE(result.success) << result.error;
  // POD + P3DR1 + 3 loop iterations of P3DR2 + PSF.
  EXPECT_EQ(result.activities_executed, 6);
}

TEST(SyncEnact, SelectiveTakesFirstSatisfiedGuard) {
  const ProcessDescription process = lower_to_process(
      parse_flow("BEGIN, POD; P3DR1=P3DR; P3DR2=P3DR; "
                 "{CHOICE {D7.Classification = \"2D Image\"} {PSF} "
                 "{D7.Classification = \"text\"} {POR} MERGE}, END"),
      "choosy");
  const ServiceCatalogue catalogue = virolab::make_catalogue();
  const EnactmentResult result =
      enact(process, virolab_case(), make_catalogue_executor(catalogue));
  ASSERT_TRUE(result.success) << result.error;
  // PSF ran (guard 1 held); POR did not.
  bool ran_psf = false;
  bool ran_por = false;
  for (const auto& step : result.trace) {
    if (step.activity_name == "PSF" && step.executed) ran_psf = true;
    if (step.activity_name == "POR" && step.executed) ran_por = true;
  }
  EXPECT_TRUE(ran_psf);
  EXPECT_FALSE(ran_por);
}

TEST(SyncEnact, StepBudgetGuardsAgainstRunaways) {
  const ProcessDescription process = lower_to_process(
      parse_flow("BEGIN, {ITERATIVE {COND true} {POD}}, END"), "runaway");
  EnactmentOptions options;
  options.max_loop_iterations = 1000000;  // defeat the loop guardrail
  options.max_steps = 500;
  const EnactmentResult result = enact(process, virolab_case(),
                                       make_catalogue_executor(virolab::make_catalogue()),
                                       options);
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.error.find("step budget"), std::string::npos);
}

TEST(SyncEnact, TraceCoversEveryActivity) {
  const ProcessDescription process = virolab::make_fig10_process();
  const ServiceCatalogue catalogue = virolab::make_catalogue();
  const EnactmentResult result =
      enact(process, virolab_case(), make_catalogue_executor(catalogue));
  ASSERT_TRUE(result.success);
  // BEGIN and END appear; flow controls are recorded unexecuted.
  bool saw_begin = false;
  bool saw_end = false;
  for (const auto& step : result.trace) {
    if (step.activity_name == "BEGIN") saw_begin = true;
    if (step.activity_name == "END") saw_end = true;
    if (step.activity_name == "FORK") EXPECT_FALSE(step.executed);
  }
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
}

TEST(SyncEnact, AgreesWithAsynchronousCoordinationService) {
  // Differential check: the synchronous machine with the kernels executor
  // and the agent-based coordination service must execute the same number
  // of activities and converge to the same resolution on Figure 10.
  const ProcessDescription process = virolab::make_fig10_process();
  const ServiceCatalogue catalogue = virolab::make_catalogue();

  virolab::SyntheticKernels sync_kernels;
  const EnactmentResult sync_result =
      enact(process, virolab_case(), kernels_executor(sync_kernels, catalogue));
  ASSERT_TRUE(sync_result.success) << sync_result.error;

  svc::EnvironmentOptions options;
  options.topology.domains = 2;
  options.topology.nodes_per_domain = 2;
  options.seed = 123;
  auto environment = svc::make_environment(options);
  auto& ui = environment->platform().spawn<svc::UserInterfaceAgent>("ui");
  ui.submit_process(process, virolab_case());
  environment->run();
  ASSERT_TRUE(ui.finished());
  ASSERT_TRUE(ui.outcome().success) << ui.outcome().error;

  EXPECT_EQ(ui.outcome().activities_executed, sync_result.activities_executed);
  const DataSpec* sync_d12 = sync_result.final_data.find("D12");
  const DataSpec* async_d12 = ui.outcome().final_data.find("D12");
  ASSERT_NE(sync_d12, nullptr);
  ASSERT_NE(async_d12, nullptr);
  EXPECT_DOUBLE_EQ(sync_d12->get("Value").as_number(),
                   async_d12->get("Value").as_number());
}

TEST(SyncEnact, CatalogueExecutorNamesOutputsFromActivity) {
  const ProcessDescription process = virolab::make_fig10_process();
  const ServiceCatalogue catalogue = virolab::make_catalogue();
  const EnactmentResult result =
      enact(process, virolab_case(), make_catalogue_executor(catalogue));
  ASSERT_TRUE(result.success);
  EXPECT_NE(result.final_data.find("D8"), nullptr);   // POD/POR output
  EXPECT_NE(result.final_data.find("D12"), nullptr);  // PSF output
}

}  // namespace
}  // namespace ig::wfl
