# Empty dependencies file for ig_wfl.
# This may be replaced when dependencies are built.
