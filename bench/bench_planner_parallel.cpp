// Parallel planning engine: serial-vs-parallel speedup, fitness-memo hit
// rate, and a bitwise determinism check across thread counts.
//
// Three configurations of the Table 1 virolab experiment:
//
//   serial/no-memo   threads=1, memoize=false  (the pre-engine baseline)
//   serial           threads=1, memoize=true
//   parallel         threads=4 (or hardware_concurrency if smaller than 4
//                    there is nothing to win; the bench still verifies
//                    determinism and reports the measured ratio)
//
// Pass criteria: parallel results are bitwise-identical to serial for every
// seed, and the memo reports hits (elites/clones are being skipped). The
// >= 2x speedup claim is asserted only when the machine actually has >= 4
// hardware threads; on smaller machines the ratio is reported as
// informational.
#include <cstdio>

#include "bench_json.hpp"
#include "gp_sweep.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

using namespace ig;

namespace {

struct Measurement {
  double seconds = 0.0;
  double mean_fitness = 0.0;
  std::size_t evaluations = 0;
  std::size_t memo_hits = 0;
  std::vector<planner::GpResult> results;
};

Measurement measure(const planner::PlanningProblem& problem, std::size_t threads, bool memoize,
                    int runs) {
  Measurement m;
  util::Stopwatch watch;
  for (int run = 0; run < runs; ++run) {
    planner::GpConfig config;  // Table 1 defaults: pop 200, 20 generations
    config.seed = 100 + static_cast<std::uint64_t>(run);
    config.threads = threads;
    config.evaluation.memoize = memoize;
    m.results.push_back(planner::run_gp(problem, config));
  }
  m.seconds = watch.elapsed_seconds();
  for (const planner::GpResult& result : m.results) {
    m.mean_fitness += result.best_fitness.overall / runs;
    m.evaluations += result.evaluations;
    m.memo_hits += result.memo_hits;
  }
  return m;
}

bool identical(const planner::GpResult& a, const planner::GpResult& b) {
  if (!(a.best_plan == b.best_plan)) return false;
  if (a.best_fitness.overall != b.best_fitness.overall) return false;
  if (a.evaluations != b.evaluations) return false;
  if (a.history.size() != b.history.size()) return false;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    if (a.history[i].best_fitness != b.history[i].best_fitness ||
        a.history[i].mean_fitness != b.history[i].mean_fitness ||
        a.history[i].best_size != b.history[i].best_size)
      return false;
  }
  return true;
}

}  // namespace

int main() {
  const planner::PlanningProblem problem = bench::virolab_problem();
  const std::size_t hardware = util::ThreadPool::hardware_threads();
  const std::size_t parallel_threads = 4;
  constexpr int kRuns = 3;

  std::printf("Parallel GP planning engine, virolab problem, Table 1 parameters, %d runs\n",
              kRuns);
  std::printf("hardware threads: %zu\n\n", hardware);

  const Measurement baseline = measure(problem, 1, false, kRuns);
  const Measurement serial = measure(problem, 1, true, kRuns);
  const Measurement parallel = measure(problem, parallel_threads, true, kRuns);

  const double memo_speedup = baseline.seconds / serial.seconds;
  const double thread_speedup = serial.seconds / parallel.seconds;
  const double hit_rate =
      serial.evaluations > 0
          ? static_cast<double>(serial.memo_hits) / static_cast<double>(serial.evaluations)
          : 0.0;

  std::printf("%-22s %-9s %-12s %-12s %s\n", "configuration", "time(s)", "evals", "memo-hits",
              "mean-fitness");
  std::printf("%-22s %-9.2f %-12zu %-12zu %.4f\n", "serial, no memo", baseline.seconds,
              baseline.evaluations, baseline.memo_hits, baseline.mean_fitness);
  std::printf("%-22s %-9.2f %-12zu %-12zu %.4f\n", "serial (threads=1)", serial.seconds,
              serial.evaluations, serial.memo_hits, serial.mean_fitness);
  std::printf("threads=%-14zu %-9.2f %-12zu %-12zu %.4f\n", parallel_threads, parallel.seconds,
              parallel.evaluations, parallel.memo_hits, parallel.mean_fitness);

  std::printf("\nmemo speedup (serial vs no-memo):    %.2fx\n", memo_speedup);
  std::printf("thread speedup (%zu threads vs 1):    %.2fx\n", parallel_threads, thread_speedup);
  std::printf("memo hit rate (serial):              %.1f%%\n", 100.0 * hit_rate);

  bool deterministic = true;
  for (int run = 0; run < kRuns; ++run)
    if (!identical(serial.results[run], parallel.results[run])) deterministic = false;
  std::printf("threads=%zu bitwise-identical to threads=1: %s\n", parallel_threads,
              deterministic ? "yes" : "NO");

  bench::JsonRecord record("bench_planner_parallel");
  record.add("runs", static_cast<std::size_t>(kRuns))
      .add("hardware_threads", hardware)
      .add("parallel_threads", parallel_threads)
      .add("serial_no_memo_s", baseline.seconds)
      .add("serial_s", serial.seconds)
      .add("parallel_s", parallel.seconds)
      .add("memo_speedup", memo_speedup)
      .add("thread_speedup", thread_speedup)
      .add("memo_hit_rate", hit_rate)
      .add("mean_fitness", serial.mean_fitness)
      .add("evals_per_sec_serial",
           serial.seconds > 0 ? serial.evaluations / serial.seconds : 0.0)
      .add("evals_per_sec_parallel",
           parallel.seconds > 0 ? parallel.evaluations / parallel.seconds : 0.0)
      .add("deterministic", std::string(deterministic ? "true" : "false"));
  record.append_to();

  bool ok = deterministic && hit_rate > 0.0;
  if (hardware >= parallel_threads) {
    const bool fast_enough = thread_speedup >= 2.0;
    std::printf("speedup target (>= 2x at %zu threads): %s\n", parallel_threads,
                fast_enough ? "met" : "NOT met");
    ok = ok && fast_enough;
  } else {
    std::printf("speedup target skipped: only %zu hardware thread(s) available\n", hardware);
  }
  std::printf("pass: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
