// Work-stealing job system — the one scheduler under the planner and the
// enactment engine.
//
// The repo used to have two disjoint parallelism islands: the GP planner's
// `util::ThreadPool` (a single shared queue whose per-index `parallel_for`
// cursor serialized cheap items) and the engine's shard-owns-thread model
// (which could not rebalance when one shard's cases were heavier than
// another's). The job system replaces both:
//
//   * Every worker owns a deque guarded by its own mutex. Local submission
//     and local pop touch only that mutex, so the common case never
//     contends; there is no global queue.
//   * Workers pop their own deque LIFO (newest first — the job most likely
//     to be cache-warm) and steal from victims FIFO (oldest first — the job
//     least likely to be warm anywhere), taking *half* the victim's deque in
//     one probe so a load imbalance is repaired in O(log n) steals instead
//     of one job at a time.
//   * `post`/`submit` accept an affinity hint: the job is pushed onto that
//     worker's deque and the worker is woken first, so a case's messages or
//     a GP individual's evaluations stay warm on one worker — but the hint
//     is advisory, and a busy target's backlog is fair game for thieves.
//   * Idle workers park on their own condition variable (no spinning); a
//     post wakes the target, and when the target is already busy with a
//     deepening backlog one parked neighbour is poked to come steal.
//   * `parallel_for` submits *chunked* ranges — contiguous index blocks —
//     instead of driving an atomic cursor one index at a time, which is the
//     contention fix that makes data-parallel loops over cheap items
//     (fitness-memo hits) actually pay for their scheduling.
//
// Determinism: the job system moves *where* work runs, never *what* it
// computes. Callers that key results by index and derive per-item RNG
// streams (util::derive_stream) get bitwise-identical results at any worker
// count; the planner and the engine both do.
//
// Observability: every worker keeps relaxed-atomic counters (executed,
// stolen, steal probes, parks); `stats()` aggregates them and
// `publish_metrics` pushes the absolute values into an obs::MetricsRegistry
// (the same publish pattern the platform and request trackers use), plus
// per-worker queue-depth gauges.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace ig::sched {

/// Aggregated scheduler counters, monotonic since construction.
struct JobStats {
  std::uint64_t submitted = 0;       ///< jobs accepted (post/submit/parallel_for chunks)
  std::uint64_t executed = 0;        ///< jobs run to completion
  std::uint64_t stolen = 0;          ///< jobs moved out of a victim's deque by steals
  std::uint64_t steal_attempts = 0;  ///< victim probes (locked a victim's deque)
  std::uint64_t steal_failures = 0;  ///< probes that found an empty deque
  std::uint64_t parks = 0;           ///< times a worker went to sleep
  std::uint64_t unparks = 0;         ///< times a sleeping worker was woken

  /// Fraction of executed jobs that ran on a worker other than the one they
  /// were queued on. 0 when nothing executed.
  double steal_rate() const noexcept {
    return executed > 0 ? static_cast<double>(stolen) / static_cast<double>(executed) : 0.0;
  }
};

class JobSystem {
 public:
  /// Affinity value meaning "any worker".
  static constexpr std::size_t kAnyWorker = static_cast<std::size_t>(-1);

  /// Spawns `workers` worker threads (at least one).
  explicit JobSystem(std::size_t workers);

  /// Drains every queued job — including jobs posted by running jobs during
  /// the drain — then joins the workers.
  ~JobSystem();

  JobSystem(const JobSystem&) = delete;
  JobSystem& operator=(const JobSystem&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Number of hardware threads, never 0 (falls back to 1 when unknown).
  static std::size_t hardware_threads() noexcept;

  /// Worker id of the calling thread when it is one of *this* system's
  /// workers executing a job, else kAnyWorker.
  std::size_t current_worker() const noexcept;

  /// Enqueues a fire-and-forget job. With an affinity hint the job lands on
  /// that worker's deque (hint modulo size()) and the worker is woken first;
  /// an idle neighbour may still steal it when the target is busy. Jobs must
  /// not let exceptions escape (escaping exceptions are swallowed and
  /// counted; use `submit` for a future that propagates them).
  void post(std::function<void()> job, std::size_t affinity = kAnyWorker);

  /// Enqueues one job and returns a future for its result (exceptions
  /// propagate through the future).
  template <typename Fn>
  auto submit(Fn&& fn, std::size_t affinity = kAnyWorker)
      -> std::future<std::invoke_result_t<Fn&>> {
    using Result = std::invoke_result_t<Fn&>;
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    post([task] { (*task)(); }, affinity);
    return future;
  }

  /// Runs `fn(index, worker)` for every index in [0, count) and blocks until
  /// all complete. The range is split into contiguous chunks (several per
  /// worker, never smaller than `min_chunk`) distributed block-wise across
  /// the deques; idle workers steal chunks, so uneven per-item cost still
  /// balances without a per-index cursor. `worker` is the id of the
  /// executing worker, always < size(). The first exception thrown by any
  /// invocation is rethrown here after the loop drains. Safe to call from
  /// inside a job: a worker-context caller helps execute queued jobs
  /// instead of blocking.
  void parallel_for(std::size_t count, const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t min_chunk = 1);

  /// Blocks until every accepted job has finished and no job is running.
  void wait_idle();

  JobStats stats() const;

  /// Current depth of each worker's deque (snapshot; advisory).
  std::vector<std::size_t> queue_depths() const;

  /// Publishes the scheduler counters into `registry` (absolute values via
  /// set_to — call again to refresh) plus per-worker `sched_queue_depth`
  /// gauges labelled {worker=i} merged with `labels`.
  void publish_metrics(obs::MetricsRegistry& registry, const obs::Labels& labels = {}) const;

 private:
  using Job = std::function<void()>;

  /// One worker: a deque behind its own mutex (which doubles as the park
  /// lock) and padded relaxed-atomic counters.
  struct alignas(64) Worker {
    std::mutex mutex;
    std::deque<Job> deque;       ///< back = local LIFO end, front = steal end
    std::condition_variable cv;  ///< parked here when idle
    bool parked = false;         ///< under mutex
    bool poked = false;          ///< "wake up and steal", under mutex
    bool exited = false;         ///< thread returned during drain; under mutex
    std::thread thread;
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
    std::atomic<std::uint64_t> steal_attempts{0};
    std::atomic<std::uint64_t> steal_failures{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> unparks{0};
  };

  void worker_loop(std::size_t id);
  bool try_pop_local(Worker& self, Job& job);
  bool try_steal(std::size_t thief, Job& job);
  void run_job(Worker& self, Job& job);
  void push_to(std::size_t target, Job job);
  void wake_one_thief(std::size_t except);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> next_worker_{0};  ///< round-robin for unhinted posts
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> swallowed_{0};  ///< post() jobs whose exception escaped

  std::atomic<std::size_t> pending_{0};  ///< accepted jobs not yet finished
  mutable std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
};

}  // namespace ig::sched
