// Figure 2 — The interactions between the planning service and the
// coordination service.
//
//   1. Planning task specification   CS -> PS
//   2. plan                          PS -> CS
//
// The harness triggers one planning episode through the coordination
// service (by enacting a case whose goals are initially unreachable with a
// deliberately hollow process, forcing a plan request) — then prints the
// recorded exchange and checks both arrows are present.
#include <cstdio>
#include <string>

#include "services/environment.hpp"
#include "services/protocol.hpp"
#include "virolab/catalogue.hpp"
#include "wfl/structure.hpp"
#include "wfl/xml_io.hpp"

using namespace ig;
namespace names = svc::names;
namespace protocols = svc::protocols;

namespace {

/// UI agent issuing a standard planning request (the Figure 2 scenario).
class Requester : public agent::Agent {
 public:
  using Agent::Agent;
  void on_start() override {
    agent::AclMessage request;
    request.performative = agent::Performative::Request;
    request.receiver = names::kCoordination;
    request.protocol = protocols::kEnactCase;
    // A process that finishes immediately without producing the goal data:
    // the coordination service reaches End, sees the unmet goal, and sends
    // the planning task specification to the planning service (arrow 1).
    request.content = wfl::process_to_xml_string(
        wfl::lower_to_process(wfl::parse_flow("BEGIN, POD, END"), "hollow"));
    request.params["case-xml"] = wfl::case_to_xml_string(virolab::make_case_description());
    send(std::move(request));
  }
  void handle_message(const agent::AclMessage& message) override {
    if (message.protocol == protocols::kCaseCompleted) outcome = message;
  }
  agent::AclMessage outcome;
};

}  // namespace

int main() {
  svc::EnvironmentOptions options;
  options.tracing = true;
  options.gp.population_size = 100;
  options.gp.generations = 15;
  auto environment = svc::make_environment(options);
  environment->platform().clear_trace();
  auto& requester = environment->platform().spawn<Requester>("ui");
  environment->run();

  std::printf("Figure 2: the planning service <-> coordination service exchange\n\n");
  bool saw_specification = false;
  bool saw_plan = false;
  for (const auto& record : environment->platform().trace()) {
    const auto& message = record.message;
    const bool is_request = message.protocol == protocols::kReplanRequest ||
                            message.protocol == protocols::kPlanRequest;
    if (!is_request) continue;
    if (message.receiver == names::kPlanning &&
        message.performative == agent::Performative::Request) {
      std::printf("t=%8.4f  1. Planning task specification   %s\n", record.delivered_at,
                  message.to_display_string().c_str());
      saw_specification = true;
    }
    if (message.sender == names::kPlanning &&
        message.performative == agent::Performative::Inform) {
      std::printf("t=%8.4f  2. plan                           %s  (plan=%s fitness=%s)\n",
                  record.delivered_at, message.to_display_string().c_str(),
                  message.param("plan").c_str(), message.param("fitness").c_str());
      saw_plan = true;
    }
  }

  std::printf("\ncase outcome: success=%s after %s re-plan(s)\n",
              requester.outcome.param("success").c_str(),
              requester.outcome.param("replans").c_str());
  const bool ok = saw_specification && saw_plan &&
                  requester.outcome.param("success") == "true";
  std::printf("figure 2 exchange reproduced: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
