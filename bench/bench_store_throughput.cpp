// Durable store throughput and recovery cost (DESIGN.md §11, EXPERIMENTS A19).
//
// Two sweeps over the mmap-backed WAL:
//   * append throughput per SyncMode — kNone (no fsync), kCommit with the
//     whole batch under one commit() (the group-commit sweet spot), kCommit
//     with a commit() per record (worst case), and kAlways;
//   * cold-start recovery time as the journal grows, with and without a
//     snapshot bounding the replay.
//
// Appends one JSON Lines record per point to BENCH_store.json.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "store/storage_engine.hpp"
#include "util/stopwatch.hpp"

using namespace ig;

namespace {

constexpr const char* kJsonPath = "BENCH_store.json";
constexpr std::size_t kPayloadBytes = 128;

std::string bench_dir(const char* tag) {
  static std::uint64_t counter = 0;
  return "bench_store_data/" + std::string(tag) + "-" + std::to_string(counter++);
}

void wipe(const std::string& dir) { std::system(("rm -rf '" + dir + "'").c_str()); }

std::string make_payload(std::mt19937_64& rng) {
  std::string payload(kPayloadBytes, '\0');
  for (char& c : payload) c = static_cast<char>('a' + rng() % 26);
  return payload;
}

struct AppendPoint {
  const char* label;
  store::SyncMode sync;
  bool commit_each;
};

void run_append_sweep(std::size_t records) {
  std::printf("append throughput (%zu records x %zu B payload)\n", records, kPayloadBytes);
  std::printf("  %-18s %12s %12s %10s\n", "mode", "appends/s", "MB/s", "fsyncs");
  const AppendPoint points[] = {
      {"none", store::SyncMode::kNone, false},
      {"commit-batched", store::SyncMode::kCommit, false},
      {"commit-each", store::SyncMode::kCommit, true},
      {"always", store::SyncMode::kAlways, false},
  };
  for (const AppendPoint& point : points) {
    const std::string dir = bench_dir(point.label);
    wipe(dir);
    store::Options options;
    options.data_dir = dir;
    options.snapshot_interval = 0;  // measure the raw WAL, not snapshotting
    options.sync = point.sync;
    std::mt19937_64 rng(2004);
    util::Stopwatch watch;
    {
      store::StorageEngine engine(options);
      for (std::size_t i = 0; i < records; ++i) {
        engine.append_event("bench", make_payload(rng));
        if (point.commit_each) engine.commit();
      }
      engine.commit();
      const double seconds = watch.elapsed_seconds();
      const store::StoreStats stats = engine.stats();
      const double per_second = static_cast<double>(records) / seconds;
      const double mb_per_second =
          static_cast<double>(stats.wal.bytes) / seconds / (1024.0 * 1024.0);
      std::printf("  %-18s %12.0f %12.2f %10llu\n", point.label, per_second, mb_per_second,
                  static_cast<unsigned long long>(stats.wal.fsyncs));
      bench::JsonRecord record("bench_store_throughput");
      record.add("sweep", std::string("append"));
      record.add("mode", std::string(point.label));
      record.add("records", records);
      record.add("payload_bytes", kPayloadBytes);
      record.add("appends_per_second", per_second);
      record.add("mb_per_second", mb_per_second);
      record.add("fsyncs", static_cast<std::size_t>(stats.wal.fsyncs));
      record.add("group_commits", static_cast<std::size_t>(stats.wal.group_commits));
      record.append_to(kJsonPath);
    }
    wipe(dir);
  }
}

void run_group_window_sweep(std::size_t records) {
  // Satellite measurement: sequential per-thread commits (the durable
  // engine's shard pattern) with and without the commit-leader linger
  // window. The interesting column is commits/fsync — the window turns
  // one-barrier-per-commit into one barrier per window.
  constexpr std::size_t kThreads = 4;
  std::printf("\ngroup-commit window (%zu threads, commit per record)\n", kThreads);
  std::printf("  %-12s %12s %10s %14s %14s\n", "window_us", "appends/s", "fsyncs",
              "group_commits", "commits/fsync");
  for (const std::uint32_t window_us : {0u, 200u, 2000u}) {
    const std::string dir = bench_dir("window");
    wipe(dir);
    store::Options options;
    options.data_dir = dir;
    options.snapshot_interval = 0;
    options.sync = store::SyncMode::kCommit;
    options.group_window_us = window_us;
    util::Stopwatch watch;
    std::uint64_t fsyncs = 0;
    std::uint64_t group_commits = 0;
    double seconds = 0.0;
    {
      store::StorageEngine engine(options);
      std::vector<std::thread> threads;
      const std::size_t per_thread = records / kThreads;
      for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&engine, per_thread, t] {
          std::mt19937_64 rng(2004 + t);
          for (std::size_t i = 0; i < per_thread; ++i) {
            engine.append_event("bench", make_payload(rng));
            engine.commit();
          }
        });
      }
      for (auto& thread : threads) thread.join();
      seconds = watch.elapsed_seconds();
      const store::StoreStats stats = engine.stats();
      fsyncs = stats.wal.fsyncs;
      group_commits = stats.wal.group_commits;
    }
    const std::size_t commits = records / kThreads * kThreads;
    const double per_second = static_cast<double>(commits) / seconds;
    const double commits_per_fsync =
        fsyncs == 0 ? 0.0 : static_cast<double>(commits) / static_cast<double>(fsyncs);
    std::printf("  %-12u %12.0f %10llu %14llu %14.1f\n", window_us, per_second,
                static_cast<unsigned long long>(fsyncs),
                static_cast<unsigned long long>(group_commits), commits_per_fsync);
    bench::JsonRecord record("bench_store_throughput");
    record.add("sweep", std::string("group_window"));
    record.add("window_us", static_cast<std::size_t>(window_us));
    record.add("threads", kThreads);
    record.add("commits", commits);
    record.add("appends_per_second", per_second);
    record.add("fsyncs", static_cast<std::size_t>(fsyncs));
    record.add("group_commits", static_cast<std::size_t>(group_commits));
    record.add("commits_per_fsync", commits_per_fsync);
    record.append_to(kJsonPath);
    wipe(dir);
  }
}

void run_recovery_sweep(std::size_t max_records) {
  std::printf("\ncold-start recovery (kv puts, SyncMode::kNone while seeding)\n");
  std::printf("  %-10s %-10s %12s %14s\n", "records", "snapshot", "recovery_ms",
              "replayed");
  for (std::size_t records = 1000; records <= max_records; records *= 4) {
    for (const bool snapshotted : {false, true}) {
      const std::string dir = bench_dir(snapshotted ? "recover-snap" : "recover-wal");
      wipe(dir);
      store::Options options;
      options.data_dir = dir;
      options.snapshot_interval = 0;
      options.sync = store::SyncMode::kNone;  // seeding speed is not the subject
      std::mt19937_64 rng(records);
      {
        store::StorageEngine seed(options);
        for (std::size_t i = 0; i < records; ++i)
          seed.put("bench/key-" + std::to_string(i % (records / 2 + 1)),
                   make_payload(rng));
        seed.commit();
        if (snapshotted) seed.snapshot();
      }
      util::Stopwatch watch;
      store::StorageEngine reopened(options);
      const double recovery_ms = watch.elapsed_ms();
      const store::StoreStats stats = reopened.stats();
      std::printf("  %-10zu %-10s %12.2f %14llu\n", records, snapshotted ? "yes" : "no",
                  recovery_ms, static_cast<unsigned long long>(stats.replayed_records));
      bench::JsonRecord record("bench_store_throughput");
      record.add("sweep", std::string("recovery"));
      record.add("records", records);
      record.add("snapshotted", std::size_t{snapshotted ? 1u : 0u});
      record.add("recovery_ms", recovery_ms);
      record.add("replayed_records", static_cast<std::size_t>(stats.replayed_records));
      record.add("keys", static_cast<std::size_t>(stats.keys));
      record.append_to(kJsonPath);
      wipe(dir);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Default sizes finish in seconds on CI; pass a scale factor for real runs.
  std::size_t scale = 1;
  if (argc > 1) scale = static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));
  if (scale == 0) scale = 1;
  run_append_sweep(20000 * scale);
  run_group_window_sweep(2000 * scale);
  run_recovery_sweep(16000 * scale);
  wipe("bench_store_data");
  return 0;
}
