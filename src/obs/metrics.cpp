#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/stats.hpp"

namespace ig::obs {

namespace {

/// Registry key: "name{k=v,k=v}" — labels are part of instrument identity.
std::string render_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  if (labels.empty()) return key;
  key += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key += ',';
    key += labels[i].first;
    key += '=';
    key += labels[i].second;
  }
  key += '}';
  return key;
}

}  // namespace

// -- Histogram ----------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds, std::size_t sample_capacity)
    : bounds_(std::move(bounds)), capacity_(std::max<std::size_t>(1, sample_capacity)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
  ring_ = std::make_unique<std::atomic<double>[]>(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) ring_[i].store(0.0);
}

void Histogram::observe(double value) noexcept {
  const std::size_t bucket =
      static_cast<std::size_t>(std::upper_bound(bounds_.begin(), bounds_.end(), value) -
                               bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  const std::uint64_t sequence = count_.fetch_add(1, std::memory_order_acq_rel);
  ring_[sequence % capacity_].store(value, std::memory_order_release);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot view;
  // Read the count first: samples published before this load are visible in
  // the ring (release store above), so the view is at worst a few in-flight
  // observations behind, never torn.
  view.count = count_.load(std::memory_order_acquire);
  view.sum = sum_.load(std::memory_order_relaxed);
  view.bounds = bounds_;
  view.buckets.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    view.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  const std::size_t retained = static_cast<std::size_t>(
      std::min<std::uint64_t>(view.count, capacity_));
  view.samples.reserve(retained);
  for (std::size_t i = 0; i < retained; ++i)
    view.samples.push_back(ring_[i].load(std::memory_order_acquire));
  std::sort(view.samples.begin(), view.samples.end());
  return view;
}

double HistogramSnapshot::quantile(double q) const {
  return util::quantile_sorted(samples, q);
}

std::vector<double> HistogramSnapshot::quantiles(const std::vector<double>& qs) const {
  std::vector<double> out;
  out.reserve(qs.size());
  for (const double q : qs) out.push_back(util::quantile_sorted(samples, q));
  return out;
}

double HistogramSnapshot::mean() const {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  return sum / static_cast<double>(count);
}

std::vector<double> default_latency_buckets() {
  return {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
          1.0,   2.5,    5.0,   10.0, 30.0,  60.0};
}

// -- registry -----------------------------------------------------------------

const char* to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

MetricsRegistry::Entry& MetricsRegistry::entry_locked(const std::string& name,
                                                      const Labels& labels,
                                                      MetricKind kind) {
  const std::string key = render_key(name, labels);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.kind != kind)
      throw std::invalid_argument("metric '" + key + "' already registered as " +
                                  to_string(it->second.kind));
    return it->second;
  }
  Entry& entry = entries_[key];
  entry.name = name;
  entry.labels = labels;
  entry.kind = kind;
  return entry;
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entry_locked(name, labels, MetricKind::Counter);
  if (entry.counter == nullptr) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entry_locked(name, labels, MetricKind::Gauge);
  if (entry.gauge == nullptr) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds,
                                      const Labels& labels, std::size_t sample_capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entry_locked(name, labels, MetricKind::Histogram);
  if (entry.histogram == nullptr)
    entry.histogram = std::make_unique<Histogram>(std::move(bounds), sample_capacity);
  return *entry.histogram;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot view;
  view.points.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricPoint point;
    point.name = entry.name;
    point.labels = entry.labels;
    point.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::Counter:
        point.value = static_cast<double>(entry.counter->value());
        break;
      case MetricKind::Gauge:
        point.value = entry.gauge->value();
        break;
      case MetricKind::Histogram:
        point.histogram = entry.histogram->snapshot();
        point.value = point.histogram.sum;
        break;
    }
    view.points.push_back(std::move(point));
  }
  return view;
}

const MetricPoint* RegistrySnapshot::find(const std::string& name, const Labels& labels) const {
  for (const auto& point : points) {
    if (point.name == name && point.labels == labels) return &point;
  }
  return nullptr;
}

}  // namespace ig::obs
