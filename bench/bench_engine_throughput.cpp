// Engine throughput — sharded enactment of the virus case-study workload.
//
// Sweeps the shard count at a fixed offered load (every shard re-enacts the
// fig10 virus-reconstruction case) and reports completed-cases/sec, latency
// percentiles, and per-shard utilization. A second, fault-injected point
// pins shard 0 at 100% dispatch failure and shows the engine's
// checkpoint/restore retry completing every submitted case anyway.
//
// Appends one JSON Lines record per configuration to BENCH_engine.json.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "engine/engine.hpp"
#include "obs/metrics.hpp"
#include "util/stopwatch.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"

using namespace ig;

namespace {

struct Point {
  std::size_t shards = 0;
  std::size_t workers = 0;  ///< job-system workers under the shard streams
  std::size_t cases = 0;
  double wall_seconds = 0.0;
  double cases_per_second = 0.0;
  engine::EngineMetrics metrics;
  double p50 = 0.0;  ///< from the registry's latency histogram
  double p99 = 0.0;
};

// Real wall-clock latency per kernel execution: stands in for waiting on
// the actual EM reconstruction codes (a fig10 case runs ~12 executions).
// Concurrent shards overlap these waits — the throughput the front door
// exists to deliver.
constexpr double kKernelLatencySeconds = 0.010;

Point run_point(std::size_t shards, std::size_t cases, std::size_t tenants,
                std::vector<double> failure_floor, int max_case_retries,
                bool engine_recovery_only, bool traced = false, std::size_t workers = 0) {
  engine::EngineConfig config;
  config.shards = shards;
  config.workers = workers;  // 0 = one job-system worker per shard
  config.queue_capacity = cases + 8;
  config.max_case_retries = max_case_retries;
  config.shard_failure_floor = std::move(failure_floor);
  config.environment.topology.domains = 2;
  config.environment.topology.nodes_per_domain = 3;
  config.environment.kernels.execution_latency_seconds = kKernelLatencySeconds;
  if (engine_recovery_only) {
    // Fault point: cut the in-shard budgets to one dispatch retry so a
    // broken shard fails fast (its retry fails instantly too) and the
    // engine-level checkpoint/restore retry does the real recovery, while
    // the healthy shard can still absorb the topology's natural failures.
    config.environment.coordination.max_retries = 1;
    config.environment.coordination.max_replans = 0;
  }
  if (traced) config.environment.span_tracing = true;
  engine::EnactmentEngine engine(config);

  // Each case targets a slightly different resolution, so every submission
  // is a distinct planning problem: the plan memo (PR 1) cannot collapse
  // the sweep into one GP run per shard, and the bench measures real
  // plan-and-enact work per case — the load profile of a multi-user portal.
  util::Stopwatch watch;
  for (std::size_t i = 0; i < cases; ++i) {
    const double resolution = 8.0 - 0.04 * static_cast<double>(i);
    const std::string tenant = "tenant-" + std::to_string(i % tenants);
    engine.submit(virolab::make_fig10_process(resolution),
                  virolab::make_case_description(resolution), tenant);
  }
  engine.drain();

  Point point;
  point.shards = shards;
  point.workers = engine.worker_count();
  point.cases = cases;
  point.wall_seconds = watch.elapsed_seconds();
  point.metrics = engine.metrics();
  point.cases_per_second =
      point.wall_seconds > 0.0
          ? static_cast<double>(point.metrics.completed) / point.wall_seconds
          : 0.0;
  // Percentiles come straight off the exported histogram — the same numbers
  // a scrape of the registry would report (and, because the sample ring is
  // larger than the sweep, exactly what SampleSet used to compute).
  const obs::RegistrySnapshot registry = engine.registry().snapshot();
  if (const obs::MetricPoint* hist = registry.find("engine_case_latency_seconds")) {
    const std::vector<double> qs = hist->histogram.quantiles({50.0, 99.0});
    point.p50 = qs[0];
    point.p99 = qs[1];
  }
  return point;
}

void emit_record(const char* label, const Point& point) {
  bench::JsonRecord record("bench_engine_throughput");
  record.add("config", std::string(label));
  record.add("shards", point.shards);
  record.add("workers", point.workers);
  record.add("cases", point.cases);
  record.add("wall_seconds", point.wall_seconds);
  record.add("cases_per_second", point.cases_per_second);
  record.add("completed", point.metrics.completed);
  record.add("failed", point.metrics.failed);
  record.add("retried", point.metrics.retried);
  record.add("rejected", point.metrics.rejected);
  record.add("latency_p50", point.p50);
  record.add("latency_p99", point.p99);
  record.add("jobs_executed", point.metrics.jobs_executed);
  record.add("jobs_stolen", point.metrics.jobs_stolen);
  record.add("steal_rate", point.metrics.steal_rate);
  double utilization = 0.0;
  for (const auto& shard : point.metrics.shards) utilization += shard.utilization;
  if (!point.metrics.shards.empty())
    utilization /= static_cast<double>(point.metrics.shards.size());
  record.add("mean_shard_utilization", utilization);
  record.append_to("BENCH_engine.json");
}

void print_point(const Point& point) {
  double utilization = 0.0;
  for (const auto& shard : point.metrics.shards) utilization += shard.utilization;
  if (!point.metrics.shards.empty())
    utilization /= static_cast<double>(point.metrics.shards.size());
  std::printf("%-8zu %-8zu %-8zu %-10.2f %-12.2f %-10.2f %-8zu %-8zu %-6.2f %.1f%%\n",
              point.shards, point.workers, point.cases, point.wall_seconds,
              point.cases_per_second, point.p50, point.metrics.retried, point.metrics.failed,
              utilization, 100.0 * point.metrics.steal_rate);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  // Deep backlog: the queue stays several cases deep per shard even at the
  // widest sweep point, so the 8-shard point measures steady-state overlap
  // rather than queue-drain tail effects.
  const std::size_t cases = quick ? 16 : 48;
  const std::size_t tenants = 4;
  std::printf("Engine throughput: %zu fig10 cases, %zu tenants, %.0f ms kernel "
              "latency per execution, shard sweep\n\n",
              cases, tenants, kKernelLatencySeconds * 1000.0);
  std::printf("%-8s %-8s %-8s %-10s %-12s %-10s %-8s %-8s %-6s %s\n", "shards", "workers",
              "cases", "wall(s)", "cases/s", "p50(s)", "retried", "failed", "util", "steal");

  std::vector<Point> sweep;
  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const Point point = run_point(shards, cases, tenants, {}, /*max_case_retries=*/1,
                                  /*engine_recovery_only=*/false);
    print_point(point);
    emit_record("sweep", point);
    sweep.push_back(point);
  }

  const double speedup = sweep.front().cases_per_second > 0.0
                             ? sweep[2].cases_per_second / sweep.front().cases_per_second
                             : 0.0;
  const double deep_speedup =
      sweep[2].cases_per_second > 0.0
          ? sweep.back().cases_per_second / sweep[2].cases_per_second
          : 0.0;
  std::printf("\n1 -> 4 shard speedup: %.2fx (target >= 2x)\n", speedup);
  std::printf("4 -> 8 shard speedup under backlog: %.2fx (target >= 1.15x)\n", deep_speedup);

  // Workers sweep at a fixed 8-shard fleet: fewer job-system workers than
  // shards time-slice the pump streams via stealing; every case must still
  // complete, and the steal rate shows the rebalancing actually happening.
  std::printf("\n-- worker sweep at 8 shards (workers < shards time-slice via stealing) --\n");
  bool worker_sweep_ok = true;
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const Point point = run_point(8, cases, tenants, {}, /*max_case_retries=*/1,
                                  /*engine_recovery_only=*/false, /*traced=*/false, workers);
    print_point(point);
    emit_record("worker_sweep", point);
    worker_sweep_ok =
        worker_sweep_ok && point.metrics.completed == cases && point.metrics.failed == 0;
  }
  std::printf("every case completed at every worker count: %s\n",
              worker_sweep_ok ? "yes" : "NO");

  std::printf("\n-- fault injection: shard 0 at 100%% dispatch failure, retries on --\n");
  const Point fault = run_point(2, quick ? 6 : 12, tenants, {1.0, 0.0},
                                /*max_case_retries=*/3, /*engine_recovery_only=*/true);
  print_point(fault);
  emit_record("fault", fault);
  const bool fault_ok = fault.metrics.failed == 0 && fault.metrics.completed == fault.cases;
  std::printf("all cases completed despite faulty shard: %s (retried %zu)\n",
              fault_ok ? "yes" : "NO", fault.metrics.retried);

  // Tracing overhead: the same 2-shard point with span tracing on. Spans
  // are emitted per activity (orders of magnitude rarer than messages), so
  // the traced run must stay within a few percent of the plain one.
  std::printf("\n-- span tracing overhead (2 shards, tracing on) --\n");
  const Point plain = run_point(2, cases, tenants, {}, 1, false, /*traced=*/false);
  const Point traced = run_point(2, cases, tenants, {}, 1, false, /*traced=*/true);
  const double overhead = plain.wall_seconds > 0.0
                              ? (traced.wall_seconds - plain.wall_seconds) /
                                    plain.wall_seconds
                              : 0.0;
  std::printf("plain %.2fs, traced %.2fs, overhead %+.1f%% (target <= 5%%)\n",
              plain.wall_seconds, traced.wall_seconds, overhead * 100.0);
  bench::JsonRecord overhead_record("bench_engine_throughput");
  overhead_record.add("config", std::string("tracing_overhead"));
  overhead_record.add("plain_wall_seconds", plain.wall_seconds);
  overhead_record.add("traced_wall_seconds", traced.wall_seconds);
  overhead_record.add("overhead_fraction", overhead);
  overhead_record.append_to("BENCH_engine.json");

  const bool scaling_ok = speedup >= 2.0 && deep_speedup >= 1.15;
  std::printf("\nscaling target holds: %s\n", scaling_ok ? "yes" : "NO");
  return (scaling_ok && fault_ok && worker_sweep_ok) ? 0 : 1;
}
