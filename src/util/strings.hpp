// Small string helpers shared across the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ig::util {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char separator);

/// Splits on a separator and trims each field; empty fields are dropped.
std::vector<std::string> split_trimmed(std::string_view text, char separator);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view separator);

/// Case-sensitive prefix / suffix tests.
bool starts_with(std::string_view text, std::string_view prefix) noexcept;
bool ends_with(std::string_view text, std::string_view suffix) noexcept;

/// ASCII lower-casing.
std::string to_lower(std::string_view text);

/// True if `text` parses fully as a (possibly signed) decimal number.
bool is_number(std::string_view text) noexcept;

/// Formats a double with trailing-zero trimming ("1.5", "3", "0.25").
std::string format_number(double value, int max_decimals = 6);

}  // namespace ig::util
