file(REMOVE_RECURSE
  "CMakeFiles/virus_reconstruction.dir/virus_reconstruction.cpp.o"
  "CMakeFiles/virus_reconstruction.dir/virus_reconstruction.cpp.o.d"
  "virus_reconstruction"
  "virus_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virus_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
