file(REMOVE_RECURSE
  "../bench/bench_ablation_smax"
  "../bench/bench_ablation_smax.pdb"
  "CMakeFiles/bench_ablation_smax.dir/bench_ablation_smax.cpp.o"
  "CMakeFiles/bench_ablation_smax.dir/bench_ablation_smax.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_smax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
