// Application-container agents: the end-user service hosts.
//
// One agent fronts each grid ApplicationContainer. On start it registers
// with the information service and advertises its hosted service types to
// the brokerage service. It answers two protocols:
//
//   execute-activity   run a service on bound input data; replies INFORM
//                       with the produced data at the virtual completion
//                       time, or FAILURE (container down, precondition
//                       unmet, or injected execution failure);
//   query-executable   the re-planning probe of Figure 3 steps 6-7.
#pragma once

#include <string>

#include "agent/agent.hpp"
#include "grid/grid.hpp"
#include "virolab/kernels.hpp"
#include "wfl/service.hpp"

namespace ig::svc {

class ContainerAgent : public agent::Agent {
 public:
  /// `kernels` may be null: outputs then come from the services' declarative
  /// postconditions instead of the synthetic compute kernels.
  /// `heartbeat_period` > 0 makes the agent emit liveness heartbeats to the
  /// monitoring service at that spacing (as daemon events — they never keep
  /// the calendar alive on their own); 0 disables them.
  ContainerAgent(std::string name, grid::Grid& grid, grid::Simulation& sim,
                 grid::FailureInjector& injector, std::string container_id,
                 const wfl::ServiceCatalogue& catalogue, virolab::SyntheticKernels* kernels,
                 grid::SimTime heartbeat_period = 0.0)
      : Agent(std::move(name)),
        grid_(&grid),
        gsim_(&sim),
        injector_(&injector),
        container_id_(std::move(container_id)),
        catalogue_(&catalogue),
        kernels_(kernels),
        heartbeat_period_(heartbeat_period) {}

  void on_start() override;
  void handle_message(const agent::AclMessage& message) override;

  const std::string& container_id() const noexcept { return container_id_; }

 private:
  void handle_execute(const agent::AclMessage& message);
  void handle_query_executable(const agent::AclMessage& message);
  void report_performance(const std::string& outcome, double duration);
  void emit_heartbeat();

  grid::Grid* grid_;
  grid::Simulation* gsim_;
  grid::FailureInjector* injector_;
  std::string container_id_;
  const wfl::ServiceCatalogue* catalogue_;
  virolab::SyntheticKernels* kernels_;
  grid::SimTime heartbeat_period_ = 0.0;
};

}  // namespace ig::svc
