file(REMOVE_RECURSE
  "../bench/bench_fig3_replanning_flow"
  "../bench/bench_fig3_replanning_flow.pdb"
  "CMakeFiles/bench_fig3_replanning_flow.dir/bench_fig3_replanning_flow.cpp.o"
  "CMakeFiles/bench_fig3_replanning_flow.dir/bench_fig3_replanning_flow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_replanning_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
