// Durable storage subsystem: CRC framing, mmap segments, WAL recovery
// (including a torn tail at *every* byte offset of the last frame),
// snapshots, compaction, and the StorageEngine KV/journal semantics.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "store/codec.hpp"
#include "store/crc32c.hpp"
#include "store/error.hpp"
#include "store/fault_fs.hpp"
#include "store/segment.hpp"
#include "store/storage_engine.hpp"
#include "store/wal.hpp"

namespace ig::store {
namespace {

namespace fs = std::filesystem;

/// A unique empty directory under the test temp root, removed on scope exit.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<std::uint64_t> counter{0};
    path_ = fs::path(::testing::TempDir()) /
            ("igrid-store-" + tag + "-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter.fetch_add(1)));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

// -- crc32c --------------------------------------------------------------------

TEST(Crc32c, MatchesTheCastagnoliCheckValue) {
  // The standard CRC-32C check vector.
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(crc32c("", 0), 0x00000000u);
}

TEST(Crc32c, ComposesAcrossChunks) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = crc32c(data.data(), data.size());
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const std::uint32_t first = crc32c(data.data(), split);
    const std::uint32_t chunked = crc32c(data.data() + split, data.size() - split, first);
    EXPECT_EQ(chunked, whole) << "split at " << split;
  }
}

// -- codec ---------------------------------------------------------------------

TEST(Codec, RoundTripsEveryPrimitive) {
  std::string bytes;
  Writer w(bytes);
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.str(std::string_view("payload with \0 byte inside", 26));
  Reader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.str().size(), 26u);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.done());
}

TEST(Codec, TruncatedInputFlipsOkInsteadOfThrowing) {
  std::string bytes;
  Writer w(bytes);
  w.u64(42);
  w.str("hello");
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    Reader r(std::string_view(bytes).substr(0, cut));
    r.u64();
    r.str();
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
  }
}

// -- segment -------------------------------------------------------------------

TEST(Segment, AppendsAndReopensIntact) {
  TempDir dir("segment");
  const std::string path = (dir.path() / "seg-1.seg").string();
  {
    auto segment = Segment::create(posix_file_ops(), path, 4096, 1, 10);
    ASSERT_NE(segment, nullptr);
    for (int i = 0; i < 3; ++i) segment->append("record-" + std::to_string(i));
    segment->sync();
    EXPECT_EQ(segment->last_lsn(), 12u);
  }
  auto reopened = Segment::open(posix_file_ops(), path);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->sequence(), 1u);
  EXPECT_EQ(reopened->first_lsn(), 10u);
  ASSERT_EQ(reopened->records().size(), 3u);
  EXPECT_EQ(reopened->records()[2], "record-2");
  EXPECT_FALSE(reopened->torn_tail_repaired());
  // Appending continues after the recovered tail.
  reopened->append("record-3");
  EXPECT_EQ(reopened->last_lsn(), 13u);
}

TEST(Segment, RejectsAlienFiles) {
  TempDir dir("alien");
  const std::string path = (dir.path() / "not-a-segment.seg").string();
  std::ofstream(path) << "this is not a segment header at all";
  EXPECT_EQ(Segment::open(posix_file_ops(), path), nullptr);
  EXPECT_EQ(Segment::open(posix_file_ops(), (dir.path() / "missing.seg").string()), nullptr);
}

// -- WAL recovery --------------------------------------------------------------

std::vector<std::string> replay_all(const WriteAheadLog& wal) {
  std::vector<std::string> records;
  wal.replay(0, [&](Lsn, std::string_view payload) { records.emplace_back(payload); });
  return records;
}

/// Writes `count` records (record i = "payload-i" padded to a known size)
/// and returns the active segment's tail offsets after count-1 and count
/// records, so the caller knows the last frame's byte range.
struct LastFrame {
  std::string file;
  std::size_t begin = 0;  ///< file offset of the last frame's first byte
  std::size_t end = 0;    ///< file offset one past the last frame
};

LastFrame write_wal_with_known_tail(const std::string& dir, std::size_t count) {
  WalOptions options;
  options.dir = dir;
  options.sync = SyncMode::kCommit;
  WriteAheadLog wal(options);
  LastFrame frame;
  for (std::size_t i = 0; i < count; ++i) {
    if (i + 1 == count) frame.begin = wal.active_tail();
    wal.append("payload-" + std::to_string(i));
  }
  wal.commit(wal.last_lsn());
  frame.end = wal.active_tail();
  frame.file = wal.active_segment_path();
  return frame;
}

// The acceptance-criteria harness: a crash that truncates the log at every
// byte offset of the last frame must always recover the first N-1 records,
// never crash, and keep the log appendable.
TEST(WalRecovery, TruncationAtEveryByteOffsetOfTheLastFrameDropsOnlyIt) {
  const std::size_t kRecords = 5;
  for (std::size_t offset_from_frame = 0;; ++offset_from_frame) {
    TempDir dir("truncate");
    const LastFrame frame = write_wal_with_known_tail(dir.str(), kRecords);
    const std::size_t cut = frame.begin + offset_from_frame;
    if (cut >= frame.end) break;  // past the last frame: nothing left to cut
    fs::resize_file(frame.file, cut);

    WalOptions options;
    options.dir = dir.str();
    WriteAheadLog recovered(options);
    const std::vector<std::string> records = replay_all(recovered);
    ASSERT_EQ(records.size(), kRecords - 1) << "cut at offset " << cut;
    EXPECT_EQ(records.back(), "payload-3");
    EXPECT_EQ(recovered.last_lsn(), kRecords - 1);
    // The log must stay appendable, and the new record takes the LSN the
    // torn record never durably owned.
    const Lsn lsn = recovered.append("replacement");
    EXPECT_EQ(lsn, kRecords);
    recovered.commit(lsn);
    EXPECT_EQ(replay_all(recovered).back(), "replacement");
  }
}

// Same sweep with corruption instead of truncation: every single-bit flip
// inside the last frame must invalidate exactly that record.
TEST(WalRecovery, CorruptionAtEveryByteOffsetOfTheLastFrameDropsOnlyIt) {
  const std::size_t kRecords = 5;
  for (std::size_t offset_from_frame = 0;; ++offset_from_frame) {
    TempDir dir("corrupt");
    const LastFrame frame = write_wal_with_known_tail(dir.str(), kRecords);
    const std::size_t target = frame.begin + offset_from_frame;
    if (target >= frame.end) break;
    {
      std::fstream file(frame.file, std::ios::in | std::ios::out | std::ios::binary);
      file.seekg(static_cast<std::streamoff>(target));
      char byte = 0;
      file.read(&byte, 1);
      byte = static_cast<char>(byte ^ 0x01);
      file.seekp(static_cast<std::streamoff>(target));
      file.write(&byte, 1);
    }

    WalOptions options;
    options.dir = dir.str();
    WriteAheadLog recovered(options);
    const std::vector<std::string> records = replay_all(recovered);
    ASSERT_EQ(records.size(), kRecords - 1) << "flip at offset " << target;
    EXPECT_TRUE(recovered.stats().torn_tail_repaired);
  }
}

TEST(WalRecovery, RollsToNewSegmentsAndReplaysAcrossThem) {
  TempDir dir("roll");
  WalOptions options;
  options.dir = dir.str();
  options.segment_size = 256;  // tiny: forces several rolls
  std::vector<std::string> written;
  {
    WriteAheadLog wal(options);
    for (int i = 0; i < 40; ++i) {
      written.push_back("record-" + std::to_string(i) + std::string(16, 'x'));
      wal.append(written.back());
    }
    wal.commit(wal.last_lsn());
    EXPECT_GT(wal.segment_count(), 1u);
  }
  WriteAheadLog recovered(options);
  EXPECT_EQ(replay_all(recovered), written);
  EXPECT_EQ(recovered.last_lsn(), 40u);
}

TEST(WalRecovery, OversizedRecordGetsItsOwnSegment) {
  TempDir dir("oversize");
  WalOptions options;
  options.dir = dir.str();
  options.segment_size = 256;
  const std::string big(4096, 'B');
  {
    WriteAheadLog wal(options);
    wal.append("small");
    wal.append(big);
    wal.append("after");
    wal.commit(wal.last_lsn());
  }
  WriteAheadLog recovered(options);
  const std::vector<std::string> records = replay_all(recovered);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[1], big);
}

TEST(WalRecovery, MissingMiddleSegmentCutsTheLogAtTheGap) {
  TempDir dir("gap");
  WalOptions options;
  options.dir = dir.str();
  options.segment_size = 256;
  {
    WriteAheadLog wal(options);
    for (int i = 0; i < 40; ++i) wal.append("record-" + std::to_string(i) + std::string(16, 'y'));
    wal.commit(wal.last_lsn());
    ASSERT_GE(wal.segment_count(), 3u);
  }
  // Delete the second segment file: everything after the gap is untrustworthy.
  std::vector<fs::path> segments;
  for (const auto& entry : fs::directory_iterator(dir.path())) segments.push_back(entry.path());
  std::sort(segments.begin(), segments.end());
  ASSERT_GE(segments.size(), 3u);
  fs::remove(segments[1]);

  WriteAheadLog recovered(options);
  const std::vector<std::string> records = replay_all(recovered);
  ASSERT_FALSE(records.empty());
  EXPECT_LT(records.size(), 40u);
  EXPECT_EQ(records.front(), "record-0" + std::string(16, 'y'));
  // The prefix is contiguous: record k is always "record-k".
  for (std::size_t i = 0; i < records.size(); ++i)
    EXPECT_EQ(records[i], "record-" + std::to_string(i) + std::string(16, 'y'));
}

TEST(Wal, GroupCommitBatchesFsyncs) {
  TempDir dir("sync");
  WalOptions options;
  options.dir = dir.str();
  options.sync = SyncMode::kCommit;
  WriteAheadLog wal(options);
  for (int i = 0; i < 100; ++i) wal.append("r" + std::to_string(i));
  wal.commit(wal.last_lsn());
  wal.commit(wal.last_lsn());  // already durable: no second fsync
  const WalStats stats = wal.stats();
  EXPECT_EQ(stats.appends, 100u);
  EXPECT_LT(stats.fsyncs, 5u);
  EXPECT_EQ(wal.durable_lsn(), 100u);
}

TEST(Wal, GroupWindowBatchesSequentialCommittersAcrossThreads) {
  // Models durable engine shards finishing cases back to back: each thread
  // appends then commits, round after round, so commits overlap only
  // briefly. With a leader-linger window the first committer of a round
  // waits for the stragglers and one msync covers them all; the fsync
  // count must fall well below one-per-commit.
  constexpr int kThreads = 4;
  constexpr int kRounds = 8;
  TempDir dir("window");
  WalOptions options;
  options.dir = dir.str();
  options.sync = SyncMode::kCommit;
  options.group_window_us = 20'000;  // generous: robust on a loaded 1-core CI box
  WriteAheadLog wal(options);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal, t] {
      for (int round = 0; round < kRounds; ++round) {
        const Lsn lsn = wal.append("t" + std::to_string(t) + "-r" + std::to_string(round));
        wal.commit(lsn);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const WalStats stats = wal.stats();
  EXPECT_EQ(stats.appends, static_cast<std::uint64_t>(kThreads * kRounds));
  EXPECT_EQ(wal.durable_lsn(), static_cast<Lsn>(kThreads * kRounds));
  // One-per-commit would be kThreads * kRounds fsyncs; the window must at
  // least halve that, and some commit must have ridden another's barrier.
  EXPECT_LE(stats.fsyncs * 2, static_cast<std::uint64_t>(kThreads * kRounds));
  EXPECT_GT(stats.group_commits, 0u);
}

// -- storage engine ------------------------------------------------------------

TEST(StorageEngine, InMemoryModeHasNoFilesAndFullKvSemantics) {
  StorageEngine engine;  // default options: in-memory
  EXPECT_FALSE(engine.durable());
  engine.put("process/a", "A");
  engine.put("process/b", "B");
  engine.put("case/c", "C");
  EXPECT_EQ(engine.get("process/a").value_or(""), "A");
  EXPECT_FALSE(engine.get("missing").has_value());
  EXPECT_EQ(engine.keys_with_prefix("process/").size(), 2u);
  EXPECT_TRUE(engine.erase("process/a"));
  EXPECT_FALSE(engine.erase("process/a"));
  EXPECT_EQ(engine.size(), 2u);
  EXPECT_FALSE(engine.snapshot());  // nothing to snapshot to
  const StoreStats stats = engine.stats();
  EXPECT_FALSE(stats.durable);
  EXPECT_EQ(stats.keys, 2u);
}

TEST(StorageEngine, KvStateSurvivesReopen) {
  TempDir dir("kv");
  Options options;
  options.data_dir = dir.str();
  {
    StorageEngine engine(options);
    EXPECT_TRUE(engine.durable());
    engine.put("k1", "v1");
    engine.put("k2", "v2");
    engine.put("k1", "v1-updated");
    engine.erase("k2");
  }
  StorageEngine reopened(options);
  EXPECT_EQ(reopened.get("k1").value_or(""), "v1-updated");
  EXPECT_FALSE(reopened.get("k2").has_value());
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(reopened.stats().replayed_records, 4u);
  EXPECT_GE(reopened.stats().recovery_ms, 0.0);
}

TEST(StorageEngine, EventsReplayInLsnOrderAcrossStreams) {
  TempDir dir("events");
  Options options;
  options.data_dir = dir.str();
  {
    StorageEngine engine(options);
    engine.append_event("alpha", "a1");
    engine.append_event("beta", "b1");
    engine.put("key", "value");  // KV records interleave with events
    engine.append_event("alpha", "a2");
    engine.commit();
  }
  std::vector<std::string> seen;
  StorageEngine reopened(options, [&](std::string_view stream, std::string_view payload) {
    seen.push_back(std::string(stream) + ":" + std::string(payload));
  });
  EXPECT_EQ(seen, (std::vector<std::string>{"alpha:a1", "beta:b1", "alpha:a2"}));
  EXPECT_EQ(reopened.get("key").value_or(""), "value");
}

TEST(StorageEngine, SnapshotCompactsTheWalAndBoundsReplay) {
  TempDir dir("snapshot");
  Options options;
  options.data_dir = dir.str();
  options.segment_size = 512;     // many small segments
  options.snapshot_interval = 0;  // manual snapshots only
  {
    StorageEngine engine(options);
    for (int i = 0; i < 50; ++i)
      engine.put("key-" + std::to_string(i), std::string(24, 'v'));
    ASSERT_GT(engine.stats().segments, 1u);
    EXPECT_TRUE(engine.snapshot());
    const StoreStats stats = engine.stats();
    EXPECT_EQ(stats.snapshots_written, 1u);
    EXPECT_GT(stats.segments_compacted, 0u);
    EXPECT_EQ(stats.snapshot_lsn, 50u);
    // Post-snapshot writes land in the surviving WAL tail.
    engine.put("after-snapshot", "tail");
  }
  StorageEngine reopened(options);
  EXPECT_EQ(reopened.size(), 51u);
  EXPECT_EQ(reopened.get("key-49").value_or(""), std::string(24, 'v'));
  EXPECT_EQ(reopened.get("after-snapshot").value_or(""), "tail");
  // Only the tail replays; the bulk comes from the snapshot.
  EXPECT_LE(reopened.stats().replayed_records, 2u);
}

TEST(StorageEngine, StateProviderBlobRoundTripsThroughSnapshot) {
  TempDir dir("blob");
  Options options;
  options.data_dir = dir.str();
  options.snapshot_interval = 0;
  {
    StorageEngine engine(options);
    engine.set_state_provider("engine", [] { return std::string("STATE-BLOB-1"); });
    engine.append_event("engine", "before-snapshot");
    EXPECT_TRUE(engine.snapshot());
    engine.append_event("engine", "after-snapshot");
    engine.commit();
  }
  std::vector<std::string> replayed;
  StorageEngine reopened(options, [&](std::string_view stream, std::string_view payload) {
    if (stream == "engine") replayed.emplace_back(payload);
  });
  EXPECT_EQ(reopened.recovered_state("engine"), "STATE-BLOB-1");
  // The pre-snapshot event is inside the blob, not the replayed tail.
  EXPECT_EQ(replayed, std::vector<std::string>{"after-snapshot"});
}

TEST(StorageEngine, CorruptSnapshotFallsBackToTheWal) {
  TempDir dir("badsnap");
  Options options;
  options.data_dir = dir.str();
  options.snapshot_interval = 0;
  options.auto_compact = false;  // keep the WAL so the fallback has data
  {
    StorageEngine engine(options);
    engine.put("k", "v");
    EXPECT_TRUE(engine.snapshot());
    engine.put("k2", "v2");
  }
  // Flip a byte in the snapshot body; its CRC framing must reject it.
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    if (entry.path().extension() != ".snap") continue;
    std::fstream file(entry.path(), std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(48);
    file.write("\xFF", 1);
  }
  StorageEngine reopened(options);
  EXPECT_EQ(reopened.get("k").value_or(""), "v");
  EXPECT_EQ(reopened.get("k2").value_or(""), "v2");
}

TEST(StorageEngine, AutoSnapshotTriggersOnInterval) {
  TempDir dir("auto");
  Options options;
  options.data_dir = dir.str();
  options.snapshot_interval = 10;
  StorageEngine engine(options);
  for (int i = 0; i < 25; ++i) {
    engine.put("key-" + std::to_string(i), "v");
    engine.maybe_snapshot();
  }
  EXPECT_GE(engine.stats().snapshots_written, 2u);
}

// TSan coverage: concurrent writers on both the KV and journal paths, with
// group commits racing appends, then a clean reopen.
TEST(StorageEngine, ConcurrentWritersRecoverCompletely) {
  TempDir dir("threads");
  Options options;
  options.data_dir = dir.str();
  options.segment_size = 4096;  // force rolls under contention
  const int kThreads = 4;
  const int kOps = 50;
  {
    StorageEngine engine(options);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&engine, t] {
        for (int i = 0; i < kOps; ++i) {
          const std::string suffix = std::to_string(t) + "-" + std::to_string(i);
          engine.put("key-" + suffix, "value-" + suffix);
          engine.append_event("stream-" + std::to_string(t), "event-" + suffix);
          if (i % 8 == 0) engine.commit();
          (void)engine.get("key-" + suffix);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    engine.commit();
    EXPECT_EQ(engine.size(), static_cast<std::size_t>(kThreads * kOps));
  }
  std::atomic<int> events{0};
  StorageEngine reopened(options,
                         [&](std::string_view, std::string_view) { ++events; });
  EXPECT_EQ(reopened.size(), static_cast<std::size_t>(kThreads * kOps));
  EXPECT_EQ(events.load(), kThreads * kOps);
  for (int t = 0; t < kThreads; ++t)
    for (int i = 0; i < kOps; ++i) {
      const std::string suffix = std::to_string(t) + "-" + std::to_string(i);
      EXPECT_EQ(reopened.get("key-" + suffix).value_or(""), "value-" + suffix);
    }
}

// -- deterministic disk-fault injection ----------------------------------------

TEST(FaultFs, SameSeedInjectsTheSameFaultsTwice) {
  // Two identical runs over the same op sequence must agree on every
  // injection decision — the property every sweep below leans on.
  FaultFsOptions options;
  options.seed = 42;
  options.rules.push_back({FaultMatch{}, /*io_error=*/0.2, /*no_space=*/0.1,
                           /*short_write=*/0.1, /*fsync_error=*/0.1});
  std::vector<FaultFsStats> runs;
  for (int run = 0; run < 2; ++run) {
    TempDir dir("det-" + std::to_string(run));
    FaultFs faults(options);
    for (int i = 0; i < 200; ++i) {
      const std::string path = (dir.path() / ("f" + std::to_string(i))).string();
      const int fd = faults.open(path, O_CREAT | O_RDWR, 0644);
      if (fd < 0) continue;
      char byte = 'x';
      faults.pwrite(fd, &byte, 1, 0);
      faults.fsync(fd);
      faults.close(fd);
    }
    runs.push_back(faults.stats());
  }
  EXPECT_EQ(runs[0].ops, runs[1].ops);
  EXPECT_EQ(runs[0].io_errors, runs[1].io_errors);
  EXPECT_EQ(runs[0].no_space, runs[1].no_space);
  EXPECT_EQ(runs[0].short_writes, runs[1].short_writes);
  EXPECT_EQ(runs[0].fsync_failures, runs[1].fsync_failures);
  EXPECT_GT(runs[0].total_injected(), 0u);
}

/// The canonical three-segment workload: 30 committed puts through a tiny
/// segment size.
void three_segment_workload(StorageEngine& engine) {
  for (int i = 0; i < 30; ++i)
    engine.put("key-" + std::to_string(i), std::string(24, 'v'));
}

Options three_segment_options(const std::string& dir, FileOps* fops) {
  Options options;
  options.data_dir = dir;
  options.segment_size = 512;
  options.snapshot_interval = 0;
  options.file_ops = fops;
  return options;
}

// The ISSUE acceptance sweep: ENOSPC injected at every single I/O operation
// of the three-segment workload. Whatever happens — a clean kNoSpace the
// caller can retry, or a poisoned WAL if the fault landed on a durability
// barrier — an acked put must survive reopen, and a poisoned store must
// stay fail-stop for the rest of the run.
TEST(FaultFs, EnospcAtEveryOpOfAThreeSegmentWorkload) {
  std::uint64_t total_ops = 0;
  {
    TempDir dir("enospc-baseline");
    FaultFs faults(FaultFsOptions{});  // pass-through: just counts ops
    {
      StorageEngine engine(three_segment_options(dir.str(), &faults));
      three_segment_workload(engine);
      ASSERT_GE(engine.stats().segments, 3u) << "workload must span >= 3 segments";
    }
    total_ops = faults.ops();
    ASSERT_GT(total_ops, 10u);
    EXPECT_EQ(faults.stats().total_injected(), 0u);
  }

  bool saw_clean_nospace = false;
  bool saw_poisoned = false;
  for (std::uint64_t k = 1; k <= total_ops; ++k) {
    TempDir dir("enospc-" + std::to_string(k));
    FaultFsOptions fault_options;
    fault_options.one_shots.push_back({k, FaultAction::kNoSpace});
    FaultFs faults(fault_options);
    std::vector<std::string> acked;
    bool poisoned = false;
    {
      std::unique_ptr<StorageEngine> engine;
      try {
        engine = std::make_unique<StorageEngine>(three_segment_options(dir.str(), &faults));
      } catch (const Error&) {
        // The fault landed inside open/recovery; nothing was acked.
      }
      if (engine) {
        for (int i = 0; i < 30; ++i) {
          const std::string key = "key-" + std::to_string(i);
          try {
            engine->put(key, std::string(24, 'v'));
            ASSERT_FALSE(poisoned) << "op " << k << ": a poisoned store acked a put";
            acked.push_back(key);
          } catch (const Error& e) {
            if (e.kind() == ErrorKind::kPoisoned) poisoned = true;
            else
              EXPECT_TRUE(e.kind() == ErrorKind::kNoSpace || e.kind() == ErrorKind::kIo)
                  << "op " << k << ": unexpected kind " << to_string(e.kind());
          }
        }
        if (!poisoned && acked.size() < 30u) saw_clean_nospace = true;
        if (poisoned) saw_poisoned = true;
      }
    }
    // Reopen with the real filesystem: every acked put must be there.
    StorageEngine reopened(three_segment_options(dir.str(), nullptr));
    for (const std::string& key : acked)
      EXPECT_EQ(reopened.get(key).value_or(""), std::string(24, 'v'))
          << "op " << k << ": acked key lost";
  }
  // The sweep must have exercised both rungs of the degradation ladder.
  EXPECT_TRUE(saw_clean_nospace) << "no op produced a clean retryable ENOSPC";
  EXPECT_TRUE(saw_poisoned) << "no op produced a poisoned durability barrier";
}

// fsyncgate semantics: one failed durability barrier poisons the WAL for
// good. No retry ever reaches the disk, and everything after the failure
// fails fast with kPoisoned.
TEST(FaultFs, FsyncFailureOnCommitIsFailStop) {
  TempDir dir("fsyncgate");
  FaultFsOptions fault_options;
  fault_options.rules.push_back({FaultMatch{"", FileOp::kMsync},
                                 /*io_error=*/0.0, /*no_space=*/0.0,
                                 /*short_write=*/0.0, /*fsync_error=*/1.0});
  FaultFs faults(fault_options);
  WalOptions options;
  options.dir = dir.str();
  options.sync = SyncMode::kCommit;
  options.file_ops = &faults;
  WriteAheadLog wal(options);
  const Lsn lsn = wal.append("doomed");
  EXPECT_THROW(wal.commit(lsn), Error);
  EXPECT_TRUE(wal.stats().poisoned);
  EXPECT_EQ(wal.stats().fsync_failures, 1u);
  EXPECT_EQ(wal.durable_lsn(), 0u);
  const std::uint64_t injected_after_first = faults.stats().fsync_failures;
  EXPECT_EQ(injected_after_first, 1u);

  // Fail-stop means fail-stop: another commit and another append both throw
  // kPoisoned without the WAL ever touching the disk again.
  try {
    wal.commit(lsn);
    FAIL() << "poisoned commit did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kPoisoned);
  }
  try {
    wal.append("after-poison");
    FAIL() << "poisoned append did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kPoisoned);
  }
  EXPECT_EQ(faults.stats().fsync_failures, injected_after_first)
      << "the WAL retried a failed durability barrier";
}

// A torn flush: a deterministic prefix of the segment reaches the disk, the
// barrier reports failure. Reopen must recover a clean prefix of the
// appended records — possibly empty, never garbage, always appendable.
TEST(FaultFs, ShortWriteTailRecoversACleanPrefixOnReopen) {
  const std::size_t kRecords = 5;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    TempDir dir("tear-" + std::to_string(seed));
    {
      FaultFsOptions fault_options;
      fault_options.seed = seed;
      fault_options.rules.push_back({FaultMatch{"", FileOp::kMsync},
                                     /*io_error=*/0.0, /*no_space=*/0.0,
                                     /*short_write=*/1.0, /*fsync_error=*/0.0});
      FaultFs faults(fault_options);
      WalOptions options;
      options.dir = dir.str();
      options.sync = SyncMode::kCommit;
      options.file_ops = &faults;
      WriteAheadLog wal(options);
      for (std::size_t i = 0; i < kRecords; ++i) wal.append("payload-" + std::to_string(i));
      EXPECT_THROW(wal.commit(wal.last_lsn()), Error);
      EXPECT_TRUE(wal.stats().poisoned);
    }
    // Reopen on the real filesystem: whatever prefix the tear persisted
    // must parse as records 0..m-1, and the log must keep working.
    WalOptions reopen_options;
    reopen_options.dir = dir.str();
    WriteAheadLog recovered(reopen_options);
    const std::vector<std::string> records = replay_all(recovered);
    ASSERT_LE(records.size(), kRecords) << "seed " << seed;
    for (std::size_t i = 0; i < records.size(); ++i)
      EXPECT_EQ(records[i], "payload-" + std::to_string(i)) << "seed " << seed;
    const Lsn lsn = recovered.append("after-recovery");
    recovered.commit(lsn);
    EXPECT_EQ(replay_all(recovered).back(), "after-recovery");
  }
}

TEST(FaultFs, PowerCutFreezesTheDiskForever) {
  TempDir dir("cut");
  FaultFsOptions fault_options;
  fault_options.power_cut_after = 12;
  FaultFs faults(fault_options);
  Options options;
  options.data_dir = dir.str();
  options.file_ops = &faults;
  std::vector<std::string> acked;
  try {
    StorageEngine engine(options);
    for (int i = 0; i < 50; ++i) {
      engine.put("key-" + std::to_string(i), "v");
      acked.push_back("key-" + std::to_string(i));
    }
    FAIL() << "the power cut never fired";
  } catch (const Error&) {
    // Expected: either the open or some put hit the cut.
  }
  EXPECT_GT(faults.stats().power_cut_failures, 0u);
  // Everything acked before the cut survives a posix reopen.
  Options reopen_options;
  reopen_options.data_dir = dir.str();
  StorageEngine reopened(reopen_options);
  for (const std::string& key : acked)
    EXPECT_EQ(reopened.get(key).value_or(""), "v") << key;
}

// A failed snapshot rename must leave the previous snapshot authoritative
// and never leave a half-written .tmp behind to confuse a later open.
TEST(StorageEngine, SnapshotRenameFailureKeepsThePreviousSnapshotAuthoritative) {
  TempDir dir("snaprename");
  Options posix_options;
  posix_options.data_dir = dir.str();
  posix_options.snapshot_interval = 0;
  posix_options.auto_compact = false;
  {
    StorageEngine engine(posix_options);
    engine.put("k", "v1");
    ASSERT_TRUE(engine.snapshot());
  }
  {
    FaultFsOptions fault_options;
    fault_options.rules.push_back({FaultMatch{"", FileOp::kRename},
                                   /*io_error=*/1.0, /*no_space=*/0.0,
                                   /*short_write=*/0.0, /*fsync_error=*/0.0});
    FaultFs faults(fault_options);
    Options faulty_options = posix_options;
    faulty_options.file_ops = &faults;
    StorageEngine engine(faulty_options);
    engine.put("k", "v2");
    EXPECT_FALSE(engine.snapshot()) << "snapshot survived a failed rename";
    EXPECT_EQ(engine.stats().snapshots_written, 0u);
  }
  // No .tmp remains, the old snapshot still loads, the WAL carries v2.
  for (const auto& entry : fs::directory_iterator(dir.path()))
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  StorageEngine reopened(posix_options);
  EXPECT_EQ(reopened.get("k").value_or(""), "v2");
  EXPECT_GT(reopened.stats().snapshot_lsn, 0u) << "previous snapshot was lost";
}

}  // namespace
}  // namespace ig::store
