// Ablation A8 — re-planning robustness versus container failure
// probability.
//
// Sweeps the per-dispatch failure probability of every container and
// measures case success with and without the coordination service's
// recovery ladder (retry on alternate containers, then re-planning). The
// recovery machinery is what keeps the success rate high as the environment
// degrades — exactly the Section 1 motivation ("the ability to recover from
// errors caused by the failure of individual nodes is critical").
#include <cstdio>

#include "services/environment.hpp"
#include "services/protocol.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"
#include "wfl/xml_io.hpp"

using namespace ig;
namespace names = svc::names;
namespace protocols = svc::protocols;

namespace {

class Runner : public agent::Agent {
 public:
  using Agent::Agent;
  void on_start() override {
    agent::AclMessage request;
    request.performative = agent::Performative::Request;
    request.receiver = names::kCoordination;
    request.protocol = protocols::kEnactCase;
    request.content = wfl::process_to_xml_string(virolab::make_fig10_process());
    request.params["case-xml"] = wfl::case_to_xml_string(virolab::make_case_description());
    send(std::move(request));
  }
  void handle_message(const agent::AclMessage& message) override {
    if (message.protocol == protocols::kCaseCompleted) outcome = message;
  }
  agent::AclMessage outcome;
};

struct CellResult {
  int successes = 0;
  int replans = 0;
  int failures_seen = 0;
};

CellResult run_cell(double failure_probability, bool recovery, int trials) {
  CellResult result;
  for (int trial = 0; trial < trials; ++trial) {
    svc::EnvironmentOptions options;
    options.topology.container_failure_probability = failure_probability;
    options.coordination.max_retries = recovery ? 3 : 0;
    options.coordination.max_replans = recovery ? 2 : 0;
    options.gp.population_size = 80;
    options.gp.generations = 12;
    options.seed = 500 + static_cast<std::uint64_t>(trial);
    auto environment = svc::make_environment(options);
    // Isolate the knob: node hardware is perfectly reliable so the injected
    // container failure probability is the only failure source.
    for (const auto& node : environment->grid().nodes())
      environment->grid().find_node(node->id())->set_reliability(1.0);
    auto& runner = environment->platform().spawn<Runner>("ui");
    environment->run();
    if (runner.outcome.param_bool("success", false)) ++result.successes;
    result.replans += runner.outcome.param_int("replans", 0);
    result.failures_seen += runner.outcome.param_int("dispatch-failures", 0);
  }
  return result;
}

}  // namespace

int main() {
  const double probabilities[] = {0.0, 0.1, 0.2, 0.3, 0.4};
  constexpr int kTrials = 6;

  std::printf("A8: case success rate vs container failure probability (%d trials each)\n\n",
              kTrials);
  std::printf("%-8s %-24s %-24s\n", "p_fail", "with recovery", "without recovery");
  std::printf("%-8s %-10s %-13s %-10s\n", "", "success", "(replans)", "success");

  bool shape = true;
  for (const double p : probabilities) {
    const CellResult with = run_cell(p, /*recovery=*/true, kTrials);
    const CellResult without = run_cell(p, /*recovery=*/false, kTrials);
    std::printf("%-8.1f %2d/%-7d %-13d %2d/%d\n", p, with.successes, kTrials, with.replans,
                without.successes, kTrials);
    if (with.successes < without.successes) shape = false;
    if (p == 0.0 && (with.successes != kTrials || without.successes != kTrials)) shape = false;
  }
  std::printf("\nexpected shape: recovery dominates no-recovery at every failure level;\n"
              "both succeed always at p = 0.\n");
  std::printf("shape holds: %s\n", shape ? "yes" : "NO");
  return shape ? 0 : 1;
}
