# Empty dependencies file for bench_workload_scaling.
# This may be replaced when dependencies are built.
