// Figure 3 — The flow of communications between the planning service and
// other services during re-planning.
//
//   1. CS -> PS   planning task specification + non-executable activities
//   2. PS -> IS   Brokerage Service?
//   3. IS -> PS   Brokerage Service found
//   4. PS -> BS   Application Containers for the activity?
//   5. BS -> PS   a group of Application Containers found
//   6. PS -> AC   Activities executable?
//   7. AC -> PS   executable or not executable
//   8. PS -> CS   a new plan
//
// The harness disables every POR host, enacts the Figure 10 workflow, and
// prints the eight-step exchange from the recorded message trace.
#include <cstdio>
#include <string>

#include "services/environment.hpp"
#include "services/protocol.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"
#include "wfl/xml_io.hpp"

using namespace ig;
namespace names = svc::names;
namespace protocols = svc::protocols;

namespace {

class Requester : public agent::Agent {
 public:
  using Agent::Agent;
  void on_start() override {
    agent::AclMessage request;
    request.performative = agent::Performative::Request;
    request.receiver = names::kCoordination;
    request.protocol = protocols::kEnactCase;
    request.content = wfl::process_to_xml_string(virolab::make_fig10_process());
    request.params["case-xml"] = wfl::case_to_xml_string(virolab::make_case_description());
    send(std::move(request));
  }
  void handle_message(const agent::AclMessage& message) override {
    if (message.protocol == protocols::kCaseCompleted) outcome = message;
  }
  agent::AclMessage outcome;
};

}  // namespace

int main() {
  svc::EnvironmentOptions options;
  options.tracing = true;
  options.gp.population_size = 120;
  options.gp.generations = 15;
  auto environment = svc::make_environment(options);

  for (const auto* container : environment->grid().containers_advertising("POR"))
    environment->grid().find_container(container->id())->unhost_service("POR");

  environment->platform().clear_trace();
  auto& requester = environment->platform().spawn<Requester>("ui");
  environment->run();

  std::printf("Figure 3: the re-planning communication flow\n\n");
  bool steps[9] = {false};
  for (const auto& record : environment->platform().trace()) {
    const auto& message = record.message;
    int step = 0;
    const char* label = "";
    if (message.protocol == protocols::kReplanRequest) {
      if (message.receiver == names::kPlanning) {
        step = 1;
        label = "planning task specification + non-executable activities";
      } else if (message.sender == names::kPlanning &&
                 message.performative == agent::Performative::Inform) {
        step = 8;
        label = "a new plan";
      }
    } else if (message.protocol == protocols::kQueryService &&
               message.param("type") == "brokerage") {
      if (message.receiver == names::kInformation) {
        step = 2;
        label = "Brokerage Service?";
      } else if (message.performative == agent::Performative::Inform) {
        step = 3;
        label = "Brokerage Service found";
      }
    } else if (message.protocol == protocols::kQueryProviders &&
               message.sender == names::kPlanning) {
      step = 4;
      label = "Application Containers for the activity?";
    } else if (message.protocol == protocols::kQueryProviders &&
               message.receiver == names::kPlanning) {
      step = 5;
      label = "a group of Application Containers found";
    } else if (message.protocol == protocols::kQueryExecutable &&
               message.sender == names::kPlanning) {
      step = 6;
      label = "Activities executable?";
    } else if (message.protocol == protocols::kQueryExecutable &&
               message.receiver == names::kPlanning) {
      step = 7;
      label = message.param("executable") == "true" ? "executable" : "not executable";
    }
    if (step == 0) continue;
    steps[step] = true;
    std::printf("t=%8.4f  %d. %-55s %s", record.delivered_at, step, label,
                message.to_display_string().c_str());
    if (step == 7) std::printf("  [%s: %s]", message.param("service").c_str(),
                               message.param("executable").c_str());
    std::printf("\n");
  }

  bool all_steps = true;
  for (int i = 1; i <= 8; ++i) all_steps = all_steps && steps[i];
  std::printf("\ncase outcome: success=%s replans=%s\n",
              requester.outcome.param("success").c_str(),
              requester.outcome.param("replans").c_str());
  std::printf("all eight Figure 3 steps observed: %s\n", all_steps ? "yes" : "NO");
  const bool ok = all_steps && requester.outcome.param("success") == "true";
  return ok ? 0 : 1;
}
