# Empty dependencies file for bench_fig3_replanning_flow.
# This may be replaced when dependencies are built.
