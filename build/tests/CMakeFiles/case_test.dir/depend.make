# Empty dependencies file for case_test.
# This may be replaced when dependencies are built.
