#include <gtest/gtest.h>

#include "wfl/flowexpr.hpp"
#include "wfl/structure.hpp"
#include "wfl/validate.hpp"

namespace ig::wfl {
namespace {

ProcessDescription valid_process() {
  return lower_to_process(
      parse_flow("BEGIN, POD; {FORK {A} {B} JOIN}; "
                 "{CHOICE {X.V > 1} {C} {X.V <= 1} {D} MERGE}, END"),
      "valid");
}

TEST(Validate, WellFormedGraphPasses) {
  const ProcessDescription process = valid_process();
  EXPECT_TRUE(is_valid(process));
  EXPECT_TRUE(validate(process).empty());
}

TEST(Validate, MissingBegin) {
  ProcessDescription process("p");
  process.add_end_user("X", "X", "svc");
  process.add_flow_control("E", ActivityKind::End);
  process.add_transition("X", "E");
  const auto errors = validate(process);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(to_string(errors).find("exactly one Begin"), std::string::npos);
}

TEST(Validate, TwoEnds) {
  ProcessDescription process("p");
  process.add_flow_control("B", ActivityKind::Begin);
  process.add_flow_control("E1", ActivityKind::End);
  process.add_flow_control("E2", ActivityKind::End);
  process.add_transition("B", "E1");
  const auto errors = validate(process);
  EXPECT_NE(to_string(errors).find("exactly one End"), std::string::npos);
}

TEST(Validate, BeginWithPredecessor) {
  ProcessDescription process("p");
  process.add_flow_control("B", ActivityKind::Begin);
  process.add_end_user("X", "X", "svc");
  process.add_flow_control("E", ActivityKind::End);
  process.add_transition("B", "X");
  process.add_transition("X", "E");
  process.add_transition("E", "B", Condition(), "bad");  // End->Begin cycle
  const auto errors = validate(process);
  const std::string text = to_string(errors);
  EXPECT_NE(text.find("Begin must have no predecessors"), std::string::npos);
  EXPECT_NE(text.find("End must have no successors"), std::string::npos);
}

TEST(Validate, EndUserDegree) {
  ProcessDescription process("p");
  process.add_flow_control("B", ActivityKind::Begin);
  process.add_end_user("X", "X", "svc");
  process.add_end_user("Y", "Y", "svc");
  process.add_flow_control("E", ActivityKind::End);
  process.add_transition("B", "X");
  process.add_transition("X", "E");
  process.add_transition("X", "Y");  // X now has two successors
  process.add_transition("Y", "E");  // E now has two predecessors
  const std::string text = to_string(validate(process));
  EXPECT_NE(text.find("end-user activity must have exactly one successor"), std::string::npos);
}

TEST(Validate, EndUserWithoutService) {
  ProcessDescription process("p");
  process.add_flow_control("B", ActivityKind::Begin);
  process.add_end_user("X", "X", "");
  process.add_flow_control("E", ActivityKind::End);
  process.add_transition("B", "X");
  process.add_transition("X", "E");
  EXPECT_NE(to_string(validate(process)).find("must name a service"), std::string::npos);
}

TEST(Validate, ForkNeedsTwoSuccessors) {
  ProcessDescription process("p");
  process.add_flow_control("B", ActivityKind::Begin);
  process.add_flow_control("F", ActivityKind::Fork);
  process.add_end_user("X", "X", "svc");
  process.add_flow_control("E", ActivityKind::End);
  process.add_transition("B", "F");
  process.add_transition("F", "X");
  process.add_transition("X", "E");
  EXPECT_NE(to_string(validate(process)).find("Fork must have at least two successors"),
            std::string::npos);
}

TEST(Validate, JoinNeedsTwoPredecessors) {
  ProcessDescription process("p");
  process.add_flow_control("B", ActivityKind::Begin);
  process.add_end_user("X", "X", "svc");
  process.add_flow_control("J", ActivityKind::Join);
  process.add_flow_control("E", ActivityKind::End);
  process.add_transition("B", "X");
  process.add_transition("X", "J");
  process.add_transition("J", "E");
  EXPECT_NE(to_string(validate(process)).find("Join must have at least two predecessors"),
            std::string::npos);
}

TEST(Validate, GuardOnNonChoiceTransition) {
  ProcessDescription process("p");
  process.add_flow_control("B", ActivityKind::Begin);
  process.add_end_user("X", "X", "svc");
  process.add_flow_control("E", ActivityKind::End);
  process.add_transition("B", "X");
  process.add_transition("X", "E", Condition::parse("R.V > 1"));
  EXPECT_NE(to_string(validate(process)).find("carries a guard"), std::string::npos);
}

TEST(Validate, UnreachableActivity) {
  ProcessDescription process("p");
  process.add_flow_control("B", ActivityKind::Begin);
  process.add_end_user("X", "X", "svc");
  process.add_end_user("orphan", "orphan", "svc");
  process.add_flow_control("E", ActivityKind::End);
  process.add_transition("B", "X");
  process.add_transition("X", "E");
  const std::string text = to_string(validate(process));
  EXPECT_NE(text.find("not reachable from Begin"), std::string::npos);
  EXPECT_NE(text.find("End not reachable"), std::string::npos);
}

TEST(Validate, DuplicateEdge) {
  ProcessDescription process("p");
  process.add_flow_control("B", ActivityKind::Begin);
  process.add_end_user("X", "X", "svc");
  process.add_flow_control("E", ActivityKind::End);
  process.add_transition("B", "X");
  process.add_transition("X", "E");
  process.add_transition("X", "E");  // duplicate pair
  EXPECT_NE(to_string(validate(process)).find("duplicate transition"), std::string::npos);
}

TEST(Validate, LoweredLoopsAreValid) {
  const ProcessDescription process = lower_to_process(
      parse_flow("BEGIN, {ITERATIVE {COND R.V > 8} {A; {ITERATIVE {COND S.W > 1} {B}}}}, END"),
      "loops");
  EXPECT_TRUE(is_valid(process)) << to_string(validate(process));
}

}  // namespace
}  // namespace ig::wfl
