#include "services/container_agent.hpp"

#include "services/protocol.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "wfl/xml_io.hpp"

namespace ig::svc {

using agent::AclMessage;
using agent::Performative;

void ContainerAgent::on_start() {
  const grid::ApplicationContainer* container = grid_->find_container(container_id_);
  if (container == nullptr) return;

  AclMessage registration;
  registration.performative = Performative::Request;
  registration.receiver = names::kInformation;
  registration.protocol = protocols::kRegister;
  registration.params["type"] = "application-container";
  send(std::move(registration));

  AclMessage advertisement;
  advertisement.performative = Performative::Inform;
  advertisement.receiver = names::kBrokerage;
  advertisement.protocol = protocols::kAdvertise;
  advertisement.params["container"] = container_id_;
  advertisement.params["services"] = util::join(container->hosted_services(), ",");
  send(std::move(advertisement));

  if (heartbeat_period_ > 0) emit_heartbeat();
}

void ContainerAgent::emit_heartbeat() {
  // Crashed/hung agents keep running this loop — the chaos layer swallows
  // their sends — so beats resume by themselves once the agent is revived
  // and the monitor counts the recovery.
  if (platform().has_agent(names::kMonitoring)) {
    AclMessage beat;
    beat.performative = Performative::Inform;
    beat.receiver = names::kMonitoring;
    beat.protocol = protocols::kHeartbeat;
    beat.params["container"] = container_id_;
    send(std::move(beat));
  }
  schedule_daemon(heartbeat_period_, [this] { emit_heartbeat(); });
}

void ContainerAgent::handle_message(const AclMessage& message) {
  if (message.protocol == protocols::kExecuteActivity) return handle_execute(message);
  if (message.protocol == protocols::kQueryExecutable) return handle_query_executable(message);
  // Registration acknowledgements and bounced messages need no action.
  if (message.performative == Performative::Agree ||
      message.performative == Performative::Failure)
    return;
  send(make_not_understood(message, "unknown protocol '" + message.protocol + "'"));
}

void ContainerAgent::report_performance(const std::string& outcome, double duration) {
  AclMessage report;
  report.performative = Performative::Inform;
  report.receiver = names::kBrokerage;
  report.protocol = protocols::kReportPerformance;
  report.params["container"] = container_id_;
  report.params["outcome"] = outcome;
  report.params["duration"] = util::format_number(duration, 6);
  send(std::move(report));
}

void ContainerAgent::handle_execute(const AclMessage& message) {
  const std::string service_name = message.param("service");
  const std::string activity_id = message.param("activity");
  auto fail = [&](const std::string& reason) {
    AclMessage reply = message.make_reply(Performative::Failure);
    reply.params["error"] = reason;
    reply.params["activity"] = activity_id;
    reply.params["container"] = container_id_;
    send(std::move(reply));
    report_performance("failure", 0.0);
  };

  const grid::ApplicationContainer* container = grid_->find_container(container_id_);
  if (container == nullptr) return fail("container vanished");
  if (!container->hosts(service_name)) return fail("service not hosted here");
  const wfl::ServiceType* service = catalogue_->find(service_name);
  if (service == nullptr) return fail("unknown service type '" + service_name + "'");

  // Bind the shipped input data against the service precondition.
  wfl::DataSet inputs;
  if (!message.content.empty()) {
    try {
      inputs = wfl::dataset_from_xml_string(message.content);
    } catch (const std::exception& error) {
      return fail(std::string("bad input payload: ") + error.what());
    }
  }
  auto bindings = service->bind_inputs(inputs);
  if (!bindings.has_value()) return fail("precondition not met by supplied data");

  double input_size_mb = 0.0;
  for (const auto& item : inputs.items()) {
    const meta::Value& size = item.get(wfl::props::kSize);
    if (size.type() == meta::ValueType::Number) input_size_mb += size.as_number();
  }

  const grid::SimTime started = now();
  const grid::ExecutionResult result = grid_->execute(
      *gsim_, *injector_, *service, container_id_, input_size_mb, message.param("domain", ""));
  if (!result.success) {
    // Failures surface after the wasted attempt time.
    const grid::SimTime delay =
        result.completion_time > started ? result.completion_time - started : 0.0;
    AclMessage reply = message.make_reply(Performative::Failure);
    reply.params["error"] = result.failure_reason;
    reply.params["activity"] = activity_id;
    reply.params["container"] = container_id_;
    schedule(delay, [this, reply]() mutable { send(std::move(reply)); });
    report_performance("failure", 0.0);
    return;
  }

  // Success: produce outputs and reply at the virtual completion time.
  const std::vector<std::string> output_names =
      util::split_trimmed(message.param("outputs"), ',');
  wfl::DataSet produced;
  if (kernels_ != nullptr) {
    for (auto& item : kernels_->execute(*service, *bindings, output_names))
      produced.put(std::move(item));
  } else {
    const std::string prefix =
        output_names.empty() ? service_name + ":" : std::string();
    auto items = service->produce_outputs(prefix);
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i < output_names.size() && !output_names[i].empty())
        items[i].set_name(output_names[i]);
      produced.put(std::move(items[i]));
    }
  }

  const grid::SimTime duration = result.completion_time - started;
  AclMessage reply = message.make_reply(Performative::Inform);
  reply.params["activity"] = activity_id;
  reply.params["container"] = container_id_;
  reply.params["duration"] = util::format_number(duration, 6);
  reply.params["cost"] = util::format_number(service->cost() * container->price_factor(), 6);
  reply.content = wfl::dataset_to_xml_string(produced);
  schedule(duration, [this, reply]() mutable { send(std::move(reply)); });
  report_performance("success", duration);
}

void ContainerAgent::handle_query_executable(const AclMessage& message) {
  const std::string service_name = message.param("service");
  const grid::ApplicationContainer* container = grid_->find_container(container_id_);
  const grid::GridNode* node =
      container != nullptr ? grid_->find_node(container->node_id()) : nullptr;
  const bool executable = container != nullptr && container->available() &&
                          container->hosts(service_name) && node != nullptr && node->is_up();
  AclMessage reply = message.make_reply(Performative::Inform);
  reply.params["service"] = service_name;
  reply.params["container"] = container_id_;
  reply.params["executable"] = executable ? "true" : "false";
  send(std::move(reply));
}

}  // namespace ig::svc
