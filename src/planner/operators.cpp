#include "planner/operators.hpp"

#include <algorithm>

namespace ig::planner {

namespace {

PlanNode random_terminal(util::Rng& rng, const wfl::ServiceCatalogue& catalogue) {
  const auto& services = catalogue.services();
  if (services.empty()) return PlanNode::terminal("noop");
  const auto index = rng.next_below(services.size());
  return PlanNode::terminal(services[index].name());
}

PlanNode::Kind random_controller(util::Rng& rng) {
  switch (rng.next_below(4)) {
    case 0: return PlanNode::Kind::Sequential;
    case 1: return PlanNode::Kind::Concurrent;
    case 2: return PlanNode::Kind::Selective;
    default: return PlanNode::Kind::Iterative;
  }
}

/// Builds a random subtree consuming at most `budget` nodes (budget >= 1).
PlanNode random_subtree(util::Rng& rng, const wfl::ServiceCatalogue& catalogue,
                        std::size_t budget) {
  if (budget <= 1) return random_terminal(rng, catalogue);
  // Bias towards small arities so trees stay bushy rather than degenerate.
  const std::size_t max_children = std::min<std::size_t>(budget - 1, 4);
  const std::size_t child_count = 1 + rng.next_below(max_children);
  std::size_t remaining = budget - 1;
  std::vector<PlanNode> children;
  children.reserve(child_count);
  for (std::size_t i = 0; i < child_count; ++i) {
    const std::size_t slots_left = child_count - i;
    // Leave at least one node of budget for each remaining child.
    const std::size_t max_for_this = remaining - (slots_left - 1);
    const std::size_t child_budget = 1 + rng.next_below(max_for_this);
    children.push_back(random_subtree(rng, catalogue, child_budget));
    remaining -= children.back().size();
    if (remaining < slots_left - 1) remaining = slots_left - 1;  // defensive
  }
  switch (random_controller(rng)) {
    case PlanNode::Kind::Sequential: return PlanNode::sequential(std::move(children));
    case PlanNode::Kind::Concurrent: return PlanNode::concurrent(std::move(children));
    case PlanNode::Kind::Selective: return PlanNode::selective(std::move(children));
    case PlanNode::Kind::Iterative: return PlanNode::iterative(std::move(children));
    default: return PlanNode::sequential(std::move(children));
  }
}

/// Bushy construction: a controller with 2-3 children whenever the budget
/// allows, terminals only once it is nearly spent.
PlanNode full_subtree(util::Rng& rng, const wfl::ServiceCatalogue& catalogue,
                      std::size_t budget) {
  if (budget < 3) return random_terminal(rng, catalogue);
  const std::size_t child_count = std::min<std::size_t>(2 + rng.next_below(2), budget - 1);
  std::size_t remaining = budget - 1;
  std::vector<PlanNode> children;
  children.reserve(child_count);
  for (std::size_t i = 0; i < child_count; ++i) {
    const std::size_t slots_left = child_count - i;
    const std::size_t share = remaining / slots_left;
    children.push_back(full_subtree(rng, catalogue, share > 0 ? share : 1));
    remaining -= std::min(children.back().size(), remaining);
    if (remaining < slots_left - 1) remaining = slots_left - 1;
  }
  switch (random_controller(rng)) {
    case PlanNode::Kind::Sequential: return PlanNode::sequential(std::move(children));
    case PlanNode::Kind::Concurrent: return PlanNode::concurrent(std::move(children));
    case PlanNode::Kind::Selective: return PlanNode::selective(std::move(children));
    case PlanNode::Kind::Iterative: return PlanNode::iterative(std::move(children));
    default: return PlanNode::sequential(std::move(children));
  }
}

}  // namespace

PlanNode random_tree(util::Rng& rng, const wfl::ServiceCatalogue& catalogue,
                     std::size_t max_size, InitStyle style) {
  if (max_size < 1) max_size = 1;
  const std::size_t target = 1 + rng.next_below(max_size);
  switch (style) {
    case InitStyle::Grow:
      return random_subtree(rng, catalogue, target);
    case InitStyle::Full:
      return full_subtree(rng, catalogue, target);
    case InitStyle::Ramped:
      return rng.next_bool(0.5) ? random_subtree(rng, catalogue, target)
                                : full_subtree(rng, catalogue, target);
  }
  return random_subtree(rng, catalogue, target);
}

CrossoverResult crossover(const PlanNode& parent_a, const PlanNode& parent_b, util::Rng& rng,
                          double crossover_rate, std::size_t smax) {
  CrossoverResult result;
  if (!rng.next_bool(crossover_rate)) return result;

  const std::size_t index_a = rng.next_below(parent_a.size());
  const std::size_t index_b = rng.next_below(parent_b.size());
  const PlanNode& subtree_a = parent_a.at_preorder(index_a);
  const PlanNode& subtree_b = parent_b.at_preorder(index_b);

  // Size check before copying the trees: new_a = a - |sa| + |sb|.
  const std::size_t new_size_a = parent_a.size() - subtree_a.size() + subtree_b.size();
  const std::size_t new_size_b = parent_b.size() - subtree_b.size() + subtree_a.size();
  if (new_size_a > smax || new_size_b > smax) return result;

  result.first = parent_a;
  result.second = parent_b;
  PlanNode detached_a = subtree_a;  // copy before mutation invalidates refs
  PlanNode detached_b = subtree_b;
  result.first.replace_at_preorder(index_a, std::move(detached_b));
  result.second.replace_at_preorder(index_b, std::move(detached_a));
  result.applied = true;
  return result;
}

bool mutate(PlanNode& tree, util::Rng& rng, const wfl::ServiceCatalogue& catalogue,
            double mutation_rate, std::size_t smax, InitStyle style) {
  bool changed = false;
  // Per-node selection. Node indices are re-derived after each applied
  // mutation because the tree's shape changes.
  std::size_t index = 0;
  while (index < tree.size()) {
    if (!rng.next_bool(mutation_rate)) {
      ++index;
      continue;
    }
    const std::size_t subtree_size = tree.at_preorder(index).size();
    const std::size_t rest = tree.size() - subtree_size;
    if (rest >= smax) {
      ++index;
      continue;
    }
    PlanNode replacement = random_tree(rng, catalogue, smax - rest, style);
    if (rest + replacement.size() > smax) {
      // "mutation fails and we keep the original tree"
      ++index;
      continue;
    }
    // Skip over the freshly inserted subtree so one pass cannot cascade.
    const std::size_t inserted = replacement.size();
    tree.replace_at_preorder(index, std::move(replacement));
    index += inserted;
    changed = true;
  }
  return changed;
}

std::vector<std::size_t> select(const std::vector<Fitness>& fitnesses, std::size_t count,
                                SelectionScheme scheme, util::Rng& rng,
                                std::size_t tournament_size) {
  std::vector<std::size_t> chosen;
  chosen.reserve(count);
  if (fitnesses.empty()) return chosen;

  if (scheme == SelectionScheme::Tournament) {
    if (tournament_size < 1) tournament_size = 1;
    for (std::size_t i = 0; i < count; ++i) {
      std::size_t best = rng.next_below(fitnesses.size());
      for (std::size_t k = 1; k < tournament_size; ++k) {
        const std::size_t rival = rng.next_below(fitnesses.size());
        if (fitnesses[rival].overall > fitnesses[best].overall) best = rival;
      }
      chosen.push_back(best);
    }
    return chosen;
  }

  // Roulette: fitness-proportional with a floor so zero-fitness individuals
  // keep an epsilon chance (avoids division by zero on degenerate runs).
  double total = 0.0;
  for (const auto& fitness : fitnesses) total += std::max(fitness.overall, 1e-9);
  for (std::size_t i = 0; i < count; ++i) {
    double ticket = rng.next_double() * total;
    std::size_t winner = fitnesses.size() - 1;
    for (std::size_t j = 0; j < fitnesses.size(); ++j) {
      ticket -= std::max(fitnesses[j].overall, 1e-9);
      if (ticket <= 0) {
        winner = j;
        break;
      }
    }
    chosen.push_back(winner);
  }
  return chosen;
}

}  // namespace ig::planner
