#include "services/storage.hpp"

#include "services/protocol.hpp"
#include "util/strings.hpp"

namespace ig::svc {

using agent::AclMessage;
using agent::Performative;

PersistentStorageService::PersistentStorageService(std::string name,
                                                   store::StorageEngine* engine)
    : Agent(std::move(name)) {
  if (engine != nullptr) {
    store_ = engine;
  } else {
    owned_ = std::make_unique<store::StorageEngine>();  // in-memory
    store_ = owned_.get();
  }
}

void PersistentStorageService::put(const std::string& key, std::string value) {
  store_->put(key, std::move(value));
}

std::optional<std::string> PersistentStorageService::get(const std::string& key) const {
  return store_->get(key);
}

std::vector<std::string> PersistentStorageService::keys_with_prefix(
    const std::string& prefix) const {
  return store_->keys_with_prefix(prefix);
}

void PersistentStorageService::on_start() {
  register_with_information_service(*this, platform(), "persistent-storage");
}

void PersistentStorageService::handle_message(const AclMessage& message) {
  if (message.protocol == protocols::kStorePut) {
    put(message.param("key"), message.content);
    AclMessage reply = message.make_reply(Performative::Agree);
    reply.params["key"] = message.param("key");
    send(std::move(reply));
    return;
  }
  if (message.protocol == protocols::kStoreGet) {
    const std::string key = message.param("key");
    const std::optional<std::string> value = get(key);
    AclMessage reply =
        message.make_reply(value.has_value() ? Performative::Inform : Performative::Failure);
    reply.params["key"] = key;
    if (value.has_value()) reply.content = *value;
    else reply.params["error"] = "no document under key '" + key + "'";
    send(std::move(reply));
    return;
  }
  if (message.protocol == protocols::kStoreList) {
    AclMessage reply = message.make_reply(Performative::Inform);
    reply.params["keys"] = util::join(keys_with_prefix(message.param("prefix")), ",");
    send(std::move(reply));
    return;
  }
  if (!should_bounce_unknown(message)) return;
  send(make_not_understood(message, "unknown protocol '" + message.protocol + "'"));
}

}  // namespace ig::svc
