#include "obs/span.hpp"

namespace ig::obs {

const char* to_string(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::Case: return "case";
    case SpanKind::Activity: return "activity";
    case SpanKind::Barrier: return "barrier";
    case SpanKind::Choice: return "choice";
    case SpanKind::Iteration: return "iteration";
    case SpanKind::Step: return "step";
  }
  return "?";
}

const std::string* Span::tag(const std::string& key) const noexcept {
  for (const auto& [k, v] : tags) {
    if (k == key) return &v;
  }
  return nullptr;
}

void SpanTracer::set_limit(std::size_t limit) {
  std::lock_guard<std::mutex> lock(mutex_);
  limit_ = limit;
  trim_locked();
}

std::size_t SpanTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

SpanId SpanTracer::begin(SpanKind kind, std::string name, std::string case_id, SpanId parent,
                         double at) {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  const SpanId id = next_++;
  Span& span = spans_[id];
  span.id = id;
  span.parent = parent;
  span.kind = kind;
  span.name = std::move(name);
  span.case_id = std::move(case_id);
  span.start = at;
  span.end = at;
  trim_locked();
  return id;
}

void SpanTracer::tag(SpanId id, std::string key, std::string value) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = spans_.find(id);
  if (it == spans_.end()) return;
  it->second.tags.emplace_back(std::move(key), std::move(value));
}

void SpanTracer::end(SpanId id, double at) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = spans_.find(id);
  if (it == spans_.end() || it->second.closed) return;
  it->second.end = at;
  it->second.closed = true;
}

SpanId SpanTracer::instant(SpanKind kind, std::string name, std::string case_id, SpanId parent,
                           double at) {
  const SpanId id = begin(kind, std::move(name), std::move(case_id), parent, at);
  end(id, at);
  return id;
}

std::size_t SpanTracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::vector<Span> SpanTracer::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Span> out;
  out.reserve(spans_.size());
  for (const auto& [id, span] : spans_) out.push_back(span);
  return out;
}

std::vector<Span> SpanTracer::case_spans(const std::string& case_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Span> out;
  for (const auto& [id, span] : spans_) {
    if (span.case_id == case_id) out.push_back(span);
  }
  return out;
}

void SpanTracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  dropped_ = 0;
}

void SpanTracer::trim_locked() {
  if (limit_ == 0) return;
  auto it = spans_.begin();
  while (spans_.size() > limit_ && it != spans_.end()) {
    if (it->second.closed) {
      it = spans_.erase(it);
      ++dropped_;
    } else {
      ++it;
    }
  }
}

}  // namespace ig::obs
