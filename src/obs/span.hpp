// Span-based enactment tracing.
//
// The paper's monitoring service "gathers information about the status of
// each activity"; this module is the per-case, per-activity record of what
// the ATN machine actually did and where (virtual) time went. A SpanTracer
// collects sim-time-stamped spans — case → activity → FORK/JOIN barrier →
// CHOICE decision → loop iteration — with parent/child links and status
// tags for retries, re-plans and chaos-induced faults. Both enactment
// machines emit into it: the synchronous wfl::enact (step-counter
// timestamps) and the asynchronous CoordinationService (virtual-clock
// timestamps), so a chaotic run's trace replays bitwise under the same
// seed. Exporters in obs/export.hpp render spans as Chrome trace_event
// JSON (chrome://tracing / Perfetto).
//
// Threading: span ids are handed out and spans mutated under one mutex —
// emission is per-activity, orders of magnitude rarer than the message hot
// path — so an engine thread may read spans() while a shard worker enacts.
// A disabled tracer returns id 0 from begin() after one relaxed atomic
// load, and every mutation on id 0 is a no-op.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"  // Labels

namespace ig::obs {

/// Creation-ordered span handle; 0 means "no span" (disabled tracer or no
/// parent) and is ignored by every mutator.
using SpanId = std::uint64_t;

enum class SpanKind {
  Case,       ///< one enactment, begin -> terminal reply
  Activity,   ///< one end-user activity, dispatch -> completion/failure
  Barrier,    ///< FORK fan-out (instant) or JOIN wait (first arrival -> fire)
  Choice,     ///< one CHOICE decision (instant)
  Iteration,  ///< one pass of a loop, back-edge -> next decision
  Step,       ///< flow-control node visit (Begin / End / Merge)
};

const char* to_string(SpanKind kind) noexcept;

struct Span {
  SpanId id = 0;
  SpanId parent = 0;       ///< 0 = root
  SpanKind kind = SpanKind::Case;
  std::string name;        ///< activity / process name
  std::string case_id;     ///< grouping key ("case-1")
  double start = 0.0;      ///< sim seconds (or machine steps, sync engine)
  double end = 0.0;
  bool closed = false;
  Labels tags;             ///< status=ok/failed, retry=N, fault=..., ...

  /// First value recorded for `key`, or nullptr.
  const std::string* tag(const std::string& key) const noexcept;

  bool operator==(const Span&) const = default;
};

class SpanTracer {
 public:
  SpanTracer() = default;
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }

  /// Retained-span cap: once exceeded, the oldest *closed* spans are
  /// dropped (open spans survive so their end() still lands). 0 keeps all.
  void set_limit(std::size_t limit);
  std::size_t dropped() const;

  /// Opens a span; returns 0 when disabled.
  SpanId begin(SpanKind kind, std::string name, std::string case_id, SpanId parent,
               double at);
  /// Adds a tag to an open or closed span. No-op for id 0 / unknown ids.
  void tag(SpanId id, std::string key, std::string value);
  /// Closes a span. No-op for id 0 / unknown ids; idempotent.
  void end(SpanId id, double at);
  /// begin + end at the same timestamp (decision points).
  SpanId instant(SpanKind kind, std::string name, std::string case_id, SpanId parent,
                 double at);

  std::size_t size() const;
  /// All retained spans in creation order.
  std::vector<Span> spans() const;
  /// Retained spans belonging to one case, creation order.
  std::vector<Span> case_spans(const std::string& case_id) const;
  void clear();

 private:
  void trim_locked();

  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{false};
  std::map<SpanId, Span> spans_;
  SpanId next_ = 1;
  std::size_t limit_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace ig::obs
