#include "meta/value.hpp"

#include "util/strings.hpp"

namespace ig::meta {

std::string_view to_string(ValueType type) noexcept {
  switch (type) {
    case ValueType::None: return "none";
    case ValueType::String: return "string";
    case ValueType::Number: return "number";
    case ValueType::Boolean: return "boolean";
    case ValueType::List: return "list";
  }
  return "?";
}

Value Value::list_of(const std::vector<std::string>& items) {
  std::vector<Value> values;
  values.reserve(items.size());
  for (const auto& item : items) values.emplace_back(item);
  return Value(std::move(values));
}

ValueType Value::type() const noexcept {
  switch (data_.index()) {
    case 0: return ValueType::None;
    case 1: return ValueType::String;
    case 2: return ValueType::Number;
    case 3: return ValueType::Boolean;
    case 4: return ValueType::List;
  }
  return ValueType::None;
}

std::vector<std::string> Value::as_string_list() const {
  std::vector<std::string> items;
  if (type() == ValueType::String) {
    items.push_back(as_string());
    return items;
  }
  if (type() != ValueType::List) return items;
  for (const auto& item : as_list()) {
    if (item.type() == ValueType::String) items.push_back(item.as_string());
  }
  return items;
}

std::string Value::to_display_string() const {
  switch (type()) {
    case ValueType::None: return "";
    case ValueType::String: return as_string();
    case ValueType::Number: return util::format_number(as_number());
    case ValueType::Boolean: return as_boolean() ? "true" : "false";
    case ValueType::List: {
      std::string out = "{";
      const auto& items = as_list();
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ", ";
        out += items[i].to_display_string();
      }
      out += "}";
      return out;
    }
  }
  return "";
}

bool Value::operator==(const Value& other) const noexcept { return data_ == other.data_; }

}  // namespace ig::meta
