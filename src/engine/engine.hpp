// Sharded multi-case enactment engine — the grid front door.
//
// The coordination service enacts one case at a time on one agent platform;
// the engine turns that single-case machine into a throughput machine. It
// owns N *shards*, each a private `svc::Environment` (simulation + agent
// platform + the full Figure 1 service stack). Shards no longer own
// threads: each shard is an affinity-pinned *job stream* on the shared
// work-stealing `sched::JobSystem` — a chain of pump jobs where each job
// advances the shard's enactment by one slice of simulation events and
// reposts itself. At most one pump job per shard is ever in flight, so the
// virtual-clock substrate stays single-threaded per shard and none of the
// existing services need locks; but because the slices are ordinary jobs,
// an idle shard's worker steals another shard's case steps instead of
// sleeping next to a backlog. Cases flow through a bounded admission queue
// with round-robin per-tenant fairness; a full queue rejects new
// submissions (backpressure) instead of buffering without bound.
//
// Lifecycle: `submit` -> Queued -> Running -> {Completed | Failed |
// Cancelled}; a full queue yields Rejected without creating a case. A
// failed case is retried up to `max_case_retries` times: the engine
// snapshots the failed enactment through the coordination service's
// `checkpoint-case` protocol and re-admits the snapshot (via
// `restore-case`, with the re-planning budget refunded) excluding the shard
// that failed it, so end-user activities that completed before the failure
// replay from the checkpoint instead of re-executing.
//
// Per-shard fault injection (`EngineConfig::shard_failure_floor`) arms the
// shard's `grid::FailureInjector` floor, which is how the bench and tests
// demonstrate that a fleet with one bad shard still completes every case.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sched/job_system.hpp"
#include "services/environment.hpp"
#include "store/storage_engine.hpp"
#include "wfl/case_description.hpp"
#include "wfl/process.hpp"

namespace ig::engine {

/// Case lifecycle states. Rejected is terminal and only ever reported for
/// submissions bounced by a full admission queue (no CaseId is allocated).
enum class CaseState { Queued, Running, Completed, Failed, Cancelled, Rejected };

std::string_view to_string(CaseState state) noexcept;

inline bool is_terminal(CaseState state) noexcept {
  return state != CaseState::Queued && state != CaseState::Running;
}

/// Engine-wide case handle. 0 (`kInvalidCase`) means the submission was
/// rejected by backpressure.
using CaseId = std::uint64_t;
inline constexpr CaseId kInvalidCase = 0;

struct EngineConfig {
  std::size_t shards = 2;          ///< shards, each a private environment
  /// Job-system workers shared by every shard's pump stream. 0 = one per
  /// shard (the old thread-per-shard concurrency). Fewer workers than
  /// shards time-slices the shard streams over the pool via stealing; more
  /// buys nothing (a shard's stream is serialized on itself).
  std::size_t workers = 0;
  std::size_t queue_capacity = 64; ///< admission bound across all tenants
  int max_case_retries = 1;        ///< checkpoint/restore re-admissions per case
  std::uint64_t seed = 42;         ///< root of every shard's derived seed
  /// Template for each shard's stack (topology, catalogue, coordination
  /// tunables). The per-shard seed is derived; monitoring is disabled.
  /// `environment.chaos` is also a template: when enabled, every shard gets
  /// the same rules but a chaos seed derived from (template seed, shard
  /// index), so shards inject decorrelated fault streams while the whole
  /// fleet stays reproducible. With shards = 1 the run is bit-reproducible.
  svc::EnvironmentOptions environment;
  /// Per-shard dispatch-failure floor (index i applies to shard i; missing
  /// entries mean 0 = healthy). See grid::FailureInjector::set_failure_floor.
  std::vector<double> shard_failure_floor;
  /// Simulation events run between engine control checks (cancel, shutdown).
  std::size_t events_per_slice = 2048;
  /// Runaway guard: a single attempt aborts after this many slices.
  std::size_t max_slices_per_case = 1 << 14;
  /// Optional hook run once per shard after its stack is built and before
  /// its worker starts (shard index is the second argument). Tests use it to
  /// inject faulty agents into a specific shard's platform. In durable mode
  /// the hook also re-runs for every per-attempt stack rebuild.
  std::function<void(svc::Environment&, std::size_t)> shard_setup;
  /// Durable journal options. `storage.data_dir` empty (the default) keeps
  /// the engine fully in-memory — the historical behavior, with warm shard
  /// stacks reused across cases. Non-empty arms durable mode: every case
  /// lifecycle transition (admit, retry, cancel, terminal) is WAL-journaled
  /// under the directory, a cold start replays the journal and re-admits
  /// every case that was Queued or Running, and each attempt runs on a
  /// freshly built shard stack seeded from (engine seed, case id, retries)
  /// — independent of which shard hosts it — so an attempt interrupted by
  /// a crash re-executes bit-identically after the restart.
  store::Options storage;
};

/// Terminal report for one case.
struct CaseOutcome {
  CaseState state = CaseState::Failed;
  std::string error;
  double makespan = 0.0;  ///< virtual seconds inside the final attempt
  int activities_executed = 0;
  int activities_replayed = 0;  ///< replayed from a retry checkpoint
  int dispatch_failures = 0;
  int replans = 0;
  int engine_retries = 0;  ///< re-admissions the engine performed
  double goal_satisfaction = 0.0;
  double total_cost = 0.0;
  double latency_seconds = 0.0;  ///< wall clock, submit -> terminal
  std::size_t shard = 0;         ///< shard of the final attempt
  std::size_t completion_index = 0;  ///< 1-based order of reaching a terminal state
};

struct ShardMetrics {
  std::size_t cases_run = 0;  ///< attempts started (retries count again)
  std::size_t cases_completed = 0;
  std::size_t cases_failed = 0;
  std::size_t handler_failures = 0;  ///< agent exceptions contained by the platform
  std::size_t faults_injected = 0;   ///< chaos events (drops, delays, dups, ...)
  std::size_t request_retries = 0;   ///< tracked requests re-sent after a timeout
  std::size_t dead_letters = 0;      ///< tracked requests abandoned after max attempts
  std::size_t containers_recovered = 0;  ///< Dead containers readmitted by the breaker
  std::size_t trace_dropped = 0;  ///< message-trace ring evictions on the shard
  double busy_seconds = 0.0;  ///< wall clock spent enacting
  double utilization = 0.0;   ///< busy_seconds / engine uptime
};

/// One consistent snapshot of the engine counters.
struct EngineMetrics {
  std::size_t submitted = 0;  ///< admitted submissions (excludes rejected)
  std::size_t rejected = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  std::size_t retried = 0;  ///< re-admissions after a failed attempt
  std::size_t recovered = 0;  ///< cases re-admitted by cold-start journal replay
  std::size_t store_io_errors = 0;  ///< journal writes/barriers that failed
  /// True once a journal write failed: running cases finish in memory, new
  /// durable admissions are rejected with a reason (graceful degradation).
  bool degraded = false;
  std::size_t handler_failures = 0;  ///< contained agent exceptions, all shards
  std::size_t faults_injected = 0;   ///< chaos events injected, all shards
  std::size_t request_retries = 0;   ///< request-layer re-sends, all shards
  std::size_t dead_letters = 0;      ///< abandoned requests, all shards
  std::size_t containers_recovered = 0;  ///< circuit-breaker readmissions, all shards
  std::size_t queue_depth = 0;
  std::size_t running = 0;
  // -- shared job-system view (see sched::JobStats for semantics) --
  std::size_t jobs_executed = 0;   ///< pump jobs run across all shards
  std::size_t jobs_stolen = 0;     ///< pump jobs that migrated off their home worker
  std::size_t steal_attempts = 0;
  double steal_rate = 0.0;         ///< stolen / executed
  double latency_p50 = 0.0;  ///< seconds, over terminal cases
  double latency_p90 = 0.0;
  double latency_p99 = 0.0;
  double uptime_seconds = 0.0;
  double completed_per_second = 0.0;
  std::vector<ShardMetrics> shards;
};

class EnactmentEngine {
 public:
  explicit EnactmentEngine(EngineConfig config = {});
  ~EnactmentEngine();  ///< implies shutdown()

  EnactmentEngine(const EnactmentEngine&) = delete;
  EnactmentEngine& operator=(const EnactmentEngine&) = delete;

  const EngineConfig& config() const noexcept { return config_; }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t worker_count() const noexcept { return jobs_->size(); }

  /// True when the engine journals to disk (config.storage.data_dir set).
  bool durable() const noexcept { return journal_ != nullptr; }
  /// The journal backing durable mode (null in in-memory mode). Exposed for
  /// inspection (CLI `store` subcommand, recovery tests); callers must not
  /// append engine-stream events themselves.
  store::StorageEngine* journal() noexcept { return journal_.get(); }
  const store::StorageEngine* journal() const noexcept { return journal_.get(); }

  /// Queues a case for enactment. Returns kInvalidCase (and counts a
  /// rejection) when the admission queue is full or the engine is shutting
  /// down. Thread-safe; callable from any thread.
  CaseId submit(const wfl::ProcessDescription& process,
                const wfl::CaseDescription& case_description,
                const std::string& tenant = "default");

  /// Same, with pre-serialized XML payloads (what the wire protocol carries).
  CaseId submit_xml(std::string process_xml, std::string case_xml,
                    const std::string& tenant = "default");

  /// Current lifecycle state; Rejected for unknown ids (incl. kInvalidCase).
  CaseState status(CaseId id) const;

  /// The terminal report, or nullopt while the case is still queued/running.
  std::optional<CaseOutcome> result(CaseId id) const;

  /// Cancels a case. Queued cases terminate immediately; running cases are
  /// abandoned at the next slice boundary. Returns false when the case is
  /// unknown or already terminal.
  bool cancel(CaseId id);

  /// Blocks until the case reaches a terminal state (or the engine stops).
  std::optional<CaseOutcome> wait(CaseId id);

  /// Blocks until every admitted case is terminal.
  void drain();

  /// Stops the shard pump streams and drains their in-flight jobs (the
  /// worker pool itself survives until destruction, so racing submits stay
  /// safe). Queued cases stay Queued; running attempts are abandoned and
  /// marked Failed. Idempotent.
  void shutdown();

  EngineMetrics metrics() const;

  /// The engine's metrics registry. Case latencies land in the
  /// `engine_case_latency_seconds` histogram as cases finish; every call to
  /// metrics() also refreshes the engine- and per-shard counters (labelled
  /// {shard=i}), so `registry().snapshot()` after metrics() is the complete
  /// exporter feed. EngineMetrics' latency percentiles are derived from the
  /// same histogram, so both views agree on the same run.
  obs::MetricsRegistry& registry() noexcept { return registry_; }
  const obs::MetricsRegistry& registry() const noexcept { return registry_; }

  /// Retained enactment spans of one shard (empty when the shard template
  /// did not enable span_tracing, or the index is out of range). Snapshot;
  /// safe while the shard runs.
  std::vector<obs::Span> shard_spans(std::size_t shard_index) const;

 private:
  struct CaseRecord {
    CaseId id = kInvalidCase;
    std::string tenant;
    std::string process_xml;
    std::string case_xml;
    std::string checkpoint_xml;  ///< non-empty after a checkpointed failure
    CaseState state = CaseState::Queued;
    bool cancel_requested = false;
    int retries_used = 0;
    std::set<std::size_t> excluded_shards;
    std::chrono::steady_clock::time_point submitted_at;
    CaseOutcome outcome;
  };

  struct Shard;  // private environment + pump state machine (engine.cpp)

  struct AttemptResult;  // what one enactment attempt produced (engine.cpp)

  /// One link of a shard's job stream: advances the shard's state machine by
  /// one step and reposts itself while there is work. At most one pump job
  /// per shard is in flight (guarded by Shard::pump_scheduled).
  void pump(Shard& shard);
  bool step(Shard& shard);  ///< returns false when the stream goes idle
  void begin_enact(Shard& shard);
  bool complete_attempt(Shard& shard);
  void post_pump(Shard& shard);
  /// Marks every shard without an in-flight pump as scheduled and returns
  /// them; the caller posts the jobs after releasing the mutex.
  std::vector<Shard*> claim_idle_pumps_locked();
  void admit_locked(CaseRecord& record);
  std::optional<CaseId> pop_for_shard_locked(std::size_t shard_index);
  void finalize_locked(CaseRecord& record, Shard& shard, CaseState state,
                       const agent::AclMessage& reply, bool journal_terminal = true);
  bool cancel_requested(CaseId id) const;

  // -- durable mode ------------------------------------------------------------
  /// Disk-failure containment (durable mode). A store::Error from the
  /// journal never propagates out of the engine after construction:
  /// degrade_locked counts it, flips degraded_ and records the reason;
  /// from then on new durable admissions are rejected while running and
  /// queued cases finish on their in-memory state (DESIGN.md §13).
  void degrade_locked(const std::string& reason);
  /// append_event wrapped in the degradation policy; mutex_ held.
  bool journal_append_locked(std::string_view payload);
  /// Journal durability barrier wrapped in the degradation policy; called
  /// WITHOUT mutex_ (the msync must not serialize the engine).
  bool journal_commit();

  /// Opens the journal and rebuilds records_/queues/counters from the
  /// newest snapshot plus the WAL tail. Constructor-only (no locking).
  void recover_from_journal();
  /// Applies one replayed journal event; idempotent by case id, so events
  /// that are both inside the snapshot blob and in the WAL tail are safe.
  void apply_journal_event(std::string_view payload);
  /// Serializes records_ (+ id/completion counters) as the "engine" stream
  /// snapshot blob. Takes the engine mutex; runs on the snapshotting thread.
  std::string encode_engine_state() const;
  bool decode_engine_state(std::string_view blob);
  /// Replaces `shard`'s environment with a stack built solely from the
  /// pending attempt's (case id, retries) — the durable-mode determinism
  /// contract. Builds outside the engine mutex, swaps under it.
  void refresh_shard_environment(Shard& shard);

  EngineConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable case_terminal_;
  bool stopping_ = false;

  std::map<CaseId, CaseRecord> records_;
  std::map<std::string, std::deque<CaseId>> tenant_queues_;
  std::vector<std::string> tenant_order_;  ///< round-robin ring of active tenants
  std::size_t rr_cursor_ = 0;
  CaseId next_case_id_ = 1;

  std::size_t queued_ = 0;
  std::size_t running_ = 0;
  std::size_t submitted_total_ = 0;
  std::size_t rejected_total_ = 0;
  std::size_t completed_total_ = 0;
  std::size_t failed_total_ = 0;
  std::size_t cancelled_total_ = 0;
  std::size_t retried_total_ = 0;
  std::size_t recovered_total_ = 0;
  std::size_t store_io_errors_ = 0;
  bool degraded_ = false;
  std::string degraded_reason_;
  std::size_t completion_sequence_ = 0;
  /// Mutable: metrics() is a const snapshot but refreshes the published
  /// counters; the registry itself is internally synchronized.
  mutable obs::MetricsRegistry registry_;
  obs::Histogram* latency_hist_ = nullptr;  ///< owned by registry_
  std::chrono::steady_clock::time_point started_at_;

  /// Durable-mode journal; null in in-memory mode. Declared before shards_
  /// so in-flight pump jobs (which append to it) die first.
  std::unique_ptr<store::StorageEngine> journal_;

  std::vector<std::unique_ptr<Shard>> shards_;
  /// Shared worker pool under every shard's pump stream. Declared after
  /// shards_ so in-flight pump jobs never outlive the shards they
  /// reference, and kept alive through shutdown() (which only drains it):
  /// a submit() racing shutdown may post a pump after the drain, and that
  /// post needs a live JobSystem — the pump then sees stopping_ and no-ops.
  std::unique_ptr<sched::JobSystem> jobs_;
};

}  // namespace ig::engine
