// Small string helpers shared across the library.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ig::util {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char separator);

/// Splits on a separator and trims each field; empty fields are dropped.
std::vector<std::string> split_trimmed(std::string_view text, char separator);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view separator);

/// Case-sensitive prefix / suffix tests.
bool starts_with(std::string_view text, std::string_view prefix) noexcept;
bool ends_with(std::string_view text, std::string_view suffix) noexcept;

/// ASCII lower-casing.
std::string to_lower(std::string_view text);

/// True if `text` parses fully as a (possibly signed) decimal number.
bool is_number(std::string_view text) noexcept;

/// Strict, non-throwing numeric parsers. The whole (trimmed) input must be
/// consumed; anything else — empty input, stray suffix, overflow — yields
/// nullopt. Built on std::from_chars, which never throws and never touches
/// the locale, so these are safe on untrusted protocol payloads.
std::optional<double> parse_double(std::string_view text) noexcept;
std::optional<int> parse_int(std::string_view text) noexcept;
std::optional<std::uint64_t> parse_uint(std::string_view text) noexcept;
/// Accepts "true"/"false"/"1"/"0" (case-insensitive for the words).
std::optional<bool> parse_bool(std::string_view text) noexcept;

/// Formats a double with trailing-zero trimming ("1.5", "3", "0.25").
std::string format_number(double value, int max_decimals = 6);

}  // namespace ig::util
