// Write-ahead log over mmap-backed segments, with group commit.
//
// The WAL is a directory of segment files (`wal-<seq>.seg`) forming one
// logical record sequence numbered by LSN. Appends go to the newest
// ("active") segment and roll to a fresh one when a record does not fit;
// a record larger than the standard segment gets a dedicated segment sized
// to hold it, so callers never need to split payloads.
//
// Durability points are explicit: `commit(lsn)` returns once every record
// up to `lsn` is on stable storage. Under concurrency it group-commits —
// one thread performs the msync while the others wait on the same barrier
// and are covered by it, so N concurrent committers cost one fsync, not N.
// `SyncMode::kAlways` folds the barrier into every append (slow, maximal
// safety); `kNone` never syncs until close (benchmarks, throwaway dirs).
//
// Recovery (`open`): segments are scanned in sequence order; the first
// torn tail or LSN discontinuity ends the trustworthy prefix, later
// segments are deleted (their records depended on the lost ones), and the
// log resumes appending after the last intact record.
//
// Failure semantics (DESIGN.md §13): an fsync/msync failure is *fail-stop*
// — the log poisons itself, the failed barrier and every later append or
// commit throw Error(kPoisoned), and no retry is ever attempted (a failed
// fsync leaves the dirty-page state unknowable; retrying and succeeding
// would ack data that may not be on disk — the "fsyncgate" lesson). An
// ENOSPC creating a segment is *not* fail-stop: the append throws
// Error(kNoSpace), the log stays intact, and a later append may succeed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "store/error.hpp"
#include "store/file_ops.hpp"
#include "store/segment.hpp"

namespace ig::store {

enum class SyncMode {
  kNone,    ///< never fsync (fast, loses the tail on crash)
  kCommit,  ///< fsync on commit() barriers, group-committed
  kAlways,  ///< fsync every append before it returns
};

struct WalOptions {
  std::string dir;                     ///< created if missing
  std::size_t segment_size = 1 << 20;  ///< standard segment capacity, bytes
  SyncMode sync = SyncMode::kCommit;
  /// > 0: a commit() leader lingers this long (releasing the commit lock)
  /// before its msync so commits arriving meanwhile — e.g. from other
  /// engine shards finishing cases back to back — are covered by the same
  /// barrier. Trades up to this much commit latency for fewer fsyncs under
  /// sustained load. 0 (default): sync immediately, the historical
  /// behavior. kCommit mode only; kAlways syncs in append.
  std::uint32_t group_window_us = 0;
  /// All file I/O goes through this seam (nullptr = the real POSIX ops).
  /// Must outlive the log; tests point it at a store::FaultFs.
  FileOps* file_ops = nullptr;
};

struct WalStats {
  std::uint64_t appends = 0;        ///< records appended this process
  std::uint64_t fsyncs = 0;         ///< msync/fsync barriers performed
  std::uint64_t group_commits = 0;  ///< commit() calls satisfied by another thread's fsync
  std::uint64_t segments_created = 0;
  std::uint64_t segments_removed = 0;  ///< compaction + recovery deletions
  std::uint64_t records = 0;           ///< live records across all segments
  std::uint64_t bytes = 0;             ///< live payload bytes across all segments
  std::uint64_t recovered_records = 0; ///< records found intact at open
  std::uint64_t fsync_failures = 0;    ///< failed durability barriers (each poisons)
  bool torn_tail_repaired = false;     ///< open() dropped a torn record
  bool poisoned = false;               ///< fail-stop after an fsync failure
};

class WriteAheadLog {
 public:
  /// Opens (creating the directory if needed) and recovers the log.
  /// Throws store::Error when the directory cannot be created or a
  /// segment cannot be mapped.
  explicit WriteAheadLog(WalOptions options);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Replays every intact record with lsn > `after`, in LSN order. Not
  /// thread-safe against append; callers replay before going concurrent.
  void replay(Lsn after, const std::function<void(Lsn, std::string_view)>& fn) const;

  /// Appends one record and returns its LSN. Thread-safe. Under
  /// SyncMode::kAlways the record is durable on return. Throws
  /// store::Error: kPoisoned when the log is fail-stop, kNoSpace/kIo when
  /// a segment roll fails (the log stays intact — nothing was appended).
  Lsn append(std::string_view payload);

  /// Durability barrier: returns once every record with lsn <= `upto` is
  /// synced (no-op under SyncMode::kNone). Thread-safe; concurrent callers
  /// share one fsync. A failed barrier poisons the log and throws
  /// store::Error(kPoisoned) — in this and in every waiting committer —
  /// and durable_lsn() never advances past data a barrier did not cover.
  void commit(Lsn upto);

  /// True once an fsync failure made the log fail-stop.
  bool poisoned() const noexcept { return poisoned_.load(std::memory_order_acquire); }

  Lsn last_lsn() const;
  Lsn durable_lsn() const;

  /// Fast-forwards the log past `lsn` when recovery found it behind a
  /// snapshot (possible when the snapshot survived a crash that the
  /// unsynced WAL tail did not, e.g. under SyncMode::kNone). Every current
  /// segment is covered by that snapshot, so they are deleted and a fresh
  /// segment starts at lsn + 1 — without this, new appends would reuse
  /// LSNs the snapshot already claims and be skipped by the next replay.
  void skip_to(Lsn lsn);

  /// Deletes every non-active segment whose records all have lsn <= `lsn`
  /// (they are covered by a snapshot). Returns segments removed.
  std::size_t remove_segments_below(Lsn lsn);

  std::size_t segment_count() const;
  WalStats stats() const;

  /// Test/CLI hooks into the active segment's framing.
  std::string active_segment_path() const;
  std::size_t active_tail() const;

 private:
  Segment& active_locked() { return *segments_.back(); }
  void roll_locked(std::size_t payload_size);
  void sync_dir();
  /// Marks the log fail-stop; requires mutex_ (all sync sites hold it).
  void poison_locked(std::string reason);

  WalOptions options_;
  FileOps* fops_ = nullptr;
  mutable std::mutex mutex_;  ///< guards segments_ and the append path
  std::vector<std::unique_ptr<Segment>> segments_;
  Lsn last_lsn_ = 0;
  std::uint64_t next_sequence_ = 1;

  // Group-commit state (separate mutex so appends continue during a sync).
  mutable std::mutex commit_mutex_;
  std::condition_variable commit_cv_;
  bool sync_in_flight_ = false;
  Lsn durable_lsn_ = 0;

  // Fail-stop state: the reason is written once under mutex_, then
  // published by the release store; readers acquire-load the flag first.
  std::atomic<bool> poisoned_{false};
  std::string poison_reason_;

  // Stats counters (under mutex_ except the commit-side ones).
  std::uint64_t appends_ = 0;
  std::uint64_t fsyncs_ = 0;
  std::uint64_t fsync_failures_ = 0;
  std::uint64_t group_commits_ = 0;
  std::uint64_t segments_created_ = 0;
  std::uint64_t segments_removed_ = 0;
  std::uint64_t recovered_records_ = 0;
  bool torn_tail_repaired_ = false;
};

}  // namespace ig::store
