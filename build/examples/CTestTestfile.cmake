# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_workflow_language_tour "/root/repo/build/examples/workflow_language_tour")
set_tests_properties(example_workflow_language_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ontology_explorer "/root/repo/build/examples/ontology_explorer")
set_tests_properties(example_ontology_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_checkpoint_migration "/root/repo/build/examples/checkpoint_migration")
set_tests_properties(example_checkpoint_migration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_virus_reconstruction "/root/repo/build/examples/virus_reconstruction")
set_tests_properties(example_virus_reconstruction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_validate "/root/repo/build/examples/igrid_cli" "validate" "/root/repo/examples/workflows/virus_reconstruction.wf")
set_tests_properties(example_cli_validate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_simulate "/root/repo/build/examples/igrid_cli" "simulate" "/root/repo/examples/workflows/minimal.wf")
set_tests_properties(example_cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
