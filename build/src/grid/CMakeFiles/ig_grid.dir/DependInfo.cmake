
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/container.cpp" "src/grid/CMakeFiles/ig_grid.dir/container.cpp.o" "gcc" "src/grid/CMakeFiles/ig_grid.dir/container.cpp.o.d"
  "/root/repo/src/grid/failure.cpp" "src/grid/CMakeFiles/ig_grid.dir/failure.cpp.o" "gcc" "src/grid/CMakeFiles/ig_grid.dir/failure.cpp.o.d"
  "/root/repo/src/grid/grid.cpp" "src/grid/CMakeFiles/ig_grid.dir/grid.cpp.o" "gcc" "src/grid/CMakeFiles/ig_grid.dir/grid.cpp.o.d"
  "/root/repo/src/grid/hardware.cpp" "src/grid/CMakeFiles/ig_grid.dir/hardware.cpp.o" "gcc" "src/grid/CMakeFiles/ig_grid.dir/hardware.cpp.o.d"
  "/root/repo/src/grid/network.cpp" "src/grid/CMakeFiles/ig_grid.dir/network.cpp.o" "gcc" "src/grid/CMakeFiles/ig_grid.dir/network.cpp.o.d"
  "/root/repo/src/grid/node.cpp" "src/grid/CMakeFiles/ig_grid.dir/node.cpp.o" "gcc" "src/grid/CMakeFiles/ig_grid.dir/node.cpp.o.d"
  "/root/repo/src/grid/sim.cpp" "src/grid/CMakeFiles/ig_grid.dir/sim.cpp.o" "gcc" "src/grid/CMakeFiles/ig_grid.dir/sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ig_util.dir/DependInfo.cmake"
  "/root/repo/build/src/wfl/CMakeFiles/ig_wfl.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/ig_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/ig_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
