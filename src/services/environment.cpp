#include "services/environment.hpp"

#include "meta/standard.hpp"
#include "services/container_agent.hpp"
#include "services/protocol.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/ontology.hpp"

namespace ig::svc {

Environment::Environment(const EnvironmentOptions& options)
    : injector_(util::Rng(options.seed)),
      platform_(sim_),
      catalogue_(options.catalogue.empty() ? virolab::make_catalogue() : options.catalogue),
      kernels_(options.kernels) {
  // -- grid topology -----------------------------------------------------------
  grid::TopologyParams topology = options.topology;
  if (topology.service_names.empty()) topology.service_names = catalogue_.names();
  util::Rng topology_rng(options.seed ^ 0x9E3779B97F4A7C15ULL);
  grid::build_topology(grid_, topology, topology_rng);

  platform_.set_tracing(options.tracing);
  platform_.set_trace_limit(options.trace_limit);
  if (options.wire_transport) {
    // Installed before the bootstrap flush so even the service registration
    // traffic crosses the codec: the intern tables warm up on the names and
    // protocols the run will keep using.
    wire_link_ = std::make_unique<wire::WireLink>();
    platform_.set_transport_hook(wire::make_transport_hook(*wire_link_));
  }
  tracer_.set_enabled(options.span_tracing);
  tracer_.set_limit(options.span_limit);

  // -- core services (information service first so registrations succeed) -------
  information_ = &platform_.spawn<InformationService>(names::kInformation);
  brokerage_ = &platform_.spawn<BrokerageService>(names::kBrokerage);
  // Monitoring precedes matchmaking: the matchmaker consults it for
  // heartbeat liveness when ranking containers.
  HeartbeatConfig heartbeat = options.heartbeat;
  if (options.heartbeat_period > 0) heartbeat.period = options.heartbeat_period;
  monitoring_ = &platform_.spawn<MonitoringService>(names::kMonitoring, grid_,
                                                    options.monitor_period, heartbeat);
  matchmaking_ = &platform_.spawn<MatchmakingService>(
      names::kMatchmaking, grid_, brokerage_,
      options.heartbeat_period > 0 ? monitoring_ : nullptr);
  ontology_ = &platform_.spawn<OntologyService>(names::kOntology);
  ontology_->store(meta::standard_grid_ontology());
  ontology_->store(virolab::make_fig13_ontology());
  authentication_ = &platform_.spawn<AuthenticationService>(names::kAuthentication);
  storage_ = &platform_.spawn<PersistentStorageService>(names::kPersistentStorage,
                                                        options.storage_engine);
  scheduling_ = &platform_.spawn<SchedulingService>(names::kScheduling);
  simulation_ =
      &platform_.spawn<SimulationService>(names::kSimulation, catalogue_, options.gp.evaluation);
  planning_ = &platform_.spawn<PlanningService>(names::kPlanning, catalogue_, options.gp);
  coordination_ =
      &platform_.spawn<CoordinationService>(names::kCoordination, options.coordination);
  // Decorrelate the retry-jitter streams from the environment seed.
  coordination_->set_tracker_seed(util::derive_stream(options.seed, 0x7AC4ULL));
  planning_->set_tracker_seed(util::derive_stream(options.seed, 0x7AC5ULL));
  coordination_->set_tracer(&tracer_);

  // -- one agent per application container ----------------------------------------
  virolab::SyntheticKernels* kernels =
      options.use_synthetic_kernels ? &kernels_ : nullptr;
  for (const auto& container : grid_.containers()) {
    platform_.spawn<ContainerAgent>(container->id(), grid_, sim_, injector_, container->id(),
                                    catalogue_, kernels, options.heartbeat_period);
  }

  // Flush registrations and advertisements so the environment is ready.
  // Chaos is installed only after the bootstrap flush: losing a service
  // registration models nothing from the paper and would just wedge the
  // whole environment before the experiment starts.
  sim_.run(100'000);
  if (options.chaos.enabled()) platform_.set_chaos(options.chaos);
}

void Environment::publish_metrics(obs::MetricsRegistry& registry,
                                  const obs::Labels& labels) const {
  platform_.publish_metrics(registry, labels);
  obs::Labels coordination_labels = labels;
  coordination_labels.emplace_back("owner", "coordination");
  coordination_->tracker().publish(registry, coordination_labels);
  obs::Labels planning_labels = labels;
  planning_labels.emplace_back("owner", "planning");
  planning_->tracker().publish(registry, planning_labels);
  monitoring_->publish(registry, labels);
  registry.counter("tracer_spans_dropped_total", labels).set_to(tracer_.dropped());
  if (wire_link_ != nullptr) wire_link_->publish_metrics(registry, labels);
}

std::unique_ptr<Environment> make_environment(EnvironmentOptions options) {
  return std::make_unique<Environment>(options);
}

std::unique_ptr<Environment> make_shard_stack(EnvironmentOptions base,
                                              std::uint64_t engine_seed,
                                              std::size_t shard_index,
                                              double failure_floor) {
  base.seed = util::derive_stream(engine_seed, 0x5AD0ULL, shard_index);
  base.monitor_period = 0.0;  // the engine slices the calendar and drains it
  // Shard-level parallelism replaces planner-level parallelism: with N
  // shards each running its own GP episodes, letting every episode also
  // fan out to hardware_concurrency workers oversubscribes the machine.
  // An explicit thread count in the base options still wins.
  if (base.gp.threads == 0) base.gp.threads = 1;
  auto environment = std::make_unique<Environment>(base);
  if (failure_floor > 0.0) environment->injector().set_failure_floor(failure_floor);
  return environment;
}

}  // namespace ig::svc
