// Re-planning under failure (Section 3.3, Figure 3).
//
//   $ ./replanning_demo
//
// The demo enacts the Figure 10 workflow, but every container offering the
// POR (orientation refinement) service is taken down before execution
// starts. When the coordination service cannot dispatch POR anywhere, it
// ships the accumulated data to the planning service; the planner probes the
// runtime (information service -> brokerage -> container agents, steps 2-7
// of Figure 3) and returns a plan that avoids POR. The case still reaches
// its goal.
#include <cstdio>
#include <string>

#include "agent/trace_render.hpp"
#include "services/environment.hpp"
#include "services/protocol.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"
#include "wfl/xml_io.hpp"

using namespace ig;
namespace names = svc::names;
namespace protocols = svc::protocols;

namespace {

class DemoUser : public agent::Agent {
 public:
  DemoUser(std::string name, wfl::ProcessDescription process, wfl::CaseDescription cd)
      : Agent(std::move(name)), process_(std::move(process)), case_(std::move(cd)) {}

  void on_start() override {
    agent::AclMessage enact;
    enact.performative = agent::Performative::Request;
    enact.receiver = names::kCoordination;
    enact.protocol = protocols::kEnactCase;
    enact.content = wfl::process_to_xml_string(process_);
    enact.params["case-xml"] = wfl::case_to_xml_string(case_);
    send(std::move(enact));
  }

  void handle_message(const agent::AclMessage& message) override {
    if (message.protocol != protocols::kCaseCompleted) return;
    report = message;
  }

  wfl::ProcessDescription process_;
  wfl::CaseDescription case_;
  agent::AclMessage report;
};

}  // namespace

int main() {
  svc::EnvironmentOptions options;
  options.tracing = true;
  options.gp.population_size = 120;
  options.gp.generations = 15;
  auto environment = svc::make_environment(options);

  // Sabotage: every container withdraws its POR offering (the containers
  // themselves stay up for the services they co-host).
  std::size_t withdrawn = 0;
  for (const auto* container : environment->grid().containers_advertising("POR")) {
    environment->grid().find_container(container->id())->unhost_service("POR");
    ++withdrawn;
  }
  std::printf("POR withdrawn from %zu containers\n\n", withdrawn);

  auto& user = environment->platform().spawn<DemoUser>(
      "demo-user", virolab::make_fig10_process(), virolab::make_case_description());
  environment->platform().clear_trace();
  environment->run();

  std::printf("case completed: success=%s replans=%s activities=%s\n\n",
              user.report.param("success").c_str(), user.report.param("replans").c_str(),
              user.report.param("activities-executed").c_str());

  // Print the Figure 3 exchange from the recorded trace, as a sequence
  // diagram across the participating services.
  std::printf("-- re-planning message flow (Figure 3) --\n");
  agent::TraceRenderOptions render;
  render.protocols = {protocols::kReplanRequest, protocols::kQueryService,
                      protocols::kQueryProviders, protocols::kQueryExecutable};
  std::printf("%s", agent::render_arrows(environment->platform().trace(), render).c_str());
  std::printf("\n%s",
              agent::render_sequence_diagram(environment->platform().trace(), render).c_str());
  return user.report.param("success") == "true" ? 0 : 1;
}
