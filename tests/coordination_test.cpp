#include <gtest/gtest.h>

#include "services/environment.hpp"
#include "services/protocol.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"
#include "wfl/structure.hpp"
#include "wfl/xml_io.hpp"

namespace ig::svc {
namespace {

using agent::AclMessage;
using agent::Performative;

class Client : public agent::Agent {
 public:
  explicit Client(std::string name = "ui") : Agent(std::move(name)) {}
  void handle_message(const AclMessage& message) override { replies.push_back(message); }
  std::vector<AclMessage> replies;
};

struct Fixture {
  explicit Fixture(EnvironmentOptions options = {}) {
    if (options.topology.domains == 3 && options.topology.nodes_per_domain == 4) {
      options.topology.domains = 2;
      options.topology.nodes_per_domain = 3;
    }
    options.gp.population_size = 140;
    options.gp.generations = 18;
    environment = make_environment(options);
    client = &environment->platform().spawn<Client>("ui");
  }

  AclMessage enact(const wfl::ProcessDescription& process, const wfl::CaseDescription& cd) {
    AclMessage request;
    request.performative = Performative::Request;
    request.sender = client->name();
    request.receiver = names::kCoordination;
    request.protocol = protocols::kEnactCase;
    request.content = wfl::process_to_xml_string(process);
    request.params["case-xml"] = wfl::case_to_xml_string(cd);
    environment->platform().send(request);
    environment->run();
    EXPECT_FALSE(client->replies.empty());
    return client->replies.empty() ? AclMessage{} : client->replies.back();
  }

  std::unique_ptr<Environment> environment;
  Client* client = nullptr;
};

TEST(Coordination, EnactsFigure10CaseToCompletion) {
  Fixture fixture;
  const AclMessage reply =
      fixture.enact(virolab::make_fig10_process(), virolab::make_case_description());
  ASSERT_EQ(reply.performative, Performative::Inform) << reply.param("error");
  EXPECT_EQ(reply.param("success"), "true");
  EXPECT_EQ(reply.param("goal-satisfaction"), "1");
  EXPECT_EQ(reply.param("replans"), "0");
  EXPECT_GT(std::stod(reply.param("makespan")), 0.0);

  // The refinement loop converges after two passes (18 -> 11.7 -> 7.6 A):
  // 2 x (POR + 3xP3DR + PSF) + POD + P3DR1 = 12 activity executions.
  EXPECT_EQ(reply.param("activities-executed"), "12");

  // Final state carries the expected result D12 with a value at the target.
  const wfl::DataSet final_state = wfl::dataset_from_xml_string(reply.content);
  ASSERT_NE(final_state.find("D12"), nullptr);
  EXPECT_LE(final_state.find("D12")->get("Value").as_number(), 8.0);
  EXPECT_EQ(fixture.environment->coordination().cases_completed(), 1u);
}

TEST(Coordination, LoopIterationCountFollowsKernelConvergence) {
  // A slower-converging instrument needs three refinement passes.
  EnvironmentOptions options;
  options.kernels.initial_resolution = 24.0;
  options.kernels.refinement_factor = 0.7;  // 24 -> 16.8 -> 11.8 -> 8.2 -> 5.8
  Fixture fixture(options);
  const AclMessage reply =
      fixture.enact(virolab::make_fig10_process(), virolab::make_case_description());
  ASSERT_EQ(reply.param("success"), "true") << reply.param("error");
  // 4 passes x 5 activities + 2 = 22.
  EXPECT_EQ(reply.param("activities-executed"), "22");
}

TEST(Coordination, InvalidProcessRejected) {
  Fixture fixture;
  wfl::ProcessDescription broken("broken");
  broken.add_flow_control("B", wfl::ActivityKind::Begin);
  // No End activity at all.
  const AclMessage reply = fixture.enact(broken, virolab::make_case_description());
  EXPECT_EQ(reply.performative, Performative::Failure);
}

TEST(Coordination, RetriesOnAlternateContainerAfterFailure) {
  // Containers fail 30% of dispatches; with retries the case still completes.
  EnvironmentOptions options;
  options.topology.container_failure_probability = 0.3;
  options.coordination.max_retries = 4;
  options.coordination.max_replans = 2;
  options.seed = 101;
  Fixture fixture(options);
  const AclMessage reply =
      fixture.enact(virolab::make_fig10_process(), virolab::make_case_description());
  ASSERT_EQ(reply.performative, Performative::Inform) << reply.param("error");
  EXPECT_EQ(reply.param("success"), "true");
  EXPECT_EQ(reply.param("goal-satisfaction"), "1");
}

TEST(Coordination, ReplansWhenServiceLosesAllHosts) {
  Fixture fixture;
  // Enact a plan that needs POR, but take POR offline first: the dispatch
  // fails outright, coordination triggers Figure 3 re-planning, and the new
  // plan reaches the goal without POR.
  auto& grid = fixture.environment->grid();
  for (const auto* container : grid.containers_advertising("POR"))
    grid.find_container(container->id())->unhost_service("POR");

  const AclMessage reply =
      fixture.enact(virolab::make_fig10_process(), virolab::make_case_description());
  ASSERT_EQ(reply.performative, Performative::Inform) << reply.param("error");
  EXPECT_EQ(reply.param("success"), "true");
  EXPECT_NE(reply.param("replans"), "0");
  EXPECT_EQ(reply.param("goal-satisfaction"), "1");
  EXPECT_GE(fixture.environment->coordination().replans_triggered(), 1u);
}

TEST(Coordination, FailsAfterReplanBudgetExhausted) {
  EnvironmentOptions options;
  options.coordination.max_replans = 1;
  Fixture fixture(options);
  // No PSF anywhere: the goal (a resolution file) is unreachable, every
  // plan eventually stalls, and the case fails gracefully.
  auto& grid = fixture.environment->grid();
  for (const auto* container : grid.containers_advertising("PSF"))
    grid.find_container(container->id())->unhost_service("PSF");

  const AclMessage reply =
      fixture.enact(virolab::make_fig10_process(), virolab::make_case_description());
  EXPECT_EQ(reply.performative, Performative::Failure);
  EXPECT_EQ(fixture.environment->coordination().cases_failed(), 1u);
}

TEST(Coordination, TrivialLoopGuardTerminatesViaGuardrail) {
  EnvironmentOptions options;
  options.coordination.max_loop_iterations = 3;
  Fixture fixture(options);
  // A loop whose continue-guard is always true (as GP-evolved plans have)
  // must still terminate through the loop-iteration guardrail.
  const wfl::FlowExpr expr = wfl::parse_flow(
      "BEGIN, POD; P3DR1=P3DR; {ITERATIVE {COND true} {P3DR2=P3DR}}; "
      "{FORK {P3DR3=P3DR} {P3DR4=P3DR} JOIN}; PSF, END");
  const wfl::ProcessDescription process = wfl::lower_to_process(expr, "looper");
  const AclMessage reply = fixture.enact(process, virolab::make_case_description());
  ASSERT_EQ(reply.performative, Performative::Inform) << reply.param("error");
  EXPECT_EQ(reply.param("success"), "true");
}

TEST(Coordination, MultipleCasesSequentially) {
  Fixture fixture;
  for (int i = 0; i < 3; ++i) {
    fixture.environment->kernels().reset();
    const AclMessage reply =
        fixture.enact(virolab::make_fig10_process(), virolab::make_case_description());
    EXPECT_EQ(reply.param("success"), "true") << reply.param("error");
  }
  EXPECT_EQ(fixture.environment->coordination().cases_completed(), 3u);
}

TEST(Coordination, MakespanReflectsSlowWanStaging) {
  // Same workload, but all inter-domain links throttled: makespan grows.
  EnvironmentOptions fast_options;
  fast_options.seed = 7;
  Fixture fast(fast_options);
  const AclMessage fast_reply =
      fast.enact(virolab::make_fig10_process(), virolab::make_case_description());
  ASSERT_EQ(fast_reply.param("success"), "true");

  EnvironmentOptions slow_options;
  slow_options.seed = 7;
  Fixture slow(slow_options);
  const auto domains = slow.environment->grid().domains();
  for (std::size_t i = 0; i < domains.size(); ++i) {
    for (std::size_t j = i + 1; j < domains.size(); ++j) {
      slow.environment->grid().network().set_link(domains[i], domains[j], {5.0, 0.5});
    }
  }
  slow.environment->grid().network().set_default_link({5.0, 0.5});
  const AclMessage slow_reply =
      slow.enact(virolab::make_fig10_process(), virolab::make_case_description());
  ASSERT_EQ(slow_reply.param("success"), "true");
  EXPECT_GT(std::stod(slow_reply.param("makespan")),
            std::stod(fast_reply.param("makespan")));
}

}  // namespace
}  // namespace ig::svc
