#include "store/file_ops.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace ig::store {
namespace {

class PosixFileOps final : public FileOps {
 public:
  int open(const std::string& path, int flags, int mode) override {
    return ::open(path.c_str(), flags, mode);
  }
  int close(int fd) override { return ::close(fd); }
  ssize_t pread(int fd, void* buf, std::size_t count, off_t offset) override {
    return ::pread(fd, buf, count, offset);
  }
  ssize_t pwrite(int fd, const void* buf, std::size_t count, off_t offset) override {
    return ::pwrite(fd, buf, count, offset);
  }
  int fsync(int fd) override { return ::fsync(fd); }
  int ftruncate(int fd, off_t length) override { return ::ftruncate(fd, length); }
  off_t size(int fd) override {
    struct stat st{};
    if (::fstat(fd, &st) != 0) return -1;
    return st.st_size;
  }
  void* mmap(int fd, std::size_t length) override {
    return ::mmap(nullptr, length, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  }
  int msync(void* addr, std::size_t length, bool sync) override {
    return ::msync(addr, length, sync ? MS_SYNC : MS_ASYNC);
  }
  int munmap(void* addr, std::size_t length) override { return ::munmap(addr, length); }
  int rename(const std::string& from, const std::string& to) override {
    return ::rename(from.c_str(), to.c_str());
  }
  int unlink(const std::string& path) override { return ::unlink(path.c_str()); }
  int mkdir(const std::string& path, int mode) override {
    return ::mkdir(path.c_str(), static_cast<mode_t>(mode));
  }
};

}  // namespace

FileOps& posix_file_ops() {
  static PosixFileOps ops;
  return ops;
}

}  // namespace ig::store
