file(REMOVE_RECURSE
  "libig_agent.a"
)
