file(REMOVE_RECURSE
  "CMakeFiles/ig_planner.dir/convert.cpp.o"
  "CMakeFiles/ig_planner.dir/convert.cpp.o.d"
  "CMakeFiles/ig_planner.dir/evaluate.cpp.o"
  "CMakeFiles/ig_planner.dir/evaluate.cpp.o.d"
  "CMakeFiles/ig_planner.dir/gp.cpp.o"
  "CMakeFiles/ig_planner.dir/gp.cpp.o.d"
  "CMakeFiles/ig_planner.dir/operators.cpp.o"
  "CMakeFiles/ig_planner.dir/operators.cpp.o.d"
  "CMakeFiles/ig_planner.dir/plan_tree.cpp.o"
  "CMakeFiles/ig_planner.dir/plan_tree.cpp.o.d"
  "CMakeFiles/ig_planner.dir/simplify.cpp.o"
  "CMakeFiles/ig_planner.dir/simplify.cpp.o.d"
  "CMakeFiles/ig_planner.dir/workload.cpp.o"
  "CMakeFiles/ig_planner.dir/workload.cpp.o.d"
  "libig_planner.a"
  "libig_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
