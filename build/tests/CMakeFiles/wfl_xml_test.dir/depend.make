# Empty dependencies file for wfl_xml_test.
# This may be replaced when dependencies are built.
