// Authentication service.
//
// "The authentication services contribute to the security of the
// environment." Principals present a shared secret and receive a session
// token; other services can verify tokens before honouring requests.
// Tokens are deterministic HMAC-like digests of (principal, nonce) — enough
// to exercise the protocol without real cryptography (documented
// substitution; the paper gives no construction at all).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "agent/agent.hpp"

namespace ig::svc {

class AuthenticationService : public agent::Agent {
 public:
  explicit AuthenticationService(std::string name = "as") : Agent(std::move(name)) {}

  /// Registers a principal with a shared secret.
  void add_principal(std::string principal, std::string secret);

  void on_start() override;
  void handle_message(const agent::AclMessage& message) override;

  /// Direct verification for other services.
  bool verify(const std::string& principal, const std::string& token) const;

  std::size_t issued_tokens() const noexcept { return issued_; }

 private:
  std::string issue_token(const std::string& principal);

  std::map<std::string, std::string> secrets_;        ///< principal -> secret
  std::map<std::string, std::string> active_tokens_;  ///< principal -> token
  std::uint64_t nonce_ = 0;
  std::size_t issued_ = 0;
};

}  // namespace ig::svc
