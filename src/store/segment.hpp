// Memory-mapped append-only segment files.
//
// A segment is one fixed-capacity file holding a run of length-prefixed,
// CRC32C-framed records:
//
//   [ header 40B ][ u32 len | u32 crc32c | payload ] ... [ zeros ... ]
//
// The file is pre-sized at creation and memory-mapped, so an append is a
// memcpy and a durability point is one msync — no write(2) syscalls on the
// hot path. Unwritten capacity is zero-filled, which is what makes the end
// of the record run self-describing: a frame whose length field is zero is
// the clean end of the log, and a frame whose length is implausible or
// whose CRC does not match its payload is a *torn tail* — a record that a
// crash cut mid-write. `open` drops the torn record, zeroes everything
// after the last intact frame (so a later crash cannot resurrect stale
// bytes as a plausible frame), and resumes appending from there. Records
// never span segments; the write-ahead log (wal.hpp) rolls to a new
// segment when a record does not fit.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "store/file_ops.hpp"

namespace ig::store {

/// Log sequence number: 1-based, monotonically increasing record index
/// across the whole log. 0 means "nothing".
using Lsn = std::uint64_t;

class Segment {
 public:
  static constexpr std::size_t kHeaderSize = 40;
  static constexpr std::size_t kFrameOverhead = 8;  ///< u32 len + u32 crc

  /// Creates a pre-sized file at `path` and maps it. `capacity` includes
  /// the header. All I/O goes through `fops`, which must outlive the
  /// segment. Returns nullptr on any filesystem error, with errno holding
  /// the failing operation's error.
  static std::unique_ptr<Segment> create(FileOps& fops, const std::string& path,
                                         std::size_t capacity, std::uint64_t sequence,
                                         Lsn first_lsn);

  /// Maps an existing segment, scans its records and repairs the tail.
  /// Returns nullptr when the file is missing or its header is not a valid
  /// segment header (such a file holds no trustworthy records at all).
  static std::unique_ptr<Segment> open(FileOps& fops, const std::string& path);

  ~Segment();

  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  const std::string& path() const noexcept { return path_; }
  std::uint64_t sequence() const noexcept { return sequence_; }
  Lsn first_lsn() const noexcept { return first_lsn_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t tail() const noexcept { return tail_; }
  bool torn_tail_repaired() const noexcept { return torn_; }

  /// Intact records, in append order, as views into the mapping (valid for
  /// the segment's lifetime).
  const std::vector<std::string_view>& records() const noexcept { return records_; }
  Lsn last_lsn() const noexcept {
    return records_.empty() ? first_lsn_ - 1 : first_lsn_ + records_.size() - 1;
  }

  bool fits(std::size_t payload_size) const noexcept {
    return payload_size + kFrameOverhead <= capacity_ - tail_;
  }

  /// Appends one framed record; the caller must have checked fits() and
  /// payload must be non-empty (a zero length marks the end of the run).
  void append(std::string_view payload);

  /// Flushes the mapping to stable storage (msync MS_SYNC). False on
  /// failure, with errno set — the WAL treats that as fail-stop.
  bool sync();

 private:
  Segment() = default;

  FileOps* fops_ = nullptr;
  std::string path_;
  unsigned char* map_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t tail_ = kHeaderSize;
  std::uint64_t sequence_ = 0;
  Lsn first_lsn_ = 1;
  bool torn_ = false;
  std::vector<std::string_view> records_;
};

}  // namespace ig::store
