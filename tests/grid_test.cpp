#include <gtest/gtest.h>

#include "grid/grid.hpp"
#include "virolab/catalogue.hpp"

namespace ig::grid {
namespace {

HardwareSpec fast() {
  HardwareSpec hw;
  hw.speed = 4.0;
  return hw;
}

TEST(Hardware, SoftwareMatching) {
  SoftwareSpec installed{"mpich", "mpi", "ANL", "3.4", "linux"};
  SoftwareSpec by_name{"mpich", "", "", "", ""};
  SoftwareSpec by_version{"mpich", "", "", "3.4", ""};
  SoftwareSpec wrong_version{"mpich", "", "", "4.0", ""};
  EXPECT_TRUE(satisfies(installed, by_name));
  EXPECT_TRUE(satisfies(installed, by_version));
  EXPECT_FALSE(satisfies(installed, wrong_version));
  EXPECT_TRUE(has_software({installed}, by_name));
  EXPECT_FALSE(has_software({}, by_name));
}

TEST(Node, ExecutionTimeScalesWithSpeedAndNodes) {
  GridNode slow("n1", "slow", "d1", HardwareSpec{});  // speed 1
  EXPECT_DOUBLE_EQ(slow.execution_time(10.0), 10.0);
  GridNode quick("n2", "quick", "d1", fast());
  EXPECT_DOUBLE_EQ(quick.execution_time(10.0), 2.5);
  quick.set_node_count(4);
  EXPECT_DOUBLE_EQ(quick.execution_time(10.0), 0.625);
}

TEST(Node, QueueSerializesWork) {
  GridNode node("n", "n", "d", HardwareSpec{});  // speed 1
  EXPECT_DOUBLE_EQ(node.enqueue_work(0.0, 5.0), 5.0);
  // Second task queues behind the first even though submitted at t=1.
  EXPECT_DOUBLE_EQ(node.enqueue_work(1.0, 5.0), 10.0);
  // A task after the queue drains starts fresh.
  EXPECT_DOUBLE_EQ(node.enqueue_work(20.0, 5.0), 25.0);
  EXPECT_DOUBLE_EQ(node.busy_time(), 15.0);
  EXPECT_EQ(node.completed_tasks(), 3u);
}

TEST(Network, LinksSymmetricWithDefault) {
  NetworkModel network;
  network.set_link("a", "b", {0.1, 10.0});
  EXPECT_DOUBLE_EQ(network.link("a", "b").latency_s, 0.1);
  EXPECT_DOUBLE_EQ(network.link("b", "a").latency_s, 0.1);
  // Unknown pair uses the default.
  EXPECT_DOUBLE_EQ(network.link("a", "zzz").latency_s, network.default_link().latency_s);
}

TEST(Network, TransferTime) {
  NetworkModel network;
  network.set_link("a", "b", {0.1, 10.0});
  // 50 MB over 10 MB/s + 0.1 latency.
  EXPECT_DOUBLE_EQ(network.transfer_time("a", "b", 50.0), 5.1);
  // Transform factor inflates the payload.
  EXPECT_DOUBLE_EQ(network.transfer_time("a", "b", 50.0, 2.0), 10.1);
  // Local transfers use the fast local link.
  EXPECT_LT(network.transfer_time("a", "a", 50.0), 0.1);
}

TEST(Network, CompressionShrinksOnWireSizeButCostsCpu) {
  NetworkModel network;
  LinkSpec plain{0.0, 10.0, {}};
  LinkSpec compressed{0.0, 10.0, {}};
  compressed.transform.compress = true;
  compressed.transform.compress_ratio = 0.5;
  compressed.transform.cpu_mb_s = 1e9;  // negligible CPU for this check
  network.set_link("a", "b", plain);
  network.set_link("a", "c", compressed);
  // 100 MB: plain 10 s; compressed 50 MB on wire -> 5 s.
  EXPECT_DOUBLE_EQ(network.transfer_time("a", "b", 100.0), 10.0);
  EXPECT_NEAR(network.transfer_time("a", "c", 100.0), 5.0, 1e-6);

  // With a slow transformer the CPU cost shows up (2 passes).
  compressed.transform.cpu_mb_s = 100.0;
  network.set_link("a", "c", compressed);
  EXPECT_NEAR(network.transfer_time("a", "c", 100.0), 5.0 + 2.0, 1e-6);
}

TEST(Network, EncryptionAddsOverheadAndCpu) {
  TransformSpec transform;
  transform.encrypt = true;
  transform.encrypt_overhead = 1.1;
  transform.cpu_mb_s = 100.0;
  EXPECT_NEAR(transform.effective_size(100.0), 110.0, 1e-9);
  EXPECT_NEAR(transform.processing_time(100.0), 2.0, 1e-9);
}

TEST(Network, ByteSwapCostsOnePass) {
  TransformSpec transform;
  transform.byte_swap = true;
  transform.cpu_mb_s = 50.0;
  EXPECT_DOUBLE_EQ(transform.effective_size(100.0), 100.0);
  EXPECT_NEAR(transform.processing_time(100.0), 2.0, 1e-9);
}

TEST(Network, NoTransformIsFree) {
  TransformSpec transform;
  EXPECT_FALSE(transform.any());
  EXPECT_DOUBLE_EQ(transform.processing_time(1000.0), 0.0);
  EXPECT_DOUBLE_EQ(transform.effective_size(1000.0), 1000.0);
}

TEST(Grid, TopologyConstruction) {
  Grid grid;
  grid.add_node("n1", "one", "d1", fast());
  grid.add_container("c1", "n1");
  EXPECT_NE(grid.find_node("n1"), nullptr);
  EXPECT_NE(grid.find_container("c1"), nullptr);
  EXPECT_EQ(grid.find_node("nope"), nullptr);
  EXPECT_THROW(grid.add_node("n1", "dup", "d1", fast()), std::invalid_argument);
  EXPECT_THROW(grid.add_container("c1", "n1"), std::invalid_argument);
  EXPECT_THROW(grid.add_container("c2", "ghost"), std::invalid_argument);
}

TEST(Grid, ContainersHostingFiltersAvailability) {
  Grid grid;
  grid.add_node("n1", "one", "d1", fast());
  grid.add_node("n2", "two", "d2", fast());
  auto& c1 = grid.add_container("c1", "n1");
  auto& c2 = grid.add_container("c2", "n2");
  c1.host_service("POD");
  c2.host_service("POD");
  EXPECT_EQ(grid.containers_hosting("POD").size(), 2u);

  c1.set_available(false);
  EXPECT_EQ(grid.containers_hosting("POD").size(), 1u);
  EXPECT_EQ(grid.containers_advertising("POD").size(), 2u);

  grid.set_node_state("n2", NodeState::Down);
  EXPECT_TRUE(grid.containers_hosting("POD").empty());
  grid.set_node_state("n2", NodeState::Up);
  grid.set_container_available("c1", true);
  EXPECT_EQ(grid.containers_hosting("POD").size(), 2u);
}

TEST(Grid, ExecuteSuccessAdvancesQueue) {
  Grid grid;
  grid.add_node("n1", "one", "d1", fast());
  auto& container = grid.add_container("c1", "n1");
  container.host_service("POD");
  Simulation sim;
  FailureInjector injector{util::Rng(1)};
  const wfl::ServiceType* pod = virolab::make_catalogue().find("POD");
  ASSERT_NE(pod, nullptr);
  const ExecutionResult result = grid.execute(sim, injector, *pod, "c1", 0.0, "d1");
  EXPECT_TRUE(result.success);
  EXPECT_GT(result.completion_time, 0.0);
  EXPECT_EQ(container.dispatch_count(), 1u);
  EXPECT_EQ(container.failure_count(), 0u);
}

TEST(Grid, ExecuteFailsOnUnavailableContainer) {
  Grid grid;
  grid.add_node("n1", "one", "d1", fast());
  auto& container = grid.add_container("c1", "n1");
  container.host_service("POD");
  container.set_available(false);
  Simulation sim;
  FailureInjector injector{util::Rng(1)};
  const auto catalogue = virolab::make_catalogue();
  const ExecutionResult result = grid.execute(sim, injector, *catalogue.find("POD"), "c1", 0, "d1");
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.failure_reason, "container unavailable");
}

TEST(Grid, ExecuteAlwaysFailsWithCertainFailureProbability) {
  Grid grid;
  grid.add_node("n1", "one", "d1", fast());
  auto& container = grid.add_container("c1", "n1");
  container.host_service("POD");
  container.set_failure_probability(1.0);
  Simulation sim;
  FailureInjector injector{util::Rng(1)};
  const auto catalogue = virolab::make_catalogue();
  const ExecutionResult result = grid.execute(sim, injector, *catalogue.find("POD"), "c1", 0, "d1");
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.failure_reason, "execution failure");
  EXPECT_EQ(container.failure_count(), 1u);
}

TEST(Grid, ExecuteStagesDataAcrossDomains) {
  Grid grid;
  grid.add_node("n1", "one", "remote", fast());
  auto& container = grid.add_container("c1", "n1");
  container.host_service("POD");
  grid.network().set_link("home", "remote", {1.0, 1.0});  // slow WAN
  Simulation sim;
  FailureInjector injector{util::Rng(1)};
  const auto catalogue = virolab::make_catalogue();
  const ExecutionResult local = grid.execute(sim, injector, *catalogue.find("POD"), "c1", 0, "remote");
  Grid grid2;
  grid2.add_node("n1", "one", "remote", fast());
  grid2.add_container("c1", "n1").host_service("POD");
  grid2.network().set_link("home", "remote", {1.0, 1.0});
  const ExecutionResult remote =
      grid2.execute(sim, injector, *catalogue.find("POD"), "c1", 100.0, "home");
  // Shipping 100 MB over the 1 MB/s WAN adds ~101 s of staging.
  EXPECT_GT(remote.completion_time, local.completion_time + 100.0);
}

TEST(FailureInjection, ScheduledOutageAndRecovery) {
  Grid grid;
  grid.add_node("n1", "one", "d1", fast());
  grid.add_container("c1", "n1").host_service("POD");
  Simulation sim;
  FailureInjector injector{util::Rng(1)};
  injector.schedule_container_outage(sim, grid, "c1", 5.0, 10.0);
  sim.run_until(6.0);
  EXPECT_FALSE(grid.find_container("c1")->available());
  sim.run_until(20.0);
  EXPECT_TRUE(grid.find_container("c1")->available());
}

TEST(FailureInjection, NodeOutage) {
  Grid grid;
  grid.add_node("n1", "one", "d1", fast());
  grid.add_container("c1", "n1").host_service("POD");
  Simulation sim;
  FailureInjector injector{util::Rng(1)};
  injector.schedule_node_outage(sim, grid, "n1", 2.0, 0.0);  // permanent
  sim.run();
  EXPECT_FALSE(grid.find_node("n1")->is_up());
  EXPECT_TRUE(grid.containers_hosting("POD").empty());
}

TEST(Topology, BuilderCoversEveryService) {
  Grid grid;
  TopologyParams params;
  params.domains = 2;
  params.nodes_per_domain = 3;
  params.service_names = {"POD", "P3DR", "POR", "PSF"};
  params.services_per_container = 1;
  util::Rng rng(7);
  build_topology(grid, params, rng);
  EXPECT_EQ(grid.nodes().size(), 6u);
  EXPECT_EQ(grid.containers().size(), 6u);
  for (const auto& service : params.service_names) {
    EXPECT_FALSE(grid.containers_advertising(service).empty()) << service;
  }
  EXPECT_EQ(grid.domains().size(), 2u);
}

TEST(Topology, DeterministicForSeed) {
  TopologyParams params;
  params.service_names = {"POD"};
  Grid a;
  Grid b;
  util::Rng rng_a(9);
  util::Rng rng_b(9);
  build_topology(a, params, rng_a);
  build_topology(b, params, rng_b);
  ASSERT_EQ(a.nodes().size(), b.nodes().size());
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.nodes()[i]->hardware().speed, b.nodes()[i]->hardware().speed);
  }
}

}  // namespace
}  // namespace ig::grid
