// Ablation A13 — initialization style (Section 3.4.2).
//
// The paper generates "an arbitrary tree structure for a plan of a given
// size" without fixing the distribution. Classic GP distinguishes grow
// (free-form), full (bushy) and ramped half-and-half initialization; this
// sweep measures their effect on the virolab planning problem.
#include <algorithm>
#include <cstdio>

#include "gp_sweep.hpp"

using namespace ig;

int main() {
  const planner::PlanningProblem problem = bench::virolab_problem();
  struct Style {
    const char* label;
    planner::InitStyle style;
  };
  const Style styles[] = {
      {"grow", planner::InitStyle::Grow},
      {"full", planner::InitStyle::Full},
      {"ramped", planner::InitStyle::Ramped},
  };
  constexpr int kRuns = 5;

  std::printf("A13: initialization-style ablation (%d runs each)\n\n", kRuns);
  bench::print_sweep_header("init");
  int best_optimal = 0;
  for (const auto& style : styles) {
    planner::GpConfig config;
    config.population_size = 100;
    config.generations = 15;
    config.init_style = style.style;
    const bench::SweepPoint point = bench::run_sweep_point(problem, config, kRuns);
    bench::print_sweep_row(style.label, point);
    best_optimal = std::max(best_optimal, point.optimal_runs);
  }
  std::printf("\nexpected shape: all three styles solve this four-service problem; tree\n"
              "shape matters more on deeper workloads (see bench_workload_scaling).\n");
  const bool ok = best_optimal == kRuns;
  std::printf("shape holds: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
