file(REMOVE_RECURSE
  "../bench/bench_fig2_planning_flow"
  "../bench/bench_fig2_planning_flow.pdb"
  "CMakeFiles/bench_fig2_planning_flow.dir/bench_fig2_planning_flow.cpp.o"
  "CMakeFiles/bench_fig2_planning_flow.dir/bench_fig2_planning_flow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_planning_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
