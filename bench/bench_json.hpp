// Machine-readable bench output: each planner bench appends one JSON object
// per record to BENCH_planner.json in the working directory (JSON Lines —
// one self-contained object per line, so independent bench binaries can
// share the file without a read-modify-write cycle). Perf-tracking tooling
// reads it with any JSONL-capable loader.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

namespace ig::bench {

/// One record under construction. Usage:
///   JsonRecord record("bench_table2_planning");
///   record.add("mean_fitness", fitness.mean());
///   record.append_to("BENCH_planner.json");
class JsonRecord {
 public:
  explicit JsonRecord(const std::string& bench_name) {
    line_ = "{\"bench\":\"" + bench_name + "\"";
  }

  /// Non-finite values (the stats accumulators report NaN for "no samples")
  /// are skipped entirely — the key is simply absent from the record, which
  /// both keeps the line valid JSON and lets readers distinguish "not
  /// measured" from a genuine zero.
  JsonRecord& add(const char* key, double value) {
    if (!std::isfinite(value)) return *this;
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return add_raw(key, buffer);
  }

  JsonRecord& add(const char* key, std::size_t value) {
    return add_raw(key, std::to_string(value).c_str());
  }

  JsonRecord& add(const char* key, const std::string& value) {
    std::string escaped;
    escaped.reserve(value.size() + 2);
    escaped += '"';
    for (const char c : value) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    escaped += '"';
    return add_raw(key, escaped.c_str());
  }

  /// Appends `{...}\n` to `path`; returns false when the file is unwritable
  /// (benches treat that as non-fatal — the human-readable table already
  /// went to stdout).
  bool append_to(const char* path = "BENCH_planner.json") const {
    std::FILE* file = std::fopen(path, "a");
    if (file == nullptr) return false;
    std::fprintf(file, "%s}\n", line_.c_str());
    std::fclose(file);
    return true;
  }

 private:
  JsonRecord& add_raw(const char* key, const char* rendered) {
    line_ += ",\"";
    line_ += key;
    line_ += "\":";
    line_ += rendered;
    return *this;
  }

  std::string line_;
};

}  // namespace ig::bench
