// Structured workflow expressions and the Section-2 concrete syntax.
//
// The process-description grammar of the paper composes activity sets out of
// sequences, `{FORK {...} {...} JOIN}` concurrent blocks,
// `{CHOICE {cond} {...} ... MERGE}` selective blocks and
// `{ITERATIVE {COND cond} {...}}` loops. FlowExpr is the abstract syntax of
// that language; `lower_to_process` / `lift_from_process` (structure.hpp)
// convert between expressions and activity/transition graphs.
//
// Concrete syntax accepted by `parse_flow` (whitespace-insensitive):
//
//   workflow   := 'BEGIN' ',' sequence ',' 'END'
//   sequence   := element (';' element)*
//   element    := activity | concurrent | selective | iterative
//   activity   := NAME ('=' SERVICE)?          -- e.g. P3DR1=P3DR
//   concurrent := '{' 'FORK' block+ 'JOIN' '}'
//   selective  := '{' 'CHOICE' (condblock block)+ 'MERGE' '}'
//   iterative  := '{' 'ITERATIVE' '{' 'COND' condition '}' block '}'
//   block      := '{' sequence? '}'
//   condblock  := '{' condition '}'
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "wfl/condition.hpp"

namespace ig::wfl {

class FlowParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Abstract syntax of the process-description language.
struct FlowExpr {
  enum class Kind { Activity, Sequence, Concurrent, Selective, Iterative };

  Kind kind = Kind::Sequence;

  // Activity payload.
  std::string name;     ///< activity display name (e.g. "P3DR1")
  std::string service;  ///< service type invoked (e.g. "P3DR"); equals name when omitted

  /// Sequence: the elements, in order. Concurrent: the parallel branches.
  /// Selective: the alternative branches. Iterative: exactly one body.
  std::vector<FlowExpr> children;

  /// Selective: guards()[i] selects children[i]. Iterative: guards()[0] is
  /// the *continue* condition. Empty otherwise.
  std::vector<Condition> guards;

  // -- factories --------------------------------------------------------------
  static FlowExpr activity(std::string name, std::string service = {});
  static FlowExpr sequence(std::vector<FlowExpr> elements);
  static FlowExpr concurrent(std::vector<FlowExpr> branches);
  static FlowExpr selective(std::vector<Condition> guards, std::vector<FlowExpr> branches);
  static FlowExpr iterative(Condition continue_condition, FlowExpr body);

  // -- queries ----------------------------------------------------------------
  /// Number of end-user activity references in the expression.
  std::size_t activity_count() const noexcept;
  /// Total node count (activities + structure nodes), the GP "size" measure.
  std::size_t node_count() const noexcept;
  /// Depth of the expression tree (an activity alone has depth 1).
  std::size_t depth() const noexcept;
  /// Names of all referenced services, with duplicates.
  std::vector<std::string> service_references() const;

  bool operator==(const FlowExpr& other) const;

  /// Serializes to the concrete syntax above (single line).
  std::string to_text() const;
  /// Pretty indented multi-line rendering for humans.
  std::string to_tree_string() const;
};

/// Parses the concrete syntax; throws FlowParseError.
FlowExpr parse_flow(std::string_view text);

}  // namespace ig::wfl
