#include <gtest/gtest.h>

#include "wfl/flowexpr.hpp"

namespace ig::wfl {
namespace {

TEST(FlowExpr, ActivityFactory) {
  const FlowExpr activity = FlowExpr::activity("P3DR1", "P3DR");
  EXPECT_EQ(activity.kind, FlowExpr::Kind::Activity);
  EXPECT_EQ(activity.name, "P3DR1");
  EXPECT_EQ(activity.service, "P3DR");
  // Service defaults to the name.
  EXPECT_EQ(FlowExpr::activity("POD").service, "POD");
}

TEST(FlowExpr, SequenceOfOneCollapses) {
  std::vector<FlowExpr> one;
  one.push_back(FlowExpr::activity("POD"));
  const FlowExpr collapsed = FlowExpr::sequence(std::move(one));
  EXPECT_EQ(collapsed.kind, FlowExpr::Kind::Activity);
}

TEST(FlowExpr, SelectiveGuardCountChecked) {
  std::vector<FlowExpr> branches;
  branches.push_back(FlowExpr::activity("A"));
  EXPECT_THROW(FlowExpr::selective({}, std::move(branches)), FlowParseError);
}

TEST(FlowExpr, Counts) {
  const FlowExpr expr = parse_flow("BEGIN, POD; {FORK {P3DR} {P3DR} JOIN}; PSF, END");
  EXPECT_EQ(expr.activity_count(), 4u);
  // seq + 2 leaf + fork node + 2 leaves... node_count: Sequence(3 children:
  // POD, Concurrent(2), PSF) = 1+1+ (1+2) +1 = 6
  EXPECT_EQ(expr.node_count(), 6u);
  EXPECT_EQ(expr.depth(), 3u);
}

TEST(FlowExpr, ServiceReferences) {
  const FlowExpr expr = parse_flow("BEGIN, POD; P3DR1=P3DR; P3DR2=P3DR, END");
  const auto services = expr.service_references();
  ASSERT_EQ(services.size(), 3u);
  EXPECT_EQ(services[0], "POD");
  EXPECT_EQ(services[1], "P3DR");
  EXPECT_EQ(services[2], "P3DR");
}

TEST(FlowParse, BareSequence) {
  const FlowExpr expr = parse_flow("A; B; C");
  EXPECT_EQ(expr.kind, FlowExpr::Kind::Sequence);
  EXPECT_EQ(expr.children.size(), 3u);
}

TEST(FlowParse, BeginEndWrapper) {
  const FlowExpr expr = parse_flow("BEGIN, A; B, END");
  EXPECT_EQ(expr.kind, FlowExpr::Kind::Sequence);
  EXPECT_EQ(expr.children.size(), 2u);
}

TEST(FlowParse, NameEqualsService) {
  const FlowExpr expr = parse_flow("P3DR1=P3DR");
  EXPECT_EQ(expr.name, "P3DR1");
  EXPECT_EQ(expr.service, "P3DR");
}

TEST(FlowParse, Fork) {
  const FlowExpr expr = parse_flow("{FORK {A; B} {C} JOIN}");
  EXPECT_EQ(expr.kind, FlowExpr::Kind::Concurrent);
  ASSERT_EQ(expr.children.size(), 2u);
  EXPECT_EQ(expr.children[0].kind, FlowExpr::Kind::Sequence);
  EXPECT_EQ(expr.children[1].kind, FlowExpr::Kind::Activity);
}

TEST(FlowParse, Choice) {
  const FlowExpr expr =
      parse_flow("{CHOICE {X.V > 1} {A} {X.V <= 1} {B; C} MERGE}");
  EXPECT_EQ(expr.kind, FlowExpr::Kind::Selective);
  ASSERT_EQ(expr.children.size(), 2u);
  ASSERT_EQ(expr.guards.size(), 2u);
  EXPECT_EQ(expr.guards[0].to_string(), "X.V > 1");
  EXPECT_EQ(expr.children[1].children.size(), 2u);
}

TEST(FlowParse, ChoiceEmptyBranch) {
  const FlowExpr expr = parse_flow("{CHOICE {X.V > 1} {A} {X.V <= 1} {} MERGE}");
  ASSERT_EQ(expr.children.size(), 2u);
  EXPECT_EQ(expr.children[1].kind, FlowExpr::Kind::Sequence);
  EXPECT_TRUE(expr.children[1].children.empty());
}

TEST(FlowParse, Iterative) {
  const FlowExpr expr = parse_flow("{ITERATIVE {COND R.Value > 8} {A; B}}");
  EXPECT_EQ(expr.kind, FlowExpr::Kind::Iterative);
  ASSERT_EQ(expr.children.size(), 1u);
  ASSERT_EQ(expr.guards.size(), 1u);
  EXPECT_EQ(expr.guards[0].to_string(), "R.Value > 8");
  EXPECT_EQ(expr.children[0].children.size(), 2u);
}

TEST(FlowParse, NestedStructures) {
  const FlowExpr expr = parse_flow(
      "BEGIN, POD; {ITERATIVE {COND R.Value > 8} "
      "{POR; {FORK {P3DR} {P3DR} {P3DR} JOIN}; PSF}}, END");
  EXPECT_EQ(expr.activity_count(), 6u);
  const FlowExpr& loop = expr.children[1];
  EXPECT_EQ(loop.kind, FlowExpr::Kind::Iterative);
  EXPECT_EQ(loop.children[0].children[1].kind, FlowExpr::Kind::Concurrent);
}

TEST(FlowParse, Errors) {
  EXPECT_THROW(parse_flow("BEGIN, A"), FlowParseError);           // missing END
  EXPECT_THROW(parse_flow("{FORK JOIN}"), FlowParseError);        // no branches
  EXPECT_THROW(parse_flow("{CHOICE MERGE}"), FlowParseError);     // no branches
  EXPECT_THROW(parse_flow("{WAT {A} }"), FlowParseError);         // unknown keyword
  EXPECT_THROW(parse_flow("A; "), FlowParseError);                // dangling separator
  EXPECT_THROW(parse_flow("{FORK {A} {B} JOIN} trailing"), FlowParseError);
  EXPECT_THROW(parse_flow("{ITERATIVE {COND x.y > 1} {A}"), FlowParseError);  // missing brace
}

TEST(FlowRoundTrip, TextToExprToText) {
  const char* cases[] = {
      "BEGIN, POD, END",
      "BEGIN, POD; P3DR, END",
      "BEGIN, {FORK {A} {B; C} JOIN}, END",
      "BEGIN, {CHOICE {X.V > 1} {A} {X.V <= 1} {B} MERGE}, END",
      "BEGIN, {ITERATIVE {COND R.Value > 8} {POR; PSF}}, END",
      "BEGIN, POD; P3DR1=P3DR; {ITERATIVE {COND R.Value > 8} "
      "{POR; {FORK {P3DR2=P3DR} {P3DR3=P3DR} {P3DR4=P3DR} JOIN}; PSF}}, END",
  };
  for (const char* text : cases) {
    const FlowExpr parsed = parse_flow(text);
    const FlowExpr reparsed = parse_flow(parsed.to_text());
    EXPECT_TRUE(parsed == reparsed) << text << "\n -> " << parsed.to_text();
  }
}

TEST(FlowRoundTrip, TreeStringMentionsStructure) {
  const FlowExpr expr = parse_flow(
      "BEGIN, POD; {ITERATIVE {COND R.Value > 8} {POR}}, END");
  const std::string tree = expr.to_tree_string();
  EXPECT_NE(tree.find("Sequential"), std::string::npos);
  EXPECT_NE(tree.find("Iterative"), std::string::npos);
  EXPECT_NE(tree.find("POD"), std::string::npos);
}

}  // namespace
}  // namespace ig::wfl
