// Discrete-event simulation kernel.
//
// The paper's environment is a campus grid; experiments here run against a
// simulated one. All services, agents, message deliveries and activity
// executions advance on this virtual clock, which makes every experiment
// deterministic and independent of wall-clock speed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ig::grid {

/// Virtual time in seconds.
using SimTime = double;

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

/// A single-threaded event calendar with a virtual clock.
///
/// Events scheduled for the same instant fire in scheduling order (FIFO),
/// which keeps agent message interleavings deterministic.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const noexcept { return now_; }

  /// Schedules `action` to run `delay` seconds from now (delay >= 0).
  EventId schedule(SimTime delay, std::function<void()> action);

  /// Schedules `action` at absolute virtual time `at` (clamped to now).
  EventId schedule_at(SimTime at, std::function<void()> action);

  /// Schedules a *daemon* event: background upkeep (heartbeats, utilization
  /// sampling) that must never keep the calendar alive on its own. `run`
  /// executes daemons that precede real work but stops — and reports the
  /// calendar as drained — once only daemons remain; they stay queued and
  /// resume when real work is scheduled again. `run_until` executes them
  /// unconditionally (it is time-bounded). Mirrors daemon threads.
  EventId schedule_daemon(SimTime delay, std::function<void()> action);

  /// Cancels a pending event; returns false if already fired or unknown.
  bool cancel(EventId id);

  /// Runs the next event; returns false when the calendar is empty.
  bool step();

  /// Runs events until the calendar drains or `max_events` fire.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs events with time <= `until`; the clock ends at `until` even if
  /// fewer events existed.
  std::size_t run_until(SimTime until);

  std::size_t pending_events() const noexcept { return queue_.size() - cancelled_.size(); }
  /// Pending non-daemon events: the "real work" that keeps `run` going.
  std::size_t real_pending() const noexcept { return real_pending_; }
  std::size_t executed_events() const noexcept { return executed_; }

 private:
  bool step_one(bool daemons_alone);

  struct Event {
    SimTime time;
    std::uint64_t sequence;
    EventId id;
    // Ordering for the min-heap: earliest time first, FIFO within a time.
    bool operator>(const Event& other) const noexcept {
      if (time != other.time) return time > other.time;
      return sequence > other.sequence;
    }
  };

  struct Action {
    std::function<void()> callback;
    bool daemon = false;
  };

  EventId enqueue(SimTime at, std::function<void()> action, bool daemon);

  SimTime now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  EventId next_id_ = 1;
  std::size_t executed_ = 0;
  std::size_t real_pending_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_set<EventId> cancelled_;
  // Actions are stored out-of-band so Event stays trivially copyable.
  std::unordered_map<EventId, Action> actions_;
};

}  // namespace ig::grid
