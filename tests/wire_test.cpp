// Binary ACL wire codec: framing, interning, zero-copy decode, the
// loopback channel, and the platform transport hook.
//
// The contract under test: encode -> decode -> materialize round-trips
// every AclMessage bitwise (arbitrary binary content included — the very
// bytes the XML path must reject), interning shrinks repeat frames without
// ever desyncing across duplicated definitions, and a platform with the
// wire hook installed behaves exactly like one without it, chaos replay
// included.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "agent/platform.hpp"
#include "obs/metrics.hpp"
#include "services/environment.hpp"
#include "wire/acl_xml.hpp"
#include "wire/channel.hpp"
#include "wire/codec.hpp"
#include "xml/xml.hpp"

namespace ig::wire {
namespace {

using agent::AclMessage;
using agent::Performative;

AclMessage make_message(const std::string& conversation = "c-1") {
  AclMessage message;
  message.performative = Performative::Request;
  message.sender = "coordination";
  message.receiver = "ac-3";
  message.conversation_id = conversation;
  message.protocol = "enactment-request";
  message.ontology = "grid-standard";
  message.content = "<activity name='mc-gen'/>";
  message.params["activity"] = "mc-gen";
  message.params["deadline"] = "12.5";
  return message;
}

bool same_message(const AclMessage& a, const AclMessage& b) {
  return std::tie(a.performative, a.sender, a.receiver, a.conversation_id, a.protocol,
                  a.ontology, a.content, a.params) ==
         std::tie(b.performative, b.sender, b.receiver, b.conversation_id, b.protocol,
                  b.ontology, b.content, b.params);
}

/// Encode one message and decode it back with fresh codec state.
AclMessage round_trip_once(const AclMessage& message) {
  Encoder encoder;
  Decoder decoder;
  const std::string frame = encoder.encode(message);
  std::string_view payload;
  std::size_t frame_size = 0;
  std::string error;
  EXPECT_EQ(peek_frame(frame, payload, frame_size, &error), FrameStatus::kFrame) << error;
  EXPECT_EQ(frame_size, frame.size());
  WireMessageView view;
  EXPECT_TRUE(decoder.decode_payload(payload, view, &error)) << error;
  return view.materialize();
}

// ---------------------------------------------------------------------------
// codec round trips
// ---------------------------------------------------------------------------

TEST(WireCodec, RoundTripsEveryField) {
  const AclMessage original = make_message();
  const AclMessage decoded = round_trip_once(original);
  EXPECT_TRUE(same_message(original, decoded));
}

TEST(WireCodec, RoundTripsEveryPerformative) {
  const Performative all[] = {
      Performative::Request,        Performative::Inform,
      Performative::Agree,          Performative::Refuse,
      Performative::Failure,        Performative::QueryRef,
      Performative::QueryIf,        Performative::Propose,
      Performative::AcceptProposal, Performative::RejectProposal,
      Performative::Subscribe,      Performative::Cancel,
      Performative::NotUnderstood,
  };
  for (const Performative performative : all) {
    AclMessage message = make_message();
    message.performative = performative;
    EXPECT_EQ(round_trip_once(message).performative, performative)
        << agent::to_string(performative);
  }
}

TEST(WireCodec, RoundTripsArbitraryBinaryContent) {
  // Every byte value, twice over, including embedded NULs — the payload the
  // XML path cannot carry (satellite: XML rejects, binary round-trips).
  std::string blob;
  for (int pass = 0; pass < 2; ++pass)
    for (int byte = 0; byte < 256; ++byte) blob.push_back(static_cast<char>(byte));
  AclMessage message = make_message();
  message.content = blob;
  message.params[std::string("k\0ey", 4)] = std::string("\x00\x01\x02", 3);
  const AclMessage decoded = round_trip_once(message);
  EXPECT_TRUE(same_message(message, decoded));
  EXPECT_EQ(decoded.content.size(), 512u);
}

TEST(WireCodec, RoundTripsEmptyFields) {
  AclMessage message;  // all strings empty, no params
  EXPECT_TRUE(same_message(message, round_trip_once(message)));
}

TEST(WireCodec, VarintRoundTripsBoundaries) {
  const std::uint64_t values[] = {0,   1,   127,        128,
                                  129, 300, 0xFFFFFFFF, 0xFFFFFFFFFFFFFFFFULL};
  for (const std::uint64_t value : values) {
    std::string bytes;
    put_varint(bytes, value);
    store::Reader reader(bytes);
    const auto decoded = read_varint(reader);
    ASSERT_TRUE(decoded.has_value()) << value;
    EXPECT_EQ(*decoded, value);
    EXPECT_TRUE(reader.done());
  }
}

// ---------------------------------------------------------------------------
// interning
// ---------------------------------------------------------------------------

TEST(WireIntern, RepeatFramesShrinkAndHitTheTable) {
  Encoder encoder;
  Decoder decoder;
  const std::string first = encoder.encode(make_message("c-1"));
  const std::string second = encoder.encode(make_message("c-2"));
  // Same vocabulary (performative, protocol, ontology, 2 param names): the
  // second frame references ids instead of re-spelling the strings.
  EXPECT_LT(second.size(), first.size());
  EXPECT_EQ(encoder.stats().intern_misses, 5u);
  EXPECT_EQ(encoder.stats().intern_hits, 5u);
  EXPECT_EQ(encoder.intern_size(), 5u);

  for (const std::string& frame : {first, second}) {
    std::string_view payload;
    std::size_t frame_size = 0;
    std::string error;
    ASSERT_EQ(peek_frame(frame, payload, frame_size, &error), FrameStatus::kFrame) << error;
    WireMessageView view;
    ASSERT_TRUE(decoder.decode_payload(payload, view, &error)) << error;
    EXPECT_EQ(view.protocol, "enactment-request");
  }
  EXPECT_EQ(decoder.intern_size(), 5u);
}

TEST(WireIntern, DuplicatedDefinitionFrameReplaysCleanly) {
  // A chaos-duplicated first frame re-sends definitions the decoder already
  // holds; explicit ids make that idempotent rather than a desync.
  Encoder encoder;
  Decoder decoder;
  const std::string frame = encoder.encode(make_message());
  std::string_view payload;
  std::size_t frame_size = 0;
  ASSERT_EQ(peek_frame(frame, payload, frame_size, nullptr), FrameStatus::kFrame);
  for (int replay = 0; replay < 3; ++replay) {
    WireMessageView view;
    std::string error;
    ASSERT_TRUE(decoder.decode_payload(payload, view, &error)) << error;
    EXPECT_TRUE(same_message(make_message(), view.materialize()));
  }
  EXPECT_EQ(decoder.intern_size(), 5u);
}

TEST(WireIntern, ReferenceToUnknownIdIsACleanDecodeError) {
  // Frame 2 references ids defined by frame 1; a decoder that never saw
  // frame 1 (dropped definition) must error, not read out of bounds.
  Encoder encoder;
  encoder.encode(make_message("c-1"));
  const std::string second = encoder.encode(make_message("c-2"));
  std::string_view payload;
  std::size_t frame_size = 0;
  ASSERT_EQ(peek_frame(second, payload, frame_size, nullptr), FrameStatus::kFrame);
  Decoder fresh;
  WireMessageView view;
  std::string error;
  EXPECT_FALSE(fresh.decode_payload(payload, view, &error));
  EXPECT_NE(error.find("intern"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// framing
// ---------------------------------------------------------------------------

TEST(WireFrame, NeedMoreOnEveryPartialPrefix) {
  Encoder encoder;
  const std::string frame = encoder.encode(make_message());
  for (std::size_t length = 0; length < frame.size(); ++length) {
    std::string_view payload;
    std::size_t frame_size = 0;
    EXPECT_EQ(peek_frame(frame.substr(0, length), payload, frame_size, nullptr),
              FrameStatus::kNeedMore)
        << "prefix length " << length;
  }
}

TEST(WireFrame, CrcMismatchIsBad) {
  Encoder encoder;
  std::string frame = encoder.encode(make_message());
  frame[kFrameHeaderBytes] ^= 0x01;  // first payload byte
  std::string_view payload;
  std::size_t frame_size = 0;
  std::string error;
  EXPECT_EQ(peek_frame(frame, payload, frame_size, &error), FrameStatus::kBad);
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST(WireFrame, OversizedLengthPrefixIsBadNotAnAllocation) {
  std::string bogus(kFrameHeaderBytes, '\0');
  bogus[0] = '\xFF';
  bogus[1] = '\xFF';
  bogus[2] = '\xFF';
  bogus[3] = '\xFF';  // length = 0xFFFFFFFF
  std::string_view payload;
  std::size_t frame_size = 0;
  std::string error;
  EXPECT_EQ(peek_frame(bogus, payload, frame_size, &error), FrameStatus::kBad);
  EXPECT_NE(error.find("length"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// channel
// ---------------------------------------------------------------------------

TEST(WireChannel, DrainReturnsMessagesInSendOrder) {
  FramedChannel channel;
  channel.a().send(make_message("c-1"));
  channel.a().send(make_message("c-2"));
  const std::vector<AclMessage> received = channel.b().drain();
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0].conversation_id, "c-1");
  EXPECT_EQ(received[1].conversation_id, "c-2");
  EXPECT_EQ(channel.b().incoming().pending_bytes(), 0u);
}

TEST(WireChannel, ByteAtATimeFeedStillDeliversWholeFrames) {
  // The stream must tolerate arbitrary fragmentation, like a real socket.
  Encoder encoder;
  std::string bytes;
  encoder.encode(make_message("c-1"), bytes);
  encoder.encode(make_message("c-2"), bytes);

  Stream stream;
  std::size_t delivered = 0;
  for (const char byte : bytes) {
    stream.feed_bytes(std::string_view(&byte, 1));
    delivered += stream.receive([](const WireMessageView&) {});
  }
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(stream.pending_bytes(), 0u);
  EXPECT_EQ(stream.decode_errors(), 0u);
}

TEST(WireChannel, CorruptFramePoisonsTheRestOfTheStream) {
  Encoder encoder;
  std::string bytes;
  encoder.encode(make_message("c-1"), bytes);
  const std::size_t first_end = bytes.size();
  encoder.encode(make_message("c-2"), bytes);
  bytes[first_end + kFrameHeaderBytes] ^= 0x40;  // corrupt the second payload

  Stream stream;
  stream.feed_bytes(bytes);
  const std::size_t delivered = stream.receive([](const WireMessageView&) {});
  EXPECT_EQ(delivered, 1u);  // the first frame still lands
  EXPECT_EQ(stream.decode_errors(), 1u);
  EXPECT_EQ(stream.pending_bytes(), 0u);  // poisoned bytes discarded
  EXPECT_FALSE(stream.last_error().empty());
}

// ---------------------------------------------------------------------------
// platform hook
// ---------------------------------------------------------------------------

/// Records everything it receives.
class Recorder : public agent::Agent {
 public:
  using Agent::Agent;
  void handle_message(const AclMessage& message) override { received.push_back(message); }
  std::vector<AclMessage> received;
};

TEST(WireHook, MessagesCrossTheCodecUnchanged) {
  grid::Simulation sim;
  agent::AgentPlatform platform(sim);
  WireLink link;
  platform.set_transport_hook(make_transport_hook(link));
  platform.spawn<Recorder>("a");
  auto& b = platform.spawn<Recorder>("b");

  AclMessage message = make_message();
  message.sender = "a";
  message.receiver = "b";
  message.content = std::string("\x00\x01\x02 binary ok", 13);
  platform.send(message);
  sim.run();

  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_TRUE(same_message(message, b.received[0]));
  EXPECT_EQ(link.stats().frames, 1u);
  EXPECT_GT(link.stats().bytes, kFrameHeaderBytes);
  EXPECT_EQ(link.stats().decode_errors, 0u);
  EXPECT_EQ(platform.transport_rejects(), 0u);
}

TEST(WireHook, RejectedMessageIsCountedAndTraced) {
  grid::Simulation sim;
  agent::AgentPlatform platform(sim);
  platform.set_tracing(true);
  platform.set_transport_hook([](const AclMessage&, std::string* error) {
    if (error != nullptr) *error = "injected reject";
    return std::optional<AclMessage>();
  });
  platform.spawn<Recorder>("a");
  auto& b = platform.spawn<Recorder>("b");

  AclMessage message = make_message();
  message.sender = "a";
  message.receiver = "b";
  platform.send(message);
  sim.run();

  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(platform.transport_rejects(), 1u);
  bool annotated = false;
  for (const auto& record : platform.trace())
    if (record.chaos.find("injected reject") != std::string::npos) annotated = true;
  EXPECT_TRUE(annotated);
}

TEST(WireHook, ChaosReplayIsBitwiseIdenticalWithTheWireOn) {
  // Chaos draws its stream off the send sequence and the wire round trip is
  // bitwise, so the same seed must produce the same fault counts and the
  // same delivered messages whether frames cross the codec or not.
  const auto run_once = [](bool wire) {
    grid::Simulation sim;
    agent::AgentPlatform platform(sim);
    WireLink link;
    if (wire) platform.set_transport_hook(make_transport_hook(link));
    platform.spawn<Recorder>("a");
    auto& b = platform.spawn<Recorder>("b");
    agent::ChaosPolicy policy;
    policy.seed = 2004;
    agent::ChaosRule rule;
    rule.match.receiver = "b";
    rule.drop = 0.3;
    rule.delay = 0.2;
    rule.duplicate = 0.2;
    policy.rules.push_back(rule);
    platform.set_chaos(policy);
    for (int i = 0; i < 200; ++i) {
      AclMessage message = make_message("c-" + std::to_string(i));
      message.sender = "a";
      message.receiver = "b";
      platform.send(message);
    }
    sim.run();
    std::string transcript;
    for (const auto& record : b.received) transcript += record.conversation_id + "\n";
    return std::make_tuple(platform.chaos_stats(), transcript);
  };

  const auto [bare_stats, bare_transcript] = run_once(false);
  const auto [wire_stats, wire_transcript] = run_once(true);
  EXPECT_EQ(bare_stats.dropped, wire_stats.dropped);
  EXPECT_EQ(bare_stats.delayed, wire_stats.delayed);
  EXPECT_EQ(bare_stats.duplicated, wire_stats.duplicated);
  EXPECT_EQ(bare_transcript, wire_transcript);
  EXPECT_GT(bare_stats.dropped, 0u);
}

// ---------------------------------------------------------------------------
// environment integration
// ---------------------------------------------------------------------------

TEST(WireEnvironment, BootstrapTrafficCrossesTheWireAndPublishesCounters) {
  svc::EnvironmentOptions options;
  options.wire_transport = true;
  options.topology.domains = 2;
  options.topology.nodes_per_domain = 2;
  auto environment = svc::make_environment(options);

  ASSERT_NE(environment->wire_link(), nullptr);
  const LinkStats stats = environment->wire_link()->stats();
  EXPECT_GT(stats.frames, 0u);  // registrations crossed the codec
  EXPECT_EQ(stats.decode_errors, 0u);
  EXPECT_GT(stats.intern_hits, 0u);  // vocabulary repeated across frames

  obs::MetricsRegistry registry;
  environment->publish_metrics(registry);
  EXPECT_EQ(registry.counter("wire_frames_total").value(), stats.frames);
  EXPECT_EQ(registry.counter("platform_transport_rejects_total").value(), 0u);
}

// ---------------------------------------------------------------------------
// XML path: reject-with-reason vs binary round trip (the bugfix)
// ---------------------------------------------------------------------------

TEST(WireAclXml, RoundTripsCleanMessages) {
  const AclMessage original = make_message();
  const AclMessage decoded = acl_from_xml(acl_to_xml(original));
  EXPECT_TRUE(same_message(original, decoded));
}

TEST(WireAclXml, RejectsControlCharactersWithFieldAndOffset) {
  AclMessage message = make_message();
  message.params["payload"] = std::string("ab\x01z", 4);
  try {
    acl_to_xml(message);
    FAIL() << "control character silently accepted";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("payload"), std::string::npos) << what;
    EXPECT_NE(what.find("0x01"), std::string::npos) << what;
    EXPECT_NE(what.find("offset 2"), std::string::npos) << what;
  }
  // The binary codec carries the same message bitwise.
  EXPECT_TRUE(same_message(message, round_trip_once(message)));
}

TEST(WireAclXml, KeepsXmlWhitespaceControls) {
  AclMessage message = make_message();
  message.content = "line one\n\tline two\r\n";
  EXPECT_TRUE(same_message(message, acl_from_xml(acl_to_xml(message))));
}

}  // namespace
}  // namespace ig::wire
