file(REMOVE_RECURSE
  "CMakeFiles/planner_ext_test.dir/planner_ext_test.cpp.o"
  "CMakeFiles/planner_ext_test.dir/planner_ext_test.cpp.o.d"
  "planner_ext_test"
  "planner_ext_test.pdb"
  "planner_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
