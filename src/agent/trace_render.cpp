#include "agent/trace_render.hpp"

#include <algorithm>
#include <map>

#include "util/strings.hpp"

namespace ig::agent {

namespace {

bool listed(const std::vector<std::string>& list, const std::string& value) {
  return list.empty() || std::find(list.begin(), list.end(), value) != list.end();
}

bool selected(const TraceRecord& record, const TraceRenderOptions& options) {
  if (!record.delivered) return false;
  if (!listed(options.protocols, record.message.protocol)) return false;
  if (options.participants.empty()) return true;
  return listed(options.participants, record.message.sender) ||
         listed(options.participants, record.message.receiver);
}

std::string clip(const std::string& text, std::size_t width) {
  if (text.size() <= width) return text;
  if (width <= 3) return text.substr(0, width);
  return text.substr(0, width - 3) + "...";
}

}  // namespace

std::string render_arrows(const std::deque<TraceRecord>& trace,
                          const TraceRenderOptions& options) {
  std::string out;
  for (const auto& record : trace) {
    if (!selected(record, options)) continue;
    const std::string label =
        clip(record.message.protocol.empty() ? std::string(to_string(record.message.performative))
                                             : record.message.protocol,
             options.max_label_width);
    std::string arrow = "──" + label + "──";
    out += "t=" + util::format_number(record.delivered_at, 4);
    out.append(out.size() % 2, ' ');  // keep simple alignment stable
    out += "  " + record.message.sender + " " + arrow + "▶ " + record.message.receiver;
    out += "  [" + std::string(to_string(record.message.performative)) + "]\n";
  }
  return out;
}

std::string render_sequence_diagram(const std::deque<TraceRecord>& trace,
                                    const TraceRenderOptions& options) {
  // Collect participants in first-appearance order.
  std::vector<std::string> participants;
  auto note = [&participants](const std::string& name) {
    if (std::find(participants.begin(), participants.end(), name) == participants.end())
      participants.push_back(name);
  };
  std::vector<const TraceRecord*> rows;
  for (const auto& record : trace) {
    if (!selected(record, options)) continue;
    note(record.message.sender);
    note(record.message.receiver);
    rows.push_back(&record);
  }
  if (rows.empty()) return "(no matching messages)\n";

  // Column layout: fixed-width lanes, one per participant.
  const std::size_t lane_width =
      std::max<std::size_t>(12, options.max_label_width + 4);
  std::map<std::string, std::size_t> column;
  for (std::size_t i = 0; i < participants.size(); ++i) column[participants[i]] = i;
  const std::size_t time_width = 12;

  std::string out(time_width, ' ');
  for (const auto& participant : participants) {
    std::string cell = clip(participant, lane_width - 2);
    const std::size_t pad = lane_width - cell.size();
    out += std::string(pad / 2, ' ') + cell + std::string(pad - pad / 2, ' ');
  }
  out += '\n';

  for (const TraceRecord* record : rows) {
    const std::size_t from = column[record->message.sender];
    const std::size_t to = column[record->message.receiver];
    const std::size_t lo = std::min(from, to);
    const std::size_t hi = std::max(from, to);

    std::string line = "t=" + util::format_number(record->delivered_at, 3);
    line.resize(time_width, ' ');

    // Lifelines up to the arrow's start column.
    const std::size_t center_offset = lane_width / 2;
    std::string lanes(participants.size() * lane_width, ' ');
    for (std::size_t i = 0; i < participants.size(); ++i)
      lanes[i * lane_width + center_offset] = '|';

    const std::size_t start = lo * lane_width + center_offset;
    const std::size_t end = hi * lane_width + center_offset;
    if (start < end) {
      for (std::size_t i = start + 1; i < end; ++i) lanes[i] = '-';
      if (from < to) lanes[end - 1] = '>';
      else lanes[start + 1] = '<';
      // Label in the middle of the span.
      const std::string label = clip(record->message.protocol, end - start > 4
                                                                   ? end - start - 4
                                                                   : 1);
      const std::size_t label_start = start + 1 + (end - start - label.size()) / 2;
      for (std::size_t i = 0; i < label.size(); ++i) lanes[label_start + i] = label[i];
    } else {
      // Self-message.
      const std::string label = "(self) " + clip(record->message.protocol, 18);
      for (std::size_t i = 0; i < label.size() && start + 2 + i < lanes.size(); ++i)
        lanes[start + 2 + i] = label[i];
    }
    out += line + lanes + '\n';
  }
  return out;
}

}  // namespace ig::agent
