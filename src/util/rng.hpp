// Deterministic pseudo-random number generation.
//
// Experiments in the paper (Table 2) are averages over ten runs; to make
// those runs reproducible bit-for-bit we avoid std::mt19937's unspecified
// distribution implementations and ship a self-contained xoshiro256**
// generator seeded via SplitMix64, with explicit uniform-sampling helpers.
#pragma once

#include <cstdint>
#include <limits>

namespace ig::util {

/// SplitMix64 step; used to expand a single seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Derives a stream seed from a base seed and up to three coordinates. The
/// GP engine keys its per-individual generators as
/// `derive_stream(config.seed, generation, index, phase)`, which makes every
/// individual's randomness independent of evaluation order — the property
/// that lets `run_gp` produce bitwise-identical results at any thread count.
/// Each coordinate passes through a full SplitMix64 avalanche, so nearby
/// (seed, generation, index) tuples yield statistically unrelated streams.
constexpr std::uint64_t derive_stream(std::uint64_t seed, std::uint64_t a, std::uint64_t b = 0,
                                      std::uint64_t c = 0) noexcept {
  std::uint64_t state = seed;
  std::uint64_t mixed = splitmix64(state);
  state = mixed ^ (a + 0x9E3779B97F4A7C15ULL);
  mixed = splitmix64(state);
  state = mixed ^ (b + 0xBF58476D1CE4E5B9ULL);
  mixed = splitmix64(state);
  state = mixed ^ (c + 0x94D049BB133111EBULL);
  return splitmix64(state);
}

/// xoshiro256** — fast, high-quality, reproducible across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from one 64-bit seed via SplitMix64.
  explicit constexpr Rng(std::uint64_t seed = 0x1234567890ABCDEFULL) noexcept : state_{} {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  constexpr std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be > 0. Uses rejection
  /// sampling (Lemire-style threshold) to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t value = (*this)();
      if (value >= threshold) return value % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with success probability `p`.
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// Derives an independent child generator (for per-run streams).
  Rng split() noexcept { return Rng((*this)() ^ 0xA5A5A5A55A5A5A5AULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace ig::util
