file(REMOVE_RECURSE
  "libig_meta.a"
)
