// Streaming statistics accumulators used by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace ig::util {

/// Welford-style running mean / variance with min and max tracking.
class RunningStats {
 public:
  void add(double value) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores every sample; supports percentiles. Suited to the small sample
/// counts of the experiment harness (tens to thousands of runs).
class SampleSet {
 public:
  void add(double value) { samples_.push_back(value); }

  std::size_t count() const noexcept { return samples_.size(); }
  double mean() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  /// Linear-interpolated percentile; `q` in [0, 100].
  double percentile(double q) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace ig::util
