#include <gtest/gtest.h>

#include "planner/gp.hpp"
#include "virolab/catalogue.hpp"

namespace ig::planner {
namespace {

PlanningProblem virolab_problem() {
  return PlanningProblem::from_case(virolab::make_case_description(),
                                    virolab::make_catalogue());
}

GpConfig quick_config(std::uint64_t seed) {
  GpConfig config;  // Table 1 defaults
  config.population_size = 80;  // smaller than the paper for test speed
  config.generations = 15;
  config.seed = seed;
  return config;
}

TEST(Gp, FindsValidGoalReachingPlan) {
  const PlanningProblem problem = virolab_problem();
  const GpResult result = run_gp(problem, quick_config(1));
  EXPECT_DOUBLE_EQ(result.best_fitness.validity, 1.0);
  EXPECT_DOUBLE_EQ(result.best_fitness.goal, 1.0);
  EXPECT_LE(result.best_fitness.size, 40u);
  EXPECT_EQ(check_structure(result.best_plan), "");
}

TEST(Gp, DeterministicForSeed) {
  const PlanningProblem problem = virolab_problem();
  const GpResult a = run_gp(problem, quick_config(7));
  const GpResult b = run_gp(problem, quick_config(7));
  EXPECT_EQ(a.best_plan, b.best_plan);
  EXPECT_DOUBLE_EQ(a.best_fitness.overall, b.best_fitness.overall);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i)
    EXPECT_DOUBLE_EQ(a.history[i].mean_fitness, b.history[i].mean_fitness);
}

TEST(Gp, DifferentSeedsExploreDifferently) {
  const PlanningProblem problem = virolab_problem();
  const GpResult a = run_gp(problem, quick_config(1));
  const GpResult b = run_gp(problem, quick_config(2));
  // Histories should diverge even if both converge to fitness-equivalent plans.
  bool diverged = false;
  for (std::size_t i = 0; i < std::min(a.history.size(), b.history.size()); ++i) {
    if (a.history[i].mean_fitness != b.history[i].mean_fitness) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Gp, BestFitnessMonotoneWithElitism) {
  const PlanningProblem problem = virolab_problem();
  GpConfig config = quick_config(3);
  config.elitism = 1;
  const GpResult result = run_gp(problem, config);
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_GE(result.history[i].best_fitness + 1e-12, result.history[i - 1].best_fitness);
  }
}

TEST(Gp, HistoryCoversAllGenerations) {
  const PlanningProblem problem = virolab_problem();
  GpConfig config = quick_config(4);
  config.target_fitness.reset();
  const GpResult result = run_gp(problem, config);
  EXPECT_EQ(result.history.size(), config.generations + 1);  // includes gen 0
  EXPECT_EQ(result.history.front().generation, 0u);
  EXPECT_EQ(result.history.back().generation, config.generations);
}

TEST(Gp, TargetFitnessStopsEarly) {
  const PlanningProblem problem = virolab_problem();
  GpConfig config = quick_config(5);
  config.target_fitness = 0.1;  // trivially reached in generation 0
  const GpResult result = run_gp(problem, config);
  EXPECT_EQ(result.history.size(), 1u);
}

TEST(Gp, EvaluationsAccounted) {
  const PlanningProblem problem = virolab_problem();
  GpConfig config = quick_config(6);
  const GpResult result = run_gp(problem, config);
  EXPECT_EQ(result.evaluations, config.population_size * (config.generations + 1));
}

TEST(Gp, RouletteSelectionAlsoConverges) {
  const PlanningProblem problem = virolab_problem();
  GpConfig config = quick_config(8);
  config.selection = SelectionScheme::Roulette;
  const GpResult result = run_gp(problem, config);
  EXPECT_GE(result.best_fitness.goal, 1.0);
}

TEST(Gp, PaperParametersReachOptimalFitness) {
  // The Table 2 claim: with Table 1's parameters the planner finds a valid
  // plan reaching the goal in every run. One full-size run as a test; the
  // ten-run experiment lives in bench_table2_planning.
  const PlanningProblem problem = virolab_problem();
  GpConfig config;  // exact Table 1 defaults: pop 200, 20 generations
  config.seed = 2004;
  const GpResult result = run_gp(problem, config);
  EXPECT_DOUBLE_EQ(result.best_fitness.validity, 1.0);
  EXPECT_DOUBLE_EQ(result.best_fitness.goal, 1.0);
  EXPECT_LT(result.best_fitness.size, 15u);
  EXPECT_GT(result.best_fitness.overall, 0.9);
}

}  // namespace
}  // namespace ig::planner
