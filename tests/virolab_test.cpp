#include <gtest/gtest.h>

#include "meta/standard.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/kernels.hpp"
#include "virolab/ontology.hpp"
#include "virolab/workflow.hpp"
#include "wfl/structure.hpp"
#include "wfl/validate.hpp"

namespace ig::virolab {
namespace {

TEST(Catalogue, FourServices) {
  const wfl::ServiceCatalogue catalogue = make_catalogue();
  EXPECT_EQ(catalogue.size(), 4u);
  for (const char* name : {"POD", "P3DR", "POR", "PSF"}) {
    ASSERT_NE(catalogue.find(name), nullptr) << name;
  }
}

TEST(Catalogue, ConditionAritiesMatchFigure13) {
  const wfl::ServiceCatalogue catalogue = make_catalogue();
  EXPECT_EQ(catalogue.find("POD")->inputs().size(), 2u);   // {A, B}
  EXPECT_EQ(catalogue.find("P3DR")->inputs().size(), 3u);  // {A, B, C}
  EXPECT_EQ(catalogue.find("POR")->inputs().size(), 4u);   // {A, B, C, D}
  EXPECT_EQ(catalogue.find("PSF")->inputs().size(), 3u);   // {A, B, C}
  for (const auto& service : catalogue.services()) {
    EXPECT_EQ(service.outputs().size(), 1u);
    EXPECT_FALSE(service.input_condition().is_trivially_true());
    EXPECT_FALSE(service.output_condition().is_trivially_true());
  }
}

TEST(InitialData, SevenItemsWithFigure13Properties) {
  const wfl::DataSet data = make_initial_data();
  EXPECT_EQ(data.size(), 7u);
  ASSERT_NE(data.find("D1"), nullptr);
  EXPECT_EQ(data.find("D1")->classification(), "POD-Parameter");
  EXPECT_EQ(data.with_classification("P3DR-Parameter").size(), 3u);  // D2, D3, D4
  ASSERT_NE(data.find("D7"), nullptr);
  EXPECT_EQ(data.find("D7")->classification(), "2D Image");
  EXPECT_DOUBLE_EQ(data.find("D7")->get("Size").as_number(), 1536.0);  // 1.5 GB
}

TEST(CaseDescription, GoalAndConstraint) {
  const wfl::CaseDescription cd = make_case_description();
  EXPECT_EQ(cd.name(), "CD-3DSD");
  EXPECT_EQ(cd.process_name(), "PD-3DSD");
  ASSERT_EQ(cd.goals().size(), 1u);
  ASSERT_NE(cd.find_constraint("Cons1"), nullptr);
  EXPECT_EQ(cd.expected_results(), (std::vector<std::string>{"D12"}));

  // Cons1 holds while the resolution is above target, not after.
  wfl::DataSet coarse;
  coarse.put(wfl::DataSpec("D12").with_classification("Resolution File")
                 .with("Value", meta::Value(11.0)));
  EXPECT_TRUE(wfl::evaluate_against_state(*cd.find_constraint("Cons1"), coarse));
  wfl::DataSet fine;
  fine.put(wfl::DataSpec("D12").with_classification("Resolution File")
               .with("Value", meta::Value(7.0)));
  EXPECT_FALSE(wfl::evaluate_against_state(*cd.find_constraint("Cons1"), fine));
}

TEST(Figure10, ExactCounts) {
  const wfl::ProcessDescription process = make_fig10_process();
  // "7 (seven) end-user activities and 6 (six) flow control activities"
  EXPECT_EQ(process.end_user_activity_count(), 7u);
  EXPECT_EQ(process.flow_control_activity_count(), 6u);
  EXPECT_EQ(process.activity_count(), 13u);
  EXPECT_EQ(process.transition_count(), 15u);
  EXPECT_TRUE(wfl::is_valid(process)) << wfl::to_string(wfl::validate(process));
}

TEST(Figure10, TransitionTableMatchesFigure13) {
  const wfl::ProcessDescription process = make_fig10_process();
  struct Row {
    const char* id;
    const char* source;
    const char* destination;
  };
  const Row rows[] = {
      {"TR1", "BEGIN", "POD"},   {"TR5", "POR", "FORK"},     {"TR8", "FORK", "P3DR4"},
      {"TR11", "P3DR4", "JOIN"}, {"TR14", "CHOICE", "MERGE"}, {"TR15", "CHOICE", "END"},
  };
  for (const auto& row : rows) {
    const wfl::Transition* transition = process.find_transition(row.id);
    ASSERT_NE(transition, nullptr) << row.id;
    EXPECT_EQ(process.find_activity(transition->source)->name, row.source) << row.id;
    EXPECT_EQ(process.find_activity(transition->destination)->name, row.destination) << row.id;
  }
  // The loop-back transition is guarded by Cons1's continue condition.
  EXPECT_FALSE(process.find_transition("TR14")->guard.is_trivially_true());
  EXPECT_EQ(process.find_activity("A12")->constraint, "Cons1");
}

TEST(Figure10, ActivityDataSetsMatchFigure13) {
  const wfl::ProcessDescription process = make_fig10_process();
  const wfl::Activity* pod = process.find_activity("A2");
  ASSERT_NE(pod, nullptr);
  EXPECT_EQ(pod->input_data, (std::vector<std::string>{"D1", "D7"}));
  EXPECT_EQ(pod->output_data, (std::vector<std::string>{"D8"}));
  const wfl::Activity* psf = process.find_activity("A11");
  ASSERT_NE(psf, nullptr);
  EXPECT_EQ(psf->input_data, (std::vector<std::string>{"D10", "D11"}));
  EXPECT_EQ(psf->output_data, (std::vector<std::string>{"D12"}));
}

TEST(FlowExprForm, MatchesProcessForm) {
  const wfl::FlowExpr expr = make_flow_expr();
  EXPECT_EQ(expr.activity_count(), 7u);
  const wfl::ProcessDescription lowered = wfl::lower_to_process(expr, "PD-3DSD");
  EXPECT_EQ(lowered.end_user_activity_count(), 7u);
  EXPECT_EQ(lowered.flow_control_activity_count(), 6u);
  EXPECT_EQ(lowered.transition_count(), 15u);
}

TEST(Figure13Ontology, ValidatesAgainstStandardSchema) {
  const meta::Ontology ontology = make_fig13_ontology();
  const auto issues = ontology.validate();
  EXPECT_TRUE(issues.empty()) << issues.size() << " issues, first: "
                              << (issues.empty() ? "" : issues.front().message);
}

TEST(Figure13Ontology, InstanceInventory) {
  const meta::Ontology ontology = make_fig13_ontology();
  EXPECT_EQ(ontology.instances_of(meta::classes::kTask).size(), 1u);
  EXPECT_EQ(ontology.instances_of(meta::classes::kActivity).size(), 13u);
  EXPECT_EQ(ontology.instances_of(meta::classes::kTransition).size(), 15u);
  EXPECT_EQ(ontology.instances_of(meta::classes::kData).size(), 12u);
  EXPECT_EQ(ontology.instances_of(meta::classes::kService).size(), 4u);
  ASSERT_NE(ontology.find_instance("T1"), nullptr);
  EXPECT_EQ(ontology.find_instance("T1")->get_string("Name"), "3DSD");
  EXPECT_EQ(ontology.find_instance("T1")->get_string("Owner"), "UCF");
}

TEST(Figure13Ontology, ServiceConditionsPresent) {
  const meta::Ontology ontology = make_fig13_ontology();
  const meta::Instance* p3dr = ontology.find_instance("svc-P3DR");
  ASSERT_NE(p3dr, nullptr);
  const std::string input_condition = p3dr->get_string("Input Condition");
  EXPECT_NE(input_condition.find("P3DR-Parameter"), std::string::npos);
  // The condition text is parseable by the condition grammar.
  EXPECT_NO_THROW(wfl::Condition::parse(input_condition));
}

TEST(Kernels, ResolutionImprovesWithRefinements) {
  SyntheticKernels kernels;
  const double initial = kernels.current_resolution();
  const auto catalogue = make_catalogue();
  wfl::Bindings no_inputs;
  kernels.execute(*catalogue.find("POR"), no_inputs);
  EXPECT_LT(kernels.current_resolution(), initial);
  EXPECT_EQ(kernels.refinement_passes(), 1u);
}

TEST(Kernels, ResolutionHasFloor) {
  KernelParams params;
  params.resolution_floor = 6.0;
  SyntheticKernels kernels(params);
  const auto catalogue = make_catalogue();
  wfl::Bindings no_inputs;
  for (int i = 0; i < 50; ++i) kernels.execute(*catalogue.find("POR"), no_inputs);
  EXPECT_DOUBLE_EQ(kernels.current_resolution(), 6.0);
}

TEST(Kernels, PsfReportsCurrentResolution) {
  SyntheticKernels kernels;
  const auto catalogue = make_catalogue();
  wfl::Bindings no_inputs;
  const auto outputs = kernels.execute(*catalogue.find("PSF"), no_inputs, {"D12"});
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].name(), "D12");
  EXPECT_EQ(outputs[0].classification(), "Resolution File");
  EXPECT_DOUBLE_EQ(outputs[0].get("Value").as_number(), kernels.current_resolution());
}

TEST(Kernels, OutputClassificationsDriveTheChain) {
  SyntheticKernels kernels;
  const auto catalogue = make_catalogue();
  wfl::Bindings no_inputs;
  EXPECT_EQ(kernels.execute(*catalogue.find("POD"), no_inputs)[0].classification(),
            "Orientation File");
  EXPECT_EQ(kernels.execute(*catalogue.find("P3DR"), no_inputs)[0].classification(),
            "3D Model");
  EXPECT_EQ(kernels.execute(*catalogue.find("POR"), no_inputs)[0].classification(),
            "Orientation File");
}

TEST(Kernels, ConvergesBelowTargetWithinFewPasses) {
  SyntheticKernels kernels;  // 18.0 x 0.65^k
  int passes = 0;
  while (kernels.current_resolution() > 8.0 && passes < 10) {
    const auto catalogue = make_catalogue();
    wfl::Bindings no_inputs;
    kernels.execute(*catalogue.find("POR"), no_inputs);
    ++passes;
  }
  EXPECT_LE(passes, 3);  // 18 -> 11.7 -> 7.6
  EXPECT_LE(kernels.current_resolution(), 8.0);
}

TEST(Kernels, ResetClearsState) {
  SyntheticKernels kernels;
  const auto catalogue = make_catalogue();
  wfl::Bindings no_inputs;
  kernels.execute(*catalogue.find("POR"), no_inputs);
  kernels.reset();
  EXPECT_EQ(kernels.refinement_passes(), 0u);
  EXPECT_EQ(kernels.executions(), 0u);
}

TEST(Micrographs, GeneratorProducesImages) {
  util::Rng rng(5);
  const auto images = make_micrographs(rng, 10, 12.0);
  ASSERT_EQ(images.size(), 10u);
  for (const auto& image : images) {
    EXPECT_EQ(image.classification(), "2D Image");
    const double size = image.get("Size").as_number();
    EXPECT_GT(size, 12.0 * 0.5);
    EXPECT_LT(size, 12.0 * 1.5);
  }
  EXPECT_TRUE(make_micrographs(rng, 0).empty());
}

}  // namespace
}  // namespace ig::virolab
