file(REMOVE_RECURSE
  "CMakeFiles/environment_test.dir/environment_test.cpp.o"
  "CMakeFiles/environment_test.dir/environment_test.cpp.o.d"
  "environment_test"
  "environment_test.pdb"
  "environment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/environment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
