file(REMOVE_RECURSE
  "libig_virolab.a"
)
