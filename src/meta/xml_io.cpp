#include "meta/xml_io.hpp"

#include "util/strings.hpp"

namespace ig::meta {

namespace {

std::string type_name(ValueType type) { return std::string(to_string(type)); }

ValueType type_from_name(const std::string& name, std::size_t offset) {
  if (name == "string") return ValueType::String;
  if (name == "number") return ValueType::Number;
  if (name == "boolean") return ValueType::Boolean;
  if (name == "list") return ValueType::List;
  if (name == "none") return ValueType::None;
  throw xml::ParseError("unknown value type '" + name + "'", offset);
}

}  // namespace

void value_to_xml(const Value& value, xml::Element& parent, const std::string& element_name) {
  xml::Element& node = parent.add_child(element_name);
  node.set_attribute("type", type_name(value.type()));
  switch (value.type()) {
    case ValueType::None:
      break;
    case ValueType::String:
      node.set_text(value.as_string());
      break;
    case ValueType::Number:
      node.set_text(util::format_number(value.as_number(), 12));
      break;
    case ValueType::Boolean:
      node.set_text(value.as_boolean() ? "true" : "false");
      break;
    case ValueType::List:
      for (const auto& item : value.as_list()) value_to_xml(item, node, "value");
      break;
  }
}

Value value_from_xml(const xml::Element& element) {
  const ValueType type = type_from_name(element.attribute_or("type", "string"), 0);
  switch (type) {
    case ValueType::None:
      return Value();
    case ValueType::String:
      return Value(element.text());
    case ValueType::Number: {
      const auto number = util::parse_double(element.text());
      if (!number.has_value())
        throw xml::ParseError("value '" + element.text() + "' is not a number", 0);
      return Value(*number);
    }
    case ValueType::Boolean:
      return Value(element.text() == "true");
    case ValueType::List: {
      std::vector<Value> items;
      for (const auto& child : element.children()) items.push_back(value_from_xml(*child));
      return Value(std::move(items));
    }
  }
  return Value();
}

xml::Document to_xml(const Ontology& ontology) {
  xml::Document document("ontology");
  document.root().set_attribute("name", ontology.name());
  for (const auto* cls : ontology.classes()) {
    xml::Element& class_node = document.root().add_child("class");
    class_node.set_attribute("name", cls->name());
    if (!cls->parent().empty()) class_node.set_attribute("parent", cls->parent());
    if (!cls->documentation().empty())
      class_node.add_child_text("documentation", cls->documentation());
    for (const auto& slot : cls->own_slots()) {
      xml::Element& slot_node = class_node.add_child("slot");
      slot_node.set_attribute("name", slot.name);
      slot_node.set_attribute("type", type_name(slot.type));
      if (slot.required) slot_node.set_attribute("required", "true");
      if (!slot.allowed_values.empty())
        slot_node.set_attribute("allowed", util::join(slot.allowed_values, "|"));
      if (!slot.documentation.empty()) slot_node.set_attribute("doc", slot.documentation);
    }
  }
  for (const auto* instance : ontology.instances()) {
    xml::Element& instance_node = document.root().add_child("instance");
    instance_node.set_attribute("id", instance->id());
    instance_node.set_attribute("class", instance->class_name());
    for (const auto& [slot_name, value] : instance->slots()) {
      xml::Element& slot_node = instance_node.add_child("slot");
      slot_node.set_attribute("name", slot_name);
      value_to_xml(value, slot_node, "value");
    }
  }
  return document;
}

Ontology from_xml(const xml::Document& document) {
  const xml::Element& root = document.root();
  if (root.name() != "ontology") throw OntologyError("root element must be <ontology>");
  Ontology ontology(root.attribute_or("name", "unnamed"));
  for (const auto* class_node : root.find_children("class")) {
    auto& cls = ontology.add_class(class_node->attribute_or("name", ""),
                                   class_node->attribute_or("parent", ""));
    cls.set_documentation(class_node->child_text("documentation"));
    for (const auto* slot_node : class_node->find_children("slot")) {
      SlotDef slot;
      slot.name = slot_node->attribute_or("name", "");
      slot.type = type_from_name(slot_node->attribute_or("type", "string"), 0);
      slot.required = slot_node->attribute_or("required", "false") == "true";
      const std::string allowed = slot_node->attribute_or("allowed", "");
      if (!allowed.empty()) slot.allowed_values = util::split_trimmed(allowed, '|');
      slot.documentation = slot_node->attribute_or("doc", "");
      cls.add_slot(std::move(slot));
    }
  }
  for (const auto* instance_node : root.find_children("instance")) {
    auto& instance = ontology.add_instance(instance_node->attribute_or("id", ""),
                                           instance_node->attribute_or("class", ""));
    for (const auto* slot_node : instance_node->find_children("slot")) {
      const xml::Element* value_node = slot_node->find_child("value");
      if (value_node == nullptr) throw OntologyError("instance slot missing <value>");
      instance.set(slot_node->attribute_or("name", ""), value_from_xml(*value_node));
    }
  }
  return ontology;
}

std::string to_xml_string(const Ontology& ontology) { return to_xml(ontology).to_string(); }

Ontology from_xml_string(const std::string& text) { return from_xml(xml::parse(text)); }

}  // namespace ig::meta
