#include "planner/gp.hpp"

#include <algorithm>
#include <numeric>

namespace ig::planner {

GpResult run_gp(const PlanningProblem& problem, const GpConfig& config) {
  util::Rng rng(config.seed);
  PlanEvaluator evaluator(problem, config.evaluation);

  // 1. Initialize population.
  std::vector<PlanNode> population;
  population.reserve(config.population_size);
  for (std::size_t i = 0; i < config.population_size; ++i)
    population.push_back(
        random_tree(rng, problem.catalogue, config.evaluation.smax, config.init_style));

  GpResult result;
  bool have_best = false;

  std::vector<Fitness> fitnesses(population.size());
  for (std::size_t generation = 0; generation <= config.generations; ++generation) {
    // 2a. Evaluate.
    for (std::size_t i = 0; i < population.size(); ++i)
      fitnesses[i] = evaluator.evaluate(population[i]);

    // Track the best-so-far individual.
    std::size_t generation_best = 0;
    double fitness_sum = 0.0;
    for (std::size_t i = 0; i < population.size(); ++i) {
      fitness_sum += fitnesses[i].overall;
      if (fitnesses[i].overall > fitnesses[generation_best].overall) generation_best = i;
    }
    if (!have_best || fitnesses[generation_best].overall > result.best_fitness.overall) {
      result.best_plan = population[generation_best];
      result.best_fitness = fitnesses[generation_best];
      have_best = true;
    }

    GenerationStats stats;
    stats.generation = generation;
    stats.best_fitness = fitnesses[generation_best].overall;
    stats.mean_fitness =
        population.empty() ? 0.0 : fitness_sum / static_cast<double>(population.size());
    stats.best_validity = fitnesses[generation_best].validity;
    stats.best_goal = fitnesses[generation_best].goal;
    stats.best_size = fitnesses[generation_best].size;
    result.history.push_back(stats);

    if (config.target_fitness.has_value() &&
        result.best_fitness.overall >= *config.target_fitness)
      break;
    if (generation == config.generations) break;  // final evaluation only

    // 2b. Select.
    const std::vector<std::size_t> selected = select(
        fitnesses, population.size(), config.selection, rng, config.tournament_size);
    std::vector<PlanNode> next;
    next.reserve(population.size());
    for (const std::size_t index : selected) next.push_back(population[index]);

    // Elitism: overwrite the head of the new population with the best-so-far.
    for (std::size_t e = 0; e < config.elitism && e < next.size(); ++e)
      next[e] = result.best_plan;

    // 2c. Crossover over consecutive pairs (elites excluded).
    for (std::size_t i = config.elitism; i + 1 < next.size(); i += 2) {
      CrossoverResult crossed =
          crossover(next[i], next[i + 1], rng, config.crossover_rate, config.evaluation.smax);
      if (crossed.applied) {
        next[i] = std::move(crossed.first);
        next[i + 1] = std::move(crossed.second);
      }
    }

    // 2d. Mutate (elites excluded).
    for (std::size_t i = config.elitism; i < next.size(); ++i)
      mutate(next[i], rng, problem.catalogue, config.mutation_rate, config.evaluation.smax,
             config.init_style);

    population = std::move(next);
  }

  result.evaluations = evaluator.evaluations();
  return result;
}

}  // namespace ig::planner
