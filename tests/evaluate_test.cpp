#include <gtest/gtest.h>

#include "planner/evaluate.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"

namespace ig::planner {
namespace {

PlanningProblem virolab_problem() {
  return PlanningProblem::from_case(virolab::make_case_description(),
                                    virolab::make_catalogue());
}

PlanNode seq(std::vector<const char*> services) {
  std::vector<PlanNode> children;
  for (const char* service : services) children.push_back(PlanNode::terminal(service));
  return PlanNode::sequential(std::move(children));
}

TEST(Evaluate, MinimalValidPlanScoresPerfectValidityAndGoal) {
  const PlanningProblem problem = virolab_problem();
  PlanEvaluator evaluator(problem);
  // POD -> P3DR -> P3DR -> PSF produces a resolution file. 5 nodes.
  const Fitness fitness = evaluator.evaluate(seq({"POD", "P3DR", "P3DR", "PSF"}));
  EXPECT_DOUBLE_EQ(fitness.validity, 1.0);
  EXPECT_DOUBLE_EQ(fitness.goal, 1.0);
  EXPECT_EQ(fitness.size, 5u);
  EXPECT_DOUBLE_EQ(fitness.representation, 1.0 - 5.0 / 40.0);
  // Eq. 4 with Table 1 weights.
  EXPECT_NEAR(fitness.overall, 0.2 * 1.0 + 0.5 * 1.0 + 0.3 * 0.875, 1e-12);
}

TEST(Evaluate, InvalidOrderScoresPartialValidity) {
  const PlanningProblem problem = virolab_problem();
  PlanEvaluator evaluator(problem);
  // PSF first: preconditions unmet, so 1 of 4 executions invalid... actually
  // PSF fails (no models), POD ok, P3DR ok, P3DR ok -> 3/4 valid, no
  // resolution file -> goal 0.
  const Fitness fitness = evaluator.evaluate(seq({"PSF", "POD", "P3DR", "P3DR"}));
  EXPECT_DOUBLE_EQ(fitness.validity, 0.75);
  EXPECT_DOUBLE_EQ(fitness.goal, 0.0);
}

TEST(Evaluate, UnknownServiceCountsAsInvalid) {
  const PlanningProblem problem = virolab_problem();
  PlanEvaluator evaluator(problem);
  const Fitness fitness = evaluator.evaluate(seq({"POD", "BOGUS"}));
  EXPECT_DOUBLE_EQ(fitness.validity, 0.5);
}

TEST(Evaluate, Figure11TreeIsValidAndReachesGoal) {
  const PlanningProblem problem = virolab_problem();
  PlanEvaluator evaluator(problem);
  const Fitness fitness = evaluator.evaluate(virolab::make_fig11_plan_tree());
  EXPECT_DOUBLE_EQ(fitness.validity, 1.0);
  EXPECT_DOUBLE_EQ(fitness.goal, 1.0);
  EXPECT_EQ(fitness.size, 10u);
  // f = 0.2 + 0.5 + 0.3 * (1 - 10/40) = 0.925
  EXPECT_NEAR(fitness.overall, 0.925, 1e-12);
}

TEST(Evaluate, RepresentationFitnessCapsAtZero) {
  EvaluationConfig config;
  config.smax = 4;
  const PlanningProblem problem = virolab_problem();
  PlanEvaluator evaluator(problem, config);
  const Fitness fitness = evaluator.evaluate(seq({"POD", "P3DR", "P3DR", "PSF"}));  // 5 nodes
  EXPECT_DOUBLE_EQ(fitness.representation, 0.0);
  EXPECT_GE(fitness.overall, 0.0);
}

TEST(Evaluate, SelectiveEnumeratesBranches) {
  const PlanningProblem problem = virolab_problem();
  PlanEvaluator evaluator(problem);
  // Selective(POD, PSF): branch 1 valid (1/1), branch 2 invalid (0/1).
  const PlanNode plan =
      PlanNode::selective({PlanNode::terminal("POD"), PlanNode::terminal("PSF")});
  const Fitness fitness = evaluator.evaluate(plan);
  EXPECT_EQ(fitness.flows, 2u);
  EXPECT_DOUBLE_EQ(fitness.validity, 0.5);  // totals across flows: 1 valid / 2 executed
  EXPECT_DOUBLE_EQ(fitness.goal, 0.0);
}

TEST(Evaluate, IterativeUnrollsBothDepths) {
  EvaluationConfig config;
  config.max_unroll = 2;
  const PlanningProblem problem = virolab_problem();
  PlanEvaluator evaluator(problem, config);
  const PlanNode plan = PlanNode::iterative({PlanNode::terminal("POD")});
  const Fitness fitness = evaluator.evaluate(plan);
  // Flows: one pass (1 execution) and two passes (2 executions).
  EXPECT_EQ(fitness.flows, 2u);
  EXPECT_DOUBLE_EQ(fitness.validity, 1.0);  // POD re-runs remain valid
}

TEST(Evaluate, GoalAveragedAcrossFlows) {
  const PlanningProblem problem = virolab_problem();
  PlanEvaluator evaluator(problem);
  // One branch completes the pipeline, the other stops early:
  // goal satisfied in exactly one of two flows.
  std::vector<PlanNode> full;
  full.push_back(PlanNode::terminal("POD"));
  full.push_back(PlanNode::terminal("P3DR"));
  full.push_back(PlanNode::terminal("P3DR"));
  full.push_back(PlanNode::terminal("PSF"));
  const PlanNode plan = PlanNode::selective(
      {PlanNode::sequential(std::move(full)), PlanNode::terminal("POD")});
  const Fitness fitness = evaluator.evaluate(plan);
  EXPECT_EQ(fitness.flows, 2u);
  EXPECT_DOUBLE_EQ(fitness.goal, 0.5);
}

TEST(Evaluate, FlowCapTruncates) {
  EvaluationConfig config;
  config.max_flows = 2;
  const PlanningProblem problem = virolab_problem();
  PlanEvaluator evaluator(problem, config);
  // Nested selectives overflow a cap of 2; enumeration is clipped and the
  // clipping is reported.
  PlanNode plan = PlanNode::selective({PlanNode::terminal("POD"), PlanNode::terminal("POD")});
  plan = PlanNode::selective({plan, PlanNode::terminal("POD")});
  plan = PlanNode::selective({plan, PlanNode::terminal("POD")});
  const Fitness fitness = evaluator.evaluate(plan);
  EXPECT_LE(fitness.flows, 2u);
  EXPECT_TRUE(fitness.flows_truncated);
}

TEST(Evaluate, EmptyGoalListCountsAsSatisfied) {
  PlanningProblem problem = virolab_problem();
  problem.goals.clear();
  PlanEvaluator evaluator(problem);
  const Fitness fitness = evaluator.evaluate(seq({"POD"}));
  EXPECT_DOUBLE_EQ(fitness.goal, 1.0);
}

TEST(Evaluate, EvaluationCounter) {
  const PlanningProblem problem = virolab_problem();
  PlanEvaluator evaluator(problem);
  evaluator.evaluate(seq({"POD"}));
  evaluator.evaluate(seq({"POD"}));
  EXPECT_EQ(evaluator.evaluations(), 2u);
}

TEST(Evaluate, ConcurrentPenalizesOrderDependentChildren) {
  // Concurrent children may execute "in any order": a block whose children
  // only work left-to-right is not truly concurrent. POD must precede P3DR,
  // so Concurrent(POD, P3DR) fails in the reverse serialization.
  const PlanningProblem problem = virolab_problem();
  PlanEvaluator evaluator(problem);
  const PlanNode bogus =
      PlanNode::concurrent({PlanNode::terminal("POD"), PlanNode::terminal("P3DR")});
  const Fitness fitness = evaluator.evaluate(bogus);
  EXPECT_EQ(fitness.flows, 2u);
  EXPECT_LT(fitness.validity, 1.0);

  // Truly order-independent children stay fully valid.
  std::vector<PlanNode> top;
  top.push_back(PlanNode::terminal("POD"));
  top.push_back(PlanNode::concurrent(
      {PlanNode::terminal("P3DR"), PlanNode::terminal("P3DR")}));
  const Fitness independent = evaluator.evaluate(PlanNode::sequential(std::move(top)));
  EXPECT_DOUBLE_EQ(independent.validity, 1.0);
}

TEST(Evaluate, SingleOrderModeKeepsLegacySemantics) {
  EvaluationConfig config;
  config.concurrent_orders = 1;
  const PlanningProblem problem = virolab_problem();
  PlanEvaluator evaluator(problem, config);
  const PlanNode bogus =
      PlanNode::concurrent({PlanNode::terminal("POD"), PlanNode::terminal("P3DR")});
  const Fitness fitness = evaluator.evaluate(bogus);
  EXPECT_EQ(fitness.flows, 1u);
  EXPECT_DOUBLE_EQ(fitness.validity, 1.0);  // left-to-right happens to work
}

TEST(Evaluate, ConcurrentExecutesAllChildren) {
  const PlanningProblem problem = virolab_problem();
  PlanEvaluator evaluator(problem);
  std::vector<PlanNode> top;
  top.push_back(PlanNode::terminal("POD"));
  top.push_back(PlanNode::concurrent(
      {PlanNode::terminal("P3DR"), PlanNode::terminal("P3DR"), PlanNode::terminal("P3DR")}));
  top.push_back(PlanNode::terminal("PSF"));
  const Fitness fitness = evaluator.evaluate(PlanNode::sequential(std::move(top)));
  EXPECT_DOUBLE_EQ(fitness.validity, 1.0);
  EXPECT_DOUBLE_EQ(fitness.goal, 1.0);
}

TEST(EvaluateMemo, RepeatEvaluationIsServedFromTheMemo) {
  const PlanningProblem problem = virolab_problem();
  PlanEvaluator evaluator(problem);
  const PlanNode plan = seq({"POD", "P3DR", "P3DR", "PSF"});
  const Fitness first = evaluator.evaluate(plan);
  EXPECT_EQ(evaluator.evaluations(), 1u);
  EXPECT_EQ(evaluator.memo_hits(), 0u);
  EXPECT_EQ(evaluator.simulations(), 1u);

  const Fitness second = evaluator.evaluate(plan);
  EXPECT_EQ(evaluator.evaluations(), 2u);
  EXPECT_EQ(evaluator.memo_hits(), 1u);
  EXPECT_EQ(evaluator.simulations(), 1u);
  EXPECT_EQ(first.overall, second.overall);
  EXPECT_EQ(first.flows, second.flows);

  // A structurally equal copy hits too; a different plan misses.
  evaluator.evaluate(PlanNode(plan));
  EXPECT_EQ(evaluator.memo_hits(), 2u);
  evaluator.evaluate(seq({"POD", "P3DR"}));
  EXPECT_EQ(evaluator.memo_hits(), 2u);
  EXPECT_EQ(evaluator.simulations(), 2u);
}

TEST(EvaluateMemo, DisabledMemoStillCountsEvaluations) {
  EvaluationConfig config;
  config.memoize = false;
  const PlanningProblem problem = virolab_problem();
  PlanEvaluator evaluator(problem, config);
  const PlanNode plan = seq({"POD", "P3DR"});
  const Fitness first = evaluator.evaluate(plan);
  const Fitness second = evaluator.evaluate(plan);
  EXPECT_EQ(evaluator.evaluations(), 2u);
  EXPECT_EQ(evaluator.memo_hits(), 0u);
  EXPECT_EQ(first.overall, second.overall);  // still a pure function
}

TEST(EvaluateMemo, WorkersEvaluateIndependentlyWithSharedMemo) {
  const PlanningProblem problem = virolab_problem();
  PlanEvaluator evaluator(problem, {}, 4);
  EXPECT_EQ(evaluator.workers(), 4u);
  const PlanNode plan = seq({"POD", "P3DR", "P3DR", "PSF"});
  const Fitness reference = evaluator.evaluate(plan, 0);
  for (std::size_t worker = 1; worker < 4; ++worker) {
    const Fitness fitness = evaluator.evaluate(plan, worker);
    EXPECT_EQ(fitness.overall, reference.overall);
    EXPECT_EQ(fitness.flows, reference.flows);
  }
  // Worker 0 simulated once; the other three were memo hits.
  EXPECT_EQ(evaluator.memo_hits(), 3u);

  // Per-worker output caches mean a fresh worker re-simulating (memo off)
  // still matches — the caches hold identical immutable specifications.
  EvaluationConfig no_memo;
  no_memo.memoize = false;
  PlanEvaluator independent(problem, no_memo, 2);
  EXPECT_EQ(independent.evaluate(plan, 1).overall, reference.overall);
}

}  // namespace
}  // namespace ig::planner
