
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/virolab/catalogue.cpp" "src/virolab/CMakeFiles/ig_virolab.dir/catalogue.cpp.o" "gcc" "src/virolab/CMakeFiles/ig_virolab.dir/catalogue.cpp.o.d"
  "/root/repo/src/virolab/kernels.cpp" "src/virolab/CMakeFiles/ig_virolab.dir/kernels.cpp.o" "gcc" "src/virolab/CMakeFiles/ig_virolab.dir/kernels.cpp.o.d"
  "/root/repo/src/virolab/ontology.cpp" "src/virolab/CMakeFiles/ig_virolab.dir/ontology.cpp.o" "gcc" "src/virolab/CMakeFiles/ig_virolab.dir/ontology.cpp.o.d"
  "/root/repo/src/virolab/workflow.cpp" "src/virolab/CMakeFiles/ig_virolab.dir/workflow.cpp.o" "gcc" "src/virolab/CMakeFiles/ig_virolab.dir/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ig_util.dir/DependInfo.cmake"
  "/root/repo/build/src/wfl/CMakeFiles/ig_wfl.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/ig_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/ig_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/ig_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
