#include "wfl/condition.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace ig::wfl {

std::string_view to_string(CompareOp op) noexcept {
  switch (op) {
    case CompareOp::Less: return "<";
    case CompareOp::Greater: return ">";
    case CompareOp::Equal: return "=";
    case CompareOp::NotEqual: return "!=";
    case CompareOp::LessEqual: return "<=";
    case CompareOp::GreaterEqual: return ">=";
  }
  return "?";
}

Bindings self_bindings(const DataSet& data) {
  Bindings bindings;
  for (const auto& item : data.items()) bindings[item.name()] = &item;
  return bindings;
}

// ---------------------------------------------------------------------------
// Expression tree
// ---------------------------------------------------------------------------

struct Condition::Node {
  enum class Kind { True, False, Compare, And, Or, Not } kind;

  // Compare payload.
  std::string variable;
  std::string property;
  CompareOp op = CompareOp::Equal;
  meta::Value value;

  // And/Or/Not payload.
  std::shared_ptr<const Node> lhs;
  std::shared_ptr<const Node> rhs;
};

using Node = Condition::Node;

Condition::Condition() : root_(nullptr) {}

Condition::Condition(std::shared_ptr<const Node> root) : root_(std::move(root)) {}

Condition Condition::comparison(std::string variable, std::string property, CompareOp op,
                                meta::Value value) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::Compare;
  node->variable = std::move(variable);
  node->property = std::move(property);
  node->op = op;
  node->value = std::move(value);
  return Condition(std::move(node));
}

Condition Condition::conjunction(Condition lhs, Condition rhs) {
  if (lhs.is_trivially_true()) return rhs;
  if (rhs.is_trivially_true()) return lhs;
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::And;
  node->lhs = lhs.root_;
  node->rhs = rhs.root_;
  return Condition(std::move(node));
}

Condition Condition::disjunction(Condition lhs, Condition rhs) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::Or;
  node->lhs = lhs.is_trivially_true() ? always_true().root_ : lhs.root_;
  node->rhs = rhs.is_trivially_true() ? always_true().root_ : rhs.root_;
  return Condition(std::move(node));
}

Condition Condition::negation(Condition operand) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::Not;
  node->lhs = operand.is_trivially_true() ? always_true().root_ : operand.root_;
  return Condition(std::move(node));
}

Condition Condition::always_true() {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::True;
  return Condition(std::move(node));
}

Condition Condition::always_false() {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::False;
  return Condition(std::move(node));
}

bool Condition::is_trivially_true() const noexcept {
  return root_ == nullptr || root_->kind == Node::Kind::True;
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

namespace {

int compare_values(const meta::Value& lhs, const meta::Value& rhs, bool& comparable) {
  comparable = true;
  if (lhs.type() == meta::ValueType::Number && rhs.type() == meta::ValueType::Number) {
    const double a = lhs.as_number();
    const double b = rhs.as_number();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (lhs.type() == meta::ValueType::String && rhs.type() == meta::ValueType::String) {
    return lhs.as_string().compare(rhs.as_string()) < 0   ? -1
           : lhs.as_string().compare(rhs.as_string()) > 0 ? 1
                                                          : 0;
  }
  if (lhs.type() == meta::ValueType::Boolean && rhs.type() == meta::ValueType::Boolean) {
    return static_cast<int>(lhs.as_boolean()) - static_cast<int>(rhs.as_boolean());
  }
  // Numbers stored as strings compare numerically against number literals.
  if (lhs.type() == meta::ValueType::String && rhs.type() == meta::ValueType::Number) {
    const auto a = util::parse_double(lhs.as_string());
    if (a.has_value()) {
      const double b = rhs.as_number();
      if (*a < b) return -1;
      if (*a > b) return 1;
      return 0;
    }
  }
  comparable = false;
  return 0;
}

bool evaluate_compare(const Condition::Node& node, const Bindings& bindings) {
  auto it = bindings.find(node.variable);
  if (it == bindings.end() || it->second == nullptr) return false;
  const meta::Value& actual = it->second->get(node.property);
  if (actual.is_none()) return false;
  bool comparable = false;
  const int cmp = compare_values(actual, node.value, comparable);
  if (!comparable) return node.op == CompareOp::NotEqual;
  switch (node.op) {
    case CompareOp::Less: return cmp < 0;
    case CompareOp::Greater: return cmp > 0;
    case CompareOp::Equal: return cmp == 0;
    case CompareOp::NotEqual: return cmp != 0;
    case CompareOp::LessEqual: return cmp <= 0;
    case CompareOp::GreaterEqual: return cmp >= 0;
  }
  return false;
}

bool evaluate_node(const Condition::Node* node, const Bindings& bindings) {
  if (node == nullptr) return true;
  switch (node->kind) {
    case Condition::Node::Kind::True: return true;
    case Condition::Node::Kind::False: return false;
    case Condition::Node::Kind::Compare: return evaluate_compare(*node, bindings);
    case Condition::Node::Kind::And:
      return evaluate_node(node->lhs.get(), bindings) && evaluate_node(node->rhs.get(), bindings);
    case Condition::Node::Kind::Or:
      return evaluate_node(node->lhs.get(), bindings) || evaluate_node(node->rhs.get(), bindings);
    case Condition::Node::Kind::Not: return !evaluate_node(node->lhs.get(), bindings);
  }
  return false;
}

bool evaluate_compare_single(const Condition::Node& node, std::string_view variable,
                             const DataSpec& item) {
  if (node.variable != variable) return false;  // unbound
  const meta::Value& actual = item.get(node.property);
  if (actual.is_none()) return false;
  bool comparable = false;
  const int cmp = compare_values(actual, node.value, comparable);
  if (!comparable) return node.op == CompareOp::NotEqual;
  switch (node.op) {
    case CompareOp::Less: return cmp < 0;
    case CompareOp::Greater: return cmp > 0;
    case CompareOp::Equal: return cmp == 0;
    case CompareOp::NotEqual: return cmp != 0;
    case CompareOp::LessEqual: return cmp <= 0;
    case CompareOp::GreaterEqual: return cmp >= 0;
  }
  return false;
}

bool evaluate_node_single(const Condition::Node* node, std::string_view variable,
                          const DataSpec& item) {
  if (node == nullptr) return true;
  switch (node->kind) {
    case Condition::Node::Kind::True: return true;
    case Condition::Node::Kind::False: return false;
    case Condition::Node::Kind::Compare:
      return evaluate_compare_single(*node, variable, item);
    case Condition::Node::Kind::And:
      return evaluate_node_single(node->lhs.get(), variable, item) &&
             evaluate_node_single(node->rhs.get(), variable, item);
    case Condition::Node::Kind::Or:
      return evaluate_node_single(node->lhs.get(), variable, item) ||
             evaluate_node_single(node->rhs.get(), variable, item);
    case Condition::Node::Kind::Not:
      return !evaluate_node_single(node->lhs.get(), variable, item);
  }
  return false;
}

}  // namespace

bool Condition::evaluate(const Bindings& bindings) const {
  return evaluate_node(root_.get(), bindings);
}

bool Condition::evaluate_on(const DataSet& data) const {
  const Bindings bindings = self_bindings(data);
  return evaluate(bindings);
}

bool Condition::evaluate_single(std::string_view variable, const DataSpec& item) const {
  return evaluate_node_single(root_.get(), variable, item);
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

namespace {

void collect_variables(const Condition::Node* node, std::vector<std::string>& out) {
  if (node == nullptr) return;
  switch (node->kind) {
    case Condition::Node::Kind::Compare: {
      for (const auto& existing : out) {
        if (existing == node->variable) return;
      }
      out.push_back(node->variable);
      return;
    }
    case Condition::Node::Kind::And:
    case Condition::Node::Kind::Or:
      collect_variables(node->lhs.get(), out);
      collect_variables(node->rhs.get(), out);
      return;
    case Condition::Node::Kind::Not:
      collect_variables(node->lhs.get(), out);
      return;
    default:
      return;
  }
}

void collect_equalities(const Condition::Node* node, std::string_view variable,
                        std::vector<std::pair<std::string, meta::Value>>& out) {
  if (node == nullptr) return;
  switch (node->kind) {
    case Condition::Node::Kind::Compare:
      if (node->op == CompareOp::Equal && node->variable == variable)
        out.emplace_back(node->property, node->value);
      return;
    case Condition::Node::Kind::And:
      collect_equalities(node->lhs.get(), variable, out);
      collect_equalities(node->rhs.get(), variable, out);
      return;
    default:
      // Equalities under Or / Not are not *requirements*; skip them.
      return;
  }
}

std::string value_literal(const meta::Value& value) {
  switch (value.type()) {
    case meta::ValueType::Number: return util::format_number(value.as_number());
    case meta::ValueType::Boolean: return value.as_boolean() ? "true" : "false";
    default: return "\"" + value.as_string() + "\"";
  }
}

void render(const Condition::Node* node, std::string& out, int parent_precedence);

int precedence(Condition::Node::Kind kind) {
  switch (kind) {
    case Condition::Node::Kind::Or: return 1;
    case Condition::Node::Kind::And: return 2;
    case Condition::Node::Kind::Not: return 3;
    default: return 4;
  }
}

void render(const Condition::Node* node, std::string& out, int parent_precedence) {
  if (node == nullptr) {
    out += "true";
    return;
  }
  const int self = precedence(node->kind);
  const bool parens = self < parent_precedence;
  if (parens) out += '(';
  switch (node->kind) {
    case Condition::Node::Kind::True: out += "true"; break;
    case Condition::Node::Kind::False: out += "false"; break;
    case Condition::Node::Kind::Compare:
      out += node->variable;
      out += '.';
      out += node->property;
      out += ' ';
      out += to_string(node->op);
      out += ' ';
      out += value_literal(node->value);
      break;
    case Condition::Node::Kind::And:
      // The parser is left-associative; a same-kind right child needs
      // parentheses to reparse with the original shape.
      render(node->lhs.get(), out, self);
      out += " and ";
      render(node->rhs.get(), out, self + 1);
      break;
    case Condition::Node::Kind::Or:
      render(node->lhs.get(), out, self);
      out += " or ";
      render(node->rhs.get(), out, self + 1);
      break;
    case Condition::Node::Kind::Not:
      out += "not ";
      render(node->lhs.get(), out, self);
      break;
  }
  if (parens) out += ')';
}

bool nodes_equal(const Condition::Node* a, const Condition::Node* b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) {
    // nullptr means trivially-true.
    const Condition::Node* other = a != nullptr ? a : b;
    return other->kind == Condition::Node::Kind::True;
  }
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case Condition::Node::Kind::True:
    case Condition::Node::Kind::False:
      return true;
    case Condition::Node::Kind::Compare:
      return a->variable == b->variable && a->property == b->property && a->op == b->op &&
             a->value == b->value;
    case Condition::Node::Kind::And:
    case Condition::Node::Kind::Or:
      return nodes_equal(a->lhs.get(), b->lhs.get()) && nodes_equal(a->rhs.get(), b->rhs.get());
    case Condition::Node::Kind::Not:
      return nodes_equal(a->lhs.get(), b->lhs.get());
  }
  return false;
}

}  // namespace

std::vector<std::string> Condition::variables() const {
  std::vector<std::string> out;
  collect_variables(root_.get(), out);
  return out;
}

std::vector<Condition> Condition::conjuncts() const {
  std::vector<Condition> out;
  if (root_ == nullptr) return out;
  std::vector<std::shared_ptr<const Node>> stack{root_};
  while (!stack.empty()) {
    std::shared_ptr<const Node> node = stack.back();
    stack.pop_back();
    if (node->kind == Node::Kind::And) {
      stack.push_back(node->rhs);
      stack.push_back(node->lhs);
      continue;
    }
    out.push_back(Condition(node));
  }
  return out;
}

std::vector<std::pair<std::string, meta::Value>> Condition::equality_requirements(
    std::string_view variable) const {
  std::vector<std::pair<std::string, meta::Value>> out;
  collect_equalities(root_.get(), variable, out);
  return out;
}

std::string Condition::to_string() const {
  std::string out;
  render(root_.get(), out, 0);
  return out;
}

bool Condition::operator==(const Condition& other) const {
  return nodes_equal(root_.get(), other.root_.get());
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class ConditionParser {
 public:
  explicit ConditionParser(std::string_view text) : text_(text) {}

  Condition parse() {
    Condition result = parse_or();
    skip_space();
    if (pos_ != text_.size()) fail("unexpected trailing input");
    return result;
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    throw ConditionParseError(message + " at offset " + std::to_string(pos_) + " in '" +
                              std::string(text_) + "'");
  }

  void skip_space() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool eof() {
    skip_space();
    return pos_ >= text_.size();
  }

  bool match_keyword(std::string_view keyword) {
    skip_space();
    if (text_.size() - pos_ < keyword.size()) return false;
    for (std::size_t i = 0; i < keyword.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(keyword[i])))
        return false;
    }
    // Keyword must not be a prefix of a longer identifier.
    const std::size_t end = pos_ + keyword.size();
    if (end < text_.size()) {
      const char next = text_[end];
      if (std::isalnum(static_cast<unsigned char>(next)) || next == '_') return false;
    }
    pos_ = end;
    return true;
  }

  Condition parse_or() {
    Condition lhs = parse_and();
    while (match_keyword("or")) lhs = Condition::disjunction(lhs, parse_and());
    return lhs;
  }

  Condition parse_and() {
    Condition lhs = parse_unary();
    while (match_keyword("and")) lhs = Condition::conjunction(lhs, parse_unary());
    return lhs;
  }

  Condition parse_unary() {
    skip_space();
    if (match_keyword("not")) return Condition::negation(parse_unary());
    if (pos_ < text_.size() && text_[pos_] == '(') {
      ++pos_;
      Condition inner = parse_or();
      skip_space();
      if (pos_ >= text_.size() || text_[pos_] != ')') fail("expected ')'");
      ++pos_;
      return inner;
    }
    if (match_keyword("true")) return Condition::always_true();
    if (match_keyword("false")) return Condition::always_false();
    return parse_comparison();
  }

  std::string parse_identifier() {
    skip_space();
    if (pos_ >= text_.size()) fail("expected identifier");
    const char first = text_[pos_];
    if (!std::isalpha(static_cast<unsigned char>(first)) && first != '_')
      fail("expected identifier");
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-') ++pos_;
      else break;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  CompareOp parse_operator() {
    skip_space();
    if (pos_ >= text_.size()) fail("expected comparison operator");
    const char c = text_[pos_];
    const char next = pos_ + 1 < text_.size() ? text_[pos_ + 1] : '\0';
    if (c == '<' && next == '=') { pos_ += 2; return CompareOp::LessEqual; }
    if (c == '>' && next == '=') { pos_ += 2; return CompareOp::GreaterEqual; }
    if (c == '!' && next == '=') { pos_ += 2; return CompareOp::NotEqual; }
    if (c == '<' && next == '>') { pos_ += 2; return CompareOp::NotEqual; }
    if (c == '<') { ++pos_; return CompareOp::Less; }
    if (c == '>') { ++pos_; return CompareOp::Greater; }
    if (c == '=') { ++pos_; return CompareOp::Equal; }
    fail("expected comparison operator");
  }

  meta::Value parse_value() {
    skip_space();
    if (pos_ >= text_.size()) fail("expected value");
    const char c = text_[pos_];
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++pos_;
      const std::size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != quote) ++pos_;
      if (pos_ >= text_.size()) fail("unterminated string literal");
      std::string value(text_.substr(start, pos_ - start));
      ++pos_;
      return meta::Value(std::move(value));
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' || c == '.') {
      const std::size_t start = pos_;
      if (c == '-' || c == '+') ++pos_;
      while (pos_ < text_.size()) {
        const char d = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(d)) || d == '.') ++pos_;
        else break;
      }
      // Optional exponent with optional sign: e5, e+5, E-5. Only consumed
      // when at least one digit follows, so "2e and ..." still fails cleanly.
      if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
        std::size_t probe = pos_ + 1;
        if (probe < text_.size() && (text_[probe] == '+' || text_[probe] == '-')) ++probe;
        if (probe < text_.size() && std::isdigit(static_cast<unsigned char>(text_[probe]))) {
          pos_ = probe + 1;
          while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        }
      }
      const std::string_view literal = text_.substr(start, pos_ - start);
      const auto value = util::parse_double(literal);
      if (!value.has_value()) fail("invalid numeric literal '" + std::string(literal) + "'");
      return meta::Value(*value);
    }
    if (match_keyword("true")) return meta::Value(true);
    if (match_keyword("false")) return meta::Value(false);
    // Bareword string value.
    return meta::Value(parse_identifier());
  }

  Condition parse_comparison() {
    const std::string variable = parse_identifier();
    skip_space();
    if (pos_ >= text_.size() || text_[pos_] != '.') fail("expected '.' after variable");
    ++pos_;
    const std::string property = parse_identifier();
    const CompareOp op = parse_operator();
    meta::Value value = parse_value();
    return Condition::comparison(variable, property, op, std::move(value));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Condition Condition::parse(std::string_view text) {
  const std::string_view trimmed = util::trim(text);
  if (trimmed.empty()) return always_true();
  return ConditionParser(trimmed).parse();
}

bool evaluate_against_state(const Condition& condition, const DataSet& data) {
  Bindings bindings = self_bindings(data);
  std::vector<std::string> free;
  for (const auto& variable : condition.variables()) {
    if (bindings.find(variable) == bindings.end()) free.push_back(variable);
  }
  if (free.empty()) return condition.evaluate(bindings);
  if (free.size() == 1) {
    // Existential binding of the single free variable.
    for (const auto& item : data.items()) {
      bindings[free.front()] = &item;
      if (condition.evaluate(bindings)) return true;
    }
    return false;
  }
  // Multiple free variables: conservative false (guards in this system
  // reference at most one anonymous item).
  return false;
}

}  // namespace ig::wfl
