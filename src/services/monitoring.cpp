#include "services/monitoring.hpp"

#include "services/protocol.hpp"
#include "util/strings.hpp"

namespace ig::svc {

using agent::AclMessage;
using agent::Performative;

void MonitoringService::on_start() {
  register_with_information_service(*this, platform(), "monitoring");
  if (sample_period_ > 0) sample();
}

void MonitoringService::sample() {
  const grid::SimTime elapsed = now() > 0 ? now() : 1.0;
  bool capacity_left = false;
  for (const auto& node : grid_->nodes()) {
    auto& series = samples_[node->id()];
    if (series.size() < max_samples_) {
      series.push_back(node->busy_time() / elapsed);
      capacity_left = true;
    }
  }
  // Stop rescheduling once full so a drained simulation can terminate.
  if (capacity_left) schedule(sample_period_, [this] { sample(); });
}

void MonitoringService::handle_message(const AclMessage& message) {
  if (message.protocol != protocols::kQueryStatus) {
    if (!should_bounce_unknown(message)) return;
    send(make_not_understood(message, "unknown protocol '" + message.protocol + "'"));
    return;
  }
  AclMessage reply = message.make_reply(Performative::Inform);
  if (message.has_param("node")) {
    const std::string node_id = message.param("node");
    const grid::GridNode* node = grid_->find_node(node_id);
    reply.params["node"] = node_id;
    if (node == nullptr) {
      reply.performative = Performative::Failure;
      reply.params["error"] = "unknown node";
    } else {
      reply.params["state"] = node->is_up() ? "up" : "down";
      reply.params["next-free"] = util::format_number(node->next_free(), 4);
      reply.params["busy-time"] = util::format_number(node->busy_time(), 4);
      reply.params["completed-tasks"] = std::to_string(node->completed_tasks());
    }
  } else if (message.has_param("container")) {
    const std::string container_id = message.param("container");
    const grid::ApplicationContainer* container = grid_->find_container(container_id);
    reply.params["container"] = container_id;
    if (container == nullptr) {
      reply.performative = Performative::Failure;
      reply.params["error"] = "unknown container";
    } else {
      const grid::GridNode* node = grid_->find_node(container->node_id());
      const bool usable = container->available() && node != nullptr && node->is_up();
      reply.params["available"] = usable ? "true" : "false";
      reply.params["dispatches"] = std::to_string(container->dispatch_count());
      reply.params["failures"] = std::to_string(container->failure_count());
    }
  } else {
    reply.params["nodes"] = std::to_string(grid_->nodes().size());
    reply.params["containers"] = std::to_string(grid_->containers().size());
  }
  send(std::move(reply));
}

}  // namespace ig::svc
