#include "util/log.hpp"

#include <iostream>

namespace ig::util {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

Logger::Logger() : level_(LogLevel::Warn), stream_(&std::clog) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_stream(std::ostream* stream) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  stream_ = stream;
}

void Logger::write(LogLevel level, std::string_view component, std::string_view message) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stream_ == nullptr) return;
  (*stream_) << '[' << to_string(level) << "] " << component << ": " << message << '\n';
}

}  // namespace ig::util
