// Agent base class.
//
// Agents are reactive: the platform delivers one message at a time through
// `handle_message`, always on the simulation's single thread, so agent state
// needs no locking. Agents may also schedule timers on the virtual clock.
#pragma once

#include <string>

#include "agent/message.hpp"
#include "grid/sim.hpp"

namespace ig::agent {

class AgentPlatform;

class Agent {
 public:
  explicit Agent(std::string name) : name_(std::move(name)) {}
  virtual ~Agent() = default;

  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  const std::string& name() const noexcept { return name_; }

  /// Called once when the agent is registered with a platform.
  virtual void on_start() {}

  /// Delivers one message; the platform never calls this re-entrantly.
  virtual void handle_message(const AclMessage& message) = 0;

 protected:
  /// Sends a message (the sender field is stamped with this agent's name).
  void send(AclMessage message);

  /// Schedules a callback on the virtual clock.
  grid::EventId schedule(grid::SimTime delay, std::function<void()> action);

  /// Schedules a daemon (background-upkeep) callback: it never keeps the
  /// calendar alive on its own. Use for heartbeats and periodic sampling.
  grid::EventId schedule_daemon(grid::SimTime delay, std::function<void()> action);

  AgentPlatform& platform();
  grid::Simulation& sim();
  grid::SimTime now();

 private:
  friend class AgentPlatform;

  std::string name_;
  AgentPlatform* platform_ = nullptr;
};

}  // namespace ig::agent
