#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "engine/engine.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"
#include "wfl/structure.hpp"

namespace ig::engine {
namespace {

EngineConfig small_config(std::size_t shards) {
  EngineConfig config;
  config.shards = shards;
  config.environment.topology.domains = 2;
  config.environment.topology.nodes_per_domain = 2;
  return config;
}

/// A workflow whose always-true loop guard runs the full iteration
/// guardrail: long enough that a cancel lands mid-run.
wfl::ProcessDescription long_process() {
  const wfl::FlowExpr expr = wfl::parse_flow(
      "BEGIN, POD; P3DR1=P3DR; {ITERATIVE {COND true} {P3DR2=P3DR}}; "
      "{FORK {P3DR3=P3DR} {P3DR4=P3DR} JOIN}; PSF, END");
  return wfl::lower_to_process(expr, "looper");
}

TEST(Engine, CompletesSubmittedCasesOnOneShard) {
  EnactmentEngine engine(small_config(1));
  std::vector<CaseId> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(
        engine.submit(virolab::make_fig10_process(), virolab::make_case_description()));
    ASSERT_NE(ids.back(), kInvalidCase);
  }
  engine.drain();
  for (const CaseId id : ids) {
    ASSERT_EQ(engine.status(id), CaseState::Completed);
    const auto outcome = engine.result(id);
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(outcome->state, CaseState::Completed);
    EXPECT_DOUBLE_EQ(outcome->goal_satisfaction, 1.0);
    EXPECT_EQ(outcome->activities_executed, 12);
    EXPECT_GT(outcome->makespan, 0.0);
    EXPECT_EQ(outcome->engine_retries, 0);
  }
  const EngineMetrics metrics = engine.metrics();
  EXPECT_EQ(metrics.submitted, 3u);
  EXPECT_EQ(metrics.completed, 3u);
  EXPECT_EQ(metrics.failed, 0u);
  EXPECT_EQ(metrics.queue_depth, 0u);
  EXPECT_EQ(metrics.running, 0u);
  ASSERT_EQ(metrics.shards.size(), 1u);
  EXPECT_EQ(metrics.shards[0].cases_completed, 3u);
  EXPECT_GT(metrics.latency_p50, 0.0);
}

TEST(Engine, SpreadsCasesAcrossShards) {
  EngineConfig config = small_config(4);
  config.queue_capacity = 64;
  EnactmentEngine engine(config);
  std::vector<CaseId> ids;
  for (int i = 0; i < 12; ++i)
    ids.push_back(
        engine.submit(virolab::make_fig10_process(), virolab::make_case_description()));
  engine.drain();
  for (const CaseId id : ids) EXPECT_EQ(engine.status(id), CaseState::Completed);

  const EngineMetrics metrics = engine.metrics();
  EXPECT_EQ(metrics.completed, 12u);
  std::size_t total_runs = 0;
  std::size_t shards_used = 0;
  for (const auto& shard : metrics.shards) {
    total_runs += shard.cases_run;
    if (shard.cases_run > 0) ++shards_used;
  }
  EXPECT_EQ(total_runs, 12u);
  // With 12 cases and 4 idle shards, more than one shard must have worked.
  EXPECT_GE(shards_used, 2u);
}

TEST(Engine, BackpressureRejectsWhenQueueFull) {
  EngineConfig config = small_config(1);
  config.queue_capacity = 2;
  EnactmentEngine engine(config);
  const wfl::ProcessDescription process = virolab::make_fig10_process();
  const wfl::CaseDescription case_description = virolab::make_case_description();

  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (int i = 0; i < 16; ++i) {
    if (engine.submit(process, case_description) == kInvalidCase) ++rejected;
    else ++accepted;
  }
  EXPECT_GE(rejected, 1u);
  EXPECT_GE(accepted, 2u);
  engine.drain();
  const EngineMetrics metrics = engine.metrics();
  EXPECT_EQ(metrics.rejected, rejected);
  EXPECT_EQ(metrics.submitted, accepted);
  EXPECT_EQ(metrics.completed, accepted);
}

TEST(Engine, RoundRobinFairnessAcrossTenants) {
  // One shard, so completion order mirrors the admission scheduler. Tenant A
  // floods first; B's first case must not wait behind all of A's backlog.
  EngineConfig config = small_config(1);
  config.queue_capacity = 32;
  EnactmentEngine engine(config);
  const wfl::ProcessDescription process = virolab::make_fig10_process();
  const wfl::CaseDescription case_description = virolab::make_case_description();

  std::vector<CaseId> tenant_a;
  for (int i = 0; i < 4; ++i)
    tenant_a.push_back(engine.submit(process, case_description, "tenant-a"));
  const CaseId first_b = engine.submit(process, case_description, "tenant-b");
  engine.drain();

  const auto outcome_b = engine.result(first_b);
  const auto outcome_a_last = engine.result(tenant_a.back());
  ASSERT_TRUE(outcome_b.has_value());
  ASSERT_TRUE(outcome_a_last.has_value());
  EXPECT_EQ(outcome_b->state, CaseState::Completed);
  // Round-robin interleaves the tenants, so B's only case finishes before
  // A's last one even though A submitted its whole backlog first.
  EXPECT_LT(outcome_b->completion_index, outcome_a_last->completion_index);
}

TEST(Engine, CancelWhileQueuedTerminatesImmediately) {
  EngineConfig config = small_config(1);
  EnactmentEngine engine(config);
  const wfl::ProcessDescription process = virolab::make_fig10_process();
  const wfl::CaseDescription case_description = virolab::make_case_description();

  const CaseId running = engine.submit(process, case_description);
  const CaseId queued_1 = engine.submit(process, case_description);
  const CaseId queued_2 = engine.submit(process, case_description);
  // The single shard is busy with the first case; the last one is still
  // queued and cancels synchronously.
  EXPECT_TRUE(engine.cancel(queued_2));
  const auto outcome = engine.result(queued_2);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->state, CaseState::Cancelled);
  EXPECT_EQ(outcome->activities_executed, 0);

  engine.drain();
  EXPECT_EQ(engine.status(running), CaseState::Completed);
  EXPECT_EQ(engine.status(queued_1), CaseState::Completed);
  EXPECT_EQ(engine.status(queued_2), CaseState::Cancelled);
  EXPECT_FALSE(engine.cancel(queued_2));  // already terminal
  EXPECT_EQ(engine.metrics().cancelled, 1u);
}

TEST(Engine, CancelWhileRunningAbandonsTheAttempt) {
  EngineConfig config = small_config(1);
  // Small slices so the worker checks the cancel flag often, and a long
  // looping workload so there is plenty of run to interrupt.
  config.events_per_slice = 16;
  config.environment.coordination.max_loop_iterations = 2048;
  EnactmentEngine engine(config);

  const CaseId id = engine.submit(long_process(), virolab::make_case_description());
  ASSERT_NE(id, kInvalidCase);
  while (engine.status(id) == CaseState::Queued)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(engine.status(id), CaseState::Running);
  EXPECT_TRUE(engine.cancel(id));

  const auto outcome = engine.wait(id);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->state, CaseState::Cancelled);
  EXPECT_EQ(engine.metrics().cancelled, 1u);

  // The shard must still be healthy for the next case.
  const CaseId next =
      engine.submit(virolab::make_fig10_process(), virolab::make_case_description());
  const auto next_outcome = engine.wait(next);
  ASSERT_TRUE(next_outcome.has_value());
  EXPECT_EQ(next_outcome->state, CaseState::Completed);
}

TEST(Engine, RetriesFailedCasesOnAnotherShard) {
  // Shard 0 fails every dispatch; shard 1 is healthy. With the in-shard
  // recovery budgets cut to one dispatch retry (which also fails instantly
  // at a 100% floor), a case landing on shard 0 fails fast, and the
  // engine's checkpoint/restore retry must complete it on the healthy
  // shard. The single in-shard retry absorbs the topology's natural
  // sub-5% dispatch failures there.
  EngineConfig config = small_config(2);
  config.shard_failure_floor = {1.0, 0.0};
  config.max_case_retries = 2;
  config.queue_capacity = 32;
  config.environment.coordination.max_retries = 1;
  config.environment.coordination.max_replans = 0;
  EnactmentEngine engine(config);

  std::vector<CaseId> ids;
  for (int i = 0; i < 6; ++i)
    ids.push_back(
        engine.submit(virolab::make_fig10_process(), virolab::make_case_description()));
  engine.drain();

  for (const CaseId id : ids) {
    const auto outcome = engine.result(id);
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(outcome->state, CaseState::Completed) << outcome->error;
    EXPECT_DOUBLE_EQ(outcome->goal_satisfaction, 1.0);
  }
  const EngineMetrics metrics = engine.metrics();
  EXPECT_EQ(metrics.completed, 6u);
  EXPECT_EQ(metrics.failed, 0u);
  // At least one case must have been bounced off the faulty shard.
  EXPECT_GE(metrics.retried, 1u);
  EXPECT_EQ(metrics.shards[0].cases_completed + metrics.shards[1].cases_completed, 6u);
}

/// Impostor container agent whose handler always throws — it stands in for
/// a real container, so every dispatch to it exercises the platform's
/// containment net instead of the normal execute/Inform exchange.
class PoisonedAgent : public agent::Agent {
 public:
  using Agent::Agent;
  void handle_message(const agent::AclMessage&) override {
    throw std::runtime_error("poisoned container");
  }
};

/// Replaces every container hosting `service` on the shard with a
/// same-named PoisonedAgent. Matchmaking ranks from the grid model, so the
/// impostors keep receiving execute requests.
void poison_service_hosts(svc::Environment& environment, const std::string& service) {
  for (const auto* container : environment.grid().containers_hosting(service)) {
    environment.platform().deregister_agent(container->id());
    environment.platform().spawn<PoisonedAgent>(container->id());
  }
}

TEST(Engine, ContainedHandlerFaultsRetryOnHealthyShard) {
  // Shard 0's P3DR containers throw from inside their message handlers —
  // mid-FORK for the fig10 workflow, whose FORK block fans out three P3DR
  // activities. The platform containment net must convert each throw into
  // a dispatch Failure so the case fails cleanly (instead of tearing down
  // the shard), and the engine's checkpoint/restore retry completes it on
  // the healthy shard while shard 1's own enactments keep running.
  EngineConfig config = small_config(2);
  config.max_case_retries = 2;
  config.queue_capacity = 32;
  config.environment.coordination.max_retries = 1;
  config.environment.coordination.max_replans = 0;
  config.shard_setup = [](svc::Environment& environment, std::size_t shard) {
    if (shard == 0) poison_service_hosts(environment, "P3DR");
  };
  EnactmentEngine engine(config);

  std::vector<CaseId> ids;
  for (int i = 0; i < 6; ++i)
    ids.push_back(
        engine.submit(virolab::make_fig10_process(), virolab::make_case_description()));
  engine.drain();

  for (const CaseId id : ids) {
    const auto outcome = engine.result(id);
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(outcome->state, CaseState::Completed) << outcome->error;
  }
  const EngineMetrics metrics = engine.metrics();
  EXPECT_EQ(metrics.completed, 6u);
  EXPECT_EQ(metrics.failed, 0u);
  // The contained throws are visible in the metrics snapshot, attributed to
  // the poisoned shard.
  EXPECT_GT(metrics.handler_failures, 0u);
  EXPECT_GT(metrics.shards[0].handler_failures, 0u);
  EXPECT_EQ(metrics.shards[1].handler_failures, 0u);
}

TEST(Engine, PoisonedCaseStaysControllable) {
  // With every shard poisoned and no retry budget, the case must terminate
  // as Failed — and status/result/cancel must keep answering rather than
  // hang or throw.
  EngineConfig config = small_config(1);
  config.max_case_retries = 0;
  config.environment.coordination.max_retries = 1;
  config.environment.coordination.max_replans = 0;
  config.shard_setup = [](svc::Environment& environment, std::size_t) {
    poison_service_hosts(environment, "P3DR");
  };
  EnactmentEngine engine(config);

  const CaseId id =
      engine.submit(virolab::make_fig10_process(), virolab::make_case_description());
  engine.drain();

  EXPECT_EQ(engine.status(id), CaseState::Failed);
  const auto outcome = engine.result(id);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->error.empty());
  EXPECT_FALSE(engine.cancel(id));  // terminal, but still answered
  EXPECT_GT(engine.metrics().handler_failures, 0u);
}

TEST(Engine, FailsAfterRetryBudgetExhausted) {
  // Every shard is broken: the case fails, is retried the configured number
  // of times, and then terminates as Failed with the retry count reported.
  EngineConfig config = small_config(1);
  config.shard_failure_floor = {1.0};
  config.max_case_retries = 1;
  config.environment.coordination.max_retries = 1;
  config.environment.coordination.max_replans = 0;
  EnactmentEngine engine(config);

  const CaseId id =
      engine.submit(virolab::make_fig10_process(), virolab::make_case_description());
  const auto outcome = engine.wait(id);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->state, CaseState::Failed);
  EXPECT_EQ(outcome->engine_retries, 1);
  EXPECT_FALSE(outcome->error.empty());
  const EngineMetrics metrics = engine.metrics();
  EXPECT_EQ(metrics.failed, 1u);
  EXPECT_EQ(metrics.retried, 1u);
}

TEST(Engine, StatusOfUnknownCaseIsRejected) {
  EnactmentEngine engine(small_config(1));
  EXPECT_EQ(engine.status(kInvalidCase), CaseState::Rejected);
  EXPECT_EQ(engine.status(9999), CaseState::Rejected);
  EXPECT_FALSE(engine.result(9999).has_value());
  EXPECT_FALSE(engine.cancel(9999));
}

TEST(Engine, ObservabilitySnapshotsRaceShardWorkersSafely) {
  // The observability read paths — metrics() (atomic platform/tracker
  // counters + registry refresh), shard_spans() (tracer mutex) — run from a
  // monitor thread while shard workers enact. Under TSan this is the proof
  // the snapshot surfaces are race-free; everywhere it checks that a tight
  // message-trace ring records its evictions in the engine snapshot.
  EngineConfig config = small_config(2);
  config.queue_capacity = 32;
  config.environment.tracing = true;
  config.environment.trace_limit = 32;  // fig10 traffic overflows this fast
  config.environment.span_tracing = true;
  EnactmentEngine engine(config);

  std::atomic<bool> done{false};
  std::thread monitor([&] {
    while (!done.load()) {
      const EngineMetrics metrics = engine.metrics();
      (void)metrics;
      (void)engine.shard_spans(0);
      (void)engine.registry().snapshot();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<CaseId> ids;
  for (int i = 0; i < 6; ++i)
    ids.push_back(
        engine.submit(virolab::make_fig10_process(), virolab::make_case_description()));
  engine.drain();
  done.store(true);
  monitor.join();

  for (const CaseId id : ids) {
    const auto outcome = engine.result(id);
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(outcome->state, CaseState::Completed) << outcome->error;
  }
  const EngineMetrics metrics = engine.metrics();
  EXPECT_GT(metrics.shards[0].trace_dropped, 0u);
  // The shard emitted spans and they survive into the engine-level view.
  EXPECT_FALSE(engine.shard_spans(0).empty());
  EXPECT_TRUE(engine.shard_spans(99).empty());  // out of range, not a crash
}

TEST(Engine, ShutdownIsIdempotentAndStopsWorkers) {
  auto engine = std::make_unique<EnactmentEngine>(small_config(2));
  const CaseId id =
      engine->submit(virolab::make_fig10_process(), virolab::make_case_description());
  engine->wait(id);
  engine->shutdown();
  engine->shutdown();
  // Submissions after shutdown are rejected.
  EXPECT_EQ(engine->submit(virolab::make_fig10_process(), virolab::make_case_description()),
            kInvalidCase);
  engine.reset();  // destructor after explicit shutdown must be safe
}

TEST(Engine, SubmitRacingShutdownIsSafe) {
  // Regression: submit posts its pump jobs after releasing the engine
  // mutex. A concurrent shutdown() used to reset the job system inside
  // that window, so the racing post dereferenced null (or joined against a
  // pump blocked on the engine mutex). The pool now lives until the engine
  // is destroyed and a late pump just observes stopping_ and no-ops.
  for (int round = 0; round < 5; ++round) {
    EnactmentEngine engine(small_config(2));
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> submits{0};
    std::thread submitter([&] {
      while (!stop.load()) {
        engine.submit(virolab::make_fig10_process(), virolab::make_case_description());
        submits.fetch_add(1);
      }
    });
    // The final metrics check needs at least one submit to have landed; on a
    // loaded machine the 2 ms window alone doesn't guarantee the submitter
    // thread was ever scheduled.
    while (submits.load() == 0) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    engine.shutdown();
    stop.store(true);
    submitter.join();
    // The engine must still answer queries consistently after the race.
    const EngineMetrics metrics = engine.metrics();
    EXPECT_EQ(metrics.running, 0u);
    EXPECT_GE(metrics.submitted + metrics.rejected, 1u);
  }
}

}  // namespace
}  // namespace ig::engine
