// Tiny binary codec for durable record payloads.
//
// Every payload the storage engine persists (key/value mutations, engine
// journal events, snapshot state blobs) is built from four primitives:
// u8, u32, u64 and a length-prefixed byte string, all little-endian and
// fixed-width so the encoding is identical across platforms and trivially
// inspectable in a hex dump. The reader is never-throwing: any truncated
// or malformed field flips `ok()` and subsequent reads return zero values,
// so replay code can decode untrusted bytes and check once at the end —
// the same discipline the protocol layer uses for untrusted ACL params.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ig::store {

/// Appends fixed-width little-endian fields to a byte string.
class Writer {
 public:
  explicit Writer(std::string& out) : out_(out) {}

  void u8(std::uint8_t value) { out_.push_back(static_cast<char>(value)); }

  void u32(std::uint32_t value) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }

  void u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }

  void str(std::string_view value) {
    u32(static_cast<std::uint32_t>(value.size()));
    out_.append(value.data(), value.size());
  }

 private:
  std::string& out_;
};

/// Reads the writer's encoding back; tolerates arbitrary (corrupt) input.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ok() const noexcept { return ok_; }
  bool done() const noexcept { return pos_ == bytes_.size(); }

  std::uint8_t u8() noexcept {
    if (!take(1)) return 0;
    return static_cast<std::uint8_t>(bytes_[pos_ - 1]);
  }

  std::uint32_t u32() noexcept {
    if (!take(4)) return 0;
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
      value |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes_[pos_ - 4 + i]))
               << (8 * i);
    return value;
  }

  std::uint64_t u64() noexcept {
    if (!take(8)) return 0;
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
      value |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[pos_ - 8 + i]))
               << (8 * i);
    return value;
  }

  std::string_view str() noexcept {
    const std::uint32_t size = u32();
    if (!take(size)) return {};
    return bytes_.substr(pos_ - size, size);
  }

 private:
  bool take(std::size_t n) noexcept {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ig::store
