# Empty dependencies file for bench_fig11_plan_tree.
# This may be replaced when dependencies are built.
