#include "obs/export.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

namespace ig::obs {

namespace {

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string prom_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

/// `{a="1",b="2"}` with optional extra label (histograms' `le`).
std::string prom_labels(const Labels& labels, const std::string& extra_key = "",
                        const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key + "=\"" + prom_escape(value) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + prom_escape(extra_value) + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

std::string to_prometheus(const RegistrySnapshot& snapshot) {
  std::string out;
  std::set<std::string> typed;
  // TYPE headers are emitted lazily, before a name's first *rendered*
  // sample: a name whose every point is skipped (non-finite) stays entirely
  // absent from the page instead of leaving an orphaned header.
  const auto type_header = [&](const MetricPoint& point) {
    if (typed.insert(point.name).second)
      out += "# TYPE " + point.name + " " + std::string(to_string(point.kind)) + "\n";
  };
  for (const auto& point : snapshot.points) {
    if (point.kind == MetricKind::Histogram) {
      type_header(point);
      const HistogramSnapshot& hist = point.histogram;
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
        cumulative += hist.buckets[i];
        out += point.name + "_bucket" +
               prom_labels(point.labels, "le", format_double(hist.bounds[i])) + " " +
               std::to_string(cumulative) + "\n";
      }
      cumulative += hist.buckets.empty() ? 0 : hist.buckets.back();
      out += point.name + "_bucket" + prom_labels(point.labels, "le", "+Inf") + " " +
             std::to_string(cumulative) + "\n";
      out += point.name + "_sum" + prom_labels(point.labels) + " " +
             format_double(hist.sum) + "\n";
      out += point.name + "_count" + prom_labels(point.labels) + " " +
             std::to_string(hist.count) + "\n";
      continue;
    }
    if (!std::isfinite(point.value)) continue;  // absent point, not a fake zero
    type_header(point);
    out += point.name + prom_labels(point.labels) + " " + format_double(point.value) + "\n";
  }
  return out;
}

std::string to_chrome_trace(const std::vector<Span>& spans) {
  // One tid row per case keeps concurrent cases visually separate in
  // Perfetto; ids are assigned in first-seen order, so the layout is
  // deterministic for a deterministic span stream.
  std::map<std::string, int> case_rows;
  for (const auto& span : spans) {
    case_rows.emplace(span.case_id, static_cast<int>(case_rows.size()) + 1);
  }
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& span : spans) {
    if (!span.closed) continue;
    if (!first) out += ',';
    first = false;
    const double ts = span.start * 1e6;        // sim seconds -> microseconds
    const double dur = (span.end - span.start) * 1e6;
    out += "{\"name\":\"" + json_escape(span.name) + "\"";
    out += ",\"cat\":\"" + std::string(to_string(span.kind)) + "\"";
    out += ",\"ph\":\"X\"";
    out += ",\"ts\":" + format_double(ts);
    out += ",\"dur\":" + format_double(dur < 0.0 ? 0.0 : dur);
    out += ",\"pid\":1,\"tid\":" + std::to_string(case_rows[span.case_id]);
    out += ",\"args\":{\"id\":" + std::to_string(span.id);
    out += ",\"parent\":" + std::to_string(span.parent);
    out += ",\"case\":\"" + json_escape(span.case_id) + "\"";
    for (const auto& [key, value] : span.tags) {
      out += ",\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string to_json_lines(const RegistrySnapshot& snapshot, const std::string& source) {
  std::string out;
  const auto number_or_null = [](double value) {
    return std::isfinite(value) ? format_double(value) : std::string("null");
  };
  for (const auto& point : snapshot.points) {
    std::string line = "{\"source\":\"" + json_escape(source) + "\"";
    line += ",\"metric\":\"" + json_escape(point.name) + "\"";
    line += ",\"kind\":\"" + std::string(to_string(point.kind)) + "\"";
    for (const auto& [key, value] : point.labels) {
      line += ",\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
    }
    if (point.kind == MetricKind::Histogram) {
      const HistogramSnapshot& hist = point.histogram;
      line += ",\"count\":" + std::to_string(hist.count);
      line += ",\"sum\":" + number_or_null(hist.sum);
      line += ",\"p50\":" + number_or_null(hist.quantile(50.0));
      line += ",\"p99\":" + number_or_null(hist.quantile(99.0));
    } else {
      line += ",\"value\":" + number_or_null(point.value);
    }
    line += "}\n";
    out += line;
  }
  return out;
}

// -- validators ---------------------------------------------------------------

namespace {

/// Strict recursive-descent JSON syntax checker.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool run(std::string* error) {
    skip_space();
    if (!value()) return fail(error);
    skip_space();
    if (pos_ != text_.size()) {
      message_ = "trailing content";
      return fail(error);
    }
    return true;
  }

 private:
  bool fail(std::string* error) {
    if (error != nullptr)
      *error = message_.empty() ? "malformed JSON" : message_;
    if (error != nullptr) *error += " at offset " + std::to_string(pos_);
    return false;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_space() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool literal(const char* word) {
    for (const char* c = word; *c != '\0'; ++c) {
      if (!eat(*c)) {
        message_ = std::string("bad literal (expected '") + word + "')";
        return false;
      }
    }
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    eat('-');
    if (eat('0')) {
      // no leading zeros
    } else {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        message_ = "expected a value";
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (eat('.')) {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        message_ = "bad fraction";
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        message_ = "bad exponent";
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool string() {
    if (!eat('"')) {
      message_ = "expected a string";
      return false;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        message_ = "unescaped control character in string";
        return false;
      }
      if (c == '\\') {
        ++pos_;
        const char escape = peek();
        if (escape == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(peek()))) {
              message_ = "bad \\u escape";
              return false;
            }
            ++pos_;
          }
          continue;
        }
        if (std::string("\"\\/bfnrt").find(escape) == std::string::npos) {
          message_ = "bad escape";
          return false;
        }
        ++pos_;
        continue;
      }
      ++pos_;
    }
    message_ = "unterminated string";
    return false;
  }

  bool array() {
    eat('[');
    skip_space();
    if (eat(']')) return true;
    for (;;) {
      if (!value()) return false;
      skip_space();
      if (eat(']')) return true;
      if (!eat(',')) {
        message_ = "expected ',' or ']'";
        return false;
      }
      skip_space();
    }
  }

  bool object() {
    eat('{');
    skip_space();
    if (eat('}')) return true;
    for (;;) {
      if (!string()) return false;
      skip_space();
      if (!eat(':')) {
        message_ = "expected ':'";
        return false;
      }
      skip_space();
      if (!value()) return false;
      skip_space();
      if (eat('}')) return true;
      if (!eat(',')) {
        message_ = "expected ',' or '}'";
        return false;
      }
      skip_space();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string message_;
};

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  const auto name_char = [](char c, bool first) {
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') return true;
    return !first && std::isdigit(static_cast<unsigned char>(c));
  };
  for (std::size_t i = 0; i < name.size(); ++i) {
    if (!name_char(name[i], i == 0)) return false;
  }
  return true;
}

}  // namespace

bool validate_json(const std::string& text, std::string* error) {
  return JsonChecker(text).run(error);
}

bool validate_prometheus(const std::string& text, std::string* error) {
  const auto fail = [&](std::size_t line_number, const std::string& why) {
    if (error != nullptr)
      *error = "line " + std::to_string(line_number) + ": " + why;
    return false;
  };
  std::size_t line_number = 0;
  std::size_t start = 0;
  bool saw_sample = false;
  while (start <= text.size()) {
    std::size_t stop = text.find('\n', start);
    if (stop == std::string::npos) stop = text.size();
    const std::string line = text.substr(start, stop - start);
    start = stop + 1;
    ++line_number;
    if (line.empty()) {
      if (start > text.size()) break;
      continue;
    }
    if (line[0] == '#') continue;

    // name[{labels}] value
    std::size_t name_end = 0;
    while (name_end < line.size() && line[name_end] != '{' && line[name_end] != ' ')
      ++name_end;
    if (!valid_metric_name(line.substr(0, name_end)))
      return fail(line_number, "bad metric name");
    std::size_t cursor = name_end;
    if (cursor < line.size() && line[cursor] == '{') {
      const std::size_t close = line.find('}', cursor);
      if (close == std::string::npos) return fail(line_number, "unterminated label set");
      // Each label must look like key="value".
      std::size_t label_pos = cursor + 1;
      while (label_pos < close) {
        std::size_t eq = line.find('=', label_pos);
        if (eq == std::string::npos || eq > close)
          return fail(line_number, "label without '='");
        if (eq + 1 >= close || line[eq + 1] != '"')
          return fail(line_number, "unquoted label value");
        std::size_t quote = eq + 2;
        while (quote < close && !(line[quote] == '"' && line[quote - 1] != '\\')) ++quote;
        if (quote >= close && !(quote == close - 0 && line[close - 1] == '"'))
          if (quote >= close) return fail(line_number, "unterminated label value");
        label_pos = quote + 1;
        if (label_pos < close && line[label_pos] == ',') ++label_pos;
      }
      cursor = close + 1;
    }
    if (cursor >= line.size() || line[cursor] != ' ')
      return fail(line_number, "missing value separator");
    const std::string rendered = line.substr(cursor + 1);
    char* parse_end = nullptr;
    const double value = std::strtod(rendered.c_str(), &parse_end);
    if (parse_end == rendered.c_str() || *parse_end != '\0')
      return fail(line_number, "unparseable sample value");
    if (!std::isfinite(value)) return fail(line_number, "non-finite sample value");
    saw_sample = true;
  }
  if (!saw_sample) return fail(line_number, "no samples");
  return true;
}

}  // namespace ig::obs
