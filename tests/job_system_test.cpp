// The work-stealing job system: exactly-once execution under forced
// stealing, nested submission, affinity, exception propagation, drain-on-
// destruct, and the bitwise-determinism contract the planner and engine
// build on (same results at any worker count, chaos replay included).
#include "sched/job_system.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "planner/gp.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"

namespace ig {
namespace {

/// Spins until `done` returns true or ~5s pass; returns whether it held.
template <typename Fn>
bool eventually(Fn&& done) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

/// True once every worker is parked. Until then a worker may still be in a
/// steal scan (freshly started or just finished a job) and can legitimately
/// grab a job posted for another worker — affinity is advisory exactly in
/// that window.
bool all_parked(const sched::JobSystem& jobs, std::size_t workers) {
  const sched::JobStats s = jobs.stats();
  return s.parks - s.unparks == workers;
}

TEST(JobSystem, EveryJobRunsExactlyOnceUnderForcedStealing) {
  constexpr std::size_t kJobs = 100;
  sched::JobSystem jobs(4);

  // Occupy worker 0 so the affinity-0 backlog below can only drain through
  // steals by the other three workers. Post the blocker only once everyone
  // is parked, so a startup steal scan cannot walk off with it.
  ASSERT_TRUE(eventually([&] { return all_parked(jobs, 4); }));
  std::atomic<bool> blocker_started{false};
  std::atomic<bool> release_blocker{false};
  jobs.post(
      [&] {
        blocker_started.store(true);
        while (!release_blocker.load()) std::this_thread::yield();
      },
      /*affinity=*/0);
  ASSERT_TRUE(eventually([&] { return blocker_started.load(); }));

  std::vector<std::atomic<int>> runs(kJobs);
  std::atomic<std::size_t> completed{0};
  for (std::size_t i = 0; i < kJobs; ++i) {
    jobs.post(
        [&, i] {
          runs[i].fetch_add(1);
          completed.fetch_add(1);
        },
        /*affinity=*/0);
  }
  ASSERT_TRUE(eventually([&] { return completed.load() == kJobs; }));
  release_blocker.store(true);
  jobs.wait_idle();

  for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(runs[i].load(), 1) << "job " << i;
  const sched::JobStats stats = jobs.stats();
  EXPECT_EQ(stats.executed, kJobs + 1);
  // Worker 0 never popped: every backlog job reached its executor via a
  // steal (some may count twice when re-stolen from a thief's deque).
  EXPECT_GE(stats.stolen, kJobs);
  EXPECT_GT(stats.steal_attempts, 0u);
}

TEST(JobSystem, NestedSubmitFromInsideAJob) {
  sched::JobSystem jobs(2);
  std::atomic<int> inner_runs{0};
  auto outer = jobs.submit([&] {
    for (int i = 0; i < 8; ++i) jobs.post([&] { inner_runs.fetch_add(1); });
    return 42;
  });
  EXPECT_EQ(outer.get(), 42);
  jobs.wait_idle();
  EXPECT_EQ(inner_runs.load(), 8);
}

TEST(JobSystem, AffinityHintHonoredWhenTargetWorkerFree) {
  sched::JobSystem jobs(4);
  // "Target free" means *parked* (see all_parked). Once every worker
  // sleeps, a single post wakes only the hinted worker (nothing pokes a
  // thief for a depth-1 deque), so the hint is guaranteed, not advisory.
  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(eventually([&] { return all_parked(jobs, 4); })) << "round " << round;
    const std::size_t target = static_cast<std::size_t>(round) % 4;
    std::size_t ran_on = sched::JobSystem::kAnyWorker;
    jobs.submit([&] { ran_on = jobs.current_worker(); }, target).get();
    EXPECT_EQ(ran_on, target) << "round " << round;
  }
  EXPECT_EQ(jobs.stats().stolen, 0u);
}

TEST(JobSystem, SubmitPropagatesExceptionsThroughTheFuture) {
  sched::JobSystem jobs(2);
  auto future = jobs.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  jobs.wait_idle();  // the failed job must still be accounted as finished
}

TEST(JobSystem, ParallelForRethrowsTheFirstException) {
  sched::JobSystem jobs(4);
  EXPECT_THROW(jobs.parallel_for(64,
                                 [](std::size_t index, std::size_t) {
                                   if (index == 17) throw std::runtime_error("bad index");
                                 }),
               std::runtime_error);
  jobs.wait_idle();
}

TEST(JobSystem, ParallelForCoversEveryIndexOnceWithValidWorkerIds) {
  sched::JobSystem jobs(3);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  std::atomic<bool> worker_in_range{true};
  jobs.parallel_for(kCount, [&](std::size_t index, std::size_t worker) {
    hits[index].fetch_add(1);
    if (worker >= 3) worker_in_range.store(false);
  });
  for (std::size_t i = 0; i < kCount; ++i) ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  EXPECT_TRUE(worker_in_range.load());
}

TEST(JobSystem, NestedParallelForDoesNotDeadlockOnOneWorker) {
  sched::JobSystem jobs(1);
  std::atomic<int> total{0};
  jobs.parallel_for(4, [&](std::size_t, std::size_t) {
    // Worker-context caller: helps drain instead of blocking the only worker.
    jobs.parallel_for(4, [&](std::size_t, std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(JobSystem, DestructorDrainsAFullDeque) {
  std::atomic<int> runs{0};
  {
    sched::JobSystem jobs(2);
    // Park both workers behind slow jobs, then pile up a backlog; the
    // destructor must run all of it before joining.
    for (int i = 0; i < 2; ++i)
      jobs.post([&] { std::this_thread::sleep_for(std::chrono::milliseconds(20)); });
    for (int i = 0; i < 200; ++i) jobs.post([&] { runs.fetch_add(1); });
  }
  EXPECT_EQ(runs.load(), 200);
}

TEST(JobSystem, JobsPostedDuringDrainStillExecute) {
  std::atomic<int> runs{0};
  {
    sched::JobSystem jobs(2);
    jobs.post([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      jobs.post([&] { runs.fetch_add(1); });  // posted while the dtor drains
    });
  }
  EXPECT_EQ(runs.load(), 1);
}

TEST(JobSystem, HintedPostDuringDrainRedirectsOffExitedWorkers) {
  // A job still running during the destructor's drain posts with affinity
  // hints naming workers that have (very likely) already exited; each job
  // must land on a live deque and run instead of being stranded on a dead
  // one, which would also wedge pending_ above zero and hang the join.
  std::atomic<int> runs{0};
  std::atomic<bool> blocker_started{false};
  std::atomic<bool> release{false};
  std::thread releaser;
  {
    sched::JobSystem jobs(4);
    jobs.post(
        [&] {
          blocker_started.store(true);
          while (!release.load()) std::this_thread::yield();
          for (std::size_t hint = 1; hint < 4; ++hint)
            jobs.post([&] { runs.fetch_add(1); }, hint);
        },
        /*affinity=*/0);
    ASSERT_TRUE(eventually([&] { return blocker_started.load(); }));
    releaser = std::thread([&] {
      // Give ~JobSystem time to set stopping_ and let the idle workers
      // drain out and exit before the blocker posts its hinted jobs.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      release.store(true);
    });
  }  // ~JobSystem joins the blocker's worker, gated on `release`
  releaser.join();
  EXPECT_EQ(runs.load(), 3);
}

TEST(JobSystem, PublishMetricsExportsSchedulerCounters) {
  sched::JobSystem jobs(2);
  jobs.parallel_for(100, [](std::size_t, std::size_t) {});
  jobs.wait_idle();
  obs::MetricsRegistry registry;
  jobs.publish_metrics(registry);
  const obs::RegistrySnapshot snapshot = registry.snapshot();
  const obs::MetricPoint* executed = snapshot.find("sched_jobs_executed_total");
  ASSERT_NE(executed, nullptr);
  EXPECT_GT(executed->value, 0.0);
  EXPECT_NE(snapshot.find("sched_workers"), nullptr);
}

// -- the determinism contract the callers rely on --

planner::GpResult small_gp_run(std::size_t threads) {
  const planner::PlanningProblem problem = planner::PlanningProblem::from_case(
      virolab::make_case_description(), virolab::make_catalogue());
  planner::GpConfig config;
  config.population_size = 40;
  config.generations = 4;
  config.seed = 7;
  config.threads = threads;
  return planner::run_gp(problem, config);
}

TEST(JobSystemDeterminism, GpResultsBitwiseIdenticalAcrossWorkerCounts) {
  const planner::GpResult one = small_gp_run(1);
  const planner::GpResult three = small_gp_run(3);
  EXPECT_EQ(one.best_fitness.overall, three.best_fitness.overall);
  EXPECT_EQ(one.evaluations, three.evaluations);
  EXPECT_TRUE(one.best_plan == three.best_plan);
  ASSERT_EQ(one.history.size(), three.history.size());
  for (std::size_t i = 0; i < one.history.size(); ++i) {
    EXPECT_EQ(one.history[i].best_fitness, three.history[i].best_fitness) << "gen " << i;
    EXPECT_EQ(one.history[i].mean_fitness, three.history[i].mean_fitness) << "gen " << i;
  }
}

std::vector<engine::CaseOutcome> run_engine_cases(std::size_t workers, bool chaos) {
  engine::EngineConfig config;
  config.shards = 1;  // the engine's bit-reproducibility envelope
  config.workers = workers;
  config.environment.topology.domains = 2;
  config.environment.topology.nodes_per_domain = 3;
  if (chaos) {
    agent::ChaosRule rule;
    rule.match.receiver = "ac-*";
    rule.drop = 0.2;
    rule.delay = 0.1;
    config.environment.chaos.rules.push_back(rule);
    config.environment.chaos.seed = 99;
    config.environment.coordination.exec_policy = {300.0, 3, 0.5, 10.0};
  }
  engine::EnactmentEngine engine(config);
  std::vector<engine::CaseId> ids;
  for (int i = 0; i < 3; ++i) {
    const double resolution = 8.0 - 0.2 * i;
    ids.push_back(engine.submit(virolab::make_fig10_process(resolution),
                                virolab::make_case_description(resolution)));
  }
  engine.drain();
  std::vector<engine::CaseOutcome> outcomes;
  for (const engine::CaseId id : ids) outcomes.push_back(*engine.result(id));
  return outcomes;
}

void expect_identical_outcomes(const std::vector<engine::CaseOutcome>& a,
                               const std::vector<engine::CaseOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].state, b[i].state) << "case " << i;
    EXPECT_EQ(a[i].makespan, b[i].makespan) << "case " << i;
    EXPECT_EQ(a[i].activities_executed, b[i].activities_executed) << "case " << i;
    EXPECT_EQ(a[i].dispatch_failures, b[i].dispatch_failures) << "case " << i;
    EXPECT_EQ(a[i].total_cost, b[i].total_cost) << "case " << i;
  }
}

TEST(JobSystemDeterminism, EngineOutcomesIdenticalAcrossWorkerCounts) {
  expect_identical_outcomes(run_engine_cases(1, /*chaos=*/false),
                            run_engine_cases(3, /*chaos=*/false));
}

TEST(JobSystemDeterminism, ChaosReplayIdenticalAcrossWorkerCounts) {
  // Same seed, same fault stream, same outcomes — whether the pump stream
  // has a private worker or shares a wider pool.
  expect_identical_outcomes(run_engine_cases(1, /*chaos=*/true),
                            run_engine_cases(2, /*chaos=*/true));
}

}  // namespace
}  // namespace ig
