file(REMOVE_RECURSE
  "../bench/bench_fig12_13_ontology"
  "../bench/bench_fig12_13_ontology.pdb"
  "CMakeFiles/bench_fig12_13_ontology.dir/bench_fig12_13_ontology.cpp.o"
  "CMakeFiles/bench_fig12_13_ontology.dir/bench_fig12_13_ontology.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_13_ontology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
