// Scheduling service.
//
// "Scheduling services provide optimal schedules for sites offering to host
// application containers for different end-user services." Given a bag of
// independent tasks (work amounts) and the candidate nodes' speeds, the
// service produces a makespan-minimizing assignment. Exact optimum is
// NP-hard; LPT (longest processing time first) list scheduling is the
// classic 4/3-approximation and is what the service implements, with an
// exhaustive branch-and-bound for small instances (<= 12 tasks) so harnesses
// can quantify the LPT gap.
#pragma once

#include <string>
#include <vector>

#include "agent/agent.hpp"

namespace ig::svc {

struct ScheduledTask {
  std::string task_id;
  double work = 1.0;
  int assigned_machine = -1;  ///< index into the machine speed vector
};

struct Schedule {
  std::vector<ScheduledTask> tasks;
  double makespan = 0.0;
};

/// LPT list scheduling onto machines with the given speeds.
Schedule schedule_lpt(std::vector<ScheduledTask> tasks, const std::vector<double>& speeds);

/// Exhaustive optimal schedule (branch and bound); intended for <= ~12 tasks.
Schedule schedule_optimal(std::vector<ScheduledTask> tasks, const std::vector<double>& speeds);

class SchedulingService : public agent::Agent {
 public:
  explicit SchedulingService(std::string name = "schs") : Agent(std::move(name)) {}

  void on_start() override;
  void handle_message(const agent::AclMessage& message) override;
};

}  // namespace ig::svc
