file(REMOVE_RECURSE
  "CMakeFiles/wfl_xml_test.dir/wfl_xml_test.cpp.o"
  "CMakeFiles/wfl_xml_test.dir/wfl_xml_test.cpp.o.d"
  "wfl_xml_test"
  "wfl_xml_test.pdb"
  "wfl_xml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfl_xml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
