#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace ig::util {
namespace {

TEST(ThreadPool, SubmitReturnsFutureWithResult) {
  ThreadPool pool(2);
  auto forty_two = pool.submit([] { return 42; });
  auto text = pool.submit([] { return std::string("done"); });
  EXPECT_EQ(forty_two.get(), 42);
  EXPECT_EQ(text.get(), "done");
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto failing = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(failing.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> visits(kCount);
  pool.parallel_for(kCount, [&](std::size_t index, std::size_t worker) {
    EXPECT_LT(worker, pool.size());
    visits[index].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForHandlesEmptyAndSmallRanges) {
  ThreadPool pool(4);
  pool.parallel_for(0, [&](std::size_t, std::size_t) { FAIL() << "no indices to run"; });

  std::atomic<std::size_t> ran{0};
  pool.parallel_for(2, [&](std::size_t, std::size_t) { ++ran; });  // count < workers
  EXPECT_EQ(ran.load(), 2u);
}

TEST(ThreadPool, ParallelForIsReusable) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 20; ++round)
    pool.parallel_for(50, [&](std::size_t, std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 20u * 50u);
}

TEST(ThreadPool, ParallelForRethrowsTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [&](std::size_t index, std::size_t) {
                                   if (index == 7) throw std::runtime_error("bad index");
                                 }),
               std::runtime_error);
  // The pool survives the exception.
  std::atomic<std::size_t> ran{0};
  pool.parallel_for(5, [&](std::size_t, std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 5u);
}

TEST(ThreadPool, ZeroThreadRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::size_t ran = 0;
  pool.parallel_for(3, [&](std::size_t, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    ++ran;
  });
  EXPECT_EQ(ran, 3u);
}

TEST(ThreadPool, HardwareThreadsNeverZero) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 500;
  std::vector<long> values(kCount);
  pool.parallel_for(kCount, [&](std::size_t index, std::size_t) {
    values[index] = static_cast<long>(index * index);
  });
  long expected = 0;
  for (std::size_t i = 0; i < kCount; ++i) expected += static_cast<long>(i * i);
  EXPECT_EQ(std::accumulate(values.begin(), values.end(), 0L), expected);
}

}  // namespace
}  // namespace ig::util
