// Grid nodes: autonomous resources in administrative domains.
//
// "The system consists of autonomous nodes in different administrative
// domains" — each node carries hardware/software metadata (for brokerage and
// matchmaking), a reliability figure (for the failure model), and a simple
// FIFO execution queue (tasks dispatched to a busy node wait).
#pragma once

#include <string>
#include <vector>

#include "grid/hardware.hpp"
#include "grid/sim.hpp"

namespace ig::grid {

enum class NodeState { Up, Down };

/// One resource (the Resource frame of Figure 12).
class GridNode {
 public:
  GridNode(std::string id, std::string name, std::string domain, HardwareSpec hardware)
      : id_(std::move(id)),
        name_(std::move(name)),
        domain_(std::move(domain)),
        hardware_(std::move(hardware)) {}

  const std::string& id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  const std::string& domain() const noexcept { return domain_; }

  const HardwareSpec& hardware() const noexcept { return hardware_; }
  HardwareSpec& hardware() noexcept { return hardware_; }

  const std::vector<SoftwareSpec>& software() const noexcept { return software_; }
  void install(SoftwareSpec software) { software_.push_back(std::move(software)); }

  NodeState state() const noexcept { return state_; }
  void set_state(NodeState state) noexcept { state_ = state; }
  bool is_up() const noexcept { return state_ == NodeState::Up; }

  /// Probability that a task dispatched here completes without node failure.
  double reliability() const noexcept { return reliability_; }
  void set_reliability(double reliability) noexcept { reliability_ = reliability; }

  /// Number of nodes in the cluster (parallelism available on this resource).
  int node_count() const noexcept { return node_count_; }
  void set_node_count(int count) noexcept { node_count_ = count; }

  // -- execution-queue bookkeeping -------------------------------------------
  /// Virtual time at which the node becomes free for new work.
  SimTime next_free() const noexcept { return next_free_; }

  /// Duration of `work` abstract operations on this node.
  SimTime execution_time(double work) const noexcept {
    const double effective_speed = hardware_.speed * static_cast<double>(node_count_);
    return effective_speed > 0 ? work / effective_speed : work;
  }

  /// Reserves the node for a task of the given work, starting no earlier
  /// than `now`; returns the completion time.
  SimTime enqueue_work(SimTime now, double work);

  /// Accumulated busy virtual seconds (for utilization reports).
  SimTime busy_time() const noexcept { return busy_time_; }
  std::size_t completed_tasks() const noexcept { return completed_tasks_; }

  std::string to_display_string() const;

 private:
  std::string id_;
  std::string name_;
  std::string domain_;
  HardwareSpec hardware_;
  std::vector<SoftwareSpec> software_;
  NodeState state_ = NodeState::Up;
  double reliability_ = 1.0;
  int node_count_ = 1;
  SimTime next_free_ = 0.0;
  SimTime busy_time_ = 0.0;
  std::size_t completed_tasks_ = 0;
};

}  // namespace ig::grid
