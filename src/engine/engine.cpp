#include "engine/engine.hpp"

#include <algorithm>

#include "services/protocol.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "wfl/xml_io.hpp"

namespace ig::engine {

using agent::AclMessage;
using agent::Performative;

std::string_view to_string(CaseState state) noexcept {
  switch (state) {
    case CaseState::Queued: return "Queued";
    case CaseState::Running: return "Running";
    case CaseState::Completed: return "Completed";
    case CaseState::Failed: return "Failed";
    case CaseState::Cancelled: return "Cancelled";
    case CaseState::Rejected: return "Rejected";
  }
  return "?";
}

namespace {

/// The engine's in-platform proxy: the agent that submits enact / restore /
/// checkpoint requests on a shard and collects the replies. Only the
/// shard's worker thread ever touches it (it runs the simulation), so it
/// needs no locking.
class EngineClient final : public agent::Agent {
 public:
  using Agent::Agent;

  void handle_message(const AclMessage& message) override {
    replies_[message.conversation_id] = message;
  }

  void post(AclMessage message) { send(std::move(message)); }

  std::optional<AclMessage> take(const std::string& conversation_id) {
    auto it = replies_.find(conversation_id);
    if (it == replies_.end()) return std::nullopt;
    AclMessage message = std::move(it->second);
    replies_.erase(it);
    return message;
  }

 private:
  std::map<std::string, AclMessage> replies_;
};

}  // namespace

struct EnactmentEngine::AttemptResult {
  enum class Kind { Success, Failure, Cancelled } kind = Kind::Failure;
  AclMessage reply;             ///< the case-completed (or failure) reply
  std::string checkpoint_xml;  ///< snapshot captured after a failure
};

/// One shard: a private environment, its proxy agent, and the state machine
/// that a chain of pump jobs advances one simulation slice at a time. The
/// attempt state is touched only by the shard's single in-flight pump job
/// (the job chain serializes through the job system's deques), so it needs
/// no lock even though successive slices may run on different workers.
/// Stats and `pump_scheduled` are guarded by the engine mutex.
struct EnactmentEngine::Shard {
  std::size_t index = 0;
  std::unique_ptr<svc::Environment> environment;
  EngineClient* client = nullptr;

  // -- attempt state machine, owned by the in-flight pump job --
  /// Idle: no case. Drain: flushing calendar leftovers of an abandoned
  /// case. Enact: slicing the simulation until the completion reply.
  /// Checkpoint: snapshotting a failed enactment for a cross-shard retry.
  enum class Phase { Idle, Drain, Enact, Checkpoint };
  Phase phase = Phase::Idle;
  CaseRecord snapshot;        ///< inputs of the current attempt
  std::string conversation;   ///< engine/<case>/<retry>
  std::size_t slices = 0;     ///< slices consumed in the current phase
  AttemptResult attempt;      ///< result under construction

  // -- stats, under the engine mutex --
  bool pump_scheduled = false;  ///< a pump job for this shard is in flight
  std::size_t cases_run = 0;
  std::size_t cases_completed = 0;
  std::size_t cases_failed = 0;
  double busy_seconds = 0.0;
};

EnactmentEngine::EnactmentEngine(EngineConfig config) : config_(std::move(config)) {
  config_.shards = std::max<std::size_t>(1, config_.shards);
  config_.events_per_slice = std::max<std::size_t>(1, config_.events_per_slice);
  started_at_ = std::chrono::steady_clock::now();
  // Ring capacity well above any bench's case count, so registry-derived
  // percentiles stay exact (see obs/metrics.hpp).
  latency_hist_ = &registry_.histogram("engine_case_latency_seconds",
                                       obs::default_latency_buckets(), {}, 65536);

  // Build every shard stack on the caller's thread (deterministic seeds,
  // no construction races), then start the workers.
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    const double floor =
        i < config_.shard_failure_floor.size() ? config_.shard_failure_floor[i] : 0.0;
    svc::EnvironmentOptions options = config_.environment;
    if (options.chaos.enabled()) {
      // Same chaos rules on every shard, decorrelated fault streams: each
      // shard's draw sequence comes from (template chaos seed, shard index).
      options.chaos.seed = util::derive_stream(options.chaos.seed, 0xC4A05ULL, i);
    }
    shard->environment = svc::make_shard_stack(options, config_.seed, i, floor);
    shard->client = &shard->environment->platform().spawn<EngineClient>("engine-client");
    if (config_.shard_setup) config_.shard_setup(*shard->environment, i);
    shards_.push_back(std::move(shard));
  }
  // One shared work-stealing pool under every shard's pump stream. The
  // default (workers = shards) keeps the old thread-per-shard concurrency;
  // fewer workers time-slice the streams, and either way an idle worker
  // steals a busy shard's next slice instead of sleeping.
  const std::size_t workers = config_.workers == 0 ? config_.shards : config_.workers;
  jobs_ = std::make_unique<sched::JobSystem>(workers);
}

EnactmentEngine::~EnactmentEngine() { shutdown(); }

void EnactmentEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  case_terminal_.notify_all();
  // Drain the in-flight pump jobs: each sees stopping_, finalizes its
  // running attempt as Failed ("engine shutdown"), and does not repost.
  // Queued cases stay Queued. The counters survive for metrics(). The job
  // system itself is NOT torn down here: submit() is thread-safe and may
  // race this drain, posting a pump just after wait_idle() returns — that
  // post needs a live JobSystem to land on (the pump then sees stopping_
  // and no-ops). jobs_ dies with the engine, whose destructor drains again.
  jobs_->wait_idle();
}

CaseId EnactmentEngine::submit(const wfl::ProcessDescription& process,
                               const wfl::CaseDescription& case_description,
                               const std::string& tenant) {
  return submit_xml(wfl::process_to_xml_string(process),
                    wfl::case_to_xml_string(case_description), tenant);
}

CaseId EnactmentEngine::submit_xml(std::string process_xml, std::string case_xml,
                                   const std::string& tenant) {
  std::vector<Shard*> to_pump;
  CaseId id = kInvalidCase;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || queued_ >= config_.queue_capacity) {
      ++rejected_total_;
      return kInvalidCase;
    }
    id = next_case_id_++;
    CaseRecord& record = records_[id];
    record.id = id;
    record.tenant = tenant.empty() ? "default" : tenant;
    record.process_xml = std::move(process_xml);
    record.case_xml = std::move(case_xml);
    record.submitted_at = std::chrono::steady_clock::now();
    ++submitted_total_;
    admit_locked(record);
    to_pump = claim_idle_pumps_locked();
  }
  // Posting outside the engine mutex: a pump job can start (and take the
  // mutex) before we would have released it. A shutdown() racing these
  // posts is safe — jobs_ stays alive until the engine is destroyed, and
  // the pumps themselves observe stopping_ and no-op.
  for (Shard* shard : to_pump) post_pump(*shard);
  return id;
}

std::vector<EnactmentEngine::Shard*> EnactmentEngine::claim_idle_pumps_locked() {
  std::vector<Shard*> claimed;
  for (auto& shard : shards_) {
    if (shard->pump_scheduled) continue;
    shard->pump_scheduled = true;
    claimed.push_back(shard.get());
  }
  return claimed;
}

void EnactmentEngine::post_pump(Shard& shard) {
  // Affinity pins the stream to one home worker (cache-warm environment);
  // the job stays stealable when that worker is mid-slice on another shard.
  jobs_->post([this, &shard] { pump(shard); }, shard.index);
}

void EnactmentEngine::admit_locked(CaseRecord& record) {
  record.state = CaseState::Queued;
  auto& queue = tenant_queues_[record.tenant];
  if (queue.empty() &&
      std::find(tenant_order_.begin(), tenant_order_.end(), record.tenant) ==
          tenant_order_.end()) {
    tenant_order_.push_back(record.tenant);
  }
  queue.push_back(record.id);
  ++queued_;
}

std::optional<CaseId> EnactmentEngine::pop_for_shard_locked(std::size_t shard_index) {
  const std::size_t tenants = tenant_order_.size();
  for (std::size_t k = 0; k < tenants; ++k) {
    const std::size_t slot = (rr_cursor_ + k) % tenants;
    const std::string tenant = tenant_order_[slot];
    auto& queue = tenant_queues_[tenant];
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      const CaseRecord& record = records_.at(*it);
      if (record.excluded_shards.count(shard_index) > 0) continue;
      const CaseId id = *it;
      queue.erase(it);
      --queued_;
      if (queue.empty()) {
        tenant_queues_.erase(tenant);
        tenant_order_.erase(tenant_order_.begin() + static_cast<std::ptrdiff_t>(slot));
        rr_cursor_ = tenant_order_.empty() ? 0 : slot % tenant_order_.size();
      } else {
        rr_cursor_ = (slot + 1) % tenants;
      }
      return id;
    }
  }
  return std::nullopt;
}

CaseState EnactmentEngine::status(CaseId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = records_.find(id);
  return it == records_.end() ? CaseState::Rejected : it->second.state;
}

std::optional<CaseOutcome> EnactmentEngine::result(CaseId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = records_.find(id);
  if (it == records_.end() || !is_terminal(it->second.state)) return std::nullopt;
  return it->second.outcome;
}

bool EnactmentEngine::cancel(CaseId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = records_.find(id);
  if (it == records_.end()) return false;
  CaseRecord& record = it->second;
  if (is_terminal(record.state)) return false;
  record.cancel_requested = true;
  if (record.state == CaseState::Queued) {
    // Remove from its tenant queue and terminate immediately.
    auto queue_it = tenant_queues_.find(record.tenant);
    if (queue_it != tenant_queues_.end()) {
      auto& queue = queue_it->second;
      auto pos = std::find(queue.begin(), queue.end(), id);
      if (pos != queue.end()) {
        queue.erase(pos);
        --queued_;
      }
      if (queue.empty()) {
        tenant_queues_.erase(queue_it);
        auto order = std::find(tenant_order_.begin(), tenant_order_.end(), record.tenant);
        if (order != tenant_order_.end()) tenant_order_.erase(order);
        rr_cursor_ = tenant_order_.empty() ? 0 : rr_cursor_ % tenant_order_.size();
      }
    }
    record.state = CaseState::Cancelled;
    record.outcome.state = CaseState::Cancelled;
    record.outcome.error = "cancelled while queued";
    record.outcome.engine_retries = record.retries_used;
    record.outcome.completion_index = ++completion_sequence_;
    record.outcome.latency_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - record.submitted_at)
            .count();
    latency_hist_->observe(record.outcome.latency_seconds);
    ++cancelled_total_;
    case_terminal_.notify_all();
  }
  // A Running case is abandoned by its shard at the next slice boundary.
  return true;
}

bool EnactmentEngine::cancel_requested(CaseId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = records_.find(id);
  return it == records_.end() || it->second.cancel_requested;
}

std::optional<CaseOutcome> EnactmentEngine::wait(CaseId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  case_terminal_.wait(lock, [&] { return stopping_ || is_terminal(it->second.state); });
  if (!is_terminal(it->second.state)) return std::nullopt;
  return it->second.outcome;
}

void EnactmentEngine::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  case_terminal_.wait(lock, [&] { return stopping_ || (queued_ == 0 && running_ == 0); });
}

EngineMetrics EnactmentEngine::metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  EngineMetrics snapshot;
  snapshot.submitted = submitted_total_;
  snapshot.rejected = rejected_total_;
  snapshot.completed = completed_total_;
  snapshot.failed = failed_total_;
  snapshot.cancelled = cancelled_total_;
  snapshot.retried = retried_total_;
  snapshot.queue_depth = queued_;
  snapshot.running = running_;
  const sched::JobStats job_stats = jobs_->stats();
  snapshot.jobs_executed = job_stats.executed;
  snapshot.jobs_stolen = job_stats.stolen;
  snapshot.steal_attempts = job_stats.steal_attempts;
  snapshot.steal_rate = job_stats.steal_rate();
  const obs::HistogramSnapshot hist = latency_hist_->snapshot();
  if (hist.count > 0) {
    const std::vector<double> qs = hist.quantiles({50.0, 90.0, 99.0});
    snapshot.latency_p50 = qs[0];
    snapshot.latency_p90 = qs[1];
    snapshot.latency_p99 = qs[2];
  }
  snapshot.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started_at_).count();
  if (snapshot.uptime_seconds > 0.0)
    snapshot.completed_per_second =
        static_cast<double>(completed_total_) / snapshot.uptime_seconds;
  snapshot.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardMetrics sm;
    sm.cases_run = shard->cases_run;
    sm.cases_completed = shard->cases_completed;
    sm.cases_failed = shard->cases_failed;
    // These counters are all atomic on their owners (platform, request
    // trackers, monitoring), so reading them here while the shard's worker
    // is mid-enactment is safe.
    svc::Environment& environment = *shard->environment;
    sm.handler_failures = environment.platform().handler_failures_total();
    sm.faults_injected = environment.platform().chaos_stats().total_injected();
    sm.request_retries = environment.coordination().tracker().retries_total() +
                         environment.planning().tracker().retries_total();
    sm.dead_letters = environment.coordination().tracker().dead_letters_total() +
                      environment.planning().tracker().dead_letters_total();
    sm.containers_recovered = environment.monitoring().containers_recovered();
    sm.trace_dropped = environment.platform().trace_dropped();
    snapshot.handler_failures += sm.handler_failures;
    snapshot.faults_injected += sm.faults_injected;
    snapshot.request_retries += sm.request_retries;
    snapshot.dead_letters += sm.dead_letters;
    snapshot.containers_recovered += sm.containers_recovered;
    sm.busy_seconds = shard->busy_seconds;
    sm.utilization =
        snapshot.uptime_seconds > 0.0 ? shard->busy_seconds / snapshot.uptime_seconds : 0.0;
    // The registry view of the same shard, labelled so a scrape can tell
    // shards apart while the EngineMetrics struct keeps its vector form.
    environment.publish_metrics(registry_,
                                {{"shard", std::to_string(shard->index)}});
    snapshot.shards.push_back(sm);
  }
  registry_.counter("engine_cases_submitted_total").set_to(snapshot.submitted);
  registry_.counter("engine_cases_rejected_total").set_to(snapshot.rejected);
  registry_.counter("engine_cases_completed_total").set_to(snapshot.completed);
  registry_.counter("engine_cases_failed_total").set_to(snapshot.failed);
  registry_.counter("engine_cases_cancelled_total").set_to(snapshot.cancelled);
  registry_.counter("engine_case_retries_total").set_to(snapshot.retried);
  registry_.gauge("engine_queue_depth").set(static_cast<double>(snapshot.queue_depth));
  registry_.gauge("engine_cases_running").set(static_cast<double>(snapshot.running));
  registry_.gauge("engine_uptime_seconds").set(snapshot.uptime_seconds);
  registry_.gauge("engine_completed_per_second").set(snapshot.completed_per_second);
  jobs_->publish_metrics(registry_);
  return snapshot;
}

std::vector<obs::Span> EnactmentEngine::shard_spans(std::size_t shard_index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shard_index >= shards_.size()) return {};
  return shards_[shard_index]->environment->tracer().spans();
}

void EnactmentEngine::pump(Shard& shard) {
  util::Stopwatch slice_clock;
  const bool again = step(shard);
  const double busy = slice_clock.elapsed_seconds();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shard.busy_seconds += busy;
  }
  // Repost while the stream has work. The repost happens *after* the step,
  // so at most one pump job per shard is ever queued or running; when the
  // stream goes idle, step() already cleared pump_scheduled under the mutex.
  if (again) post_pump(shard);
}

bool EnactmentEngine::step(Shard& shard) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      if (shard.phase != Shard::Phase::Idle) {
        // Abandon the in-flight attempt (a Checkpoint phase is already a
        // failed attempt; Drain/Enact become failures now).
        auto it = records_.find(shard.snapshot.id);
        if (it != records_.end()) {
          finalize_locked(it->second, shard, CaseState::Failed, shard.attempt.reply);
          it->second.outcome.error = "engine shutdown";
        }
        --running_;
        shard.phase = Shard::Phase::Idle;
      }
      shard.pump_scheduled = false;
      return false;
    }
  }

  svc::Environment& environment = *shard.environment;
  grid::Simulation& sim = environment.sim();

  switch (shard.phase) {
    case Shard::Phase::Idle: {
      std::lock_guard<std::mutex> lock(mutex_);
      // Popping the queue and clearing pump_scheduled happen in the same
      // critical section, so a submit either sees the flag and skips the
      // post, or sees it cleared and reschedules — never a lost wakeup.
      std::optional<CaseId> popped = pop_for_shard_locked(shard.index);
      if (!popped.has_value()) {
        shard.pump_scheduled = false;
        return false;
      }
      CaseRecord& record = records_.at(*popped);
      record.state = CaseState::Running;
      record.outcome.shard = shard.index;
      ++running_;
      ++shard.cases_run;
      shard.snapshot = record;  // inputs the attempt needs, copied out of the lock
      shard.conversation = "engine/" + std::to_string(record.id) + "/" +
                           std::to_string(record.retries_used);
      shard.slices = 0;
      shard.attempt = AttemptResult{};
      shard.phase = Shard::Phase::Drain;
      return true;
    }

    case Shard::Phase::Drain: {
      // Flush anything a previous (possibly abandoned) case left on the
      // calendar before the fresh attempt starts.
      if (sim.run(config_.events_per_slice) == 0 ||
          ++shard.slices >= config_.max_slices_per_case) {
        begin_enact(shard);
      }
      return true;
    }

    case Shard::Phase::Enact: {
      if (cancel_requested(shard.snapshot.id)) {
        shard.attempt.kind = AttemptResult::Kind::Cancelled;
        return complete_attempt(shard);
      }
      const std::size_t executed = sim.run(config_.events_per_slice);
      std::optional<AclMessage> reply = shard.client->take(shard.conversation);
      if (!reply.has_value()) {
        if (executed == 0 || ++shard.slices >= config_.max_slices_per_case) {
          // Calendar drained (or budget blown) without an answer: stalled.
          shard.attempt.kind = AttemptResult::Kind::Failure;
          shard.attempt.reply.params["error"] = "enactment stalled (no completion reply)";
          return complete_attempt(shard);
        }
        return true;
      }
      shard.attempt.reply = *reply;
      const bool success = reply->performative == Performative::Inform &&
                           reply->param_bool("success", true);
      if (success) {
        shard.attempt.kind = AttemptResult::Kind::Success;
        return complete_attempt(shard);
      }
      shard.attempt.kind = AttemptResult::Kind::Failure;
      // Snapshot the failed enactment so a retry on another shard replays
      // the work that did complete. The reply names the coordinator's local
      // case id; submissions rejected before an enactment existed (e.g.
      // invalid XML) carry none, and then the retry resubmits from scratch.
      const std::string local_case = reply->param("case");
      if (local_case.empty() || shard.snapshot.retries_used >= config_.max_case_retries)
        return complete_attempt(shard);
      AclMessage checkpoint;
      checkpoint.performative = Performative::Request;
      checkpoint.receiver = svc::names::kCoordination;
      checkpoint.protocol = svc::protocols::kCheckpointCase;
      checkpoint.conversation_id = shard.conversation + "/checkpoint";
      checkpoint.params["case"] = local_case;
      shard.client->post(std::move(checkpoint));
      shard.phase = Shard::Phase::Checkpoint;
      shard.slices = 0;
      return true;
    }

    case Shard::Phase::Checkpoint: {
      const std::size_t executed = sim.run(config_.events_per_slice);
      auto snapshot_reply = shard.client->take(shard.conversation + "/checkpoint");
      if (snapshot_reply.has_value()) {
        if (snapshot_reply->performative == Performative::Inform)
          shard.attempt.checkpoint_xml = snapshot_reply->content;
        return complete_attempt(shard);
      }
      if (executed == 0 || ++shard.slices >= config_.max_slices_per_case)
        return complete_attempt(shard);
      return true;
    }
  }
  return false;  // unreachable
}

void EnactmentEngine::begin_enact(Shard& shard) {
  svc::Environment& environment = *shard.environment;
  // Drain done: give this case a fresh kernel state.
  environment.kernels().reset();

  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = svc::names::kCoordination;
  request.conversation_id = shard.conversation;
  if (shard.snapshot.checkpoint_xml.empty()) {
    request.protocol = svc::protocols::kEnactCase;
    request.content = shard.snapshot.process_xml;
    request.params["case-xml"] = shard.snapshot.case_xml;
  } else {
    // Retry from the failed attempt's snapshot: completed activities replay,
    // and the new shard gets a full re-planning budget again.
    request.protocol = svc::protocols::kRestoreCase;
    request.content = shard.snapshot.checkpoint_xml;
    request.params["reset-replans"] = "true";
  }
  shard.client->post(std::move(request));
  shard.phase = Shard::Phase::Enact;
  shard.slices = 0;
}

bool EnactmentEngine::complete_attempt(Shard& shard) {
  AttemptResult attempt = std::move(shard.attempt);
  shard.attempt = AttemptResult{};
  shard.phase = Shard::Phase::Idle;

  std::vector<Shard*> to_pump;
  bool again = true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --running_;
    auto it = records_.find(shard.snapshot.id);
    if (it != records_.end()) {
      CaseRecord& record = it->second;
      if (stopping_ && attempt.kind != AttemptResult::Kind::Success) {
        finalize_locked(record, shard, CaseState::Failed, attempt.reply);
        record.outcome.error = "engine shutdown";
      } else {
        switch (attempt.kind) {
          case AttemptResult::Kind::Cancelled:
            finalize_locked(record, shard, CaseState::Cancelled, attempt.reply);
            record.outcome.error = "cancelled while running";
            break;
          case AttemptResult::Kind::Success:
            finalize_locked(record, shard, CaseState::Completed, attempt.reply);
            break;
          case AttemptResult::Kind::Failure:
            if (record.retries_used < config_.max_case_retries && !record.cancel_requested) {
              ++record.retries_used;
              ++retried_total_;
              if (!attempt.checkpoint_xml.empty())
                record.checkpoint_xml = std::move(attempt.checkpoint_xml);
              if (shards_.size() > 1) {
                // Prefer a different shard; never strand the case when the
                // exclusion set would cover the whole fleet.
                record.excluded_shards.insert(shard.index);
                if (record.excluded_shards.size() >= shards_.size())
                  record.excluded_shards.clear();
              }
              admit_locked(record);
              // The readmitted case excludes this shard, so another shard's
              // stream must pick it up; this shard keeps pumping via its own
              // repost (its pump_scheduled is still set, so it is skipped).
              to_pump = claim_idle_pumps_locked();
            } else {
              finalize_locked(record, shard, CaseState::Failed, attempt.reply);
            }
            break;
        }
      }
    }
    if (stopping_) {
      shard.pump_scheduled = false;
      again = false;
    }
  }
  for (Shard* other : to_pump) post_pump(*other);
  return again;
}

void EnactmentEngine::finalize_locked(CaseRecord& record, Shard& shard, CaseState state,
                                      const AclMessage& reply) {
  record.state = state;
  CaseOutcome& outcome = record.outcome;
  outcome.state = state;
  outcome.error = reply.param("error");
  outcome.makespan = reply.param_double("makespan", 0.0);
  outcome.activities_executed = reply.param_int("activities-executed", 0);
  outcome.activities_replayed = reply.param_int("activities-replayed", 0);
  outcome.dispatch_failures = reply.param_int("dispatch-failures", 0);
  outcome.replans = reply.param_int("replans", 0);
  outcome.goal_satisfaction = reply.param_double("goal-satisfaction", 0.0);
  outcome.total_cost = reply.param_double("total-cost", 0.0);
  outcome.engine_retries = record.retries_used;
  outcome.shard = shard.index;
  outcome.completion_index = ++completion_sequence_;
  outcome.latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - record.submitted_at)
          .count();
  latency_hist_->observe(outcome.latency_seconds);
  switch (state) {
    case CaseState::Completed:
      ++completed_total_;
      ++shard.cases_completed;
      break;
    case CaseState::Cancelled:
      ++cancelled_total_;
      break;
    default:
      ++failed_total_;
      ++shard.cases_failed;
      break;
  }
  IG_LOG_DEBUG("engine") << "case " << record.id << " -> " << to_string(state)
                         << " on shard " << shard.index;
  case_terminal_.notify_all();
}

}  // namespace ig::engine
