#include "services/user_interface.hpp"

#include "services/protocol.hpp"
#include "wfl/xml_io.hpp"

namespace ig::svc {

using agent::AclMessage;
using agent::Performative;

void UserInterfaceAgent::submit_case(const wfl::CaseDescription& case_description,
                                     std::optional<std::uint64_t> seed) {
  case_xml_ = wfl::case_to_xml_string(case_description);
  outcome_.reset();
  plan_.reset();
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kPlanning;
  request.protocol = protocols::kPlanRequest;
  if (seed.has_value()) request.params["seed"] = std::to_string(*seed);
  request.content = case_xml_;
  send(std::move(request));
}

void UserInterfaceAgent::submit_process(const wfl::ProcessDescription& process,
                                        const wfl::CaseDescription& case_description) {
  case_xml_ = wfl::case_to_xml_string(case_description);
  outcome_.reset();
  plan_ = process;
  start_enactment(wfl::process_to_xml_string(process));
}

void UserInterfaceAgent::start_enactment(const std::string& process_xml) {
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kCoordination;
  request.protocol = protocols::kEnactCase;
  request.content = process_xml;
  request.params["case-xml"] = case_xml_;
  send(std::move(request));
}

void UserInterfaceAgent::handle_message(const AclMessage& message) {
  if (message.protocol == protocols::kPlanRequest) {
    if (message.performative != Performative::Inform) {
      TaskOutcome failed;
      failed.error = "planning failed: " + message.param("error");
      outcome_ = failed;
      if (outcome_callback_) outcome_callback_(*outcome_);
      return;
    }
    try {
      plan_ = wfl::process_from_xml_string(message.content);
    } catch (const std::exception& error) {
      TaskOutcome failed;
      failed.error = std::string("bad plan payload: ") + error.what();
      outcome_ = failed;
      if (outcome_callback_) outcome_callback_(*outcome_);
      return;
    }
    if (plan_callback_) plan_callback_(*plan_);
    start_enactment(message.content);
    return;
  }

  if (message.protocol == protocols::kCaseCompleted) {
    TaskOutcome outcome;
    outcome.success = message.param_bool("success", false);
    outcome.error = message.param("error");
    outcome.makespan = message.param_double("makespan", 0.0);
    outcome.activities_executed = message.param_int("activities-executed", 0);
    outcome.dispatch_failures = message.param_int("dispatch-failures", 0);
    outcome.replans = message.param_int("replans", 0);
    outcome.goal_satisfaction = message.param_double("goal-satisfaction", 0.0);
    outcome.total_cost = message.param_double("total-cost", 0.0);
    if (!message.content.empty()) {
      try {
        outcome.final_data = wfl::dataset_from_xml_string(message.content);
      } catch (const std::exception&) {
        // Final data is informative only; a bad payload does not void the
        // outcome.
      }
    }
    outcome_ = std::move(outcome);
    if (outcome_callback_) outcome_callback_(*outcome_);
  }
}

}  // namespace ig::svc
