#include "services/authentication.hpp"

#include <cstdio>

#include "services/protocol.hpp"

namespace ig::svc {

using agent::AclMessage;
using agent::Performative;

namespace {

/// FNV-1a over the token material; hex-encoded.
std::string digest(const std::string& material) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (unsigned char c : material) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(hash));
  return buffer;
}

}  // namespace

void AuthenticationService::add_principal(std::string principal, std::string secret) {
  secrets_.insert_or_assign(std::move(principal), std::move(secret));
}

std::string AuthenticationService::issue_token(const std::string& principal) {
  ++issued_;
  const std::string token =
      digest(principal + "#" + std::to_string(++nonce_) + "#" + secrets_[principal]);
  active_tokens_[principal] = token;
  return token;
}

bool AuthenticationService::verify(const std::string& principal, const std::string& token) const {
  auto it = active_tokens_.find(principal);
  return it != active_tokens_.end() && !token.empty() && it->second == token;
}

void AuthenticationService::on_start() {
  register_with_information_service(*this, platform(), "authentication");
}

void AuthenticationService::handle_message(const AclMessage& message) {
  if (message.protocol == protocols::kAuthenticate) {
    const std::string principal = message.param("principal", message.sender);
    auto it = secrets_.find(principal);
    if (it == secrets_.end() || it->second != message.param("secret")) {
      AclMessage reply = message.make_reply(Performative::Refuse);
      reply.params["error"] = "invalid credentials";
      send(std::move(reply));
      return;
    }
    AclMessage reply = message.make_reply(Performative::Inform);
    reply.params["principal"] = principal;
    reply.params["token"] = issue_token(principal);
    send(std::move(reply));
    return;
  }

  if (message.protocol == protocols::kVerifyToken) {
    AclMessage reply = message.make_reply(Performative::Inform);
    reply.params["valid"] =
        verify(message.param("principal"), message.param("token")) ? "true" : "false";
    send(std::move(reply));
    return;
  }

  if (!should_bounce_unknown(message)) return;
  send(make_not_understood(message, "unknown protocol '" + message.protocol + "'"));
}

}  // namespace ig::svc
