// Shared helper for the GP ablation benches: run N seeded GP runs for a
// configuration and aggregate the best-of-run statistics.
#pragma once

#include <cstdio>

#include "planner/gp.hpp"
#include "util/stats.hpp"
#include "virolab/catalogue.hpp"

namespace ig::bench {

struct SweepPoint {
  util::SampleSet fitness;
  util::SampleSet validity;
  util::SampleSet goal;
  util::SampleSet size;
  int optimal_runs = 0;  ///< runs with fv = fg = 1
  int runs = 0;
};

inline planner::PlanningProblem virolab_problem() {
  return planner::PlanningProblem::from_case(virolab::make_case_description(),
                                             virolab::make_catalogue());
}

inline SweepPoint run_sweep_point(const planner::PlanningProblem& problem,
                                  planner::GpConfig config, int runs,
                                  std::uint64_t seed_base = 1000) {
  SweepPoint point;
  point.runs = runs;
  for (int run = 0; run < runs; ++run) {
    config.seed = seed_base + static_cast<std::uint64_t>(run);
    const planner::GpResult result = planner::run_gp(problem, config);
    point.fitness.add(result.best_fitness.overall);
    point.validity.add(result.best_fitness.validity);
    point.goal.add(result.best_fitness.goal);
    point.size.add(static_cast<double>(result.best_fitness.size));
    if (result.best_fitness.validity == 1.0 && result.best_fitness.goal == 1.0)
      ++point.optimal_runs;
  }
  return point;
}

inline void print_sweep_header(const char* parameter_name) {
  std::printf("%-14s %-9s %-9s %-9s %-8s %s\n", parameter_name, "fitness", "validity",
              "goal", "size", "optimal-runs");
}

inline void print_sweep_row(const char* label, const SweepPoint& point) {
  std::printf("%-14s %-9.4f %-9.3f %-9.3f %-8.1f %d/%d\n", label, point.fitness.mean(),
              point.validity.mean(), point.goal.mean(), point.size.mean(),
              point.optimal_runs, point.runs);
}

}  // namespace ig::bench
