// One-call bootstrap of a complete intelligent grid environment.
//
// Wires Figure 1 end to end: the simulated grid (nodes, containers,
// network), the agent platform, every core service, and one container agent
// per application container. Examples, tests and benchmark harnesses build
// on this instead of repeating the wiring.
#pragma once

#include <memory>
#include <string>

#include "agent/platform.hpp"
#include "grid/grid.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "planner/gp.hpp"
#include "services/authentication.hpp"
#include "services/brokerage.hpp"
#include "services/coordination.hpp"
#include "services/information.hpp"
#include "services/matchmaking.hpp"
#include "services/monitoring.hpp"
#include "services/ontology_service.hpp"
#include "services/planning_service.hpp"
#include "services/scheduling.hpp"
#include "services/simulation_service.hpp"
#include "services/storage.hpp"
#include "virolab/kernels.hpp"
#include "wfl/service.hpp"
#include "wire/channel.hpp"

namespace ig::svc {

struct EnvironmentOptions {
  grid::TopologyParams topology;      ///< service_names filled from catalogue if empty
  wfl::ServiceCatalogue catalogue;    ///< defaults to the virolab catalogue when empty
  planner::GpConfig gp;               ///< planner settings (Table 1 defaults)
  CoordinationConfig coordination;
  virolab::KernelParams kernels;
  bool use_synthetic_kernels = true;  ///< false: declarative postconditions only
  bool tracing = false;               ///< record every delivered message
  /// >0 caps the message trace at the most recent N records (ring); 0 keeps
  /// everything (the Figure 2/3 harnesses rely on the full trace).
  std::size_t trace_limit = 0;
  /// Enables the enactment span tracer: the coordination service emits
  /// case/activity/barrier/choice/iteration spans on the virtual clock.
  bool span_tracing = false;
  std::size_t span_limit = 0;         ///< >0 caps retained spans (oldest closed drop)
  grid::SimTime monitor_period = 0.0; ///< >0 enables periodic utilization sampling
  /// >0: container agents emit liveness heartbeats at this spacing and the
  /// monitoring service quarantines containers that stop beating (both run
  /// as daemon events, so the calendar still drains between cases).
  grid::SimTime heartbeat_period = 0.0;
  HeartbeatConfig heartbeat;          ///< thresholds; `period` is overwritten
                                      ///< from heartbeat_period when that is set
  /// Routes every platform send through the binary wire codec (frame,
  /// CRC, intern, zero-copy decode, materialize) over a loopback byte
  /// stream before the chaos layer sees it. Chaos faults then hit frames
  /// that really crossed the codec; wire_* counters appear in
  /// publish_metrics. Deterministic: the round trip is bitwise, so chaos
  /// replays stay seed-stable with the hook on or off.
  bool wire_transport = false;
  /// Fault-injection policy installed on the platform (empty = no chaos).
  agent::ChaosPolicy chaos;
  /// Backing store for the PersistentStorageService (not owned). Null gives
  /// the service a private in-memory store (the historical behavior); a
  /// durable engine makes its documents crash-recoverable and lets several
  /// environments share one knowledge base.
  store::StorageEngine* storage_engine = nullptr;
  std::uint64_t seed = 42;
};

/// The assembled environment. Not copyable or movable; construct through
/// make_environment and keep it alive for the duration of the scenario.
class Environment {
 public:
  explicit Environment(const EnvironmentOptions& options);

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  grid::Simulation& sim() noexcept { return sim_; }
  grid::Grid& grid() noexcept { return grid_; }
  grid::FailureInjector& injector() noexcept { return injector_; }
  agent::AgentPlatform& platform() noexcept { return platform_; }
  const wfl::ServiceCatalogue& catalogue() const noexcept { return catalogue_; }
  virolab::SyntheticKernels& kernels() noexcept { return kernels_; }

  InformationService& information() noexcept { return *information_; }
  BrokerageService& brokerage() noexcept { return *brokerage_; }
  MatchmakingService& matchmaking() noexcept { return *matchmaking_; }
  MonitoringService& monitoring() noexcept { return *monitoring_; }
  OntologyService& ontology() noexcept { return *ontology_; }
  AuthenticationService& authentication() noexcept { return *authentication_; }
  PersistentStorageService& storage() noexcept { return *storage_; }
  SchedulingService& scheduling() noexcept { return *scheduling_; }
  SimulationService& simulation() noexcept { return *simulation_; }
  PlanningService& planning() noexcept { return *planning_; }
  CoordinationService& coordination() noexcept { return *coordination_; }

  /// The enactment span tracer (disabled unless options.span_tracing).
  obs::SpanTracer& tracer() noexcept { return tracer_; }
  const obs::SpanTracer& tracer() const noexcept { return tracer_; }

  /// The wire transport link, or nullptr unless options.wire_transport.
  wire::WireLink* wire_link() noexcept { return wire_link_.get(); }
  const wire::WireLink* wire_link() const noexcept { return wire_link_.get(); }

  /// Pushes every component's counters (platform, chaos, request trackers,
  /// monitoring liveness) into `registry` under `labels`. Reads only atomic
  /// state; an engine metrics pass calls this from another thread while the
  /// shard's worker runs.
  void publish_metrics(obs::MetricsRegistry& registry, const obs::Labels& labels = {}) const;

  /// Drains the event calendar (bounded by `max_events` as a runaway guard).
  std::size_t run(std::size_t max_events = 1'000'000) { return sim_.run(max_events); }

 private:
  grid::Simulation sim_;
  grid::Grid grid_;
  grid::FailureInjector injector_;
  agent::AgentPlatform platform_;
  std::unique_ptr<wire::WireLink> wire_link_;
  obs::SpanTracer tracer_;
  wfl::ServiceCatalogue catalogue_;
  virolab::SyntheticKernels kernels_;

  InformationService* information_ = nullptr;
  BrokerageService* brokerage_ = nullptr;
  MatchmakingService* matchmaking_ = nullptr;
  MonitoringService* monitoring_ = nullptr;
  OntologyService* ontology_ = nullptr;
  AuthenticationService* authentication_ = nullptr;
  PersistentStorageService* storage_ = nullptr;
  SchedulingService* scheduling_ = nullptr;
  SimulationService* simulation_ = nullptr;
  PlanningService* planning_ = nullptr;
  CoordinationService* coordination_ = nullptr;
};

/// Builds the standard environment (virolab catalogue unless overridden).
std::unique_ptr<Environment> make_environment(EnvironmentOptions options = {});

/// Shard-stack factory for the enactment engine: one private, fully wired
/// environment per worker shard. The shard's seed is derived from
/// (engine seed, shard index), so shards draw decorrelated random streams
/// while the whole fleet stays reproducible from one engine seed.
/// `failure_floor` > 0 arms the shard's failure injector so every dispatch
/// on the shard fails with at least that probability (per-shard fault
/// injection for retry experiments). Periodic monitoring is disabled: the
/// engine drives each shard's calendar in slices and needs it to drain
/// between cases.
std::unique_ptr<Environment> make_shard_stack(EnvironmentOptions base,
                                              std::uint64_t engine_seed,
                                              std::size_t shard_index,
                                              double failure_floor = 0.0);

}  // namespace ig::svc
