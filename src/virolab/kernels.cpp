#include "virolab/kernels.hpp"

#include <chrono>
#include <cmath>
#include <thread>

#include "virolab/catalogue.hpp"

namespace ig::virolab {

double SyntheticKernels::current_resolution() const noexcept {
  const double resolution =
      params_.initial_resolution *
      std::pow(params_.refinement_factor, static_cast<double>(refinements_));
  return resolution > params_.resolution_floor ? resolution : params_.resolution_floor;
}

std::vector<wfl::DataSpec> SyntheticKernels::execute(const wfl::ServiceType& service,
                                                     const wfl::Bindings& inputs,
                                                     const std::vector<std::string>& output_names) {
  ++executions_;
  if (params_.execution_latency_seconds > 0.0) {
    // Stand-in for waiting on the real EM codes: blocks this shard's
    // worker for the configured wall-clock time.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(params_.execution_latency_seconds));
  }
  std::vector<wfl::DataSpec> produced;
  auto output_name = [&](std::size_t index, const std::string& fallback) {
    if (index < output_names.size() && !output_names[index].empty()) return output_names[index];
    return fallback + "#" + std::to_string(executions_);
  };

  if (service.name() == "POD") {
    wfl::DataSpec orientations(output_name(0, "orientations"));
    orientations.with_classification(cls::kOrientationFile)
        .with(wfl::props::kSize, meta::Value(params_.orientation_size_mb))
        .with(wfl::props::kCreator, meta::Value("POD"));
    produced.push_back(std::move(orientations));
    return produced;
  }

  if (service.name() == "P3DR") {
    wfl::DataSpec model(output_name(0, "model"));
    model.with_classification(cls::k3dModel)
        .with(wfl::props::kSize, meta::Value(params_.model_size_mb))
        .with(wfl::props::kCreator, meta::Value("P3DR"));
    produced.push_back(std::move(model));
    return produced;
  }

  if (service.name() == "POR") {
    // One completed refinement pass improves every subsequent model.
    ++refinements_;
    wfl::DataSpec orientations(output_name(0, "orientations-refined"));
    orientations.with_classification(cls::kOrientationFile)
        .with(wfl::props::kSize, meta::Value(params_.orientation_size_mb))
        .with(wfl::props::kCreator, meta::Value("POR"));
    produced.push_back(std::move(orientations));
    return produced;
  }

  if (service.name() == "PSF") {
    wfl::DataSpec resolution(output_name(0, "resolution"));
    resolution.with_classification(cls::kResolutionFile)
        .with(wfl::props::kValue, meta::Value(current_resolution()))
        .with(wfl::props::kSize, meta::Value(0.001))
        .with(wfl::props::kCreator, meta::Value("PSF"));
    produced.push_back(std::move(resolution));
    return produced;
  }

  // Unknown service: fall back to the declarative postcondition.
  (void)inputs;
  return service.produce_outputs(output_name(0, service.name()) + ":");
}

std::vector<wfl::DataSpec> make_micrographs(util::Rng& rng, int count, double mean_size_mb) {
  std::vector<wfl::DataSpec> images;
  images.reserve(static_cast<std::size_t>(count > 0 ? count : 0));
  for (int i = 0; i < count; ++i) {
    wfl::DataSpec image("micrograph-" + std::to_string(i + 1));
    image.with_classification(cls::k2dImage)
        .with(wfl::props::kSize, meta::Value(mean_size_mb * rng.next_double(0.6, 1.4)))
        .with(wfl::props::kFormat, meta::Value("Image"))
        .with(wfl::props::kCreator, meta::Value("Microscope"));
    images.push_back(std::move(image));
  }
  return images;
}

}  // namespace ig::virolab
