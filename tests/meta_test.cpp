#include <gtest/gtest.h>

#include <algorithm>

#include "meta/ontology.hpp"
#include "meta/standard.hpp"
#include "meta/xml_io.hpp"

namespace ig::meta {
namespace {

SlotDef slot(const char* name, ValueType type, bool required = false) {
  SlotDef def;
  def.name = name;
  def.type = type;
  def.required = required;
  return def;
}

TEST(Value, Types) {
  EXPECT_EQ(Value().type(), ValueType::None);
  EXPECT_EQ(Value("x").type(), ValueType::String);
  EXPECT_EQ(Value(1.5).type(), ValueType::Number);
  EXPECT_EQ(Value(3).type(), ValueType::Number);
  EXPECT_EQ(Value(true).type(), ValueType::Boolean);
  EXPECT_EQ(Value::list_of({"a", "b"}).type(), ValueType::List);
}

TEST(Value, DisplayStrings) {
  EXPECT_EQ(Value("hello").to_display_string(), "hello");
  EXPECT_EQ(Value(2.5).to_display_string(), "2.5");
  EXPECT_EQ(Value(3.0).to_display_string(), "3");
  EXPECT_EQ(Value(false).to_display_string(), "false");
  EXPECT_EQ(Value::list_of({"a", "b"}).to_display_string(), "{a, b}");
  EXPECT_EQ(Value().to_display_string(), "");
}

TEST(Value, StringListExtraction) {
  const auto items = Value::list_of({"D1", "D2"}).as_string_list();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0], "D1");
  // A scalar string lifts to a one-element list.
  EXPECT_EQ(Value("solo").as_string_list().size(), 1u);
  EXPECT_TRUE(Value(2.0).as_string_list().empty());
}

TEST(Value, Equality) {
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_NE(Value("1"), Value(1.0));
  EXPECT_EQ(Value::list_of({"a"}), Value::list_of({"a"}));
}

TEST(Ontology, AddClassAndSlots) {
  Ontology ontology("test");
  auto& task = ontology.add_class("Task");
  task.add_slot(slot("ID", ValueType::String, true));
  task.add_slot(slot("Size", ValueType::Number));
  EXPECT_TRUE(ontology.has_class("Task"));
  EXPECT_EQ(ontology.class_count(), 1u);
  EXPECT_NE(task.find_own_slot("ID"), nullptr);
  EXPECT_EQ(task.find_own_slot("Nope"), nullptr);
}

TEST(Ontology, DuplicateClassThrows) {
  Ontology ontology("test");
  ontology.add_class("Task");
  EXPECT_THROW(ontology.add_class("Task"), OntologyError);
}

TEST(Ontology, DuplicateSlotThrows) {
  Ontology ontology("test");
  auto& cls = ontology.add_class("Task");
  cls.add_slot(slot("ID", ValueType::String));
  EXPECT_THROW(cls.add_slot(slot("ID", ValueType::Number)), OntologyError);
}

TEST(Ontology, UnknownParentThrows) {
  Ontology ontology("test");
  EXPECT_THROW(ontology.add_class("Child", "Missing"), OntologyError);
}

TEST(Ontology, InheritanceAndEffectiveSlots) {
  Ontology ontology("test");
  auto& base = ontology.add_class("Resource");
  base.add_slot(slot("Name", ValueType::String, true));
  base.add_slot(slot("Speed", ValueType::Number));
  auto& derived = ontology.add_class("Cluster", "Resource");
  derived.add_slot(slot("Nodes", ValueType::Number));
  // Override: Cluster refines Speed as required.
  derived.add_slot(slot("Speed", ValueType::Number, true));

  const auto slots = ontology.effective_slots("Cluster");
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_EQ(slots[0].name, "Name");
  EXPECT_EQ(slots[1].name, "Speed");
  EXPECT_TRUE(slots[1].required);  // overridden facet
  EXPECT_EQ(slots[2].name, "Nodes");
}

TEST(Ontology, SubclassQuery) {
  Ontology ontology("test");
  ontology.add_class("A");
  ontology.add_class("B", "A");
  ontology.add_class("C", "B");
  EXPECT_TRUE(ontology.is_subclass_of("C", "A"));
  EXPECT_TRUE(ontology.is_subclass_of("A", "A"));
  EXPECT_FALSE(ontology.is_subclass_of("A", "C"));
  EXPECT_FALSE(ontology.is_subclass_of("X", "A"));
}

TEST(Ontology, InstancesAndLookup) {
  Ontology ontology("test");
  ontology.add_class("Task").add_slot(slot("ID", ValueType::String, true));
  auto& instance = ontology.add_instance("T1", "Task");
  instance.set("ID", Value("T1"));
  EXPECT_EQ(ontology.instance_count(), 1u);
  ASSERT_NE(ontology.find_instance("T1"), nullptr);
  EXPECT_EQ(ontology.find_instance("T1")->get_string("ID"), "T1");
  EXPECT_EQ(ontology.find_instance("T2"), nullptr);
  EXPECT_THROW(ontology.add_instance("T1", "Task"), OntologyError);
  EXPECT_THROW(ontology.add_instance("T2", "Missing"), OntologyError);
}

TEST(Ontology, InstancesOfIncludesSubclasses) {
  Ontology ontology("test");
  ontology.add_class("Resource");
  ontology.add_class("Cluster", "Resource");
  ontology.add_instance("r1", "Resource");
  ontology.add_instance("c1", "Cluster");
  EXPECT_EQ(ontology.instances_of("Resource").size(), 2u);
  EXPECT_EQ(ontology.instances_of("Cluster").size(), 1u);
}

TEST(Ontology, RemoveInstance) {
  Ontology ontology("test");
  ontology.add_class("Task");
  ontology.add_instance("T1", "Task");
  EXPECT_TRUE(ontology.remove_instance("T1"));
  EXPECT_FALSE(ontology.remove_instance("T1"));
  EXPECT_EQ(ontology.instance_count(), 0u);
}

TEST(Ontology, ShellStripsInstances) {
  Ontology ontology("test");
  ontology.add_class("Task");
  ontology.add_instance("T1", "Task");
  EXPECT_FALSE(ontology.is_shell());
  const Ontology shell = ontology.shell();
  EXPECT_TRUE(shell.is_shell());
  EXPECT_TRUE(shell.has_class("Task"));
  EXPECT_EQ(shell.name(), "test");
}

TEST(Validation, RequiredSlotMissing) {
  Ontology ontology("test");
  ontology.add_class("Task").add_slot(slot("ID", ValueType::String, true));
  ontology.add_instance("T1", "Task");  // ID unset
  const auto issues = ontology.validate();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].slot, "ID");
}

TEST(Validation, TypeMismatch) {
  Ontology ontology("test");
  ontology.add_class("Task").add_slot(slot("Size", ValueType::Number));
  ontology.add_instance("T1", "Task").set("Size", Value("big"));
  const auto issues = ontology.validate();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("expected number"), std::string::npos);
}

TEST(Validation, AllowedValues) {
  Ontology ontology("test");
  SlotDef status = slot("Status", ValueType::String);
  status.allowed_values = {"Running", "Done"};
  ontology.add_class("Task").add_slot(std::move(status));
  ontology.add_instance("ok", "Task").set("Status", Value("Running"));
  ontology.add_instance("bad", "Task").set("Status", Value("Zombie"));
  const auto issues = ontology.validate();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].instance_id, "bad");
}

TEST(Validation, UndeclaredSlotReported) {
  Ontology ontology("test");
  ontology.add_class("Task");
  ontology.add_instance("T1", "Task").set("Ghost", Value("boo"));
  const auto issues = ontology.validate();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].slot, "Ghost");
}

TEST(Merge, DisjointOntologies) {
  Ontology a("a");
  a.add_class("Task");
  a.add_instance("T1", "Task");
  Ontology b("b");
  b.add_class("Data");
  b.add_instance("D1", "Data");
  a.merge(b);
  EXPECT_EQ(a.class_count(), 2u);
  EXPECT_EQ(a.instance_count(), 2u);
}

TEST(Merge, ConflictingClassThrows) {
  Ontology a("a");
  a.add_class("Task").add_slot(slot("ID", ValueType::String));
  Ontology b("b");
  b.add_class("Task");  // different slot count
  EXPECT_THROW(a.merge(b), OntologyError);
}

TEST(Merge, DuplicateInstanceThrows) {
  Ontology a("a");
  a.add_class("Task");
  a.add_instance("T1", "Task");
  Ontology b("b");
  b.add_class("Task");
  b.add_instance("T1", "Task");
  EXPECT_THROW(a.merge(b), OntologyError);
}

// ---------------------------------------------------------------------------
// Standard grid ontology (Figure 12)
// ---------------------------------------------------------------------------

TEST(StandardOntology, HasAllTenClasses) {
  const Ontology ontology = standard_grid_ontology();
  EXPECT_EQ(ontology.class_count(), 10u);
  for (const char* name :
       {classes::kTask, classes::kProcessDescription, classes::kTransition,
        classes::kCaseDescription, classes::kActivity, classes::kData, classes::kService,
        classes::kResource, classes::kHardware, classes::kSoftware}) {
    EXPECT_TRUE(ontology.has_class(name)) << name;
  }
  EXPECT_TRUE(ontology.is_shell());
}

TEST(StandardOntology, FigureTwelveSlots) {
  const Ontology ontology = standard_grid_ontology();
  // Spot checks straight from the figure.
  const auto task_slots = ontology.effective_slots(classes::kTask);
  EXPECT_EQ(task_slots.size(), 10u);
  const auto data_slots = ontology.effective_slots(classes::kData);
  EXPECT_EQ(data_slots.size(), 15u);
  const auto activity_slots = ontology.effective_slots(classes::kActivity);
  EXPECT_EQ(activity_slots.size(), 18u);
  const auto service_slots = ontology.effective_slots(classes::kService);
  EXPECT_EQ(service_slots.size(), 17u);
  const auto hardware_slots = ontology.effective_slots(classes::kHardware);
  EXPECT_EQ(hardware_slots.size(), 8u);
}

TEST(StandardOntology, ActivityTypeEnumerated) {
  const Ontology ontology = standard_grid_ontology();
  const auto slots = ontology.effective_slots(classes::kActivity);
  const auto type_slot = std::find_if(slots.begin(), slots.end(),
                                      [](const SlotDef& s) { return s.name == "Type"; });
  ASSERT_NE(type_slot, slots.end());
  EXPECT_EQ(type_slot->allowed_values.size(), 7u);
}

// ---------------------------------------------------------------------------
// XML round trip
// ---------------------------------------------------------------------------

TEST(XmlIo, ValueRoundTrip) {
  xml::Element parent("p");
  value_to_xml(Value(3.25), parent, "value");
  value_to_xml(Value("text & more"), parent, "value");
  value_to_xml(Value(true), parent, "value");
  value_to_xml(Value::list_of({"a", "b"}), parent, "value");
  value_to_xml(Value(), parent, "value");
  const auto values = parent.find_children("value");
  ASSERT_EQ(values.size(), 5u);
  EXPECT_EQ(value_from_xml(*values[0]).as_number(), 3.25);
  EXPECT_EQ(value_from_xml(*values[1]).as_string(), "text & more");
  EXPECT_TRUE(value_from_xml(*values[2]).as_boolean());
  EXPECT_EQ(value_from_xml(*values[3]).as_string_list().size(), 2u);
  EXPECT_TRUE(value_from_xml(*values[4]).is_none());
}

TEST(XmlIo, OntologyRoundTrip) {
  Ontology original = standard_grid_ontology();
  original.add_instance("T1", classes::kTask).set("ID", Value("T1"));
  original.find_instance_mutable("T1")->set("Name", Value("3DSD"));
  original.find_instance_mutable("T1")->set("Need Planning", Value(true));
  original.find_instance_mutable("T1")->set("Data Set", Value::list_of({"D1", "D2"}));

  const Ontology restored = from_xml_string(to_xml_string(original));
  EXPECT_EQ(restored.name(), original.name());
  EXPECT_EQ(restored.class_count(), original.class_count());
  ASSERT_NE(restored.find_instance("T1"), nullptr);
  EXPECT_EQ(restored.find_instance("T1")->get_string("Name"), "3DSD");
  EXPECT_TRUE(restored.find_instance("T1")->get("Need Planning").as_boolean());
  EXPECT_EQ(restored.find_instance("T1")->get_string_list("Data Set").size(), 2u);
  // Slots (facets) survive the round trip.
  const auto slots = restored.effective_slots(classes::kActivity);
  EXPECT_EQ(slots.size(), 18u);
  EXPECT_TRUE(restored.validate().empty());
}

TEST(XmlIo, NestedListValuesRoundTrip) {
  xml::Element parent("p");
  std::vector<Value> inner{Value("a"), Value(2.0)};
  std::vector<Value> outer{Value(std::move(inner)), Value(true)};
  value_to_xml(Value(std::move(outer)), parent, "value");
  const Value restored = value_from_xml(*parent.find_child("value"));
  ASSERT_EQ(restored.type(), ValueType::List);
  ASSERT_EQ(restored.as_list().size(), 2u);
  ASSERT_EQ(restored.as_list()[0].type(), ValueType::List);
  EXPECT_EQ(restored.as_list()[0].as_list()[0].as_string(), "a");
  EXPECT_DOUBLE_EQ(restored.as_list()[0].as_list()[1].as_number(), 2.0);
  EXPECT_TRUE(restored.as_list()[1].as_boolean());
}

TEST(XmlIo, SlotNamesWithSpacesSurvive) {
  Ontology original("spacy");
  original.add_class("Task").add_slot({"Submit Location", ValueType::String, false, {}, ""});
  original.add_instance("T1", "Task").set("Submit Location", Value("node-1-1"));
  const Ontology restored = from_xml_string(to_xml_string(original));
  EXPECT_EQ(restored.find_instance("T1")->get_string("Submit Location"), "node-1-1");
}

TEST(XmlIo, RejectsWrongRoot) {
  EXPECT_THROW(from_xml_string("<nope/>"), OntologyError);
}

}  // namespace
}  // namespace ig::meta
