// Ablation A5 — selection scheme: tournament (the paper's choice) versus
// fitness-proportional roulette, with and without elitism.
//
// Tournament selection is insensitive to fitness scaling; roulette loses
// selection pressure once the population's fitness spread narrows (every
// plan scores 0.6-0.9 here), which typically slows convergence.
#include <cstdio>
#include <string>

#include "gp_sweep.hpp"

using namespace ig;

int main() {
  const planner::PlanningProblem problem = bench::virolab_problem();
  struct Scheme {
    const char* label;
    planner::SelectionScheme selection;
    std::size_t tournament_size;
    std::size_t elitism;
  };
  const Scheme schemes[] = {
      {"tour-2+elite", planner::SelectionScheme::Tournament, 2, 1},
      {"tour-2", planner::SelectionScheme::Tournament, 2, 0},
      {"tour-4+elite", planner::SelectionScheme::Tournament, 4, 1},
      {"tour-7+elite", planner::SelectionScheme::Tournament, 7, 1},
      {"roulette+el", planner::SelectionScheme::Roulette, 0, 1},
      {"roulette", planner::SelectionScheme::Roulette, 0, 0},
  };
  constexpr int kRuns = 5;

  std::printf("A5: selection-scheme ablation (%d runs each)\n\n", kRuns);
  bench::print_sweep_header("scheme");
  int paper_optimal = 0;
  for (const auto& scheme : schemes) {
    planner::GpConfig config;
    config.population_size = 100;
    config.generations = 15;
    config.selection = scheme.selection;
    if (scheme.tournament_size > 0) config.tournament_size = scheme.tournament_size;
    config.elitism = scheme.elitism;
    const bench::SweepPoint point = bench::run_sweep_point(problem, config, kRuns);
    bench::print_sweep_row(scheme.label, point);
    if (std::string(scheme.label) == "tour-2+elite") paper_optimal = point.optimal_runs;
  }
  std::printf("\nexpected shape: binary tournament with elitism (the experiment harness's\n"
              "configuration) reaches the optimum in every run.\n");
  const bool ok = paper_optimal == kRuns;
  std::printf("shape holds: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
