// Ablation A10 — matchmaking strategy versus enactment makespan and cost.
//
// Enacts the Figure 10 case repeatedly under each matchmaking strategy.
// "Fastest" should minimize makespan, "cheapest" should minimize the
// spot-market bill, and "balanced" should sit between them — the
// Section 1 trade-off between resource quality and cost made measurable.
#include <cstdio>
#include <string>

#include "services/environment.hpp"
#include "services/user_interface.hpp"
#include "util/stats.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"

using namespace ig;

namespace {

struct StrategyResult {
  util::SampleSet makespan;
  util::SampleSet cost;
  int successes = 0;
};

StrategyResult run_strategy(const std::string& strategy, int trials) {
  StrategyResult result;
  for (int trial = 0; trial < trials; ++trial) {
    svc::EnvironmentOptions options;
    options.coordination.match_strategy = strategy;
    options.seed = 700 + static_cast<std::uint64_t>(trial);
    auto environment = svc::make_environment(options);
    auto& ui = environment->platform().spawn<svc::UserInterfaceAgent>("ui");
    ui.submit_process(virolab::make_fig10_process(), virolab::make_case_description());
    environment->run();
    if (!ui.finished() || !ui.outcome().success) continue;
    ++result.successes;
    result.makespan.add(ui.outcome().makespan);
    result.cost.add(ui.outcome().total_cost);
  }
  return result;
}

}  // namespace

int main() {
  constexpr int kTrials = 8;
  const char* strategies[] = {"balanced", "fastest", "reliable", "cheapest", "first-fit"};

  std::printf("A10: matchmaking strategy vs makespan and spot-market cost (%d trials)\n\n",
              kTrials);
  std::printf("%-12s %-10s %-14s %-14s\n", "strategy", "success", "mean makespan",
              "mean cost");

  double fastest_makespan = 0;
  double cheapest_cost = 0;
  double cheapest_makespan = 0;
  double fastest_cost = 0;
  for (const char* strategy : strategies) {
    const StrategyResult result = run_strategy(strategy, kTrials);
    std::printf("%-12s %d/%-8d %-14.2f %-14.2f\n", strategy, result.successes, kTrials,
                result.makespan.mean(), result.cost.mean());
    if (std::string(strategy) == "fastest") {
      fastest_makespan = result.makespan.mean();
      fastest_cost = result.cost.mean();
    }
    if (std::string(strategy) == "cheapest") {
      cheapest_cost = result.cost.mean();
      cheapest_makespan = result.makespan.mean();
    }
  }
  std::printf("\nexpected shape: 'fastest' yields the shortest makespans, 'cheapest' the\n"
              "lowest bills, and each is worse on the other axis.\n");
  const bool ok = fastest_makespan <= cheapest_makespan && cheapest_cost <= fastest_cost;
  std::printf("shape holds: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
