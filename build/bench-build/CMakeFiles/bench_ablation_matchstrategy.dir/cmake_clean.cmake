file(REMOVE_RECURSE
  "../bench/bench_ablation_matchstrategy"
  "../bench/bench_ablation_matchstrategy.pdb"
  "CMakeFiles/bench_ablation_matchstrategy.dir/bench_ablation_matchstrategy.cpp.o"
  "CMakeFiles/bench_ablation_matchstrategy.dir/bench_ablation_matchstrategy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_matchstrategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
