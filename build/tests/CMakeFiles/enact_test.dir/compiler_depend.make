# Empty compiler generated dependencies file for enact_test.
# This may be replaced when dependencies are built.
