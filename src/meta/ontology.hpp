// Frame-based ontology model (Protégé-style classes, slots, instances).
//
// The paper's ontology service "maintains and distributes ontology shells
// (i.e., ontologies with classes and slots but without instances) as well as
// ontologies populated with instances". This module implements that model:
//
//   Ontology            a named collection of classes and instances
//   OntologyClass       a frame: name, documentation, optional parent class,
//                       and slot definitions
//   SlotDef             a slot with a value type, cardinality and facets
//   Instance            a frame instance: id, class, slot values
//
// Validation mirrors Protégé's facet checking: an instance conforms to its
// class when every required slot is filled and every filled slot matches the
// declared value type and allowed values.
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "meta/value.hpp"

namespace ig::meta {

/// Raised on structural errors (unknown class, duplicate id, bad slot).
class OntologyError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A slot definition (frame attribute) with Protégé-style facets.
struct SlotDef {
  std::string name;
  ValueType type = ValueType::String;
  bool required = false;
  /// Non-empty: value (or each list item) must be one of these strings.
  std::vector<std::string> allowed_values;
  std::string documentation;
};

/// A frame class: slots plus optional single inheritance.
class OntologyClass {
 public:
  explicit OntologyClass(std::string name, std::string parent = {})
      : name_(std::move(name)), parent_(std::move(parent)) {}

  const std::string& name() const noexcept { return name_; }
  const std::string& parent() const noexcept { return parent_; }

  const std::string& documentation() const noexcept { return documentation_; }
  void set_documentation(std::string doc) { documentation_ = std::move(doc); }

  /// Adds a slot; throws OntologyError on duplicate slot names.
  void add_slot(SlotDef slot);
  /// Slots declared directly on this class (excludes inherited).
  const std::vector<SlotDef>& own_slots() const noexcept { return slots_; }
  const SlotDef* find_own_slot(std::string_view name) const noexcept;

 private:
  std::string name_;
  std::string parent_;
  std::string documentation_;
  std::vector<SlotDef> slots_;
};

/// A populated frame: id, class name, and slot assignments.
class Instance {
 public:
  Instance(std::string id, std::string class_name)
      : id_(std::move(id)), class_name_(std::move(class_name)) {}

  const std::string& id() const noexcept { return id_; }
  const std::string& class_name() const noexcept { return class_name_; }

  void set(std::string_view slot, Value value);
  /// Value of a slot; none-typed Value when unset.
  const Value& get(std::string_view slot) const noexcept;
  bool has(std::string_view slot) const noexcept;

  /// Convenience accessors with fallbacks.
  std::string get_string(std::string_view slot, std::string_view fallback = "") const;
  double get_number(std::string_view slot, double fallback = 0.0) const;
  std::vector<std::string> get_string_list(std::string_view slot) const;

  const std::map<std::string, Value, std::less<>>& slots() const noexcept { return values_; }

 private:
  std::string id_;
  std::string class_name_;
  std::map<std::string, Value, std::less<>> values_;
};

/// One slot-level validation failure.
struct ValidationIssue {
  std::string instance_id;
  std::string slot;
  std::string message;
};

/// A named ontology: classes, optional instances, and validation.
class Ontology {
 public:
  explicit Ontology(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // -- classes --------------------------------------------------------------
  /// Adds a class; parent (if set) must already exist. Throws on duplicates.
  OntologyClass& add_class(std::string name, std::string parent = {});
  const OntologyClass* find_class(std::string_view name) const noexcept;
  bool has_class(std::string_view name) const noexcept { return find_class(name) != nullptr; }
  std::vector<const OntologyClass*> classes() const;
  std::size_t class_count() const noexcept { return classes_.size(); }

  /// Slots of a class including inherited ones (base-class slots first).
  /// Throws OntologyError for an unknown class.
  std::vector<SlotDef> effective_slots(std::string_view class_name) const;

  /// True if `descendant` equals `ancestor` or inherits from it.
  bool is_subclass_of(std::string_view descendant, std::string_view ancestor) const;

  // -- instances --------------------------------------------------------------
  /// Adds an instance; its class must exist and the id must be fresh.
  Instance& add_instance(std::string id, std::string class_name);
  const Instance* find_instance(std::string_view id) const noexcept;
  Instance* find_instance_mutable(std::string_view id) noexcept;
  std::vector<const Instance*> instances() const;
  /// All instances whose class is `class_name` or a subclass of it.
  std::vector<const Instance*> instances_of(std::string_view class_name) const;
  std::size_t instance_count() const noexcept { return instances_.size(); }
  bool remove_instance(std::string_view id);

  /// A shell has classes and slots but no instances.
  bool is_shell() const noexcept { return instances_.empty(); }
  /// Copy with all instances stripped — what the ontology service hands out
  /// when a user asks for the schema only.
  Ontology shell() const;

  /// Facet-checks all instances against their classes.
  std::vector<ValidationIssue> validate() const;

  /// Imports all classes and instances of `other`; duplicate class names must
  /// define identical frames, duplicate instance ids raise OntologyError.
  void merge(const Ontology& other);

 private:
  void validate_instance(const Instance& instance, std::vector<ValidationIssue>& issues) const;

  std::string name_;
  // Insertion order matters for display and serialization fidelity, so keep
  // vectors and do linear lookup; ontologies here hold tens of entries.
  std::vector<OntologyClass> classes_;
  std::vector<Instance> instances_;
};

}  // namespace ig::meta
