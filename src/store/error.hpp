// Typed store errors.
//
// The storage layer's failure semantics are part of its contract (DESIGN.md
// §13): an ENOSPC on append is recoverable (the log is intact, the record
// simply was not written), an fsync failure is fail-stop (the WAL poisons
// itself — "fsyncgate"), and callers need to tell the two apart without
// parsing strings. Every throwing path in src/store raises this Error.
#pragma once

#include <cerrno>
#include <stdexcept>
#include <string>

namespace ig::store {

enum class ErrorKind {
  kIo,        ///< EIO and everything else unclassified: the operation failed
  kNoSpace,   ///< ENOSPC/EDQUOT: nothing was written, the log is intact
  kPoisoned,  ///< the WAL saw an fsync failure earlier and is fail-stop
};

inline const char* to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kIo: return "io";
    case ErrorKind::kNoSpace: return "no-space";
    case ErrorKind::kPoisoned: return "poisoned";
  }
  return "unknown";
}

inline ErrorKind errno_to_kind(int err) {
  return (err == ENOSPC || err == EDQUOT) ? ErrorKind::kNoSpace : ErrorKind::kIo;
}

class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, std::string op, const std::string& path,
        const std::string& detail = {})
      : std::runtime_error("store: " + op + " failed (" + std::string(to_string(kind)) +
                           ") on '" + path + "'" + (detail.empty() ? "" : ": " + detail)),
        kind_(kind),
        op_(std::move(op)) {}

  ErrorKind kind() const noexcept { return kind_; }
  const std::string& op() const noexcept { return op_; }

 private:
  ErrorKind kind_;
  std::string op_;
};

}  // namespace ig::store
