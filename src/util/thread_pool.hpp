// A fixed-size worker pool for data-parallel loops. LEGACY: production
// callers have moved to the work-stealing `sched::JobSystem`; this pool is
// kept (with its `parallel_for` contention bug fixed by chunking the atomic
// cursor) as the A/B baseline for bench_planner_parallel and its own test.
// Grow new code on the job system, not here.
//
// Design points:
//
//   * Workers are created once and keep stable ids in [0, size()); callers
//     that shard per-worker state (e.g. the evaluator's output caches) index
//     it by the id passed to their callback.
//   * `parallel_for` hands *chunks* of indices to workers through an atomic
//     cursor, so uneven per-item cost (memo hits vs. full simulations)
//     balances automatically without per-index cursor traffic. Results must
//     be keyed by index; the pool guarantees every index runs exactly once,
//     not in which order or on which worker.
//   * `submit` runs one task and returns a future, for coarse-grained jobs
//     such as the bench harness's independent seeded GP runs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ig::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Number of hardware threads, never 0 (falls back to 1 when unknown).
  static std::size_t hardware_threads() noexcept;

  /// Enqueues one task for any worker and returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn&>> {
    using Result = std::invoke_result_t<Fn&>;
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Runs `fn(index, worker)` for every index in [0, count), distributing
  /// indices dynamically over the workers, and blocks until all complete.
  /// `worker` is the stable id of the executing worker. The first exception
  /// thrown by any invocation is rethrown here after the loop drains.
  void parallel_for(std::size_t count, const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void enqueue(std::function<void()> task);
  void worker_loop(std::size_t worker_id);

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void(std::size_t)>> tasks_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace ig::util
