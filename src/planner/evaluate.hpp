// Plan evaluation by simulated execution (Section 3.4.4).
//
// Fitness is the weighted sum of three components:
//
//   fv (Eq. 1)  validity: valid activity executions / total executions,
//               measured by simulating the plan against the world state and
//               checking each activity's preconditions;
//   fg (Eq. 2)  goal satisfaction of the final state(s);
//   fr (Eq. 3)  representation efficiency: 1 − size/Smax;
//   f  (Eq. 4)  wv·fv + wg·fg + wr·fr.
//
// Selective and iterative nodes cause conditional execution: "we need to
// enumerate each possible flow of execution and simulate the execution of a
// plan multiple times". Each selective node multiplies the flow set by its
// branch count; each iterative node is unrolled 1..max_unroll times (the
// paper notes the cycle count "cannot be pre-determined"). Validity counts
// are totalled across flows; goal fitness is averaged across flows (both per
// the paper's text). The flow set is capped at `max_flows` to bound the
// combinatorics of adversarially nested plans; the cap is recorded in the
// result so harnesses can report truncation.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "planner/plan_tree.hpp"
#include "planner/problem.hpp"

namespace ig::planner {

/// Weights and bounds of the fitness function (Table 1's parameters).
struct EvaluationConfig {
  double wv = 0.2;  ///< validity weight
  double wg = 0.5;  ///< goal weight
  double wr = 0.3;  ///< representation-efficiency weight (wv+wg+wr = 1)
  std::size_t smax = 40;
  std::size_t max_unroll = 2;   ///< iterative nodes simulate 1..max_unroll passes
  std::size_t max_flows = 64;   ///< cap on enumerated execution flows
  /// Concurrent children "can be executed ... in any order"; the simulator
  /// checks this many serializations (1 = left-to-right only, 2 adds the
  /// reverse order, which catches order-dependent children without paying
  /// for all n! interleavings).
  std::size_t concurrent_orders = 2;
};

struct Fitness {
  double overall = 0.0;   ///< f  (Eq. 4)
  double validity = 0.0;  ///< fv (Eq. 1)
  double goal = 0.0;      ///< fg (Eq. 2)
  double representation = 0.0;  ///< fr (Eq. 3)
  std::size_t size = 0;         ///< plan tree node count
  std::size_t flows = 0;        ///< execution flows enumerated
  bool flows_truncated = false; ///< true when max_flows clipped enumeration

  /// Fitness-comparable ordering.
  bool operator<(const Fitness& other) const noexcept { return overall < other.overall; }
};

/// Immutable output items, cached per (service, occurrence index): the k-th
/// execution of a service always produces the same specification, so flows
/// share one allocation instead of rebuilding property maps. Occurrence
/// indices keep the items *distinct* (binding never reuses one item for two
/// formals, and a service like PSF genuinely needs two different 3-D
/// models).
class OutputCache {
 public:
  const std::vector<std::shared_ptr<const wfl::DataSpec>>& get(const wfl::ServiceType& service,
                                                               std::size_t occurrence);

 private:
  std::map<std::string, std::vector<std::vector<std::shared_ptr<const wfl::DataSpec>>>>
      cache_;
};

/// Evaluates plans against one planning problem. Not thread-safe (the
/// output cache and counters are shared across evaluations).
class PlanEvaluator {
 public:
  PlanEvaluator(const PlanningProblem& problem, EvaluationConfig config = {})
      : problem_(&problem), config_(config) {}

  const EvaluationConfig& config() const noexcept { return config_; }
  const PlanningProblem& problem() const noexcept { return *problem_; }

  Fitness evaluate(const PlanNode& plan) const;

  /// Number of plans evaluated so far (for effort accounting).
  std::size_t evaluations() const noexcept { return evaluations_; }

 private:
  const PlanningProblem* problem_;
  EvaluationConfig config_;
  mutable std::size_t evaluations_ = 0;
  mutable OutputCache output_cache_;
};

}  // namespace ig::planner
