// Crash-point recovery matrix: the canonical durable workload is run once
// through a pass-through FaultFs to count its I/O operations (N), then
// replayed N times with a simulated power cut after operation k, for every
// k in 1..N. After each cut the store is reopened on the real filesystem
// and three invariants must hold:
//   * zero acked-commit loss — every case id acked before the cut is still
//     known to the engine;
//   * no duplicated case attempts — a further reopen recovers nothing and
//     terminal counts are stable;
//   * chaos-replay identity — once the unacked cases are resubmitted, every
//     per-case outcome is bitwise identical to the uninterrupted run.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "store/error.hpp"
#include "store/fault_fs.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"

namespace ig {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<std::uint64_t> counter{0};
    path_ = fs::path(::testing::TempDir()) /
            ("igrid-crashmx-" + tag + "-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter.fetch_add(1)));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

constexpr std::size_t kCases = 3;
constexpr double kDrop = 0.2;
constexpr std::uint64_t kSeed = 77;

engine::EngineConfig matrix_config(const std::string& dir, store::FileOps* fops) {
  engine::EngineConfig config;
  config.shards = 1;  // one shard = deterministic case order
  config.queue_capacity = kCases + 4;
  config.seed = kSeed;
  config.environment.topology.domains = 2;
  config.environment.topology.nodes_per_domain = 2;
  config.environment.heartbeat_period = 5.0;
  config.environment.coordination.exec_policy = {300.0, 3, 0.5, 10.0};
  config.environment.coordination.replan_policy = {300.0, 2, 0.5, 10.0};
  agent::ChaosRule rule;
  rule.match.receiver = "ac-*";
  rule.drop = kDrop;
  rule.delay = kDrop / 2.0;
  config.environment.chaos.rules.push_back(rule);
  config.environment.chaos.seed = kSeed;
  config.storage.data_dir = dir;
  config.storage.snapshot_interval = 4;  // snapshots inside the matrix window
  config.storage.segment_size = 8192;    // segment rolls inside it too
  config.storage.file_ops = fops;
  return config;
}

double resolution_for(std::size_t index) { return 8.0 - 0.04 * static_cast<double>(index); }

/// Submits case `index` of the canonical fleet (0-based).
engine::CaseId submit_case(engine::EnactmentEngine& engine, std::size_t index) {
  const double resolution = resolution_for(index);
  return engine.submit(virolab::make_fig10_process(resolution),
                       virolab::make_case_description(resolution));
}

/// The deterministic slice of a case outcome (mirrors recovery_test.cpp):
/// wall-clock, placement and completion order are host facts, not enactment
/// facts, and are excluded by design.
struct OutcomeSignature {
  engine::CaseState state{};
  std::uint64_t makespan_bits = 0;
  int activities_executed = 0;
  int activities_replayed = 0;
  int dispatch_failures = 0;
  int replans = 0;
  std::uint64_t goal_bits = 0;
  std::uint64_t cost_bits = 0;

  bool operator==(const OutcomeSignature& other) const {
    return std::memcmp(this, &other, sizeof(OutcomeSignature)) == 0;
  }
};

std::uint64_t bits(double value) {
  std::uint64_t out = 0;
  std::memcpy(&out, &value, sizeof(out));
  return out;
}

OutcomeSignature signature(const engine::CaseOutcome& outcome) {
  OutcomeSignature sig{};
  sig.state = outcome.state;
  sig.makespan_bits = bits(outcome.makespan);
  sig.activities_executed = outcome.activities_executed;
  sig.activities_replayed = outcome.activities_replayed;
  sig.dispatch_failures = outcome.dispatch_failures;
  sig.replans = outcome.replans;
  sig.goal_bits = bits(outcome.goal_satisfaction);
  sig.cost_bits = bits(outcome.total_cost);
  return sig;
}

/// Runs the canonical workload (submit the fleet, drain) against `fops`,
/// tolerating disk failures: a cut mid-open means nothing was acked, a cut
/// mid-run degrades the engine but still drains. Returns the acked ids.
std::vector<engine::CaseId> run_workload(const std::string& dir, store::FileOps* fops) {
  std::vector<engine::CaseId> acked;
  std::unique_ptr<engine::EnactmentEngine> engine;
  try {
    engine = std::make_unique<engine::EnactmentEngine>(matrix_config(dir, fops));
  } catch (const store::Error&) {
    return acked;  // the cut landed inside open/recovery: nothing acked
  }
  for (std::size_t i = 0; i < kCases; ++i) {
    const engine::CaseId id = submit_case(*engine, i);
    if (id != engine::kInvalidCase) acked.push_back(id);
  }
  engine->drain();
  return acked;
}

TEST(CrashMatrix, PowerCutAfterEveryIoOpLosesNoAckedCase) {
  // Phase 1: the uninterrupted run — counts N and records the baseline.
  std::uint64_t total_ops = 0;
  std::vector<OutcomeSignature> baseline(kCases);
  {
    TempDir dir("baseline");
    store::FaultFs pass_through{store::FaultFsOptions{}};
    const std::vector<engine::CaseId> ids = run_workload(dir.str(), &pass_through);
    ASSERT_EQ(ids.size(), kCases);
    ASSERT_EQ(pass_through.stats().total_injected(), 0u);
    // N is the workload's own op count; the readback below goes through the
    // real filesystem so it does not inflate the matrix.
    total_ops = pass_through.ops();
    engine::EnactmentEngine readback(matrix_config(dir.str(), nullptr));
    for (std::size_t i = 0; i < kCases; ++i) {
      const auto outcome = readback.result(ids[i]);
      ASSERT_TRUE(outcome.has_value()) << "baseline case " << ids[i] << " not terminal";
      baseline[i] = signature(*outcome);
    }
  }
  ASSERT_GT(total_ops, 10u);
  RecordProperty("matrix_points", static_cast<int>(total_ops));

  // Phase 2: the matrix — cut after every op, reopen, verify, resume.
  for (std::uint64_t k = 1; k <= total_ops; ++k) {
    SCOPED_TRACE("power cut after op " + std::to_string(k));
    TempDir dir("cut");
    std::vector<engine::CaseId> acked;
    {
      store::FaultFsOptions fault_options;
      fault_options.power_cut_after = k;
      store::FaultFs faults(fault_options);
      acked = run_workload(dir.str(), &faults);
      // Group commit makes the exact op count mildly timing-dependent (a
      // commit may ride an earlier barrier), so a cut point near N can land
      // past the run's last op — that run is simply uninterrupted, and the
      // invariants below must hold either way.
    }

    // Reopen on the real filesystem. Zero acked-commit loss: every acked id
    // must be known (Rejected is the engine's "never heard of it").
    engine::EnactmentEngine restarted(matrix_config(dir.str(), nullptr));
    for (const engine::CaseId id : acked)
      ASSERT_NE(restarted.status(id), engine::CaseState::Rejected)
          << "acked case " << id << " lost by the cut";
    ASSERT_EQ(restarted.metrics().submitted, acked.size());

    // Resume: resubmit the unacked tail of the fleet. Recovery restored
    // next_case_id_, so case i must get id i+1 again — which is what makes
    // the per-case chaos streams line up with the baseline.
    for (std::size_t i = acked.size(); i < kCases; ++i) {
      const engine::CaseId id = submit_case(restarted, i);
      ASSERT_EQ(id, static_cast<engine::CaseId>(i + 1));
    }
    restarted.drain();
    for (std::size_t i = 0; i < kCases; ++i) {
      const auto outcome = restarted.result(static_cast<engine::CaseId>(i + 1));
      ASSERT_TRUE(outcome.has_value()) << "case " << i + 1 << " not terminal after resume";
      EXPECT_TRUE(signature(*outcome) == baseline[i])
          << "case " << i + 1 << " diverged from the uninterrupted run (state "
          << engine::to_string(outcome->state) << " vs "
          << engine::to_string(baseline[i].state) << ")";
    }
    const engine::EngineMetrics after_resume = restarted.metrics();
    EXPECT_EQ(after_resume.submitted, kCases);

    // No duplicated case attempts: a third open recovers nothing, re-runs
    // nothing, and reports the same terminal counts.
    engine::EnactmentEngine verify(matrix_config(dir.str(), nullptr));
    const engine::EngineMetrics final_metrics = verify.metrics();
    EXPECT_EQ(final_metrics.recovered, 0u) << "a terminal case was re-admitted";
    EXPECT_EQ(final_metrics.submitted, kCases);
    EXPECT_EQ(final_metrics.completed + final_metrics.failed + final_metrics.cancelled,
              kCases);
    for (std::size_t i = 0; i < kCases; ++i) {
      const auto outcome = verify.result(static_cast<engine::CaseId>(i + 1));
      ASSERT_TRUE(outcome.has_value());
      EXPECT_TRUE(signature(*outcome) == baseline[i]) << "case " << i + 1;
    }
  }
}

}  // namespace
}  // namespace ig
