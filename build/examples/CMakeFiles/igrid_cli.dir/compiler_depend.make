# Empty compiler generated dependencies file for igrid_cli.
# This may be replaced when dependencies are built.
