#include "agent/agent.hpp"

#include <stdexcept>

#include "agent/platform.hpp"

namespace ig::agent {

void Agent::send(AclMessage message) {
  message.sender = name_;
  platform().send(std::move(message));
}

grid::EventId Agent::schedule(grid::SimTime delay, std::function<void()> action) {
  return sim().schedule(delay, std::move(action));
}

grid::EventId Agent::schedule_daemon(grid::SimTime delay, std::function<void()> action) {
  return sim().schedule_daemon(delay, std::move(action));
}

AgentPlatform& Agent::platform() {
  if (platform_ == nullptr)
    throw std::logic_error("agent '" + name_ + "' is not registered with a platform");
  return *platform_;
}

grid::Simulation& Agent::sim() { return platform().sim(); }

grid::SimTime Agent::now() { return sim().now(); }

}  // namespace ig::agent
