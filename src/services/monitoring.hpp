// Monitoring service: accurate, current resource state + liveness.
//
// "Accurate information about the status of a resource may be obtained using
// monitoring services" — unlike brokerage data, which may be obsolete, the
// monitor reads the grid directly. It also samples utilization periodically
// for the soft-deadline history discussed in Section 1 (a bounded ring of
// the most recent samples per node).
//
// Liveness: application containers emit periodic heartbeats (see
// ContainerAgent). The monitor tracks when each container was last seen and
// classifies it lazily at query time — Alive, Suspect after a few missed
// beats, Dead after several more. Matchmaking consults this to quarantine
// dead containers. The breaker is half-open: a Dead container is probed at a
// bounded rate, and any sign of life (a resumed heartbeat or a probe reply)
// readmits it and counts a recovery.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "grid/grid.hpp"
#include "obs/metrics.hpp"

namespace ig::svc {

/// Heartbeat-derived transport-level state of a container.
enum class Liveness { Unknown, Alive, Suspect, Dead };

const char* to_string(Liveness liveness) noexcept;

/// Liveness thresholds, expressed in heartbeat periods so one knob scales
/// the whole scheme.
struct HeartbeatConfig {
  grid::SimTime period = 5.0;          ///< expected beat spacing (virtual s)
  double suspect_missed = 2.5;         ///< periods without a beat -> Suspect
  double dead_missed = 5.0;            ///< periods without a beat -> Dead
  grid::SimTime probe_interval = 15.0; ///< min spacing of half-open probes
};

class MonitoringService : public agent::Agent {
 public:
  MonitoringService(std::string name, const grid::Grid& grid, grid::SimTime sample_period = 0.0,
                    HeartbeatConfig heartbeat = {})
      : Agent(std::move(name)),
        grid_(&grid),
        sample_period_(sample_period),
        heartbeat_(heartbeat) {}

  void on_start() override;
  void handle_message(const agent::AclMessage& message) override;

  /// Utilization samples per node id (busy fraction at each sample time).
  const std::map<std::string, std::vector<double>>& samples() const noexcept { return samples_; }
  /// Caps every node's series at the most recent `limit` samples (the
  /// oldest are dropped); 0 means unbounded. Existing series are trimmed.
  void set_max_samples(std::size_t limit);
  std::size_t max_samples() const noexcept { return max_samples_; }

  const HeartbeatConfig& heartbeat_config() const noexcept { return heartbeat_; }
  void set_heartbeat_config(const HeartbeatConfig& config) noexcept { heartbeat_ = config; }

  /// Classifies a container from its last heartbeat, lazily at call time —
  /// no sweep timers. A container that never beat is Unknown (not
  /// quarantined: it may predate the heartbeat scheme). May emit a
  /// half-open probe when the container is Dead and the probe budget
  /// allows, which is why this is non-const.
  Liveness liveness_of(const std::string& container_id);

  /// Containers currently classified Dead.
  std::vector<std::string> dead_containers();

  /// Atomic: engine metrics snapshots read this from another thread.
  std::size_t heartbeats_received() const noexcept {
    return heartbeats_received_.load(std::memory_order_relaxed);
  }
  /// Containers that resumed beating (or answered a probe) after having
  /// been silent past the Dead threshold. Atomic: engine metrics snapshots
  /// read this from another thread while the shard runs.
  std::size_t containers_recovered() const noexcept {
    return containers_recovered_.load(std::memory_order_relaxed);
  }

  /// Pushes the liveness counters into `registry` under `labels`. Reads
  /// only atomic state; safe from a metrics thread while the sim runs.
  void publish(obs::MetricsRegistry& registry, const obs::Labels& labels = {}) const {
    registry.counter("monitor_heartbeats_received_total", labels).set_to(heartbeats_received());
    registry.counter("monitor_containers_recovered_total", labels).set_to(containers_recovered());
  }

 private:
  struct Beat {
    grid::SimTime last_seen = 0.0;
    grid::SimTime last_probe = -1e18;
  };

  void sample();
  void record_heartbeat(const std::string& container_id);
  Liveness classify(const Beat& beat);  // non-const: Agent::now() is not

  const grid::Grid* grid_;
  grid::SimTime sample_period_;  ///< 0 disables periodic sampling
  std::size_t max_samples_ = 1024;
  std::map<std::string, std::vector<double>> samples_;

  HeartbeatConfig heartbeat_;
  std::map<std::string, Beat> beats_;
  std::atomic<std::size_t> heartbeats_received_{0};
  std::uint64_t next_probe_ = 0;
  std::atomic<std::size_t> containers_recovered_{0};
};

}  // namespace ig::svc
