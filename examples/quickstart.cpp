// Quickstart: define a planning problem, run the GP planner, inspect the
// plan in all three representations (plan tree, workflow text, process
// description graph).
//
//   $ ./quickstart
//
// The problem is a miniature two-step pipeline: a "Extract" service turns a
// raw dataset into features, and a "Train" service turns features into a
// model. The planner must discover the Extract -> Train sequence on its own.
#include <cstdio>
#include <iostream>

#include "planner/convert.hpp"
#include "planner/gp.hpp"
#include "wfl/service.hpp"
#include "wfl/validate.hpp"

using namespace ig;

int main() {
  // 1. Describe the available end-user services (the set T).
  wfl::ServiceCatalogue catalogue;
  {
    wfl::ServiceType extract("Extract");
    extract.set_inputs({"A"});
    extract.set_input_condition(wfl::Condition::parse("A.Classification = \"Raw Data\""));
    extract.set_outputs({"B"});
    extract.set_output_condition(wfl::Condition::parse("B.Classification = \"Features\""));
    catalogue.add(std::move(extract));

    wfl::ServiceType train("Train");
    train.set_inputs({"A", "B"});
    train.set_input_condition(wfl::Condition::parse(
        "A.Classification = \"Features\" and B.Classification = \"Train-Config\""));
    train.set_outputs({"C"});
    train.set_output_condition(wfl::Condition::parse("C.Classification = \"Model\""));
    catalogue.add(std::move(train));
  }

  // 2. The initial state Sinit and the goal G.
  planner::PlanningProblem problem;
  problem.name = "train-a-model";
  problem.initial_state.put(wfl::DataSpec("raw").with_classification("Raw Data"));
  problem.initial_state.put(wfl::DataSpec("config").with_classification("Train-Config"));
  wfl::GoalSpec goal;
  goal.description = "a trained model exists";
  goal.condition = wfl::Condition::parse("M.Classification = \"Model\"");
  problem.goals.push_back(goal);
  problem.catalogue = catalogue;

  // 3. Run the genetic planner (Table 1 parameters are the defaults).
  planner::GpConfig config;
  config.population_size = 100;
  config.generations = 15;
  config.seed = 7;
  const planner::GpResult result = planner::run_gp(problem, config);

  std::printf("fitness      : %.4f\n", result.best_fitness.overall);
  std::printf("validity  fv : %.4f\n", result.best_fitness.validity);
  std::printf("goal      fg : %.4f\n", result.best_fitness.goal);
  std::printf("plan size    : %zu nodes\n", result.best_fitness.size);
  std::printf("evaluations  : %zu\n\n", result.evaluations);

  std::printf("-- plan tree (Figure 11 style) --\n%s\n",
              result.best_plan.to_tree_string().c_str());

  const wfl::FlowExpr expr = planner::to_flow_expr(result.best_plan);
  std::printf("-- process description text (Section 2 grammar) --\n%s\n\n",
              expr.to_text().c_str());

  const wfl::ProcessDescription process = planner::to_process(result.best_plan, "quickstart");
  std::printf("-- process description graph (Figure 10 style) --\n%s",
              process.to_display_string().c_str());
  std::printf("structurally valid: %s\n", wfl::is_valid(process) ? "yes" : "NO");
  return 0;
}
