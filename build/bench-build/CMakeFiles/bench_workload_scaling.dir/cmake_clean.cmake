file(REMOVE_RECURSE
  "../bench/bench_workload_scaling"
  "../bench/bench_workload_scaling.pdb"
  "CMakeFiles/bench_workload_scaling.dir/bench_workload_scaling.cpp.o"
  "CMakeFiles/bench_workload_scaling.dir/bench_workload_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
