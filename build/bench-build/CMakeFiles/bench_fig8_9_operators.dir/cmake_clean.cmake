file(REMOVE_RECURSE
  "../bench/bench_fig8_9_operators"
  "../bench/bench_fig8_9_operators.pdb"
  "CMakeFiles/bench_fig8_9_operators.dir/bench_fig8_9_operators.cpp.o"
  "CMakeFiles/bench_fig8_9_operators.dir/bench_fig8_9_operators.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_9_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
