#include "services/planning_service.hpp"

#include "planner/convert.hpp"
#include "services/protocol.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "wfl/xml_io.hpp"

namespace ig::svc {

using agent::AclMessage;
using agent::Performative;

void PlanningService::on_start() {
  register_with_information_service(*this, platform(), "planning");
}

void PlanningService::handle_message(const AclMessage& message) {
  if (message.protocol == protocols::kPlanRequest) return handle_plan_request(message);
  if (message.protocol == protocols::kReplanRequest) return handle_replan_request(message);
  // Replies to probe queries are routed on Failure as well as Inform: a
  // broken information service / brokerage / container must still decrement
  // the session's pending counters, or the re-planning session stalls
  // forever (it simply contributes no providers / no executable services).
  const bool probe_reply = message.performative == Performative::Inform ||
                           message.performative == Performative::Failure;
  if (message.protocol == protocols::kQueryService && probe_reply)
    return handle_information_reply(message);
  if (message.protocol == protocols::kQueryProviders && probe_reply)
    return handle_provider_reply(message);
  if (message.protocol == protocols::kQueryExecutable && probe_reply)
    return handle_probe_reply(message);
  if (!should_bounce_unknown(message)) return;
  send(make_not_understood(message, "unknown protocol '" + message.protocol + "'"));
}

void PlanningService::plan_and_reply(const AclMessage& request,
                                     const wfl::ServiceCatalogue& catalogue) {
  AclMessage reply = request.make_reply(Performative::Inform);
  try {
    const wfl::CaseDescription case_description = wfl::case_from_xml_string(request.content);
    planner::PlanningProblem problem =
        planner::PlanningProblem::from_case(case_description, catalogue);

    planner::GpConfig config = gp_config_;
    // Each planning episode explores from a different (still deterministic)
    // seed, so a re-planning retry does not just reproduce the failed plan.
    config.seed = gp_config_.seed + plans_produced_ * 7919;
    if (request.has_param("seed")) {
      const auto seed = request.param_uint("seed");
      if (!seed.has_value()) {
        send(make_not_understood(request, request.describe_bad_param("seed", "uint")));
        return;
      }
      config.seed = *seed;
    }

    // GP is stochastic: when a run falls short of full goal fitness, retry
    // with fresh seeds before settling for the best attempt.
    planner::GpResult result = planner::run_gp(problem, config);
    for (int attempt = 1; attempt < 3 && result.best_fitness.goal < 1.0; ++attempt) {
      config.seed = config.seed * 6364136223846793005ULL + 1442695040888963407ULL;
      planner::GpResult retry = planner::run_gp(problem, config);
      if (retry.best_fitness.overall > result.best_fitness.overall) result = std::move(retry);
      if (result.best_fitness.goal >= 1.0) break;
    }

    std::string plan_name = case_description.process_name();
    if (plan_name.empty()) plan_name = "plan-" + case_description.name();
    const wfl::ProcessDescription process = planner::to_process(result.best_plan, plan_name);

    ++plans_produced_;
    reply.content = wfl::process_to_xml_string(process);
    reply.params["plan"] = plan_name;
    reply.params["fitness"] = util::format_number(result.best_fitness.overall, 4);
    reply.params["validity-fitness"] = util::format_number(result.best_fitness.validity, 4);
    reply.params["goal-fitness"] = util::format_number(result.best_fitness.goal, 4);
    reply.params["size"] = std::to_string(result.best_fitness.size);

    // Archive the process description in the system knowledge base.
    if (platform().has_agent(names::kPersistentStorage)) {
      AclMessage archive;
      archive.performative = Performative::Request;
      archive.receiver = names::kPersistentStorage;
      archive.protocol = protocols::kStorePut;
      archive.params["key"] = "process/" + plan_name;
      archive.content = reply.content;
      send(std::move(archive));
    }
  } catch (const std::exception& error) {
    reply.performative = Performative::Failure;
    reply.params["error"] = error.what();
  }
  // Charge the GP runtime to the virtual clock before replying.
  schedule(planning_latency_, [this, reply]() mutable { send(std::move(reply)); });
}

void PlanningService::handle_plan_request(const AclMessage& message) {
  IG_LOG_DEBUG("ps") << "planning request from " << message.sender;
  plan_and_reply(message, catalogue_);
}

void PlanningService::handle_replan_request(const AclMessage& message) {
  const std::string session_id = "replan-" + std::to_string(next_session_++);
  ReplanSession session;
  session.original = message;
  for (const auto& service : util::split_trimmed(message.param("failed-services"), ','))
    session.excluded.insert(service);

  if (!message.param_bool("probe", true)) {
    // Method 1: the knowledge is given directly by the coordination service.
    wfl::ServiceCatalogue reduced;
    for (const auto& service : catalogue_.services()) {
      if (session.excluded.count(service.name()) == 0) reduced.add(service);
    }
    plan_and_reply(message, reduced);
    return;
  }

  // Method 2, step 2: ask the information service for a brokerage service.
  sessions_[session_id] = std::move(session);
  AclMessage query;
  query.performative = Performative::QueryRef;
  query.receiver = names::kInformation;
  query.protocol = protocols::kQueryService;
  query.conversation_id = session_id;
  query.params["type"] = "brokerage";
  send(std::move(query));
}

void PlanningService::handle_information_reply(const AclMessage& message) {
  auto it = sessions_.find(message.conversation_id);
  if (it == sessions_.end()) return;
  ReplanSession& session = it->second;

  const auto providers = util::split_trimmed(message.param("providers"), ',');
  session.brokerage = providers.empty() ? names::kBrokerage : providers.front();

  // Step 4: ask the brokerage for containers, one query per service type.
  for (const auto& service : catalogue_.services()) {
    if (session.excluded.count(service.name()) > 0) continue;
    session.to_probe.push_back(service.name());
    ++session.pending_provider_queries;
    AclMessage query;
    query.performative = Performative::QueryRef;
    query.receiver = session.brokerage;
    query.protocol = protocols::kQueryProviders;
    query.conversation_id = message.conversation_id;
    query.params["service"] = service.name();
    send(std::move(query));
  }
  if (session.pending_provider_queries == 0) finish_replan(message.conversation_id);
}

void PlanningService::handle_provider_reply(const AclMessage& message) {
  auto it = sessions_.find(message.conversation_id);
  if (it == sessions_.end()) return;
  ReplanSession& session = it->second;
  --session.pending_provider_queries;

  const std::string service = message.param("service");
  const auto containers = util::split_trimmed(message.param("containers"), ',');
  // Step 6: probe each advertised container for current executability.
  for (const auto& container : containers) {
    if (!platform().has_agent(container)) continue;
    ++session.pending_probes;
    AclMessage probe;
    probe.performative = Performative::QueryIf;
    probe.receiver = container;
    probe.protocol = protocols::kQueryExecutable;
    probe.conversation_id = message.conversation_id;
    probe.params["service"] = service;
    send(std::move(probe));
  }
  if (session.pending_provider_queries == 0 && session.pending_probes == 0)
    finish_replan(message.conversation_id);
}

void PlanningService::handle_probe_reply(const AclMessage& message) {
  auto it = sessions_.find(message.conversation_id);
  if (it == sessions_.end()) return;
  ReplanSession& session = it->second;
  --session.pending_probes;
  if (message.param_bool("executable", false))
    session.executable.insert(message.param("service"));
  if (session.pending_provider_queries == 0 && session.pending_probes == 0)
    finish_replan(message.conversation_id);
}

void PlanningService::finish_replan(const std::string& session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  ReplanSession session = std::move(it->second);
  sessions_.erase(it);

  // "The activity can be included in the new plan only if there is at least
  // one application container that can provide the execution."
  wfl::ServiceCatalogue reduced;
  for (const auto& service : catalogue_.services()) {
    if (session.excluded.count(service.name()) > 0) continue;
    if (session.executable.count(service.name()) == 0) continue;
    reduced.add(service);
  }
  IG_LOG_DEBUG("ps") << "replan over " << reduced.size() << "/" << catalogue_.size()
                     << " executable services";
  plan_and_reply(session.original, reduced);
}

}  // namespace ig::svc
